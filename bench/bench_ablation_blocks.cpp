// Ablation: the value of the Section 5 block DP — optimal block structure
// versus the two degenerate policies (everything in one busy interval /
// every task in its own busy interval) as the task spread grows.
//
// Tight sets should collapse to one block; sparse sets should split, and
// the DP should dominate both extremes everywhere.
#include "bench_util.hpp"
#include "core/agreeable.hpp"
#include "core/block.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  auto cfg = paper_cfg();
  cfg.memory.xi_m = 0.0;
  constexpr int kN = 8;

  print_header("Ablation — Section 5 block DP vs degenerate partitions",
               "agreeable sets, n = 8; spread = max inter-arrival (s)");

  Table t({"spread (s)", "DP energy (J)", "one block (J)", "per-task blocks (J)",
           "DP blocks"});
  for (double spread : {0.005, 0.020, 0.050, 0.100, 0.200, 0.400}) {
    double e_dp = 0, e_one = 0, e_each = 0;
    double blocks = 0;
    constexpr int kSeeds = 8;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const TaskSet ts =
          make_agreeable(kN, seed * 131 + int(spread * 1e4), spread);
      const auto dp = solve_agreeable(ts, cfg);
      const auto sorted = ts.sorted_by_deadline().tasks();
      const auto one = solve_block(sorted, cfg);
      double each = 0.0;
      for (const auto& task : sorted) {
        each += solve_block({task}, cfg).energy;
      }
      e_dp += dp.energy;
      e_one += one.energy;
      e_each += each;
      blocks += dp.case_index;
    }
    t.add_row({Table::fmt(spread, 3), Table::fmt(e_dp / kSeeds, 5),
               Table::fmt(e_one / kSeeds, 5), Table::fmt(e_each / kSeeds, 5),
               Table::fmt(blocks / kSeeds, 1)});
  }
  print_table(t);
  return 0;
}
