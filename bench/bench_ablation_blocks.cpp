// Ablation: the value of the Section 5 block DP — optimal block structure
// versus the two degenerate policies (everything in one busy interval /
// every task in its own busy interval) as the task spread grows.
//
// Tight sets should collapse to one block; sparse sets should split, and
// the DP should dominate both extremes everywhere.
//
// The sweep lives in bench/bench_experiments.cpp as the registered
// experiment "ablation_blocks" (spread x seed cells run across the pool;
// folds keep the legacy order, so this prints the same bytes as the
// pre-registry standalone). `sdem_bench_runner --filter ablation_blocks`
// adds JSON output, seed/job control, and markdown rendering.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("ablation_blocks"); }
