// Ablation: cost of real DVFS ladders (Ishihara-Yasuura realization).
//
// The paper argues the continuous-speed assumption is harmless because
// two-level splits close the gap as ladders densify. This bench quantifies
// that: realize Section 4.2 optimal schedules on ladders of increasing
// density (plus the A57's actual OPP table) and report the energy penalty.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "ablation_discrete"; this binary prints its default run (same
// bytes as the pre-registry standalone). `sdem_bench_runner --filter
// ablation_discrete` adds JSON output, seed/job control, and markdown.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("ablation_discrete"); }
