// Ablation: cost of real DVFS ladders (Ishihara-Yasuura realization).
//
// The paper argues the continuous-speed assumption is harmless because
// two-level splits close the gap as ladders densify. This bench quantifies
// that: realize Section 4.2 optimal schedules on ladders of increasing
// density (plus the A57's actual OPP table) and report the energy penalty.
#include "bench_util.hpp"
#include "core/common_release_alpha.hpp"
#include "core/discrete_solver.hpp"
#include "core/discretize.hpp"
#include "sched/energy.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  auto cfg = paper_cfg();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  cfg.num_cores = 0;
  constexpr int kSeeds = 20;

  print_header("Ablation — discrete DVFS ladders vs continuous speeds",
               "Section 4.2 optimum realized on uniform ladders spanning "
               "700..1900 MHz; penalty = (E_disc - E_cont) / E_cont");

  Table t({"ladder", "post-hoc penalty %", "ladder-aware penalty %",
           "max post-hoc %", "avg splits"});
  auto run = [&](const std::string& label, const FrequencyLadder& ladder) {
    double sum = 0.0, worst = 0.0, splits = 0.0, aware_sum = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const TaskSet ts = make_common_release(10, 0.0, seed * 61);
      const auto cont = solve_common_release_alpha(ts, cfg);
      if (!cont.feasible) continue;
      const double base = system_energy(cont.schedule, cfg);
      const auto d = discretize_schedule(cont.schedule, ladder);
      const double e = system_energy(d.schedule, cfg);
      const double pen = (e - base) / base;
      sum += pen;
      worst = std::max(worst, pen);
      splits += d.splits;
      // Solving directly over the ladder (discrete-aware optimum).
      const auto aware = solve_common_release_discrete(ts, cfg, ladder);
      aware_sum += (aware.energy - base) / base;
    }
    t.add_row({label, Table::fmt(100.0 * sum / kSeeds, 3),
               Table::fmt(100.0 * aware_sum / kSeeds, 3),
               Table::fmt(100.0 * worst, 3), Table::fmt(splits / kSeeds, 1)});
  };

  for (int n : {2, 3, 4, 6, 8, 16, 32}) {
    run(std::to_string(n) + " uniform",
        FrequencyLadder::uniform(n, 700.0, 1900.0));
  }
  run("A57 OPPs (6)", FrequencyLadder::a57_opps());
  print_table(t);
  return 0;
}
