// Ablation: how much of SDEM-ON's saving comes from procrastination
// (sleeping until the first latest start so executions align) versus from
// the per-replan optimal speed selection alone?
//
// SDEM-ON/eager keeps the Section 4 execution lengths but starts every
// batch immediately. The gap between the two columns is the value of the
// paper's step 5 — it should grow as the system idles (more room to align).
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "ablation_procrastination"; this binary prints its default run
// (same bytes as the pre-registry standalone). `sdem_bench_runner --filter
// ablation_procrastination` adds JSON output, seed/job control, and
// markdown.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("ablation_procrastination"); }
