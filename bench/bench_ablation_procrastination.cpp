// Ablation: how much of SDEM-ON's saving comes from procrastination
// (sleeping until the first latest start so executions align) versus from
// the per-replan optimal speed selection alone?
//
// SDEM-ON/eager keeps the Section 4 execution lengths but starts every
// batch immediately. The gap between the two columns is the value of the
// paper's step 5 — it should grow as the system idles (more room to align).
#include "bench_util.hpp"
#include "core/online_sdem.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto cfg = paper_cfg();
  constexpr int kSeeds = 10;
  constexpr int kTasks = 120;

  print_header("Ablation — procrastination (step 5 of the online listing)",
               "system energy saving vs MBKP; eager = same speeds, no "
               "alignment sleep");

  Table t({"x (ms)", "SDEM-ON saving %", "eager saving %",
           "procrastination value (pp)"});
  for (int x = 100; x <= 800; x += 100) {
    double e_mbkp = 0, e_sdem = 0, e_eager = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SyntheticParams p;
      p.num_tasks = kTasks;
      p.max_interarrival = x / 1000.0;
      const TaskSet trace = make_synthetic(p, seed * 4241 + x);

      const auto cmp = run_comparison(trace, cfg);
      e_mbkp += cmp.mbkp.energy.system_total();
      e_sdem += cmp.sdem.energy.system_total();

      SdemOnPolicy eager(/*procrastinate=*/false);
      const auto sim = simulate(trace, cfg, eager);
      e_eager += evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "eager")
                     .energy.system_total();
    }
    const double s_sdem = 100.0 * (e_mbkp - e_sdem) / e_mbkp;
    const double s_eager = 100.0 * (e_mbkp - e_eager) / e_mbkp;
    t.add_row({std::to_string(x), Table::fmt(s_sdem, 2),
               Table::fmt(s_eager, 2), Table::fmt(s_sdem - s_eager, 2)});
  }
  print_table(t);
  return 0;
}
