// Ablation: memory gap disciplines on the same (MBKP) schedule.
//
// kNever (MBKP), kAlways (a truly naive sleeper that pays the transition
// pair for every gap) and kOptimal (sleep only past break-even, the MBKPS
// of the main benches). Shows why break-even awareness matters: with busy
// systems and a large xi_m, kAlways is WORSE than never sleeping at all —
// the pathology the paper's Table 3 analysis exists to avoid.
#include "baseline/mbkp.hpp"
#include "bench_util.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  constexpr int kSeeds = 10;
  constexpr int kTasks = 120;

  print_header("Ablation — memory gap discipline on the MBKP schedule",
               "system energy (J, avg over seeds); x sweeps utilization; "
               "xi_m = 40 ms, alpha_m = 4 W");

  Table t({"x (ms)", "never (MBKP)", "always", "break-even (MBKPS)",
           "always vs never %"});
  const auto cfg = paper_cfg();
  for (int x = 100; x <= 800; x += 100) {
    double e_never = 0, e_always = 0, e_opt = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SyntheticParams p;
      p.num_tasks = kTasks;
      p.max_interarrival = x / 1000.0;
      MbkpPolicy pol;
      const auto sim = simulate(make_synthetic(p, seed * 31 + x), cfg, pol);
      e_never += evaluate_policy(sim, cfg, SleepDiscipline::kNever, "n")
                     .energy.system_total();
      e_always += evaluate_policy(sim, cfg, SleepDiscipline::kAlways, "a")
                      .energy.system_total();
      e_opt += evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "o")
                   .energy.system_total();
    }
    t.add_row({std::to_string(x), Table::fmt(e_never / kSeeds, 4),
               Table::fmt(e_always / kSeeds, 4), Table::fmt(e_opt / kSeeds, 4),
               Table::fmt(100.0 * (e_always - e_never) / e_never, 2)});
  }
  print_table(t);
  return 0;
}
