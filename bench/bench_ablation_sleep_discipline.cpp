// Ablation: memory gap disciplines on the same (MBKP) schedule.
//
// kNever (MBKP), kAlways (a truly naive sleeper that pays the transition
// pair for every gap) and kOptimal (sleep only past break-even, the MBKPS
// of the main benches). Shows why break-even awareness matters: with busy
// systems and a large xi_m, kAlways is WORSE than never sleeping at all —
// the pathology the paper's Table 3 analysis exists to avoid.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "ablation_sleep_discipline"; this binary prints its default
// run (same bytes as the pre-registry standalone). `sdem_bench_runner
// --filter ablation_sleep_discipline` adds JSON output, seed/job control,
// and markdown.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("ablation_sleep_discipline"); }
