// Extension: sensitivity to the whole-execution-access assumption.
//
// The schedulers plan assuming tasks touch DRAM throughout (the paper's
// model). If tasks actually access memory only during a prefix of each run
// (load phase), the realized memory busy time shrinks — this bench measures
// how much energy the conservative assumption leaves on the table, for both
// SDEM-ON and MBKP schedules, across access fractions.
#include "baseline/mbkp.hpp"
#include "bench_util.hpp"
#include "core/online_sdem.hpp"
#include "model/access.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto cfg = paper_cfg();
  constexpr int kSeeds = 10;

  print_header("Extension — memory energy vs per-task access fraction",
               "tasks access DRAM only during the first f of each run; "
               "schedules unchanged (planned with f = 1), accounting "
               "refined; x = 400 ms");

  Table t({"fraction f", "SDEM-ON mem (J)", "vs f=1 %", "MBKP-sched mem (J)",
           "vs f=1 %"});
  double sdem_base = 0.0, mbkp_base = 0.0;
  for (double f : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    double e_sdem = 0.0, e_mbkp = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SyntheticParams p;
      p.num_tasks = 120;
      p.max_interarrival = 0.400;
      const TaskSet ts = make_synthetic(p, seed * 29);

      std::map<int, TaskAccess> acc;
      for (const auto& task : ts.tasks()) {
        acc[task.id] = {AccessPattern::kPrefix, f};
      }
      SdemOnPolicy sdem;
      const auto s1 = simulate(ts, cfg, sdem);
      e_sdem += access_aware_memory_energy(s1.schedule, acc, cfg.memory,
                                           s1.horizon_lo, s1.horizon_hi)
                    .total();
      MbkpPolicy mbkp;
      const auto s2 = simulate(ts, cfg, mbkp);
      e_mbkp += access_aware_memory_energy(s2.schedule, acc, cfg.memory,
                                           s2.horizon_lo, s2.horizon_hi)
                    .total();
    }
    if (f == 1.0) {
      sdem_base = e_sdem;
      mbkp_base = e_mbkp;
    }
    t.add_row({Table::fmt(f, 1), Table::fmt(e_sdem / kSeeds, 3),
               Table::fmt(100.0 * (e_sdem / sdem_base - 1.0), 2),
               Table::fmt(e_mbkp / kSeeds, 3),
               Table::fmt(100.0 * (e_mbkp / mbkp_base - 1.0), 2)});
  }
  print_table(t);
  return 0;
}
