// Extension: sensitivity to the whole-execution-access assumption.
//
// The schedulers plan assuming tasks touch DRAM throughout (the paper's
// model). If tasks actually access memory only during a prefix of each run
// (load phase), the realized memory busy time shrinks — this bench measures
// how much energy the conservative assumption leaves on the table, for both
// SDEM-ON and MBKP schedules, across access fractions.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "access_sensitivity"; this binary prints its default run (same
// bytes as the pre-registry standalone). `sdem_bench_runner --filter
// access_sensitivity` adds JSON output, seed/job control, and markdown.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("access_sensitivity"); }
