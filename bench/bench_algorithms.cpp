// google-benchmark microbenchmarks of the library's hot paths.
#include <benchmark/benchmark.h>

#include "core/agreeable.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/discrete_solver.hpp"
#include "core/discretize.hpp"
#include "core/islands.hpp"
#include "core/lower_bound.hpp"
#include "core/online_sdem.hpp"
#include "core/transition.hpp"
#include "baseline/mbkp.hpp"
#include "mem/contention.hpp"
#include "mem/dram.hpp"
#include "sched/energy.hpp"
#include "sim/event_sim.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sdem;

SystemConfig cfg_alpha0() {
  auto cfg = SystemConfig::paper_default_alpha0();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  return cfg;
}

SystemConfig cfg_alpha() {
  auto cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  return cfg;
}

void BM_CommonReleaseAlpha0(benchmark::State& state) {
  const auto ts = make_common_release(static_cast<int>(state.range(0)), 0.0, 7);
  const auto cfg = cfg_alpha0();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_common_release_alpha0(ts, cfg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CommonReleaseAlpha0)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_CommonReleaseAlpha0Binary(benchmark::State& state) {
  const auto ts = make_common_release(static_cast<int>(state.range(0)), 0.0, 7);
  const auto cfg = cfg_alpha0();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_common_release_alpha0_binary(ts, cfg));
  }
}
BENCHMARK(BM_CommonReleaseAlpha0Binary)->RangeMultiplier(4)->Range(16, 16384);

void BM_CommonReleaseAlpha(benchmark::State& state) {
  const auto ts = make_common_release(static_cast<int>(state.range(0)), 0.0, 7);
  const auto cfg = cfg_alpha();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_common_release_alpha(ts, cfg));
  }
}
BENCHMARK(BM_CommonReleaseAlpha)->RangeMultiplier(4)->Range(16, 16384);

void BM_Transition(benchmark::State& state) {
  const auto ts = make_common_release(static_cast<int>(state.range(0)), 0.0, 7);
  auto cfg = cfg_alpha();
  cfg.memory.xi_m = 0.040;
  cfg.core.xi = 0.002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_common_release_transition(ts, cfg));
  }
}
BENCHMARK(BM_Transition)->RangeMultiplier(4)->Range(16, 1024);

void BM_AgreeableDp(benchmark::State& state) {
  const auto ts = make_agreeable(static_cast<int>(state.range(0)), 7, 0.060);
  const auto cfg = cfg_alpha();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_agreeable(ts, cfg));
  }
}
BENCHMARK(BM_AgreeableDp)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

void BM_SdemOnSimulation(benchmark::State& state) {
  SyntheticParams p;
  p.num_tasks = static_cast<int>(state.range(0));
  p.max_interarrival = 0.200;
  const auto ts = make_synthetic(p, 3);
  auto cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;
  for (auto _ : state) {
    SdemOnPolicy pol;
    benchmark::DoNotOptimize(simulate(ts, cfg, pol));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SdemOnSimulation)->RangeMultiplier(2)->Range(32, 512)
    ->Unit(benchmark::kMillisecond);

void BM_MbkpSimulation(benchmark::State& state) {
  SyntheticParams p;
  p.num_tasks = static_cast<int>(state.range(0));
  p.max_interarrival = 0.200;
  const auto ts = make_synthetic(p, 3);
  auto cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;
  for (auto _ : state) {
    MbkpPolicy pol;
    benchmark::DoNotOptimize(simulate(ts, cfg, pol));
  }
}
BENCHMARK(BM_MbkpSimulation)->RangeMultiplier(2)->Range(32, 512)
    ->Unit(benchmark::kMillisecond);

void BM_BlockSolver(benchmark::State& state) {
  const auto ts = make_agreeable(static_cast<int>(state.range(0)), 7, 0.040);
  const auto cfg = cfg_alpha();
  const auto sorted = ts.sorted_by_deadline().tasks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_block(sorted, cfg));
  }
}
BENCHMARK(BM_BlockSolver)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

void BM_Discretize(benchmark::State& state) {
  const auto cfg = cfg_alpha();
  const auto ts = make_common_release(64, 0.0, 7);
  const auto res = solve_common_release_alpha(ts, cfg);
  const auto ladder = FrequencyLadder::a57_opps();
  for (auto _ : state) {
    benchmark::DoNotOptimize(discretize_schedule(res.schedule, ladder));
  }
}
BENCHMARK(BM_Discretize);

void BM_DiscreteSolver(benchmark::State& state) {
  const auto cfg = cfg_alpha();
  const auto ts = make_common_release(static_cast<int>(state.range(0)), 0.0, 7);
  const auto ladder = FrequencyLadder::a57_opps();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_common_release_discrete(ts, cfg, ladder));
  }
}
BENCHMARK(BM_DiscreteSolver)->RangeMultiplier(4)->Range(16, 1024);

void BM_IslandSolver(benchmark::State& state) {
  const auto cfg = cfg_alpha();
  const auto ts = make_common_release(static_cast<int>(state.range(0)), 0.0, 7);
  const auto assignment = assign_islands_similar_speed(ts, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_common_release_islands(ts, cfg, assignment));
  }
}
BENCHMARK(BM_IslandSolver)->RangeMultiplier(4)->Range(16, 1024);

void BM_DramReplay(benchmark::State& state) {
  auto cfg = SystemConfig::paper_default();
  SyntheticParams p;
  p.num_tasks = 256;
  const auto ts = make_synthetic(p, 3);
  SdemOnPolicy pol;
  const auto sim = simulate(ts, cfg, pol);
  const auto params = DramPowerParams::paper_50nm();
  for (auto _ : state) {
    OracleDramPolicy oracle;
    benchmark::DoNotOptimize(replay_dram(sim.schedule, params, oracle,
                                         sim.horizon_lo, sim.horizon_hi));
  }
}
BENCHMARK(BM_DramReplay);

void BM_ContentionProbe(benchmark::State& state) {
  auto cfg = SystemConfig::paper_default();
  SyntheticParams p;
  p.num_tasks = 128;
  const auto ts = make_synthetic(p, 3);
  MbkpPolicy pol;
  const auto sim = simulate(ts, cfg, pol);
  const ContentionParams cp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_contention(sim.schedule, cp));
  }
}
BENCHMARK(BM_ContentionProbe);

void BM_LowerBound(benchmark::State& state) {
  auto cfg = SystemConfig::paper_default();
  SyntheticParams p;
  p.num_tasks = static_cast<int>(state.range(0));
  const auto ts = make_synthetic(p, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower_bound_energy(ts, cfg));
  }
}
BENCHMARK(BM_LowerBound)->RangeMultiplier(4)->Range(64, 4096);

void BM_EnergyAccounting(benchmark::State& state) {
  SyntheticParams p;
  p.num_tasks = 256;
  const auto ts = make_synthetic(p, 3);
  auto cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;
  MbkpPolicy pol;
  const auto sim = simulate(ts, cfg, pol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_energy(sim.schedule, cfg));
  }
}
BENCHMARK(BM_EnergyAccounting);

}  // namespace

BENCHMARK_MAIN();
