// Theorem 1 demonstration: the bounded-core case is PARTITION in disguise.
//
// For common release/deadline tasks on C = 2 cores with alpha = 0, the
// optimal energy (Eq. 3) is minimized exactly by the workload-balanced
// split. This bench shows (a) the exact solver's cost exploding with n
// while the LPT heuristic stays cheap, and (b) how close LPT + local search
// gets to the balanced optimum — the practical answer to the hardness.
#include <chrono>

#include "bench_util.hpp"
#include "bounded/partition.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  auto cfg = paper_cfg();
  cfg.core.alpha = 0.0;
  cfg.core.s_up = 0.0;  // unconstrained, per the Theorem 1 setting
  const double deadline = 0.100;

  print_header("Theorem 1 — bounded cores reduce to PARTITION (C = 2)",
               "exact = meet-in-the-middle subset sums; LPT = longest-"
               "processing-time + pairwise local search");

  Table t({"n", "exact energy (J)", "LPT+LS (J)", "raw LPT gap %",
           "LPT+LS gap %", "exact time (ms)", "LPT time (ms)"});
  for (int n : {8, 12, 16, 20, 24, 28}) {
    const TaskSet ts = make_common_release(n, 0.0, 1234 + n, 2.0, 5.0,
                                           deadline, deadline);
    const auto t0 = std::chrono::steady_clock::now();
    const auto exact = solve_bounded_exact2(ts, cfg, deadline);
    const auto t1 = std::chrono::steady_clock::now();
    const auto lpt = solve_bounded_lpt(ts, cfg, deadline, 2);
    const auto t2 = std::chrono::steady_clock::now();
    const auto raw = solve_bounded_lpt(ts, cfg, deadline, 2,
                                       /*local_search=*/false);
    const double ms_exact =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double ms_lpt =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    t.add_row({std::to_string(n), Table::fmt(exact.energy, 6),
               Table::fmt(lpt.energy, 6),
               Table::fmt(100.0 * (raw.energy / exact.energy - 1.0), 4),
               Table::fmt(100.0 * (lpt.energy / exact.energy - 1.0), 4),
               Table::fmt(ms_exact, 3), Table::fmt(ms_lpt, 3)});
  }
  print_table(t);

  print_header("Theorem 1 — multiple cores (exact C^n vs LPT)",
               "small n only; the exact assignment space is C^n");
  Table t2({"n", "C", "exact (J)", "LPT (J)", "gap %"});
  for (int c : {2, 3, 4}) {
    const int n = 9;
    const TaskSet ts = make_common_release(n, 0.0, 777 + c, 2.0, 5.0,
                                           deadline, deadline);
    const auto exact = solve_bounded_exact(ts, cfg, deadline, c);
    const auto lpt = solve_bounded_lpt(ts, cfg, deadline, c);
    t2.add_row({std::to_string(n), std::to_string(c),
                Table::fmt(exact.energy, 6), Table::fmt(lpt.energy, 6),
                Table::fmt(100.0 * (lpt.energy / exact.energy - 1.0), 4)});
  }
  print_table(t2);
  return 0;
}
