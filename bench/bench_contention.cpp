// Assumption probe: what does SDEM-ON's alignment do to memory-controller
// contention? The paper assumes access delays are negligible (disjoint
// areas, bank parallelism) — true when the offered load stays far from
// saturation. Aligning executions concentrates that load: this bench
// reports the peak/mean controller utilization and M/D/1 queueing wait of
// each policy's schedule across utilizations.
#include "baseline/mbkp.hpp"
#include "bench_util.hpp"
#include "core/online_sdem.hpp"
#include "mem/contention.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto cfg = paper_cfg();
  ContentionParams cp;  // 8 banks, 50 ns service, 1 access / 500 cycles
  constexpr int kSeeds = 10;

  print_header("Assumption probe — controller contention under alignment",
               "fluid M/D/1 model, 8 banks, 50 ns service, 2000 accesses/Mc; "
               "peak u and mean wait per policy");

  Table t({"x (ms)", "SDEM-ON peak u", "MBKP peak u", "SDEM-ON wait (ns)",
           "MBKP wait (ns)", "saturated %"});
  for (int x = 100; x <= 800; x += 200) {
    double pu_s = 0, pu_m = 0, w_s = 0, w_m = 0, sat = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SyntheticParams p;
      p.num_tasks = 120;
      p.max_interarrival = x / 1000.0;
      const TaskSet ts = make_synthetic(p, seed * 211 + x);
      SdemOnPolicy sdem;
      MbkpPolicy mbkp;
      const auto a = analyze_contention(simulate(ts, cfg, sdem).schedule, cp);
      const auto b = analyze_contention(simulate(ts, cfg, mbkp).schedule, cp);
      pu_s += a.peak_utilization;
      pu_m += b.peak_utilization;
      w_s += a.mean_wait;
      w_m += b.mean_wait;
      sat += a.saturated_fraction;
    }
    t.add_row({std::to_string(x), Table::fmt(pu_s / kSeeds, 4),
               Table::fmt(pu_m / kSeeds, 4),
               Table::fmt(1e9 * w_s / kSeeds, 2),
               Table::fmt(1e9 * w_m / kSeeds, 2),
               Table::fmt(100.0 * sat / kSeeds, 2)});
  }
  print_table(t);
  std::printf("alignment concentrates accesses: higher peaks, but far from "
              "saturation at these parameters —\nthe paper's negligible-"
              "delay assumption survives its own scheduler.\n");
  return 0;
}
