// Assumption probe: what does SDEM-ON's alignment do to memory-controller
// contention? The paper assumes access delays are negligible (disjoint
// areas, bank parallelism) — true when the offered load stays far from
// saturation. Aligning executions concentrates that load: this bench
// reports the peak/mean controller utilization and M/D/1 queueing wait of
// each policy's schedule across utilizations.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "contention"; this binary prints its default run (same bytes
// as the pre-registry standalone). `sdem_bench_runner --filter contention`
// adds JSON output, seed/job control, and markdown rendering.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("contention"); }
