// Substrate validation: the paper's (alpha_m, xi_m) memory abstraction vs
// the DRAM power-state machine (active / power-down / self-refresh with
// real exit latencies), replayed on the actual SDEM-ON and MBKP schedules.
//
// Reports the abstraction error per utilization point — small when gaps are
// either tiny (everything stays active) or long (self refresh dominates),
// largest in the mid-gap band where the machine uses power-down, a state
// the two-level abstraction cannot express.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "dram_abstraction"; this binary prints its default run (same
// bytes as the pre-registry standalone). `sdem_bench_runner --filter
// dram_abstraction` adds JSON output, seed/job control, and markdown.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("dram_abstraction"); }
