// Substrate validation: the paper's (alpha_m, xi_m) memory abstraction vs
// the DRAM power-state machine (active / power-down / self-refresh with
// real exit latencies), replayed on the actual SDEM-ON and MBKP schedules.
//
// Reports the abstraction error per utilization point — small when gaps are
// either tiny (everything stays active) or long (self refresh dominates),
// largest in the mid-gap band where the machine uses power-down, a state
// the two-level abstraction cannot express.
#include "baseline/mbkp.hpp"
#include "bench_util.hpp"
#include "core/online_sdem.hpp"
#include "mem/dram.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto dram = DramPowerParams::paper_50nm();
  const auto abs = abstraction_for(dram);
  auto cfg = paper_cfg();
  cfg.memory.alpha_m = abs.alpha_m;
  cfg.memory.xi_m = abs.xi_m;
  constexpr int kSeeds = 10;

  print_header("Substrate — DRAM state machine vs the paper's abstraction",
               "machine: active 4.25 W / power-down 1.4 W / self-refresh "
               "0.25 W; abstraction: alpha_m = " + Table::fmt(abs.alpha_m, 2) +
                   " W, xi_m = " + Table::fmt(abs.xi_m * 1e3, 0) + " ms");

  Table t({"x (ms)", "SDEM-ON machine (J)", "SDEM-ON abstract (J)", "err %",
           "naps/sleeps"});
  for (int x = 100; x <= 800; x += 100) {
    double machine = 0.0, abstract = 0.0;
    int naps = 0, sleeps = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SyntheticParams p;
      p.num_tasks = 120;
      p.max_interarrival = x / 1000.0;
      const TaskSet ts = make_synthetic(p, seed * 53 + x);
      SdemOnPolicy pol;
      const SimResult sim = simulate(ts, cfg, pol);
      OracleDramPolicy oracle;
      const auto r =
          replay_dram(sim.schedule, dram, oracle, sim.horizon_lo,
                      sim.horizon_hi);
      machine += r.total();
      naps += r.powerdown_cycles;
      sleeps += r.selfrefresh_cycles;
      const auto ev =
          evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "sdem");
      abstract += ev.energy.memory_total() +
                  abs.floor_power * (sim.horizon_hi - sim.horizon_lo);
    }
    t.add_row({std::to_string(x), Table::fmt(machine / kSeeds, 3),
               Table::fmt(abstract / kSeeds, 3),
               Table::fmt(100.0 * (abstract - machine) / machine, 2),
               std::to_string(naps / kSeeds) + "/" +
                   std::to_string(sleeps / kSeeds)});
  }
  print_table(t);
  std::printf("positive err %% = the abstraction over-charges (machine finds "
              "cheaper shallow states).\n");
  return 0;
}
