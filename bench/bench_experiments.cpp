// The registered experiments: each body is the sweep that used to live in
// the corresponding standalone bench main, with the seed loop routed
// through collect_seed_comparisons (pooled) and a JSON payload added next
// to the legacy tables. Arithmetic, seed derivation, and fold order are
// kept exactly as the standalone mains had them, so the printed tables are
// byte-identical and the JSON per-seed numbers are bit-identical between
// --jobs 1 and --jobs N (see tests/test_figures.cpp and the determinism
// smoke in docs/benchmarks.md).
#include "bench_registry.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace sdem::bench {
namespace {

// ---------------------------------------------------------------- Fig. 6a/6b

// Shared DSPstone sweep over U in [2, 9]; `memory` selects the Fig. 6a
// (memory-only savings) vs Fig. 6b (system-wide savings) columns.
ExperimentResult run_fig6(const RunOptions& opt, bool memory) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kTasks = 160;

  ExperimentResult r;
  if (memory) {
    r.header_title = "Fig 6a — memory static energy saving vs U (DSPstone)";
    r.header_what =
        "saving(X) = (E_mem(MBKP) - E_mem(X)) / E_mem(MBKP); " +
        std::to_string(seeds) + " seeds x " + std::to_string(kTasks) +
        " task instances; alpha_m=4W, xi_m=40ms, 8 cores";
  } else {
    r.header_title = "Fig 6b — system-wide energy saving vs U (DSPstone)";
    r.header_what = "saving(X) = (E_sys(MBKP) - E_sys(X)) / E_sys(MBKP); " +
                    std::to_string(seeds) + " seeds x " +
                    std::to_string(kTasks) + " instances; paper defaults";
  }

  Table t(memory
              ? std::vector<std::string>{"U", "MBKPS mem saving %",
                                         "SDEM-ON mem saving %",
                                         "SDEM-ON - MBKPS (pp)"}
              : std::vector<std::string>{"U", "MBKPS saving %",
                                         "SDEM-ON saving %",
                                         "SDEM-ON - MBKPS (pp)"});
  Json rows = Json::array();
  double sum_gap = 0.0;
  for (int u = 2; u <= 9; ++u) {
    const auto per_seed = collect_seed_comparisons(
        [&](std::uint64_t seed) {
          DspstoneParams p;
          p.num_tasks = kTasks;
          p.utilization_u = static_cast<double>(u);
          return make_dspstone(p, seed * 977 + u);
        },
        cfg, seeds, opt.pool);
    const SavingStats st = to_saving_stats(per_seed);
    const Stats& s_col = memory ? st.sdem_memory : st.sdem_system;
    const Stats& m_col = memory ? st.mbkps_memory : st.mbkps_system;
    sum_gap += s_col.mean() - m_col.mean();
    t.add_row({std::to_string(u), pct(m_col), pct(s_col),
               Table::fmt(100.0 * (s_col.mean() - m_col.mean()), 2)});

    Json row = Json::object();
    row.set("u", u);
    row.set("mbkps_saving_pct", 100.0 * m_col.mean());
    row.set("mbkps_sem_pct", 100.0 * m_col.sem());
    row.set("sdem_saving_pct", 100.0 * s_col.mean());
    row.set("sdem_sem_pct", 100.0 * s_col.sem());
    row.set("gap_pp", 100.0 * (s_col.mean() - m_col.mean()));
    attach_seeds(row, per_seed, &r.solver_seconds_total);
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));
  const double avg_gap = 100.0 * sum_gap / 8.0;
  r.footers.push_back(
      memory ? strf("average SDEM-ON memory saving over MBKPS: %.2f pp "
                    "(paper: ~10.02%%)",
                    avg_gap)
             : strf("average SDEM-ON system saving over MBKPS: %.2f pp "
                    "(paper: ~23.45%%)",
                    avg_gap));

  Json params = Json::object();
  params.set("workload", "dspstone");
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  params.set("saving_component", memory ? "memory" : "system");
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  r.data.set("average_gap_pp", avg_gap);
  return r;
}

// ---------------------------------------------------------------- Fig. 7a/7b

// Shared synthetic-task improvement grid over `x`; rows sweep alpha_m
// (Fig. 7a) or xi_m (Fig. 7b).
ExperimentResult run_fig7(const RunOptions& opt, bool sweep_alpham) {
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kTasks = 120;

  ExperimentResult r;
  if (sweep_alpham) {
    r.header_title =
        "Fig 7a — saving improvement (SDEM-ON - MBKPS) over alpha_m x x";
    r.header_what =
        "synthetic tasks (w in [2,5] Mc, regions [10,120] ms); entries are "
        "percentage points of system-wide saving vs MBKP; xi_m = 40 ms";
  } else {
    r.header_title =
        "Fig 7b — saving improvement (SDEM-ON - MBKPS) over xi_m x x";
    r.header_what =
        "synthetic tasks; entries are percentage points of system-wide saving "
        "vs MBKP; alpha_m = 4 W";
  }

  const std::vector<int> levels =
      sweep_alpham ? std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}
                   : std::vector<int>{15, 20, 25, 30, 40, 50, 60, 70};
  std::vector<std::string> header{sweep_alpham ? "alpha_m \\ x(ms)"
                                               : "xi_m \\ x(ms)"};
  for (int x = 100; x <= 800; x += 100) header.push_back(std::to_string(x));
  Table t(std::move(header));

  Json rows = Json::array();
  double sum = 0.0;
  int cells = 0;
  for (int level : levels) {
    auto cfg = paper_cfg();
    if (sweep_alpham)
      cfg.memory.alpha_m = static_cast<double>(level);
    else
      cfg.memory.xi_m = level / 1000.0;
    std::vector<std::string> row{std::to_string(level) +
                                 (sweep_alpham ? " W" : " ms")};
    for (int x = 100; x <= 800; x += 100) {
      const auto per_seed = collect_seed_comparisons(
          [&](std::uint64_t seed) {
            SyntheticParams p;
            p.num_tasks = kTasks;
            p.max_interarrival = x / 1000.0;
            return make_synthetic(p, sweep_alpham
                                         ? seed * 10007 + level * 31 + x
                                         : seed * 7717 + level * 13 + x);
          },
          cfg, seeds, opt.pool);
      double s_sys = 0, m_sys = 0;
      for (const SeedComparison& sc : per_seed) {
        s_sys += sc.sdem_system;
        m_sys += sc.mbkps_system;
      }
      s_sys /= seeds;
      m_sys /= seeds;
      const double imp = 100.0 * (s_sys - m_sys);
      sum += imp;
      ++cells;
      row.push_back(Table::fmt(imp, 2));

      Json cell = Json::object();
      cell.set(sweep_alpham ? "alpha_m_w" : "xi_m_ms", level);
      cell.set("x_ms", x);
      cell.set("sdem_system_saving_pct", 100.0 * s_sys);
      cell.set("mbkps_system_saving_pct", 100.0 * m_sys);
      cell.set("improvement_pp", imp);
      attach_seeds(cell, per_seed, &r.solver_seconds_total);
      rows.push_back(std::move(cell));
    }
    t.add_row(std::move(row));
  }
  r.tables.push_back(std::move(t));
  r.footers.push_back(strf("average improvement: %.2f pp (paper: ~%s%%)",
                           sum / cells, sweep_alpham ? "9.74" : "10.52"));

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  params.set(sweep_alpham ? "alpha_m_w" : "xi_m_ms", [&] {
    Json arr = Json::array();
    for (int level : levels) arr.push_back(level);
    return arr;
  }());
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  r.data.set("average_improvement_pp", sum / cells);
  return r;
}

// ----------------------------------------------------------------- Table 4

ExperimentResult run_table4(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;

  ExperimentResult r;
  r.header_title = "Table 4 — parameter grid and the default operating point";
  r.header_what = "* marks the default used when sweeping other parameters";

  {
    Table t({"point", "1", "2", "3", "4", "5", "6", "7", "8"});
    t.add_row({"x (ms)", "100", "200", "300", "400*", "500", "600", "700",
               "800"});
    t.add_row({"alpha_m (W)", "1", "2", "3", "4*", "5", "6", "7", "8"});
    t.add_row({"xi_m (ms)", "15", "20", "25", "30", "40*", "50", "60", "70"});
    r.tables.push_back(std::move(t));
  }

  const auto per_seed = collect_seed_comparisons(
      [&](std::uint64_t seed) {
        SyntheticParams p;
        p.num_tasks = 120;
        p.max_interarrival = 0.400;
        return make_synthetic(p, seed * 97);
      },
      cfg, seeds, opt.pool);
  double e_mbkp = 0, e_mbkps = 0, e_sdem = 0, sleep_sdem = 0, sleep_mbkps = 0;
  for (const SeedComparison& sc : per_seed) {
    e_mbkp += sc.energy_mbkp;
    e_mbkps += sc.energy_mbkps;
    e_sdem += sc.energy_sdem;
    sleep_sdem += sc.sleep_sdem;
    sleep_mbkps += sc.sleep_mbkps;
  }
  Table t({"metric", "MBKP", "MBKPS", "SDEM-ON"});
  t.add_row({"system energy (J, avg)", Table::fmt(e_mbkp / seeds, 4),
             Table::fmt(e_mbkps / seeds, 4), Table::fmt(e_sdem / seeds, 4)});
  t.add_row({"saving vs MBKP (%)", "0.00",
             Table::fmt(100.0 * (e_mbkp - e_mbkps) / e_mbkp, 2),
             Table::fmt(100.0 * (e_mbkp - e_sdem) / e_mbkp, 2)});
  t.add_row({"memory sleep (s, avg)", "0.0000",
             Table::fmt(sleep_mbkps / seeds, 4),
             Table::fmt(sleep_sdem / seeds, 4)});
  r.tables.push_back(std::move(t));

  Json anchor = Json::object();
  anchor.set("seeds", seeds);
  anchor.set("tasks", 120);
  anchor.set("x_ms", 400);
  anchor.set("energy_mbkp_j_avg", e_mbkp / seeds);
  anchor.set("energy_mbkps_j_avg", e_mbkps / seeds);
  anchor.set("energy_sdem_j_avg", e_sdem / seeds);
  anchor.set("mbkps_saving_pct", 100.0 * (e_mbkp - e_mbkps) / e_mbkp);
  anchor.set("sdem_saving_pct", 100.0 * (e_mbkp - e_sdem) / e_mbkp);
  anchor.set("memory_sleep_mbkps_s_avg", sleep_mbkps / seeds);
  anchor.set("memory_sleep_sdem_s_avg", sleep_sdem / seeds);
  attach_seeds(anchor, per_seed, &r.solver_seconds_total);

  Json grid = Json::object();
  const auto int_array = [](std::initializer_list<int> xs) {
    Json arr = Json::array();
    for (int x : xs) arr.push_back(x);
    return arr;
  };
  grid.set("x_ms", int_array({100, 200, 300, 400, 500, 600, 700, 800}));
  grid.set("alpha_m_w", int_array({1, 2, 3, 4, 5, 6, 7, 8}));
  grid.set("xi_m_ms", int_array({15, 20, 25, 30, 40, 50, 60, 70}));
  Json defaults = Json::object();
  defaults.set("x_ms", 400);
  defaults.set("alpha_m_w", 4);
  defaults.set("xi_m_ms", 40);
  grid.set("defaults", std::move(defaults));

  r.data = Json::object();
  r.data.set("grid", std::move(grid));
  r.data.set("anchor", std::move(anchor));
  return r;
}

}  // namespace

void register_all_experiments(std::vector<Experiment>& out) {
  out.push_back({"fig6a", "Fig. 6a", "bench_fig6a_memory_saving",
                 "memory static-energy saving vs U (DSPstone)", 10,
                 [](const RunOptions& o) { return run_fig6(o, true); }});
  out.push_back({"fig6b", "Fig. 6b", "bench_fig6b_system_saving",
                 "system-wide energy saving vs U (DSPstone)", 10,
                 [](const RunOptions& o) { return run_fig6(o, false); }});
  out.push_back({"fig7a", "Fig. 7a", "bench_fig7a_alpham_sweep",
                 "saving improvement over alpha_m x x (synthetic)", 10,
                 [](const RunOptions& o) { return run_fig7(o, true); }});
  out.push_back({"fig7b", "Fig. 7b", "bench_fig7b_xim_sweep",
                 "saving improvement over xi_m x x (synthetic)", 10,
                 [](const RunOptions& o) { return run_fig7(o, false); }});
  out.push_back({"table4", "Table 4", "bench_table4_grid",
                 "parameter grid and the default operating point", 10,
                 [](const RunOptions& o) { return run_table4(o); }});
}

}  // namespace sdem::bench
