// The registered experiments: each body is the sweep that used to live in
// the corresponding standalone bench main, with the seed loop routed
// through collect_seed_comparisons (pooled) and a JSON payload added next
// to the legacy tables. Arithmetic, seed derivation, and fold order are
// kept exactly as the standalone mains had them, so the printed tables are
// byte-identical and the JSON per-seed numbers are bit-identical between
// --jobs 1 and --jobs N (see tests/test_figures.cpp and the determinism
// smoke in docs/benchmarks.md).
#include <atomic>
#include <chrono>

#include <map>
#include <memory>
#include <thread>

#include "baseline/mbkp.hpp"
#include "baseline/simple_policies.hpp"
#include "bench_registry.hpp"
#include "core/agreeable.hpp"
#include "core/block.hpp"
#include "core/discrete_solver.hpp"
#include "core/discretize.hpp"
#include "core/islands.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/online_sdem.hpp"
#include "mem/contention.hpp"
#include "service/service.hpp"
#include "mem/dram.hpp"
#include "mem/ranks.hpp"
#include "model/access.hpp"
#include "sched/energy.hpp"
#include "sim/event_sim.hpp"
#include "sim/governor.hpp"
#include "single/sss.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace sdem::bench {
namespace {

// ---------------------------------------------------------------- Fig. 6a/6b

// Shared DSPstone sweep over U in [2, 9]; `memory` selects the Fig. 6a
// (memory-only savings) vs Fig. 6b (system-wide savings) columns.
ExperimentResult run_fig6(const RunOptions& opt, bool memory) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kTasks = 160;

  ExperimentResult r;
  if (memory) {
    r.header_title = "Fig 6a — memory static energy saving vs U (DSPstone)";
    r.header_what =
        "saving(X) = (E_mem(MBKP) - E_mem(X)) / E_mem(MBKP); " +
        std::to_string(seeds) + " seeds x " + std::to_string(kTasks) +
        " task instances; alpha_m=4W, xi_m=40ms, 8 cores";
  } else {
    r.header_title = "Fig 6b — system-wide energy saving vs U (DSPstone)";
    r.header_what = "saving(X) = (E_sys(MBKP) - E_sys(X)) / E_sys(MBKP); " +
                    std::to_string(seeds) + " seeds x " +
                    std::to_string(kTasks) + " instances; paper defaults";
  }

  Table t(memory
              ? std::vector<std::string>{"U", "MBKPS mem saving %",
                                         "SDEM-ON mem saving %",
                                         "SDEM-ON - MBKPS (pp)"}
              : std::vector<std::string>{"U", "MBKPS saving %",
                                         "SDEM-ON saving %",
                                         "SDEM-ON - MBKPS (pp)"});
  // All 8 U points x seeds flood the pool as one grid; folds below walk the
  // points in order, so output is byte-identical to the per-point loop.
  const auto grid = collect_grid_comparisons(
      [&](std::size_t pi, std::uint64_t seed) {
        const int u = 2 + static_cast<int>(pi);
        DspstoneParams p;
        p.num_tasks = kTasks;
        p.utilization_u = static_cast<double>(u);
        return make_dspstone(p, seed * 977 + u);
      },
      [&](std::size_t) -> const SystemConfig& { return cfg; }, 8, seeds,
      opt.pool, opt.tile);

  Json rows = Json::array();
  double sum_gap = 0.0;
  for (int u = 2; u <= 9; ++u) {
    const auto& per_seed = grid[static_cast<std::size_t>(u - 2)];
    const SavingStats st = to_saving_stats(per_seed);
    const Stats& s_col = memory ? st.sdem_memory : st.sdem_system;
    const Stats& m_col = memory ? st.mbkps_memory : st.mbkps_system;
    sum_gap += s_col.mean() - m_col.mean();
    t.add_row({std::to_string(u), pct(m_col), pct(s_col),
               Table::fmt(100.0 * (s_col.mean() - m_col.mean()), 2)});

    Json row = Json::object();
    row.set("u", u);
    row.set("mbkps_saving_pct", 100.0 * m_col.mean());
    row.set("mbkps_sem_pct", 100.0 * m_col.sem());
    row.set("sdem_saving_pct", 100.0 * s_col.mean());
    row.set("sdem_sem_pct", 100.0 * s_col.sem());
    row.set("gap_pp", 100.0 * (s_col.mean() - m_col.mean()));
    attach_seeds(row, per_seed, &r.solver_seconds_total);
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));
  const double avg_gap = 100.0 * sum_gap / 8.0;
  r.footers.push_back(
      memory ? strf("average SDEM-ON memory saving over MBKPS: %.2f pp "
                    "(paper: ~10.02%%)",
                    avg_gap)
             : strf("average SDEM-ON system saving over MBKPS: %.2f pp "
                    "(paper: ~23.45%%)",
                    avg_gap));

  Json params = Json::object();
  params.set("workload", "dspstone");
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  params.set("saving_component", memory ? "memory" : "system");
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  r.data.set("average_gap_pp", avg_gap);
  return r;
}

// ---------------------------------------------------------------- Fig. 7a/7b

// Shared synthetic-task improvement grid over `x`; rows sweep alpha_m
// (Fig. 7a) or xi_m (Fig. 7b).
ExperimentResult run_fig7(const RunOptions& opt, bool sweep_alpham) {
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kTasks = 120;

  ExperimentResult r;
  if (sweep_alpham) {
    r.header_title =
        "Fig 7a — saving improvement (SDEM-ON - MBKPS) over alpha_m x x";
    r.header_what =
        "synthetic tasks (w in [2,5] Mc, regions [10,120] ms); entries are "
        "percentage points of system-wide saving vs MBKP; xi_m = 40 ms";
  } else {
    r.header_title =
        "Fig 7b — saving improvement (SDEM-ON - MBKPS) over xi_m x x";
    r.header_what =
        "synthetic tasks; entries are percentage points of system-wide saving "
        "vs MBKP; alpha_m = 4 W";
  }

  const std::vector<int> levels =
      sweep_alpham ? std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}
                   : std::vector<int>{15, 20, 25, 30, 40, 50, 60, 70};
  std::vector<std::string> header{sweep_alpham ? "alpha_m \\ x(ms)"
                                               : "xi_m \\ x(ms)"};
  for (int x = 100; x <= 800; x += 100) header.push_back(std::to_string(x));
  Table t(std::move(header));

  // One level-major grid of all 64 (level, x) cells x seeds: the whole
  // sweep occupies the pool even at --seeds 2. Per-cell math and the fold
  // order below are unchanged, so tables and JSON stay byte-identical.
  std::vector<SystemConfig> cfgs;
  cfgs.reserve(levels.size());
  for (int level : levels) {
    auto cfg = paper_cfg();
    if (sweep_alpham)
      cfg.memory.alpha_m = static_cast<double>(level);
    else
      cfg.memory.xi_m = level / 1000.0;
    cfgs.push_back(cfg);
  }
  const auto grid = collect_grid_comparisons(
      [&](std::size_t pi, std::uint64_t seed) {
        const int level = levels[pi / 8];
        const int x = 100 + static_cast<int>(pi % 8) * 100;
        SyntheticParams p;
        p.num_tasks = kTasks;
        p.max_interarrival = x / 1000.0;
        return make_synthetic(p, sweep_alpham ? seed * 10007 + level * 31 + x
                                              : seed * 7717 + level * 13 + x);
      },
      [&](std::size_t pi) -> const SystemConfig& { return cfgs[pi / 8]; },
      static_cast<int>(levels.size()) * 8, seeds, opt.pool, opt.tile);

  Json rows = Json::array();
  double sum = 0.0;
  int cells = 0;
  for (std::size_t li = 0; li < levels.size(); ++li) {
    const int level = levels[li];
    std::vector<std::string> row{std::to_string(level) +
                                 (sweep_alpham ? " W" : " ms")};
    for (int x = 100; x <= 800; x += 100) {
      const auto& per_seed = grid[li * 8 + static_cast<std::size_t>(x / 100 - 1)];
      double s_sys = 0, m_sys = 0;
      for (const SeedComparison& sc : per_seed) {
        s_sys += sc.sdem_system;
        m_sys += sc.mbkps_system;
      }
      s_sys /= seeds;
      m_sys /= seeds;
      const double imp = 100.0 * (s_sys - m_sys);
      sum += imp;
      ++cells;
      row.push_back(Table::fmt(imp, 2));

      Json cell = Json::object();
      cell.set(sweep_alpham ? "alpha_m_w" : "xi_m_ms", level);
      cell.set("x_ms", x);
      cell.set("sdem_system_saving_pct", 100.0 * s_sys);
      cell.set("mbkps_system_saving_pct", 100.0 * m_sys);
      cell.set("improvement_pp", imp);
      attach_seeds(cell, per_seed, &r.solver_seconds_total);
      rows.push_back(std::move(cell));
    }
    t.add_row(std::move(row));
  }
  r.tables.push_back(std::move(t));
  r.footers.push_back(strf("average improvement: %.2f pp (paper: ~%s%%)",
                           sum / cells, sweep_alpham ? "9.74" : "10.52"));

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  params.set(sweep_alpham ? "alpha_m_w" : "xi_m_ms", [&] {
    Json arr = Json::array();
    for (int level : levels) arr.push_back(level);
    return arr;
  }());
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  r.data.set("average_improvement_pp", sum / cells);
  return r;
}

// ----------------------------------------------------------------- Table 4

ExperimentResult run_table4(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;

  ExperimentResult r;
  r.header_title = "Table 4 — parameter grid and the default operating point";
  r.header_what = "* marks the default used when sweeping other parameters";

  {
    Table t({"point", "1", "2", "3", "4", "5", "6", "7", "8"});
    t.add_row({"x (ms)", "100", "200", "300", "400*", "500", "600", "700",
               "800"});
    t.add_row({"alpha_m (W)", "1", "2", "3", "4*", "5", "6", "7", "8"});
    t.add_row({"xi_m (ms)", "15", "20", "25", "30", "40*", "50", "60", "70"});
    r.tables.push_back(std::move(t));
  }

  const auto per_seed = collect_seed_comparisons(
      [&](std::uint64_t seed) {
        SyntheticParams p;
        p.num_tasks = 120;
        p.max_interarrival = 0.400;
        return make_synthetic(p, seed * 97);
      },
      cfg, seeds, opt.pool);
  double e_mbkp = 0, e_mbkps = 0, e_sdem = 0, sleep_sdem = 0, sleep_mbkps = 0;
  for (const SeedComparison& sc : per_seed) {
    e_mbkp += sc.energy_mbkp;
    e_mbkps += sc.energy_mbkps;
    e_sdem += sc.energy_sdem;
    sleep_sdem += sc.sleep_sdem;
    sleep_mbkps += sc.sleep_mbkps;
  }
  Table t({"metric", "MBKP", "MBKPS", "SDEM-ON"});
  t.add_row({"system energy (J, avg)", Table::fmt(e_sdem / seeds, 4),
             Table::fmt(e_mbkps / seeds, 4), Table::fmt(e_sdem / seeds, 4)});
  t.add_row({"saving vs MBKP (%)", "0.00",
             Table::fmt(100.0 * (e_mbkp - e_mbkps) / e_mbkp, 2),
             Table::fmt(100.0 * (e_mbkp - e_sdem) / e_mbkp, 2)});
  t.add_row({"memory sleep (s, avg)", "0.0000",
             Table::fmt(sleep_mbkps / seeds, 4),
             Table::fmt(sleep_sdem / seeds, 4)});
  r.tables.push_back(std::move(t));

  Json anchor = Json::object();
  anchor.set("seeds", seeds);
  anchor.set("tasks", 120);
  anchor.set("x_ms", 400);
  anchor.set("energy_mbkp_j_avg", e_mbkp / seeds);
  anchor.set("energy_mbkps_j_avg", e_mbkps / seeds);
  anchor.set("energy_sdem_j_avg", e_sdem / seeds);
  anchor.set("mbkps_saving_pct", 100.0 * (e_mbkp - e_mbkps) / e_mbkp);
  anchor.set("sdem_saving_pct", 100.0 * (e_mbkp - e_sdem) / e_mbkp);
  anchor.set("memory_sleep_mbkps_s_avg", sleep_mbkps / seeds);
  anchor.set("memory_sleep_sdem_s_avg", sleep_sdem / seeds);
  attach_seeds(anchor, per_seed, &r.solver_seconds_total);

  Json grid = Json::object();
  const auto int_array = [](std::initializer_list<int> xs) {
    Json arr = Json::array();
    for (int x : xs) arr.push_back(x);
    return arr;
  };
  grid.set("x_ms", int_array({100, 200, 300, 400, 500, 600, 700, 800}));
  grid.set("alpha_m_w", int_array({1, 2, 3, 4, 5, 6, 7, 8}));
  grid.set("xi_m_ms", int_array({15, 20, 25, 30, 40, 50, 60, 70}));
  Json defaults = Json::object();
  defaults.set("x_ms", 400);
  defaults.set("alpha_m_w", 4);
  defaults.set("xi_m_ms", 40);
  grid.set("defaults", std::move(defaults));

  r.data = Json::object();
  r.data.set("grid", std::move(grid));
  r.data.set("anchor", std::move(anchor));
  return r;
}

// ----------------------------------------------------------------- Table 1

/// Best-of-`reps` wall time of f, in ms (the standalone bench's time_ms).
template <typename F>
double time_best_ms(F&& f, int reps) {
  double best = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// Runtime scaling of every scheme; the JSON keeps the full-precision wall
// times (they are the payload, so --stable does not strip them) plus the
// implemented-complexity labels docs/performance.md tabulates. Timings in
// the tables come from serial solves (comparable across machines and to the
// pre-incremental baseline); the agreeable rows additionally record the
// pool-parallel block-table fill in the JSON.
ExperimentResult run_table1(const RunOptions& opt) {
  ExperimentResult r;
  r.header_title = "Table 1 — runtime scaling of the SDEM schemes";
  r.header_what = "best-of-3 wall times (ms); doubling n shows the growth rate";

  Json common = Json::array();
  {
    Table t({"n", "common-release a=0 scan", "a=0 binary", "a!=0 scan"});
    auto cfg = paper_cfg();
    cfg.memory.xi_m = 0.0;
    for (int n : {1000, 2000, 4000, 8000, 16000, 32000}) {
      const TaskSet ts = make_common_release(n, 0.0, 42);
      const double scan =
          time_best_ms([&] { solve_common_release_alpha0(ts, cfg); }, 3);
      const double bin =
          time_best_ms([&] { solve_common_release_alpha0_binary(ts, cfg); }, 3);
      auto cfg_a = cfg;
      cfg_a.core.alpha = 0.31;
      const double alpha =
          time_best_ms([&] { solve_common_release_alpha(ts, cfg_a); }, 3);
      t.add_row({std::to_string(n), Table::fmt(scan, 3), Table::fmt(bin, 3),
                 Table::fmt(alpha, 3)});
      Json row = Json::object();
      row.set("n", n);
      row.set("scan_ms", scan);
      row.set("binary_ms", bin);
      row.set("alpha_scan_ms", alpha);
      common.push_back(std::move(row));
    }
    r.tables.push_back(std::move(t));
  }

  Json agreeable = Json::array();
  {
    Table t({"n", "agreeable DP a=0 (ms)", "agreeable DP a!=0 (ms)"});
    for (int n : {4, 6, 8, 10, 12}) {
      const TaskSet ts = make_agreeable(n, 7, 0.060);
      auto cfg0 = paper_cfg();
      cfg0.core.alpha = 0.0;
      cfg0.memory.xi_m = 0.0;
      auto cfga = paper_cfg();
      cfga.memory.xi_m = 0.0;
      const double t0 = time_best_ms([&] { solve_agreeable(ts, cfg0); }, 1);
      const double ta = time_best_ms([&] { solve_agreeable(ts, cfga); }, 1);
      t.add_row({std::to_string(n), Table::fmt(t0, 2), Table::fmt(ta, 2)});
      Json row = Json::object();
      row.set("n", n);
      row.set("dp_alpha0_ms", t0);
      row.set("dp_alpha_ms", ta);
      if (opt.pool != nullptr) {
        row.set("dp_alpha0_pooled_ms", time_best_ms([&] {
                  solve_agreeable(ts, cfg0, opt.pool);
                }, 1));
        row.set("dp_alpha_pooled_ms", time_best_ms([&] {
                  solve_agreeable(ts, cfga, opt.pool);
                }, 1));
      }
      agreeable.push_back(std::move(row));
    }
    r.tables.push_back(std::move(t));
  }

  Json online = Json::array();
  {
    Table t({"tasks", "SDEM-ON full simulation (ms)", "replans"});
    for (int n : {100, 200, 400, 800}) {
      SyntheticParams p;
      p.num_tasks = n;
      p.max_interarrival = 0.200;
      const TaskSet ts = make_synthetic(p, 3);
      SdemOnPolicy pol;
      SimResult res;
      const double ms =
          time_best_ms([&] { res = simulate(ts, paper_cfg(), pol); }, 1);
      t.add_row({std::to_string(n), Table::fmt(ms, 2),
                 std::to_string(res.replans)});
      Json row = Json::object();
      row.set("tasks", n);
      row.set("sim_ms", ms);
      row.set("replans", res.replans);
      online.push_back(std::move(row));
    }
    r.tables.push_back(std::move(t));
  }

  Json complexity = Json::object();
  complexity.set("common_release_alpha0", "O(n log n) sort + O(n) scan");
  complexity.set("common_release_alpha0_binary", "O(n log n)");
  complexity.set("common_release_alpha",
                 "O(n log n) (paper: O(n^2); suffix sums here)");
  complexity.set("agreeable_dp",
                 "O(n^2) incremental block table x O(k) boxes/row "
                 "(paper: O(n^4+n^2) / O(n^5+n^2); was per-pair re-solve)");
  complexity.set("online_sdem", "one Section 4 solve per arrival");

  r.data = Json::object();
  r.data.set("common_release", std::move(common));
  r.data.set("agreeable_dp", std::move(agreeable));
  r.data.set("online_sim", std::move(online));
  r.data.set("implemented_complexity", std::move(complexity));
  return r;
}

// ---------------------------------------------------------- Blocks ablation

// Section 5 block DP vs the two degenerate partitions, spread x seed grid.
// Each cell (spread, seed) is independent — parallel_for_grid spreads them
// across the pool; folds below run in the standalone's spread-major,
// seed-ascending order, so tables stay byte-identical to the legacy bench.
ExperimentResult run_ablation_blocks(const RunOptions& opt) {
  auto cfg = paper_cfg();
  cfg.memory.xi_m = 0.0;
  constexpr int kN = 8;
  const int seeds = opt.seeds > 0 ? opt.seeds : 8;
  const std::vector<double> spreads{0.005, 0.020, 0.050, 0.100, 0.200, 0.400};

  ExperimentResult r;
  r.header_title = "Ablation — Section 5 block DP vs degenerate partitions";
  r.header_what = "agreeable sets, n = 8; spread = max inter-arrival (s)";

  struct Cell {
    double dp = 0.0, one = 0.0, each = 0.0;
    int blocks = 0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(spreads.size() * static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, static_cast<int>(spreads.size()), seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const double spread = spreads[pi];
        const auto t0 = std::chrono::steady_clock::now();
        const TaskSet ts =
            make_agreeable(kN, seed * 131 + int(spread * 1e4), spread);
        const auto dp = solve_agreeable(ts, cfg);
        const auto sorted = ts.sorted_by_deadline().tasks();
        const auto one = solve_block(sorted, cfg);
        double each = 0.0;
        for (const auto& task : sorted) {
          each += solve_block({task}, cfg).energy;
        }
        Cell& c = cells[slot];
        c.dp = dp.energy;
        c.one = one.energy;
        c.each = each;
        c.blocks = dp.case_index;
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"spread (s)", "DP energy (J)", "one block (J)",
           "per-task blocks (J)", "DP blocks"});
  Json rows = Json::array();
  for (std::size_t pi = 0; pi < spreads.size(); ++pi) {
    double e_dp = 0, e_one = 0, e_each = 0;
    double blocks = 0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[pi * static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      e_dp += c.dp;
      e_one += c.one;
      e_each += c.each;
      blocks += c.blocks;
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("dp_energy_j", c.dp);
      cell.set("one_block_energy_j", c.one);
      cell.set("per_task_energy_j", c.each);
      cell.set("dp_blocks", c.blocks);
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    t.add_row({Table::fmt(spreads[pi], 3), Table::fmt(e_dp / seeds, 5),
               Table::fmt(e_one / seeds, 5), Table::fmt(e_each / seeds, 5),
               Table::fmt(blocks / seeds, 1)});
    Json row = Json::object();
    row.set("spread_s", spreads[pi]);
    row.set("dp_energy_j_avg", e_dp / seeds);
    row.set("one_block_energy_j_avg", e_one / seeds);
    row.set("per_task_energy_j_avg", e_each / seeds);
    row.set("dp_blocks_avg", blocks / seeds);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));

  Json params = Json::object();
  params.set("tasks", kN);
  params.set("seeds", seeds);
  params.set("xi_m", 0.0);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// --------------------------------------------------- Online vs offline ratio

// Empirical competitive ratio of SDEM-ON against the Section 5 DP on
// agreeable inputs, plus the memory-oblivious per-core comparator. Each
// (spread, seed) cell is independent; folds run spread-major in seed order,
// so the table is byte-identical to the legacy serial loop.
ExperimentResult run_online_vs_offline(const RunOptions& opt) {
  auto cfg = paper_cfg();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  cfg.num_cores = 0;  // unbounded, matching the offline model
  const int seeds = opt.seeds > 0 ? opt.seeds : 12;
  constexpr int kTasks = 10;
  const std::vector<double> spreads{0.010, 0.040, 0.100, 0.250};

  ExperimentResult r;
  r.header_title = "SDEM-ON vs offline optimum (agreeable inputs)";
  r.header_what =
      "ratio = E(online) / E(offline DP); also the memory-oblivious "
      "per-core critical-speed scheduler on the same traces";

  struct Cell {
    bool feasible = false;
    double ratio = 0.0;
    double obliv_ratio = 0.0;
    // Memory sleep-interval statistics of the online schedule (the energy
    // model's per-run breakdown; see EnergyBreakdown).
    double sleep_cycles = 0.0;
    double sleep_min = 0.0;
    double sleep_mean = 0.0;
    double sleep_max = 0.0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(spreads.size() * static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, static_cast<int>(spreads.size()), seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const double spread = spreads[pi];
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        const TaskSet ts =
            make_agreeable(kTasks, seed * 577 + int(spread * 1e4), spread);
        const auto offline = solve_agreeable(ts, cfg);
        if (offline.feasible) {
          c.feasible = true;
          SdemOnPolicy pol;
          const auto sim = simulate(ts, cfg, pol);
          EnergyOptions opts;  // busy-span horizon, same as the offline model
          const EnergyBreakdown online_e =
              compute_energy(sim.schedule, cfg, opts);
          c.ratio = online_e.system_total() / offline.energy;
          c.sleep_cycles = online_e.memory_sleep_cycles;
          c.sleep_min = online_e.memory_sleep_min;
          c.sleep_mean = online_e.memory_sleep_mean();
          c.sleep_max = online_e.memory_sleep_max;

          // Memory-oblivious: every task on its own core, per-core critical-
          // speed sleep schedule; memory follows whatever union results.
          Schedule per_core;
          int core = 0;
          for (const auto& task : ts.tasks()) {
            const auto sss = solve_single_core_sleep(
                {{task.id, task.release, task.deadline, task.work}}, cfg.core,
                core++);
            for (const auto& seg : sss.schedule.segments()) per_core.add(seg);
          }
          c.obliv_ratio =
              compute_energy(per_core, cfg, opts).system_total() /
              offline.energy;
        }
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"spread (ms)", "avg ratio", "worst ratio",
           "memory-oblivious ratio"});
  Json rows = Json::array();
  for (std::size_t pi = 0; pi < spreads.size(); ++pi) {
    const double spread = spreads[pi];
    double sum = 0.0, worst = 0.0, obliv = 0.0;
    double sleep_cycles = 0.0, sleep_mean = 0.0;
    int counted = 0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[pi * static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("feasible", c.feasible);
      if (c.feasible) {
        cell.set("ratio", c.ratio);
        cell.set("oblivious_ratio", c.obliv_ratio);
        // Per-run memory sleep-interval stats of the online schedule
        // (count / min / mean / max, seconds) — JSON-only, so the printed
        // tables stay byte-identical to the legacy bench.
        cell.set("memory_sleep_cycles", c.sleep_cycles);
        cell.set("memory_sleep_min_s", c.sleep_min);
        cell.set("memory_sleep_mean_s", c.sleep_mean);
        cell.set("memory_sleep_max_s", c.sleep_max);
      }
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
      if (!c.feasible) continue;
      sum += c.ratio;
      worst = std::max(worst, c.ratio);
      obliv += c.obliv_ratio;
      sleep_cycles += c.sleep_cycles;
      sleep_mean += c.sleep_mean;
      ++counted;
    }
    t.add_row({Table::fmt(spread * 1e3, 0), Table::fmt(sum / counted, 4),
               Table::fmt(worst, 4), Table::fmt(obliv / counted, 4)});
    Json row = Json::object();
    row.set("spread_ms", spread * 1e3);
    row.set("avg_ratio", sum / counted);
    row.set("worst_ratio", worst);
    row.set("oblivious_ratio_avg", obliv / counted);
    row.set("memory_sleep_cycles_avg", sleep_cycles / counted);
    row.set("memory_sleep_mean_s_avg", sleep_mean / counted);
    row.set("counted", counted);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));
  r.footers.push_back(
      "ratios are >= 1 by optimality of the DP; the online gap is the price "
      "of not knowing the future,");
  r.footers.push_back(
      "the oblivious gap is the price of ignoring the shared memory (the "
      "paper's core argument).");

  Json params = Json::object();
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  params.set("spreads_s", [&] {
    Json arr = Json::array();
    for (double s : spreads) arr.push_back(s);
    return arr;
  }());
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ----------------------------------------------------------- Policy poles

// The title question as a bench: five online policies (the two poles, the
// single-core folklore answer, MBKPS, SDEM-ON) on the same synthetic traces
// across utilizations. One (x, seed) grid; folds in seed order keep the
// table byte-identical to the legacy serial loop.
ExperimentResult run_policy_poles(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kPoints = 8;  // x = 100..800 ms
  constexpr int kPolicies = 5;
  static const char* kNames[kPolicies] = {"race@s_up", "stretch", "critical",
                                          "MBKPS", "SDEM-ON"};

  ExperimentResult r;
  r.header_title =
      "Race to idle or not — the five policies (system energy, J)";
  r.header_what = "synthetic traces, 120 tasks, paper defaults; avg over " +
                  std::to_string(seeds) + " seeds";

  struct Cell {
    double e[kPolicies] = {0, 0, 0, 0, 0};
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(static_cast<std::size_t>(kPoints) *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, kPoints, seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const int x = 100 + static_cast<int>(pi) * 100;
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        SyntheticParams p;
        p.num_tasks = 120;
        p.max_interarrival = x / 1000.0;
        const TaskSet ts = make_synthetic(p, seed * 811 + x);

        RaceToIdlePolicy race;
        StretchPolicy stretch;
        CriticalSpeedPolicy crit;
        MbkpPolicy mbkp;
        SdemOnPolicy sdem;
        OnlinePolicy* pols[kPolicies] = {&race, &stretch, &crit, &mbkp, &sdem};
        for (int i = 0; i < kPolicies; ++i) {
          const auto sim = simulate(ts, cfg, *pols[i]);
          c.e[i] = evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "x")
                       .energy.system_total();
        }
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"x (ms)", "race@s_up", "stretch", "critical", "MBKPS", "SDEM-ON"});
  Json rows = Json::array();
  for (int pi = 0; pi < kPoints; ++pi) {
    const int x = 100 + pi * 100;
    double e[kPolicies] = {0, 0, 0, 0, 0};
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[static_cast<std::size_t>(pi) *
                                static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      for (int i = 0; i < kPolicies; ++i) {
        e[i] += c.e[i];
        cell.set(std::string("energy_") + kNames[i] + "_j", c.e[i]);
      }
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    t.add_row({std::to_string(x), Table::fmt(e[0] / seeds, 3),
               Table::fmt(e[1] / seeds, 3), Table::fmt(e[2] / seeds, 3),
               Table::fmt(e[3] / seeds, 3), Table::fmt(e[4] / seeds, 3)});
    Json row = Json::object();
    row.set("x_ms", x);
    for (int i = 0; i < kPolicies; ++i) {
      row.set(std::string("energy_") + kNames[i] + "_j_avg", e[i] / seeds);
    }
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", 120);
  params.set("seeds", seeds);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ------------------------------------------------------- Voltage islands

// Extension bench: voltage-island granularity (the paper's future work).
// One (islands, seed) grid; folds below walk islands-major in seed order,
// so the printed table is byte-identical to the legacy standalone.
ExperimentResult run_islands(const RunOptions& opt) {
  auto cfg = paper_cfg();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  const int seeds = opt.seeds > 0 ? opt.seeds : 20;
  constexpr int kTasks = 16;
  const std::vector<int> island_counts{16, 8, 4, 2, 1};

  ExperimentResult r;
  r.header_title =
      "Extension — voltage-island granularity (common release)";
  r.header_what = "energy relative to per-core rails (islands of 1); " +
                  std::to_string(kTasks) + " tasks, " +
                  std::to_string(seeds) + " seeds";

  struct Cell {
    double base = 0.0, similar = 0.0, rr = 0.0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(island_counts.size() *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, static_cast<int>(island_counts.size()), seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const int islands = island_counts[pi];
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        const TaskSet ts = make_common_release(kTasks, 0.0, seed * 397);
        std::vector<int> ones(ts.size());
        for (std::size_t i = 0; i < ts.size(); ++i) {
          ones[i] = static_cast<int>(i);
        }
        const auto fine = solve_common_release_islands(ts, cfg, ones);
        const auto sim = solve_common_release_islands(
            ts, cfg, assign_islands_similar_speed(ts, islands));
        std::vector<int> robin(ts.size());
        for (std::size_t i = 0; i < ts.size(); ++i) {
          robin[i] = static_cast<int>(i) % islands;
        }
        const auto rrres = solve_common_release_islands(ts, cfg, robin);
        c.base = fine.energy;
        c.similar = sim.energy;
        c.rr = rrres.energy;
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"islands", "tasks/rail", "similar-speed grouping +%",
           "round-robin grouping +%"});
  Json rows = Json::array();
  for (std::size_t pi = 0; pi < island_counts.size(); ++pi) {
    const int islands = island_counts[pi];
    double similar = 0.0, rr = 0.0, base = 0.0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[pi * static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      base += c.base;
      similar += c.similar;
      rr += c.rr;
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("per_core_energy_j", c.base);
      cell.set("similar_speed_energy_j", c.similar);
      cell.set("round_robin_energy_j", c.rr);
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    t.add_row({std::to_string(islands),
               std::to_string(kTasks / islands),
               Table::fmt(100.0 * (similar / base - 1.0), 2),
               Table::fmt(100.0 * (rr / base - 1.0), 2)});
    Json row = Json::object();
    row.set("islands", islands);
    row.set("tasks_per_rail", kTasks / islands);
    row.set("similar_speed_overhead_pct", 100.0 * (similar / base - 1.0));
    row.set("round_robin_overhead_pct", 100.0 * (rr / base - 1.0));
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));

  Json params = Json::object();
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  params.set("islands", [&] {
    Json arr = Json::array();
    for (int i : island_counts) arr.push_back(i);
    return arr;
  }());
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// --------------------------------------------------- Controller contention

// Assumption probe: what does SDEM-ON's alignment do to memory-controller
// contention? One (x, seed) grid; folds in seed order keep the table and
// footers byte-identical to the legacy standalone.
ExperimentResult run_contention(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  ContentionParams cp;  // 8 banks, 50 ns service, 1 access / 500 cycles
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kPoints = 4;  // x = 100, 300, 500, 700 ms

  ExperimentResult r;
  r.header_title =
      "Assumption probe — controller contention under alignment";
  r.header_what =
      "fluid M/D/1 model, 8 banks, 50 ns service, 2000 accesses/Mc; "
      "peak u and mean wait per policy";

  struct Cell {
    double pu_s = 0, pu_m = 0, w_s = 0, w_m = 0, sat = 0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(static_cast<std::size_t>(kPoints) *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, kPoints, seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const int x = 100 + static_cast<int>(pi) * 200;
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        SyntheticParams p;
        p.num_tasks = 120;
        p.max_interarrival = x / 1000.0;
        const TaskSet ts = make_synthetic(p, seed * 211 + x);
        SdemOnPolicy sdem;
        MbkpPolicy mbkp;
        const auto a = analyze_contention(simulate(ts, cfg, sdem).schedule, cp);
        const auto b = analyze_contention(simulate(ts, cfg, mbkp).schedule, cp);
        c.pu_s = a.peak_utilization;
        c.pu_m = b.peak_utilization;
        c.w_s = a.mean_wait;
        c.w_m = b.mean_wait;
        c.sat = a.saturated_fraction;
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"x (ms)", "SDEM-ON peak u", "MBKP peak u", "SDEM-ON wait (ns)",
           "MBKP wait (ns)", "saturated %"});
  Json rows = Json::array();
  for (int pi = 0; pi < kPoints; ++pi) {
    const int x = 100 + pi * 200;
    double pu_s = 0, pu_m = 0, w_s = 0, w_m = 0, sat = 0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[static_cast<std::size_t>(pi) *
                                static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      pu_s += c.pu_s;
      pu_m += c.pu_m;
      w_s += c.w_s;
      w_m += c.w_m;
      sat += c.sat;
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("sdem_peak_utilization", c.pu_s);
      cell.set("mbkp_peak_utilization", c.pu_m);
      cell.set("sdem_mean_wait_s", c.w_s);
      cell.set("mbkp_mean_wait_s", c.w_m);
      cell.set("saturated_fraction", c.sat);
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    t.add_row({std::to_string(x), Table::fmt(pu_s / seeds, 4),
               Table::fmt(pu_m / seeds, 4),
               Table::fmt(1e9 * w_s / seeds, 2),
               Table::fmt(1e9 * w_m / seeds, 2),
               Table::fmt(100.0 * sat / seeds, 2)});
    Json row = Json::object();
    row.set("x_ms", x);
    row.set("sdem_peak_utilization_avg", pu_s / seeds);
    row.set("mbkp_peak_utilization_avg", pu_m / seeds);
    row.set("sdem_mean_wait_ns_avg", 1e9 * w_s / seeds);
    row.set("mbkp_mean_wait_ns_avg", 1e9 * w_m / seeds);
    row.set("saturated_pct_avg", 100.0 * sat / seeds);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));
  r.footers.push_back(
      "alignment concentrates accesses: higher peaks, but far from "
      "saturation at these parameters —");
  r.footers.push_back(
      "the paper's negligible-delay assumption survives its own scheduler.");

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", 120);
  params.set("seeds", seeds);
  params.set("banks", cp.banks);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ------------------------------------------------------ DRAM abstraction

// Substrate validation: the paper's (alpha_m, xi_m) abstraction vs the
// DRAM power-state machine replayed on the actual SDEM-ON schedules. One
// (x, seed) grid; folds in seed order keep the table byte-identical to the
// legacy standalone (naps/sleeps use its integer-division average).
ExperimentResult run_dram_abstraction(const RunOptions& opt) {
  const auto dram = DramPowerParams::paper_50nm();
  const auto abs = abstraction_for(dram);
  auto cfg = paper_cfg();
  cfg.memory.alpha_m = abs.alpha_m;
  cfg.memory.xi_m = abs.xi_m;
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kPoints = 8;  // x = 100..800 ms

  ExperimentResult r;
  r.header_title =
      "Substrate — DRAM state machine vs the paper's abstraction";
  r.header_what =
      "machine: active 4.25 W / power-down 1.4 W / self-refresh "
      "0.25 W; abstraction: alpha_m = " + Table::fmt(abs.alpha_m, 2) +
      " W, xi_m = " + Table::fmt(abs.xi_m * 1e3, 0) + " ms";

  struct Cell {
    double machine = 0.0, abstract_j = 0.0;
    int naps = 0, sleeps = 0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(static_cast<std::size_t>(kPoints) *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, kPoints, seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const int x = 100 + static_cast<int>(pi) * 100;
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        SyntheticParams p;
        p.num_tasks = 120;
        p.max_interarrival = x / 1000.0;
        const TaskSet ts = make_synthetic(p, seed * 53 + x);
        SdemOnPolicy pol;
        const SimResult sim = simulate(ts, cfg, pol);
        OracleDramPolicy oracle;
        const auto rep = replay_dram(sim.schedule, dram, oracle,
                                     sim.horizon_lo, sim.horizon_hi);
        c.machine = rep.total();
        c.naps = rep.powerdown_cycles;
        c.sleeps = rep.selfrefresh_cycles;
        const auto ev =
            evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "sdem");
        c.abstract_j = ev.energy.memory_total() +
                       abs.floor_power * (sim.horizon_hi - sim.horizon_lo);
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"x (ms)", "SDEM-ON machine (J)", "SDEM-ON abstract (J)", "err %",
           "naps/sleeps"});
  Json rows = Json::array();
  for (int pi = 0; pi < kPoints; ++pi) {
    const int x = 100 + pi * 100;
    double machine = 0.0, abstract_j = 0.0;
    int naps = 0, sleeps = 0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[static_cast<std::size_t>(pi) *
                                static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      machine += c.machine;
      abstract_j += c.abstract_j;
      naps += c.naps;
      sleeps += c.sleeps;
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("machine_j", c.machine);
      cell.set("abstract_j", c.abstract_j);
      cell.set("powerdown_cycles", c.naps);
      cell.set("selfrefresh_cycles", c.sleeps);
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    t.add_row({std::to_string(x), Table::fmt(machine / seeds, 3),
               Table::fmt(abstract_j / seeds, 3),
               Table::fmt(100.0 * (abstract_j - machine) / machine, 2),
               std::to_string(naps / seeds) + "/" +
                   std::to_string(sleeps / seeds)});
    Json row = Json::object();
    row.set("x_ms", x);
    row.set("machine_j_avg", machine / seeds);
    row.set("abstract_j_avg", abstract_j / seeds);
    row.set("abstraction_err_pct", 100.0 * (abstract_j - machine) / machine);
    row.set("powerdown_cycles_avg", static_cast<double>(naps) / seeds);
    row.set("selfrefresh_cycles_avg", static_cast<double>(sleeps) / seeds);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));
  r.footers.push_back(
      "positive err % = the abstraction over-charges (machine finds cheaper "
      "shallow states).");

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", 120);
  params.set("seeds", seeds);
  params.set("alpha_m_w", abs.alpha_m);
  params.set("xi_m_s", abs.xi_m);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ------------------------------------------------------ Rank granularity

// Extension: re-account the same SDEM-ON and MBKP schedules with
// rank-granular power-down. One (ranks, seed) grid; folds in seed order
// keep the table byte-identical to the legacy standalone.
ExperimentResult run_rank_granularity(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  const std::vector<int> rank_counts{1, 2, 4, 8};

  ExperimentResult r;
  r.header_title = "Extension — rank-granular memory power-down";
  r.header_what =
      "memory energy (J, avg) of the same schedules accounted with "
      "1..8 ranks; x = 300 ms, alpha_m = 4 W, xi_m = 40 ms";

  struct Cell {
    double e_sdem = 0.0, e_mbkp = 0.0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(rank_counts.size() *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, static_cast<int>(rank_counts.size()), seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const int ranks = rank_counts[pi];
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        SyntheticParams p;
        p.num_tasks = 120;
        p.max_interarrival = 0.300;
        const TaskSet ts = make_synthetic(p, seed * 41);
        SdemOnPolicy sdem;
        const auto s1 = simulate(ts, cfg, sdem);
        c.e_sdem = rank_memory_energy(s1.schedule, cfg.memory, ranks, 8,
                                      s1.horizon_lo, s1.horizon_hi)
                       .total();
        MbkpPolicy mbkp;
        const auto s2 = simulate(ts, cfg, mbkp);
        c.e_mbkp = rank_memory_energy(s2.schedule, cfg.memory, ranks, 8,
                                      s2.horizon_lo, s2.horizon_hi)
                       .total();
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"ranks", "SDEM-ON mem (J)", "MBKP-sched mem (J)",
           "SDEM-ON advantage %"});
  Json rows = Json::array();
  for (std::size_t pi = 0; pi < rank_counts.size(); ++pi) {
    double e_sdem = 0.0, e_mbkp = 0.0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[pi * static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      e_sdem += c.e_sdem;
      e_mbkp += c.e_mbkp;
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("sdem_memory_j", c.e_sdem);
      cell.set("mbkp_memory_j", c.e_mbkp);
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    t.add_row({std::to_string(rank_counts[pi]), Table::fmt(e_sdem / seeds, 3),
               Table::fmt(e_mbkp / seeds, 3),
               Table::fmt(100.0 * (e_mbkp - e_sdem) / e_mbkp, 2)});
    Json row = Json::object();
    row.set("ranks", rank_counts[pi]);
    row.set("sdem_memory_j_avg", e_sdem / seeds);
    row.set("mbkp_memory_j_avg", e_mbkp / seeds);
    row.set("sdem_advantage_pct", 100.0 * (e_mbkp - e_sdem) / e_mbkp);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));
  r.footers.push_back(
      "monolithic memory (1 rank) is where coordinating the common idle "
      "time — this paper — matters most.");

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", 120);
  params.set("seeds", seeds);
  params.set("x_ms", 300);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ----------------------------------------------------- Slack reclamation

// Extension: WCET pessimism. Each (fraction, regime, seed) cell simulates
// the reclaiming and non-reclaiming variants once; folds walk fractions in
// row order, alpha != 0 before alpha = 0, seeds ascending — the exact fold
// order of the legacy standalone's nested loops.
ExperimentResult run_slack_reclamation(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  auto cfg0 = cfg;
  cfg0.core.alpha = 0.0;
  cfg0.core.s_min = 0.0;
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  const std::vector<double> fracs{1.0, 0.9, 0.7, 0.5, 0.3};

  ExperimentResult r;
  r.header_title = "Extension — slack reclamation (actual / WCET sweep)";
  r.header_what =
      "system energy (J, avg); 'reclaim' replans on completions, "
      "'no-reclaim' keeps the WCET plan; x = 300 ms.\n"
      "Two regimes: the default alpha != 0 races at the critical "
      "speed (per-cycle-optimal already — nothing to reclaim), the "
      "alpha = 0 model stretches, so freed work slows the rest.";

  struct Cell {
    double e_with = 0.0, e_without = 0.0;
    double solver_seconds = 0.0;
  };
  // Point layout: fraction-major, regime minor (0 = alpha != 0, 1 = alpha
  // = 0), matching the standalone's run(cfg, ...) then run(cfg0, ...).
  const int points = static_cast<int>(fracs.size()) * 2;
  std::vector<Cell> cells(static_cast<std::size_t>(points) *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, points, seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const double f = fracs[pi / 2];
        const SystemConfig& c_run = (pi % 2 == 0) ? cfg : cfg0;
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        SyntheticParams p;
        p.num_tasks = 120;
        p.max_interarrival = 0.300;
        const TaskSet ts = make_synthetic(p, seed * 67);
        std::map<int, double> frac;
        for (const auto& task : ts.tasks()) frac[task.id] = f;
        SdemOnPolicy a, b;
        const auto with = simulate_with_actuals(ts, c_run, a, frac, true);
        const auto without = simulate_with_actuals(ts, c_run, b, frac, false);
        c.e_with = evaluate_policy(with, c_run, SleepDiscipline::kOptimal, "r")
                       .energy.system_total();
        c.e_without =
            evaluate_policy(without, c_run, SleepDiscipline::kOptimal, "n")
                .energy.system_total();
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"actual/WCET", "a!=0 reclaim", "a!=0 none", "gain %",
           "a=0 reclaim", "a=0 none", "gain %"});
  Json rows = Json::array();
  for (std::size_t fi = 0; fi < fracs.size(); ++fi) {
    double w1 = 0, n1 = 0, w0 = 0, n0 = 0;
    Json per_seed = Json::array();
    for (int regime = 0; regime < 2; ++regime) {
      for (int s = 0; s < seeds; ++s) {
        const Cell& c =
            cells[(fi * 2 + static_cast<std::size_t>(regime)) *
                      static_cast<std::size_t>(seeds) +
                  static_cast<std::size_t>(s)];
        (regime == 0 ? w1 : w0) += c.e_with;
        (regime == 0 ? n1 : n0) += c.e_without;
        r.solver_seconds_total += c.solver_seconds;
        Json cell = Json::object();
        cell.set("seed", static_cast<std::uint64_t>(s + 1));
        cell.set("alpha_zero", regime == 1);
        cell.set("reclaim_energy_j", c.e_with);
        cell.set("no_reclaim_energy_j", c.e_without);
        cell.set("solver_seconds", c.solver_seconds);
        per_seed.push_back(std::move(cell));
      }
    }
    t.add_row({Table::fmt(fracs[fi], 1), Table::fmt(w1 / seeds, 3),
               Table::fmt(n1 / seeds, 3),
               Table::fmt(100.0 * (n1 - w1) / n1, 2),
               Table::fmt(w0 / seeds, 4), Table::fmt(n0 / seeds, 4),
               Table::fmt(100.0 * (n0 - w0) / n0, 2)});
    Json row = Json::object();
    row.set("actual_over_wcet", fracs[fi]);
    row.set("alpha_reclaim_j_avg", w1 / seeds);
    row.set("alpha_no_reclaim_j_avg", n1 / seeds);
    row.set("alpha_gain_pct", 100.0 * (n1 - w1) / n1);
    row.set("alpha0_reclaim_j_avg", w0 / seeds);
    row.set("alpha0_no_reclaim_j_avg", n0 / seeds);
    row.set("alpha0_gain_pct", 100.0 * (n0 - w0) / n0);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));
  r.footers.push_back(
      "Finding: energy falls with actual/WCET (freed work shortens the\n"
      "memory busy time by itself), but replanning to *slow down* the rest\n"
      "adds nothing: speeds already sit at their per-cycle optima and the\n"
      "shared memory punishes any stretch — classic single-core slack\n"
      "reclamation does not transfer to the system-wide problem.");

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", 120);
  params.set("seeds", seeds);
  params.set("x_ms", 300);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ---------------------------------------------------- Access sensitivity

// Extension: whole-execution-access assumption. One (fraction, seed) grid;
// the f = 1.0 row doubles as the baseline the later rows compare against,
// so folds walk fractions in row order like the legacy standalone.
ExperimentResult run_access_sensitivity(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  const std::vector<double> fracs{1.0, 0.8, 0.6, 0.4, 0.2};

  ExperimentResult r;
  r.header_title = "Extension — memory energy vs per-task access fraction";
  r.header_what =
      "tasks access DRAM only during the first f of each run; "
      "schedules unchanged (planned with f = 1), accounting "
      "refined; x = 400 ms";

  struct Cell {
    double e_sdem = 0.0, e_mbkp = 0.0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(fracs.size() * static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, static_cast<int>(fracs.size()), seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const double f = fracs[pi];
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        SyntheticParams p;
        p.num_tasks = 120;
        p.max_interarrival = 0.400;
        const TaskSet ts = make_synthetic(p, seed * 29);
        std::map<int, TaskAccess> acc;
        for (const auto& task : ts.tasks()) {
          acc[task.id] = {AccessPattern::kPrefix, f};
        }
        SdemOnPolicy sdem;
        const auto s1 = simulate(ts, cfg, sdem);
        c.e_sdem = access_aware_memory_energy(s1.schedule, acc, cfg.memory,
                                              s1.horizon_lo, s1.horizon_hi)
                       .total();
        MbkpPolicy mbkp;
        const auto s2 = simulate(ts, cfg, mbkp);
        c.e_mbkp = access_aware_memory_energy(s2.schedule, acc, cfg.memory,
                                              s2.horizon_lo, s2.horizon_hi)
                       .total();
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"fraction f", "SDEM-ON mem (J)", "vs f=1 %", "MBKP-sched mem (J)",
           "vs f=1 %"});
  Json rows = Json::array();
  double sdem_base = 0.0, mbkp_base = 0.0;
  for (std::size_t pi = 0; pi < fracs.size(); ++pi) {
    double e_sdem = 0.0, e_mbkp = 0.0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[pi * static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      e_sdem += c.e_sdem;
      e_mbkp += c.e_mbkp;
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("sdem_memory_j", c.e_sdem);
      cell.set("mbkp_memory_j", c.e_mbkp);
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    if (fracs[pi] == 1.0) {
      sdem_base = e_sdem;
      mbkp_base = e_mbkp;
    }
    t.add_row({Table::fmt(fracs[pi], 1), Table::fmt(e_sdem / seeds, 3),
               Table::fmt(100.0 * (e_sdem / sdem_base - 1.0), 2),
               Table::fmt(e_mbkp / seeds, 3),
               Table::fmt(100.0 * (e_mbkp / mbkp_base - 1.0), 2)});
    Json row = Json::object();
    row.set("fraction", fracs[pi]);
    row.set("sdem_memory_j_avg", e_sdem / seeds);
    row.set("sdem_vs_full_pct", 100.0 * (e_sdem / sdem_base - 1.0));
    row.set("mbkp_memory_j_avg", e_mbkp / seeds);
    row.set("mbkp_vs_full_pct", 100.0 * (e_mbkp / mbkp_base - 1.0));
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", 120);
  params.set("seeds", seeds);
  params.set("x_ms", 400);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ---------------------------------------------------- Discrete ablation

// Ablation: cost of real DVFS ladders. One (ladder, seed) grid; infeasible
// continuous solves skip the cell (like the standalone's `continue`), and
// averages still divide by the full seed count, matching its arithmetic.
ExperimentResult run_ablation_discrete(const RunOptions& opt) {
  auto cfg = paper_cfg();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  cfg.num_cores = 0;
  const int seeds = opt.seeds > 0 ? opt.seeds : 20;

  ExperimentResult r;
  r.header_title = "Ablation — discrete DVFS ladders vs continuous speeds";
  r.header_what =
      "Section 4.2 optimum realized on uniform ladders spanning "
      "700..1900 MHz; penalty = (E_disc - E_cont) / E_cont";

  std::vector<std::pair<std::string, FrequencyLadder>> ladders;
  for (int n : {2, 3, 4, 6, 8, 16, 32}) {
    ladders.emplace_back(std::to_string(n) + " uniform",
                         FrequencyLadder::uniform(n, 700.0, 1900.0));
  }
  ladders.emplace_back("A57 OPPs (6)", FrequencyLadder::a57_opps());

  struct Cell {
    bool feasible = false;
    double pen = 0.0, aware_pen = 0.0;
    int splits = 0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(ladders.size() * static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, static_cast<int>(ladders.size()), seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const FrequencyLadder& ladder = ladders[pi].second;
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        const TaskSet ts = make_common_release(10, 0.0, seed * 61);
        const auto cont = solve_common_release_alpha(ts, cfg);
        if (cont.feasible) {
          c.feasible = true;
          const double base = system_energy(cont.schedule, cfg);
          const auto d = discretize_schedule(cont.schedule, ladder);
          c.pen = (system_energy(d.schedule, cfg) - base) / base;
          c.splits = d.splits;
          const auto aware = solve_common_release_discrete(ts, cfg, ladder);
          c.aware_pen = (aware.energy - base) / base;
        }
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"ladder", "post-hoc penalty %", "ladder-aware penalty %",
           "max post-hoc %", "avg splits"});
  Json rows = Json::array();
  for (std::size_t pi = 0; pi < ladders.size(); ++pi) {
    double sum = 0.0, worst = 0.0, splits = 0.0, aware_sum = 0.0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[pi * static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("feasible", c.feasible);
      if (c.feasible) {
        cell.set("post_hoc_penalty", c.pen);
        cell.set("ladder_aware_penalty", c.aware_pen);
        cell.set("splits", c.splits);
      }
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
      if (!c.feasible) continue;
      sum += c.pen;
      worst = std::max(worst, c.pen);
      splits += c.splits;
      aware_sum += c.aware_pen;
    }
    t.add_row({ladders[pi].first, Table::fmt(100.0 * sum / seeds, 3),
               Table::fmt(100.0 * aware_sum / seeds, 3),
               Table::fmt(100.0 * worst, 3), Table::fmt(splits / seeds, 1)});
    Json row = Json::object();
    row.set("ladder", ladders[pi].first);
    row.set("post_hoc_penalty_pct_avg", 100.0 * sum / seeds);
    row.set("ladder_aware_penalty_pct_avg", 100.0 * aware_sum / seeds);
    row.set("max_post_hoc_pct", 100.0 * worst);
    row.set("splits_avg", splits / seeds);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));

  Json params = Json::object();
  params.set("tasks", 10);
  params.set("seeds", seeds);
  params.set("ladder_range_mhz", [&] {
    Json arr = Json::array();
    arr.push_back(700);
    arr.push_back(1900);
    return arr;
  }());
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// --------------------------------------------- Procrastination ablation

// Ablation: value of step 5 (alignment sleep) vs the per-replan speed
// selection alone. One (x, seed) grid; folds in seed order keep the table
// byte-identical to the legacy standalone.
ExperimentResult run_ablation_procrastination(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kTasks = 120;
  constexpr int kPoints = 8;  // x = 100..800 ms

  ExperimentResult r;
  r.header_title =
      "Ablation — procrastination (step 5 of the online listing)";
  r.header_what =
      "system energy saving vs MBKP; eager = same speeds, no "
      "alignment sleep";

  struct Cell {
    double e_mbkp = 0.0, e_sdem = 0.0, e_eager = 0.0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(static_cast<std::size_t>(kPoints) *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, kPoints, seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const int x = 100 + static_cast<int>(pi) * 100;
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        SyntheticParams p;
        p.num_tasks = kTasks;
        p.max_interarrival = x / 1000.0;
        const TaskSet trace = make_synthetic(p, seed * 4241 + x);
        const auto cmp = run_comparison(trace, cfg);
        c.e_mbkp = cmp.mbkp.energy.system_total();
        c.e_sdem = cmp.sdem.energy.system_total();
        SdemOnPolicy eager(/*procrastinate=*/false);
        const auto sim = simulate(trace, cfg, eager);
        c.e_eager =
            evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "eager")
                .energy.system_total();
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"x (ms)", "SDEM-ON saving %", "eager saving %",
           "procrastination value (pp)"});
  Json rows = Json::array();
  for (int pi = 0; pi < kPoints; ++pi) {
    const int x = 100 + pi * 100;
    double e_mbkp = 0, e_sdem = 0, e_eager = 0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[static_cast<std::size_t>(pi) *
                                static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      e_mbkp += c.e_mbkp;
      e_sdem += c.e_sdem;
      e_eager += c.e_eager;
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("energy_mbkp_j", c.e_mbkp);
      cell.set("energy_sdem_j", c.e_sdem);
      cell.set("energy_eager_j", c.e_eager);
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    const double s_sdem = 100.0 * (e_mbkp - e_sdem) / e_mbkp;
    const double s_eager = 100.0 * (e_mbkp - e_eager) / e_mbkp;
    t.add_row({std::to_string(x), Table::fmt(s_sdem, 2),
               Table::fmt(s_eager, 2), Table::fmt(s_sdem - s_eager, 2)});
    Json row = Json::object();
    row.set("x_ms", x);
    row.set("sdem_saving_pct", s_sdem);
    row.set("eager_saving_pct", s_eager);
    row.set("procrastination_value_pp", s_sdem - s_eager);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ------------------------------------------- Sleep-discipline ablation

// Ablation: never / always / break-even gap disciplines on the same MBKP
// schedule. One (x, seed) grid; folds in seed order keep the table
// byte-identical to the legacy standalone.
ExperimentResult run_ablation_sleep_discipline(const RunOptions& opt) {
  const auto cfg = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 10;
  constexpr int kTasks = 120;
  constexpr int kPoints = 8;  // x = 100..800 ms

  ExperimentResult r;
  r.header_title = "Ablation — memory gap discipline on the MBKP schedule";
  r.header_what =
      "system energy (J, avg over seeds); x sweeps utilization; "
      "xi_m = 40 ms, alpha_m = 4 W";

  struct Cell {
    double e_never = 0.0, e_always = 0.0, e_opt = 0.0;
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(static_cast<std::size_t>(kPoints) *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, kPoints, seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const int x = 100 + static_cast<int>(pi) * 100;
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        SyntheticParams p;
        p.num_tasks = kTasks;
        p.max_interarrival = x / 1000.0;
        MbkpPolicy pol;
        const auto sim = simulate(make_synthetic(p, seed * 31 + x), cfg, pol);
        c.e_never = evaluate_policy(sim, cfg, SleepDiscipline::kNever, "n")
                        .energy.system_total();
        c.e_always = evaluate_policy(sim, cfg, SleepDiscipline::kAlways, "a")
                         .energy.system_total();
        c.e_opt = evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "o")
                      .energy.system_total();
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"x (ms)", "never (MBKP)", "always", "break-even (MBKPS)",
           "always vs never %"});
  Json rows = Json::array();
  for (int pi = 0; pi < kPoints; ++pi) {
    const int x = 100 + pi * 100;
    double e_never = 0, e_always = 0, e_opt = 0;
    Json per_seed = Json::array();
    for (int s = 0; s < seeds; ++s) {
      const Cell& c = cells[static_cast<std::size_t>(pi) *
                                static_cast<std::size_t>(seeds) +
                            static_cast<std::size_t>(s)];
      e_never += c.e_never;
      e_always += c.e_always;
      e_opt += c.e_opt;
      r.solver_seconds_total += c.solver_seconds;
      Json cell = Json::object();
      cell.set("seed", static_cast<std::uint64_t>(s + 1));
      cell.set("energy_never_j", c.e_never);
      cell.set("energy_always_j", c.e_always);
      cell.set("energy_breakeven_j", c.e_opt);
      cell.set("solver_seconds", c.solver_seconds);
      per_seed.push_back(std::move(cell));
    }
    t.add_row({std::to_string(x), Table::fmt(e_never / seeds, 4),
               Table::fmt(e_always / seeds, 4),
               Table::fmt(e_opt / seeds, 4),
               Table::fmt(100.0 * (e_always - e_never) / e_never, 2)});
    Json row = Json::object();
    row.set("x_ms", x);
    row.set("energy_never_j_avg", e_never / seeds);
    row.set("energy_always_j_avg", e_always / seeds);
    row.set("energy_breakeven_j_avg", e_opt / seeds);
    row.set("always_vs_never_pct", 100.0 * (e_always - e_never) / e_never);
    row.set("per_seed", std::move(per_seed));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));

  Json params = Json::object();
  params.set("workload", "synthetic");
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// --------------------------------------------- Governor x sleep ladder sweep

// Ladder-depth x utilization sweep on a bursty trace (15 ms intra-burst
// spacing, so executions inside a burst scatter and leave runs of
// sub-break-even gaps between long inter-burst quiet gaps — the classic
// DPM prediction regime). The memory disciplines — never, sleep-when-idle
// (deepest state in every gap), the predictive governor, and the
// clairvoyant per-gap oracle — all account the same memory-oblivious MBKP
// schedule, so their deltas isolate the online sleep decision; the
// sdem-oracle column accounts the sleep-aligned SDEM-ON schedule under
// the oracle discipline and shows what co-designed scheduling adds on
// top. The ladder is
// SleepLadder::geometric, whose deepest rung is exactly the paper's
// single state, so the depth-1 rows double as a frozen-oracle check:
// oracle == the legacy single-state kOptimal accounting bit for bit.
// Simulations are shared across depths (the ladder only affects
// accounting, not the solver).
ExperimentResult run_governor_ladder(const RunOptions& opt) {
  const auto base = paper_cfg();
  const int seeds = opt.seeds > 0 ? opt.seeds : 8;
  constexpr int kTasks = 120;
  constexpr int kUtil = 8;  // x = 100..800 ms
  constexpr int kDepths[] = {1, 2, 4};
  constexpr int kNumDepths = 3;

  ExperimentResult r;
  r.header_title = "Governor — sleep-ladder depth x utilization (SDEM-ON)";
  r.header_what =
      "memory energy (J, avg over seeds) under four gap disciplines on a "
      "bursty arrival trace (tiny intra-burst gaps, long inter-burst gaps); "
      "x = inter-burst spacing; geometric ladder, deepest rung = paper "
      "state (alpha_m=4W, xi_m=40ms); governor = EWMA+window predictor, "
      "deepest-fit rule";

  struct Cell {
    double e_never[kNumDepths] = {};
    double e_always[kNumDepths] = {};
    double e_oracle[kNumDepths] = {};
    double e_governor[kNumDepths] = {};
    double e_sdem[kNumDepths] = {};
    double mispredicts[kNumDepths] = {};
    double aborts[kNumDepths] = {};
    /// Per-rung governor accounting (cycles/aborts/mispredicts by state).
    std::vector<SleepStateBreakdown> states[kNumDepths];
    double sleep_legacy = 0.0;  ///< legacy kOptimal (frozen single-state)
    double solver_seconds = 0.0;
  };
  std::vector<Cell> cells(static_cast<std::size_t>(kUtil) *
                          static_cast<std::size_t>(seeds));
  parallel_for_grid(
      opt.pool, kUtil, seeds,
      [&](std::size_t pi, std::uint64_t seed, std::size_t slot) {
        const int x = 100 + static_cast<int>(pi) * 100;
        const auto t0 = std::chrono::steady_clock::now();
        Cell& c = cells[slot];
        BurstyParams p;
        p.num_tasks = kTasks;
        p.burst_gap = x / 1000.0;
        p.intra_spacing = 0.015;
        const auto trace = make_bursty(p, seed * 31 + x);
        MbkpPolicy mbkp;
        const auto sim = simulate(trace, base, mbkp);
        SdemOnPolicy sdem_pol;
        const auto sim_sdem = simulate(trace, base, sdem_pol);
        c.sleep_legacy =
            evaluate_policy(sim, base, SleepDiscipline::kOptimal, "legacy")
                .energy.memory_total();
        for (int di = 0; di < kNumDepths; ++di) {
          SystemConfig cfg = base;
          cfg.memory.ladder = SleepLadder::geometric(
              cfg.memory.alpha_m, cfg.memory.xi_m, kDepths[di]);
          c.e_never[di] =
              evaluate_policy(sim, cfg, SleepDiscipline::kNever, "n")
                  .energy.memory_total();
          c.e_always[di] =
              evaluate_policy(sim, cfg, SleepDiscipline::kAlways, "a")
                  .energy.memory_total();
          c.e_oracle[di] =
              evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "o")
                  .energy.memory_total();
          IdleGovernor gov;
          const auto ev = evaluate_policy(
              sim, cfg, SleepDiscipline::kGovernor, "g", &gov);
          c.e_governor[di] = ev.energy.memory_total();
          c.mispredicts[di] = ev.energy.governor_mispredicts;
          c.aborts[di] = ev.energy.governor_aborts;
          c.states[di] = ev.energy.memory_states;
          c.e_sdem[di] =
              evaluate_policy(sim_sdem, cfg, SleepDiscipline::kOptimal, "s")
                  .energy.memory_total();
        }
        c.solver_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      });

  Table t({"depth", "x (ms)", "never", "sleep-when-idle", "governor",
           "oracle", "sdem-oracle", "gov vs always %", "gov vs oracle %"});
  Json rows = Json::array();
  for (int di = 0; di < kNumDepths; ++di) {
    for (int pi = 0; pi < kUtil; ++pi) {
      const int x = 100 + pi * 100;
      double e_never = 0, e_always = 0, e_oracle = 0, e_governor = 0;
      double e_sdem = 0, mispredicts = 0, aborts = 0, legacy = 0;
      Json per_seed = Json::array();
      for (int s = 0; s < seeds; ++s) {
        const Cell& c = cells[static_cast<std::size_t>(pi) *
                                  static_cast<std::size_t>(seeds) +
                              static_cast<std::size_t>(s)];
        e_never += c.e_never[di];
        e_always += c.e_always[di];
        e_oracle += c.e_oracle[di];
        e_governor += c.e_governor[di];
        e_sdem += c.e_sdem[di];
        mispredicts += c.mispredicts[di];
        aborts += c.aborts[di];
        legacy += c.sleep_legacy;
        if (di == 0) r.solver_seconds_total += c.solver_seconds;
        Json cell = Json::object();
        cell.set("seed", static_cast<std::uint64_t>(s + 1));
        cell.set("energy_never_j", c.e_never[di]);
        cell.set("energy_always_j", c.e_always[di]);
        cell.set("energy_governor_j", c.e_governor[di]);
        cell.set("energy_oracle_j", c.e_oracle[di]);
        cell.set("energy_sdem_oracle_j", c.e_sdem[di]);
        cell.set("mispredicts", c.mispredicts[di]);
        cell.set("aborts", c.aborts[di]);
        // Per-rung decision counts under the live governor: how often each
        // sleep state was chosen (decisions = cycles + aborts) and how the
        // choices worked out.
        Json rungs = Json::array();
        for (std::size_t k = 0; k < c.states[di].size(); ++k) {
          const SleepStateBreakdown& st = c.states[di][k];
          Json rj = Json::object();
          rj.set("state", static_cast<std::uint64_t>(k));
          rj.set("decisions", st.cycles + st.aborts);
          rj.set("cycles", st.cycles);
          rj.set("aborts", st.aborts);
          rj.set("mispredicts", st.mispredicts);
          rungs.push_back(std::move(rj));
        }
        cell.set("governor_rungs", std::move(rungs));
        if (kDepths[di] == 1) {
          // Frozen-oracle check value: must equal energy_oracle_j exactly.
          cell.set("energy_legacy_single_j", c.sleep_legacy);
        }
        per_seed.push_back(std::move(cell));
      }
      t.add_row({std::to_string(kDepths[di]), std::to_string(x),
                 Table::fmt(e_never / seeds, 4),
                 Table::fmt(e_always / seeds, 4),
                 Table::fmt(e_governor / seeds, 4),
                 Table::fmt(e_oracle / seeds, 4),
                 Table::fmt(e_sdem / seeds, 4),
                 Table::fmt(100.0 * (e_governor - e_always) / e_always, 2),
                 Table::fmt(100.0 * (e_governor - e_oracle) / e_oracle, 2)});
      Json row = Json::object();
      row.set("depth", kDepths[di]);
      row.set("x_ms", x);
      row.set("energy_never_j_avg", e_never / seeds);
      row.set("energy_always_j_avg", e_always / seeds);
      row.set("energy_governor_j_avg", e_governor / seeds);
      row.set("energy_oracle_j_avg", e_oracle / seeds);
      row.set("energy_sdem_oracle_j_avg", e_sdem / seeds);
      row.set("governor_vs_always_pct",
              100.0 * (e_governor - e_always) / e_always);
      row.set("governor_vs_oracle_pct",
              100.0 * (e_governor - e_oracle) / e_oracle);
      row.set("mispredicts_avg", mispredicts / seeds);
      row.set("aborts_avg", aborts / seeds);
      if (kDepths[di] == 1) {
        row.set("energy_legacy_single_j_avg", legacy / seeds);
      }
      row.set("per_seed", std::move(per_seed));
      rows.push_back(std::move(row));
    }
  }
  r.tables.push_back(std::move(t));

  Json params = Json::object();
  params.set("workload", "bursty");
  params.set("tasks", kTasks);
  params.set("seeds", seeds);
  Json depths = Json::array();
  for (int d : kDepths) depths.push_back(Json(d));
  params.set("ladder_depths", std::move(depths));
  params.set("governor", "ewma0.25+window8, deepest-fit");
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("rows", std::move(rows));
  return r;
}

// ------------------------------------------------- Service ingest throughput

// Upper edge of the log2-histogram bucket where the cumulative count
// crosses q (same estimator service.cpp's stats() uses).
double dist_bucket_percentile(const obs::DistValue& d, double q) {
  if (d.count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(d.count))));
  std::uint64_t cum = 0;
  for (const auto& [exp2, n] : d.buckets) {
    cum += n;
    if (cum >= target) {
      if (exp2 <= -9999) return 0.0;
      return std::min(d.max, std::ldexp(1.0, exp2 + 1));
    }
  }
  return d.max;
}

// The service's ingest-throughput stream: K islands round-robin, each
// island's arrivals in same-release batches (lazy-mode commits then replan
// once per batch, not per line), tiny work and generous deadlines. This
// keeps the solver off the critical path for the `race` configs so the
// bench isolates the axis under test: where the ndjson parse runs.
std::vector<std::string> make_throughput_lines(long n, int islands,
                                               int batch,
                                               std::uint64_t seed) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    const int isl = static_cast<int>(i % islands);
    const long j = i / islands;  // per-island arrival index
    const double release = static_cast<double>(j / batch) * 0.020;
    const double work =
        0.010 +
        1e-4 * static_cast<double>((seed * 2654435761ULL +
                                    static_cast<std::uint64_t>(i)) %
                                   97);
    Json task = Json::object();
    task.set("id", static_cast<std::uint64_t>(j));
    task.set("release", release);
    task.set("deadline", release + 5.0);
    task.set("work", work);
    Json req = Json::object();
    req.set("op", "SUBMIT");
    req.set("island", isl);
    req.set("task", std::move(task));
    lines.push_back(req.dump(0));
  }
  return lines;
}

// Ingest-throughput sweep: parse-on-ingest (the PR-6 single-thread-parse
// baseline) vs parse-on-shard (raw lines routed by peek, parsed on the
// shard workers) across shard and producer counts. Timing experiment like
// table1 — the JSON carries measured events/sec, not deterministic bytes.
// Each config builds its own pool sized to its shard count (opt.pool is
// for seed-parallel sweeps and deliberately unused here).
//
// Two rates per config:
//   * ingest events/s — until every producer has routed + flushed its
//     stream. This is the acceptor-thread service rate, the axis the
//     pipeline targets: it bounds what a daemon can pull off the socket.
//     Rings are sized to hold the full stream so backpressure never
//     blocks the stage under test.
//   * e2e events/s — until drain_all() returns (every task parsed,
//     admitted and planned). On a single-core host ingest and shard work
//     time-share, so e2e ~= the sum of both stages; with >= shards+1
//     cores the stages overlap and e2e approaches the ingest rate.
// For the parse-on-ingest baseline the two rates coincide by
// construction: the parse happens on the ingest thread itself.
ExperimentResult run_service_throughput(const RunOptions& opt) {
  const int seeds = opt.seeds > 0 ? opt.seeds : 3;
  constexpr int kIslands = 64;
  constexpr int kBatch = 8;
  constexpr long kEvents = 40000;        // race: ingest-bound
  constexpr long kEventsSolver = 8000;   // sdem-on: solver-bound contrast

  ExperimentResult r;
  r.header_title = "Service ingest throughput — parse-on-shard pipeline";
  r.header_what =
      strf("%d islands, same-release batches of %d, lazy commits; "
           "best of %d runs per config",
           kIslands, kBatch, seeds);

  struct Config {
    const char* name;
    const char* policy;
    int shards;
    int producers;
    bool parse_on_shard;
    long events;
  };
  const std::vector<Config> configs = {
      {"ingest-parse s1", "race", 1, 1, false, kEvents},
      {"ingest-parse s4", "race", 4, 1, false, kEvents},
      {"shard-parse s1", "race", 1, 1, true, kEvents},
      {"shard-parse s2", "race", 2, 1, true, kEvents},
      {"shard-parse s4", "race", 4, 1, true, kEvents},
      {"shard-parse s4 p2", "race", 4, 2, true, kEvents},
      {"ingest-parse s4 sdem-on", "sdem-on", 4, 1, false, kEventsSolver},
      {"shard-parse s4 sdem-on", "sdem-on", 4, 1, true, kEventsSolver},
  };

  struct RunResult {
    double ingest_secs = 0.0;  ///< producers routed + flushed everything
    double secs = 0.0;         ///< ... and drain_all() completed
    std::uint64_t errors = 0;
    double p50_ns = 0.0, p99_ns = 0.0;
  };
  const auto run_once = [&](const Config& c,
                            std::uint64_t seed) -> RunResult {
    // Per-run metric isolation: the replan histograms accumulate in the
    // obs registry; reset before every run (no pool is alive here).
    obs::Registry::instance().reset();
    std::vector<std::string> lines =
        make_throughput_lines(c.events, kIslands, kBatch, seed);
    // Pre-partition by island so each producer keeps per-island arrival
    // order (the determinism contract); partitioning is not timed.
    std::vector<std::vector<std::string>> per_producer(
        static_cast<std::size_t>(c.producers));
    for (auto& p : per_producer) {
      p.reserve(lines.size() / static_cast<std::size_t>(c.producers) + 1);
    }
    for (long i = 0; i < c.events; ++i) {
      const int isl = static_cast<int>(i % kIslands);
      per_producer[static_cast<std::size_t>(isl % c.producers)].push_back(
          std::move(lines[static_cast<std::size_t>(i)]));
    }

    std::unique_ptr<ThreadPool> pool;
    if (c.shards > 1) pool = std::make_unique<ThreadPool>(c.shards);
    service::ServiceOptions sopt;
    sopt.policy = c.policy;
    sopt.shards = c.shards;
    sopt.producers = c.producers;
    sopt.eager = false;
    // Hold a full per-ring share of the stream (islands are uniform across
    // shards and producers) so the ingest stage is measured unthrottled.
    sopt.queue_capacity =
        static_cast<std::size_t>(c.events) /
            static_cast<std::size_t>(c.shards * c.producers) +
        64;
    std::atomic<std::uint64_t> errors{0};
    service::Service svc(
        sopt, pool.get(), [&](const service::Request&, Json resp) {
          const Json* ok = resp.find("ok");
          if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        });

    const auto ingest = [&](int p) {
      std::uint64_t s = static_cast<std::uint64_t>(p);
      for (std::string& line : per_producer[static_cast<std::size_t>(p)]) {
        if (c.parse_on_shard) {
          const service::Peeked pk = service::peek_request(line);
          if (pk.routable()) {
            svc.route_raw(pk.island, pk.op, std::move(line), s, 0, s, p);
            s += static_cast<std::uint64_t>(c.producers);
            continue;
          }
        }
        service::Parsed pr = service::parse_request(line);
        pr.request.seq = s;
        pr.request.conn_seq = s;
        s += static_cast<std::uint64_t>(c.producers);
        svc.route(std::move(pr.request), p);
      }
      svc.flush(p);
    };

    const std::uint64_t t0 = obs::now_ns();
    if (c.producers == 1) {
      ingest(0);
    } else {
      std::vector<std::thread> threads;
      for (int p = 0; p < c.producers; ++p) {
        threads.emplace_back([&, p] { ingest(p); });
      }
      for (std::thread& t : threads) t.join();
    }
    const std::uint64_t t_ingest = obs::now_ns();
    svc.drain_all();
    RunResult res;
    res.ingest_secs = static_cast<double>(t_ingest - t0) / 1e9;
    res.secs = static_cast<double>(obs::now_ns() - t0) / 1e9;
    res.errors = errors.load();
    if (obs::compiled()) {
      // Merge every shard's replan histogram for service-wide p50/p99.
      const obs::Snapshot snap = obs::Registry::instance().snapshot();
      obs::DistValue merged;
      std::map<int, std::uint64_t> buckets;
      for (const auto& [name, d] : snap.runtime_dists) {
        if (name.rfind("service/shard", 0) != 0 ||
            name.find("/replan_ns") == std::string::npos) {
          continue;
        }
        if (merged.count == 0 || d.min < merged.min) merged.min = d.min;
        if (d.max > merged.max) merged.max = d.max;
        merged.count += d.count;
        merged.sum_fx += d.sum_fx;
        for (const auto& [e, n] : d.buckets) buckets[e] += n;
      }
      merged.buckets.assign(buckets.begin(), buckets.end());
      res.p50_ns = dist_bucket_percentile(merged, 0.50);
      res.p99_ns = dist_bucket_percentile(merged, 0.99);
    }
    return res;
  };

  Table t({"config", "policy", "shards", "producers", "events",
           "ingest ev/s", "e2e ev/s", "replan p50 (us)", "replan p99 (us)"});
  Json rows = Json::array();
  double baseline_eps = 0.0;
  double pipelined_eps = 0.0;
  double baseline_e2e_eps = 0.0;
  double pipelined_e2e_eps = 0.0;
  for (const Config& c : configs) {
    double best_eps = 0.0;
    double best_e2e_eps = 0.0;
    RunResult best{};
    Json per_run = Json::array();
    for (int s = 1; s <= seeds; ++s) {
      const RunResult res =
          run_once(c, static_cast<std::uint64_t>(s));
      r.solver_seconds_total += res.secs;
      const double eps = res.ingest_secs > 0.0
                             ? static_cast<double>(c.events) / res.ingest_secs
                             : 0.0;
      const double e2e_eps =
          res.secs > 0.0 ? static_cast<double>(c.events) / res.secs : 0.0;
      if (eps > best_eps) {
        best_eps = eps;
        best = res;
      }
      if (e2e_eps > best_e2e_eps) best_e2e_eps = e2e_eps;
      Json run = Json::object();
      run.set("run", static_cast<std::uint64_t>(s));
      run.set("ingest_s", res.ingest_secs);
      run.set("elapsed_s", res.secs);
      run.set("ingest_events_per_sec", eps);
      run.set("events_per_sec", e2e_eps);
      run.set("errors", res.errors);
      run.set("replan_p50_ns", res.p50_ns);
      run.set("replan_p99_ns", res.p99_ns);
      per_run.push_back(std::move(run));
    }
    if (std::string(c.name) == "ingest-parse s4") {
      baseline_eps = best_eps;
      baseline_e2e_eps = best_e2e_eps;
    }
    if (std::string(c.name) == "shard-parse s4") {
      pipelined_eps = best_eps;
      pipelined_e2e_eps = best_e2e_eps;
    }
    t.add_row({c.name, c.policy, std::to_string(c.shards),
               std::to_string(c.producers), std::to_string(c.events),
               Table::fmt(best_eps, 0), Table::fmt(best_e2e_eps, 0),
               Table::fmt(best.p50_ns / 1e3, 1),
               Table::fmt(best.p99_ns / 1e3, 1)});
    Json row = Json::object();
    row.set("config", c.name);
    row.set("policy", c.policy);
    row.set("shards", c.shards);
    row.set("producers", c.producers);
    row.set("parse_on_shard", c.parse_on_shard);
    row.set("events", static_cast<std::uint64_t>(c.events));
    row.set("best_ingest_events_per_sec", best_eps);
    row.set("best_events_per_sec", best_e2e_eps);
    row.set("best_replan_p50_ns", best.p50_ns);
    row.set("best_replan_p99_ns", best.p99_ns);
    row.set("runs", std::move(per_run));
    rows.push_back(std::move(row));
  }
  r.tables.push_back(std::move(t));

  const double speedup =
      baseline_eps > 0.0 ? pipelined_eps / baseline_eps : 0.0;
  const double e2e_speedup =
      baseline_e2e_eps > 0.0 ? pipelined_e2e_eps / baseline_e2e_eps : 0.0;
  r.footers.push_back(strf(
      "ingest throughput, parse-on-shard x4 vs parse-on-ingest x4 (race): "
      "%.2fx (%.0f vs %.0f events/s)",
      speedup, pipelined_eps, baseline_eps));
  r.footers.push_back(strf(
      "end-to-end on this host: %.2fx (%.0f vs %.0f events/s); e2e "
      "approaches the ingest rate once shards get their own cores",
      e2e_speedup, pipelined_e2e_eps, baseline_e2e_eps));
  r.footers.push_back(
      "race configs are ingest-bound (the axis under test); the sdem-on "
      "pair shows the honest solver-bound contrast");

  Json params = Json::object();
  params.set("islands", kIslands);
  params.set("batch", kBatch);
  params.set("events_race", static_cast<std::uint64_t>(kEvents));
  params.set("events_sdem_on", static_cast<std::uint64_t>(kEventsSolver));
  params.set("runs_per_config", seeds);
  r.data = Json::object();
  r.data.set("params", std::move(params));
  r.data.set("configs", std::move(rows));
  r.data.set("baseline_eps", baseline_eps);
  r.data.set("pipelined_eps", pipelined_eps);
  r.data.set("speedup", speedup);
  r.data.set("baseline_e2e_eps", baseline_e2e_eps);
  r.data.set("pipelined_e2e_eps", pipelined_e2e_eps);
  r.data.set("e2e_speedup", e2e_speedup);
  return r;
}

}  // namespace

void register_all_experiments(std::vector<Experiment>& out) {
  out.push_back({"fig6a", "Fig. 6a", "bench_fig6a_memory_saving",
                 "memory static-energy saving vs U (DSPstone)", 10,
                 [](const RunOptions& o) { return run_fig6(o, true); }});
  out.push_back({"fig6b", "Fig. 6b", "bench_fig6b_system_saving",
                 "system-wide energy saving vs U (DSPstone)", 10,
                 [](const RunOptions& o) { return run_fig6(o, false); }});
  out.push_back({"fig7a", "Fig. 7a", "bench_fig7a_alpham_sweep",
                 "saving improvement over alpha_m x x (synthetic)", 10,
                 [](const RunOptions& o) { return run_fig7(o, true); }});
  out.push_back({"fig7b", "Fig. 7b", "bench_fig7b_xim_sweep",
                 "saving improvement over xi_m x x (synthetic)", 10,
                 [](const RunOptions& o) { return run_fig7(o, false); }});
  out.push_back({"table4", "Table 4", "bench_table4_grid",
                 "parameter grid and the default operating point", 10,
                 [](const RunOptions& o) { return run_table4(o); }});
  out.push_back({"table1", "Table 1", "bench_table1_complexity",
                 "runtime scaling of the SDEM schemes", 1,
                 [](const RunOptions& o) { return run_table1(o); }});
  out.push_back({"ablation_blocks", "§5 ablation", "bench_ablation_blocks",
                 "block DP vs degenerate partitions over task spread", 8,
                 [](const RunOptions& o) { return run_ablation_blocks(o); }});
  out.push_back({"online_vs_offline", "§6 ratio", "bench_online_vs_offline",
                 "empirical competitive ratio vs the agreeable DP", 12,
                 [](const RunOptions& o) { return run_online_vs_offline(o); }});
  out.push_back({"policy_poles", "title question", "bench_policy_poles",
                 "race / stretch / critical / MBKPS / SDEM-ON across x", 10,
                 [](const RunOptions& o) { return run_policy_poles(o); }});
  out.push_back({"islands", "future work", "bench_islands",
                 "voltage-island granularity vs per-core rails", 20,
                 [](const RunOptions& o) { return run_islands(o); }});
  out.push_back({"contention", "§3 assumption", "bench_contention",
                 "controller contention under SDEM-ON's alignment", 10,
                 [](const RunOptions& o) { return run_contention(o); }});
  out.push_back({"dram_abstraction", "§3 substrate", "bench_dram_abstraction",
                 "DRAM power-state machine vs the (alpha_m, xi_m) model", 10,
                 [](const RunOptions& o) { return run_dram_abstraction(o); }});
  out.push_back({"rank_granularity", "future work", "bench_rank_granularity",
                 "rank-granular power-down vs monolithic memory", 10,
                 [](const RunOptions& o) { return run_rank_granularity(o); }});
  out.push_back({"slack_reclamation", "§2 extension",
                 "bench_slack_reclamation",
                 "WCET pessimism: replanning on early completions", 10,
                 [](const RunOptions& o) { return run_slack_reclamation(o); }});
  out.push_back({"access_sensitivity", "§3 sensitivity",
                 "bench_access_sensitivity",
                 "memory energy vs per-task access fraction", 10,
                 [](const RunOptions& o) {
                   return run_access_sensitivity(o);
                 }});
  out.push_back({"ablation_discrete", "§4.2 ablation",
                 "bench_ablation_discrete",
                 "discrete DVFS ladders vs continuous speeds", 20,
                 [](const RunOptions& o) { return run_ablation_discrete(o); }});
  out.push_back({"ablation_procrastination", "§6 step 5 ablation",
                 "bench_ablation_procrastination",
                 "value of alignment sleep vs speed selection alone", 10,
                 [](const RunOptions& o) {
                   return run_ablation_procrastination(o);
                 }});
  out.push_back({"ablation_sleep_discipline", "Table 3 ablation",
                 "bench_ablation_sleep_discipline",
                 "never / always / break-even gap disciplines on MBKP", 10,
                 [](const RunOptions& o) {
                   return run_ablation_sleep_discipline(o);
                 }});
  out.push_back({"governor_ladder", "ROADMAP ladder", "bench_governor_ladder",
                 "predictive idle governor vs sleep-when-idle vs clairvoyant "
                 "across ladder depth x utilization", 8,
                 [](const RunOptions& o) { return run_governor_ladder(o); }});
  out.push_back({"service_throughput", "online serving",
                 "bench_service_throughput",
                 "ingest events/sec: parse-on-shard pipeline vs baseline", 3,
                 [](const RunOptions& o) {
                   return run_service_throughput(o);
                 }});
}

}  // namespace sdem::bench
