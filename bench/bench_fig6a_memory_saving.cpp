// Fig. 6a: memory static-energy saving of SDEM-ON and MBKPS relative to
// MBKP on the DSPstone benchmark trace (FFT-1024 + matrix multiply),
// swept over the utilization knob U in [2, 9] (larger U = idler system).
//
// Paper shape to match: both curves positive, SDEM-ON above MBKPS at every
// U, SDEM-ON's advantage growing as the system idles; paper reports an
// average SDEM-ON-over-MBKPS memory saving around 10%.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "fig6a"; this binary prints its default run (same bytes as
// the pre-registry standalone). `sdem_bench_runner --filter fig6a` adds
// JSON output, seed/job control, and markdown rendering.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("fig6a"); }
