// Fig. 6a: memory static-energy saving of SDEM-ON and MBKPS relative to
// MBKP on the DSPstone benchmark trace (FFT-1024 + matrix multiply),
// swept over the utilization knob U in [2, 9] (larger U = idler system).
//
// Paper shape to match: both curves positive, SDEM-ON above MBKPS at every
// U, SDEM-ON's advantage growing as the system idles; paper reports an
// average SDEM-ON-over-MBKPS memory saving around 10%.
#include "bench_util.hpp"
#include "workload/dspstone.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto cfg = paper_cfg();
  constexpr int kSeeds = 10;
  constexpr int kTasks = 160;

  print_header("Fig 6a — memory static energy saving vs U (DSPstone)",
               "saving(X) = (E_mem(MBKP) - E_mem(X)) / E_mem(MBKP); " +
                   std::to_string(kSeeds) + " seeds x " +
                   std::to_string(kTasks) + " task instances; alpha_m=4W, "
                   "xi_m=40ms, 8 cores");

  Table t({"U", "MBKPS mem saving %", "SDEM-ON mem saving %",
           "SDEM-ON - MBKPS (pp)"});
  double sum_gap = 0.0;
  for (int u = 2; u <= 9; ++u) {
    const SavingStats st = collect_comparison(
        [&](std::uint64_t seed) {
          DspstoneParams p;
          p.num_tasks = kTasks;
          p.utilization_u = static_cast<double>(u);
          return make_dspstone(p, seed * 977 + u);
        },
        cfg, kSeeds);
    const double s_mem = st.sdem_memory.mean();
    const double m_mem = st.mbkps_memory.mean();
    sum_gap += s_mem - m_mem;
    t.add_row({std::to_string(u), pct(st.mbkps_memory), pct(st.sdem_memory),
               Table::fmt(100.0 * (s_mem - m_mem), 2)});
  }
  print_table(t);
  std::printf("average SDEM-ON memory saving over MBKPS: %.2f pp (paper: ~10.02%%)\n",
              100.0 * sum_gap / 8.0);
  return 0;
}
