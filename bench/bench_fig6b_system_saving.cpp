// Fig. 6b: system-wide energy saving of SDEM-ON and MBKPS relative to MBKP
// on the DSPstone trace over U in [2, 9].
//
// Paper shape to match: SDEM-ON above MBKPS everywhere; SDEM-ON's system
// saving is largest when the system is busy (small U) and shrinks as the
// system idles (both schemes then run slow and sleep); paper reports an
// average SDEM-ON-over-MBKPS system saving around 23%.
#include "bench_util.hpp"
#include "workload/dspstone.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto cfg = paper_cfg();
  constexpr int kSeeds = 10;
  constexpr int kTasks = 160;

  print_header("Fig 6b — system-wide energy saving vs U (DSPstone)",
               "saving(X) = (E_sys(MBKP) - E_sys(X)) / E_sys(MBKP); " +
                   std::to_string(kSeeds) + " seeds x " +
                   std::to_string(kTasks) + " instances; paper defaults");

  Table t({"U", "MBKPS saving %", "SDEM-ON saving %", "SDEM-ON - MBKPS (pp)"});
  double sum_gap = 0.0;
  for (int u = 2; u <= 9; ++u) {
    const SavingStats st = collect_comparison(
        [&](std::uint64_t seed) {
          DspstoneParams p;
          p.num_tasks = kTasks;
          p.utilization_u = static_cast<double>(u);
          return make_dspstone(p, seed * 977 + u);
        },
        cfg, kSeeds);
    const double s_sys = st.sdem_system.mean();
    const double m_sys = st.mbkps_system.mean();
    sum_gap += s_sys - m_sys;
    t.add_row({std::to_string(u), pct(st.mbkps_system), pct(st.sdem_system),
               Table::fmt(100.0 * (s_sys - m_sys), 2)});
  }
  print_table(t);
  std::printf("average SDEM-ON system saving over MBKPS: %.2f pp (paper: ~23.45%%)\n",
              100.0 * sum_gap / 8.0);
  return 0;
}
