// Fig. 6b: system-wide energy saving of SDEM-ON and MBKPS relative to MBKP
// on the DSPstone trace over U in [2, 9].
//
// Paper shape to match: SDEM-ON above MBKPS everywhere; SDEM-ON's system
// saving is largest when the system is busy (small U) and shrinks as the
// system idles (both schemes then run slow and sleep); paper reports an
// average SDEM-ON-over-MBKPS system saving around 23%.
//
// The sweep is the registered experiment "fig6b" (bench_experiments.cpp);
// this binary prints its default run, byte-compatible with the
// pre-registry standalone.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("fig6b"); }
