// Fig. 7a: system-wide energy-saving improvement of SDEM-ON over MBKPS
// (both relative to MBKP) on synthetic tasks, swept over the memory static
// power alpha_m in [1, 8] W and the utilization knob x (max inter-arrival)
// in [100, 800] ms. Table 4 defaults elsewhere (xi_m = 40 ms).
//
// Paper shape to match: improvement positive everywhere, growing with
// alpha_m (more leakage to shed) and roughly flat-to-growing in x; paper
// reports a ~9.74% average improvement.
//
// The sweep is the registered experiment "fig7a" (bench_experiments.cpp);
// this binary prints its default run, byte-compatible with the
// pre-registry standalone.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("fig7a"); }
