// Fig. 7a: system-wide energy-saving improvement of SDEM-ON over MBKPS
// (both relative to MBKP) on synthetic tasks, swept over the memory static
// power alpha_m in [1, 8] W and the utilization knob x (max inter-arrival)
// in [100, 800] ms. Table 4 defaults elsewhere (xi_m = 40 ms).
//
// Paper shape to match: improvement positive everywhere, growing with
// alpha_m (more leakage to shed) and roughly flat-to-growing in x; paper
// reports a ~9.74% average improvement.
#include "bench_util.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  constexpr int kSeeds = 10;
  constexpr int kTasks = 120;

  print_header(
      "Fig 7a — saving improvement (SDEM-ON - MBKPS) over alpha_m x x",
      "synthetic tasks (w in [2,5] Mc, regions [10,120] ms); entries are "
      "percentage points of system-wide saving vs MBKP; xi_m = 40 ms");

  std::vector<std::string> header{"alpha_m \\ x(ms)"};
  for (int x = 100; x <= 800; x += 100) header.push_back(std::to_string(x));
  Table t(header);

  double sum = 0.0;
  int cells = 0;
  for (int am = 1; am <= 8; ++am) {
    auto cfg = paper_cfg();
    cfg.memory.alpha_m = static_cast<double>(am);
    std::vector<std::string> row{std::to_string(am) + " W"};
    for (int x = 100; x <= 800; x += 100) {
      double s_sys = 0, m_sys = 0;
      average_comparison(
          [&](std::uint64_t seed) {
            SyntheticParams p;
            p.num_tasks = kTasks;
            p.max_interarrival = x / 1000.0;
            return make_synthetic(p, seed * 10007 + am * 31 + x);
          },
          cfg, kSeeds, &s_sys, &m_sys, nullptr, nullptr);
      const double imp = 100.0 * (s_sys - m_sys);
      sum += imp;
      ++cells;
      row.push_back(Table::fmt(imp, 2));
    }
    t.add_row(row);
  }
  print_table(t);
  std::printf("average improvement: %.2f pp (paper: ~9.74%%)\n", sum / cells);
  return 0;
}
