// Fig. 7b: system-wide energy-saving improvement of SDEM-ON over MBKPS on
// synthetic tasks, swept over the memory break-even time xi_m in
// {15,20,25,30,40,50,60,70} ms and the utilization knob x. alpha_m = 4 W.
//
// Paper shape to match: improvement positive and essentially flat in xi_m
// ("basically no difference with the varying of break-even time").
//
// The sweep is the registered experiment "fig7b" (bench_experiments.cpp);
// this binary prints its default run, byte-compatible with the
// pre-registry standalone.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("fig7b"); }
