// Fig. 7b: system-wide energy-saving improvement of SDEM-ON over MBKPS on
// synthetic tasks, swept over the memory break-even time xi_m in
// {15,20,25,30,40,50,60,70} ms and the utilization knob x. alpha_m = 4 W.
//
// Paper shape to match: improvement positive and essentially flat in xi_m
// ("basically no difference with the varying of break-even time").
#include "bench_util.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  constexpr int kSeeds = 10;
  constexpr int kTasks = 120;
  const int xims[] = {15, 20, 25, 30, 40, 50, 60, 70};

  print_header(
      "Fig 7b — saving improvement (SDEM-ON - MBKPS) over xi_m x x",
      "synthetic tasks; entries are percentage points of system-wide saving "
      "vs MBKP; alpha_m = 4 W");

  std::vector<std::string> header{"xi_m \\ x(ms)"};
  for (int x = 100; x <= 800; x += 100) header.push_back(std::to_string(x));
  Table t(header);

  double sum = 0.0;
  int cells = 0;
  for (int xim : xims) {
    auto cfg = paper_cfg();
    cfg.memory.xi_m = xim / 1000.0;
    std::vector<std::string> row{std::to_string(xim) + " ms"};
    for (int x = 100; x <= 800; x += 100) {
      double s_sys = 0, m_sys = 0;
      average_comparison(
          [&](std::uint64_t seed) {
            SyntheticParams p;
            p.num_tasks = kTasks;
            p.max_interarrival = x / 1000.0;
            return make_synthetic(p, seed * 7717 + xim * 13 + x);
          },
          cfg, kSeeds, &s_sys, &m_sys, nullptr, nullptr);
      const double imp = 100.0 * (s_sys - m_sys);
      sum += imp;
      ++cells;
      row.push_back(Table::fmt(imp, 2));
    }
    t.add_row(row);
  }
  print_table(t);
  std::printf("average improvement: %.2f pp (paper: ~10.52%%)\n", sum / cells);
  return 0;
}
