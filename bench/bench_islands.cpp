// Extension bench: voltage-island granularity (the paper's future work).
//
// How much energy does sharing voltage rails cost, as islands grow from
// per-core rails (the paper's model) to one global rail? And how much of
// that is recovered by grouping similar tasks on a rail?
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "islands"; this binary prints its default run (same bytes as
// the pre-registry standalone). `sdem_bench_runner --filter islands` adds
// JSON output, seed/job control, and markdown rendering.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("islands"); }
