// Extension bench: voltage-island granularity (the paper's future work).
//
// How much energy does sharing voltage rails cost, as islands grow from
// per-core rails (the paper's model) to one global rail? And how much of
// that is recovered by grouping similar tasks on a rail?
#include "bench_util.hpp"
#include "core/islands.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  auto cfg = paper_cfg();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  constexpr int kSeeds = 20;
  constexpr int kTasks = 16;

  print_header("Extension — voltage-island granularity (common release)",
               "energy relative to per-core rails (islands of 1); " +
                   std::to_string(kTasks) + " tasks, " +
                   std::to_string(kSeeds) + " seeds");

  Table t({"islands", "tasks/rail", "similar-speed grouping +%",
           "round-robin grouping +%"});
  for (int islands : {16, 8, 4, 2, 1}) {
    double similar = 0.0, rr = 0.0, base = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const TaskSet ts = make_common_release(kTasks, 0.0, seed * 397);
      std::vector<int> ones(ts.size());
      for (std::size_t i = 0; i < ts.size(); ++i) {
        ones[i] = static_cast<int>(i);
      }
      const auto fine = solve_common_release_islands(ts, cfg, ones);
      const auto sim = solve_common_release_islands(
          ts, cfg, assign_islands_similar_speed(ts, islands));
      std::vector<int> robin(ts.size());
      for (std::size_t i = 0; i < ts.size(); ++i) {
        robin[i] = static_cast<int>(i) % islands;
      }
      const auto rrres = solve_common_release_islands(ts, cfg, robin);
      base += fine.energy;
      similar += sim.energy;
      rr += rrres.energy;
    }
    t.add_row({std::to_string(islands),
               std::to_string(kTasks / islands),
               Table::fmt(100.0 * (similar / base - 1.0), 2),
               Table::fmt(100.0 * (rr / base - 1.0), 2)});
  }
  print_table(t);
  return 0;
}
