// Empirical competitive ratio of SDEM-ON against the offline optimum.
//
// On agreeable-deadline inputs the Section 5 DP is provably optimal, so
// simulating SDEM-ON on the same trace (unbounded cores, same accounting)
// gives a true online/offline energy ratio. Also reports the
// memory-oblivious comparison: per-core single-core speed-scaling-with-
// sleep (critical-speed method) run on the same assignment — what you get
// if every core optimizes itself and nobody owns the shared memory.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "online_vs_offline"; this binary prints its default run (same
// bytes as the pre-registry standalone). `sdem_bench_runner --filter
// online_vs_offline` adds JSON output, seed/job control, and markdown.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("online_vs_offline"); }
