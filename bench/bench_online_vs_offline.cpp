// Empirical competitive ratio of SDEM-ON against the offline optimum.
//
// On agreeable-deadline inputs the Section 5 DP is provably optimal, so
// simulating SDEM-ON on the same trace (unbounded cores, same accounting)
// gives a true online/offline energy ratio. Also reports the
// memory-oblivious comparison: per-core single-core speed-scaling-with-
// sleep (critical-speed method) run on the same assignment — what you get
// if every core optimizes itself and nobody owns the shared memory.
#include "bench_util.hpp"
#include "core/agreeable.hpp"
#include "core/online_sdem.hpp"
#include "single/sss.hpp"
#include "sched/validate.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  auto cfg = paper_cfg();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  cfg.num_cores = 0;  // unbounded, matching the offline model
  constexpr int kSeeds = 12;
  constexpr int kTasks = 10;

  print_header("SDEM-ON vs offline optimum (agreeable inputs)",
               "ratio = E(online) / E(offline DP); also the memory-oblivious "
               "per-core critical-speed scheduler on the same traces");

  Table t({"spread (ms)", "avg ratio", "worst ratio",
           "memory-oblivious ratio"});
  for (double spread : {0.010, 0.040, 0.100, 0.250}) {
    double sum = 0.0, worst = 0.0, obliv = 0.0;
    int counted = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const TaskSet ts =
          make_agreeable(kTasks, seed * 577 + int(spread * 1e4), spread);
      const auto offline = solve_agreeable(ts, cfg);
      if (!offline.feasible) continue;

      SdemOnPolicy pol;
      const auto sim = simulate(ts, cfg, pol);
      EnergyOptions opts;  // busy-span horizon, same as the offline model
      const double online = compute_energy(sim.schedule, cfg, opts)
                                .system_total();
      const double ratio = online / offline.energy;
      sum += ratio;
      worst = std::max(worst, ratio);

      // Memory-oblivious: every task on its own core, per-core critical-
      // speed sleep schedule; memory follows whatever union results.
      Schedule per_core;
      int core = 0;
      for (const auto& task : ts.tasks()) {
        const auto sss = solve_single_core_sleep(
            {{task.id, task.release, task.deadline, task.work}}, cfg.core,
            core++);
        for (const auto& seg : sss.schedule.segments()) per_core.add(seg);
      }
      obliv += compute_energy(per_core, cfg, opts).system_total() /
               offline.energy;
      ++counted;
    }
    t.add_row({Table::fmt(spread * 1e3, 0), Table::fmt(sum / counted, 4),
               Table::fmt(worst, 4), Table::fmt(obliv / counted, 4)});
  }
  print_table(t);
  std::printf("ratios are >= 1 by optimality of the DP; the online gap is "
              "the price of not knowing the future,\nthe oblivious gap is "
              "the price of ignoring the shared memory (the paper's core "
              "argument).\n");
  return 0;
}
