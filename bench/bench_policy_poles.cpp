// The title question as a bench: race to idle, or not?
//
// Five online policies on the same synthetic traces across utilizations:
// the two poles (race at s_up / stretch to deadlines), the single-core
// folklore answer (critical speed), the memory-naive baseline (MBKP with
// sleeping memory = MBKPS), and the paper's SDEM-ON. The point: which pole
// wins depends on the operating point, and SDEM-ON dominates both
// everywhere because it *balances* rather than picks a side.
#include "baseline/mbkp.hpp"
#include "baseline/simple_policies.hpp"
#include "bench_util.hpp"
#include "core/online_sdem.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto cfg = paper_cfg();
  constexpr int kSeeds = 10;

  print_header("Race to idle or not — the five policies (system energy, J)",
               "synthetic traces, 120 tasks, paper defaults; avg over " +
                   std::to_string(kSeeds) + " seeds");

  Table t({"x (ms)", "race@s_up", "stretch", "critical", "MBKPS", "SDEM-ON"});
  for (int x = 100; x <= 800; x += 100) {
    double e[5] = {0, 0, 0, 0, 0};
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SyntheticParams p;
      p.num_tasks = 120;
      p.max_interarrival = x / 1000.0;
      const TaskSet ts = make_synthetic(p, seed * 811 + x);

      RaceToIdlePolicy race;
      StretchPolicy stretch;
      CriticalSpeedPolicy crit;
      MbkpPolicy mbkp;
      SdemOnPolicy sdem;
      OnlinePolicy* pols[5] = {&race, &stretch, &crit, &mbkp, &sdem};
      for (int i = 0; i < 5; ++i) {
        const auto sim = simulate(ts, cfg, *pols[i]);
        e[i] += evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "x")
                    .energy.system_total();
      }
    }
    t.add_row({std::to_string(x), Table::fmt(e[0] / kSeeds, 3),
               Table::fmt(e[1] / kSeeds, 3), Table::fmt(e[2] / kSeeds, 3),
               Table::fmt(e[3] / kSeeds, 3), Table::fmt(e[4] / kSeeds, 3)});
  }
  print_table(t);
  return 0;
}
