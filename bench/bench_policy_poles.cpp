// The title question as a bench: race to idle, or not?
//
// Five online policies on the same synthetic traces across utilizations:
// the two poles (race at s_up / stretch to deadlines), the single-core
// folklore answer (critical speed), the memory-naive baseline (MBKP with
// sleeping memory = MBKPS), and the paper's SDEM-ON. The point: which pole
// wins depends on the operating point, and SDEM-ON dominates both
// everywhere because it *balances* rather than picks a side.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "policy_poles"; this binary prints its default run (same bytes
// as the pre-registry standalone). `sdem_bench_runner --filter policy_poles`
// adds JSON output, seed/job control, and markdown rendering.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("policy_poles"); }
