// Extension: how much of SDEM-ON's edge depends on the memory being
// monolithic?
//
// With rank-granular power-down (one rank per core at the limit), a rank
// naps whenever *its* core idles — no common-idle-time coordination needed.
// This bench re-accounts the SDEM-ON and MBKP schedules under 1/2/4/8
// ranks: the coordination advantage (SDEM-ON vs the memory-oblivious
// schedule) should shrink as ranks decouple the cores.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "rank_granularity"; this binary prints its default run (same
// bytes as the pre-registry standalone). `sdem_bench_runner --filter
// rank_granularity` adds JSON output, seed/job control, and markdown.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("rank_granularity"); }
