// Extension: how much of SDEM-ON's edge depends on the memory being
// monolithic?
//
// With rank-granular power-down (one rank per core at the limit), a rank
// naps whenever *its* core idles — no common-idle-time coordination needed.
// This bench re-accounts the SDEM-ON and MBKP schedules under 1/2/4/8
// ranks: the coordination advantage (SDEM-ON vs the memory-oblivious
// schedule) should shrink as ranks decouple the cores.
#include "baseline/mbkp.hpp"
#include "bench_util.hpp"
#include "core/online_sdem.hpp"
#include "mem/ranks.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto cfg = paper_cfg();
  constexpr int kSeeds = 10;

  print_header("Extension — rank-granular memory power-down",
               "memory energy (J, avg) of the same schedules accounted with "
               "1..8 ranks; x = 300 ms, alpha_m = 4 W, xi_m = 40 ms");

  Table t({"ranks", "SDEM-ON mem (J)", "MBKP-sched mem (J)",
           "SDEM-ON advantage %"});
  for (int ranks : {1, 2, 4, 8}) {
    double e_sdem = 0.0, e_mbkp = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SyntheticParams p;
      p.num_tasks = 120;
      p.max_interarrival = 0.300;
      const TaskSet ts = make_synthetic(p, seed * 41);
      SdemOnPolicy sdem;
      const auto s1 = simulate(ts, cfg, sdem);
      e_sdem += rank_memory_energy(s1.schedule, cfg.memory, ranks, 8,
                                   s1.horizon_lo, s1.horizon_hi)
                    .total();
      MbkpPolicy mbkp;
      const auto s2 = simulate(ts, cfg, mbkp);
      e_mbkp += rank_memory_energy(s2.schedule, cfg.memory, ranks, 8,
                                   s2.horizon_lo, s2.horizon_hi)
                    .total();
    }
    t.add_row({std::to_string(ranks), Table::fmt(e_sdem / kSeeds, 3),
               Table::fmt(e_mbkp / kSeeds, 3),
               Table::fmt(100.0 * (e_mbkp - e_sdem) / e_mbkp, 2)});
  }
  print_table(t);
  std::printf("monolithic memory (1 rank) is where coordinating the common "
              "idle time — this paper — matters most.\n");
  return 0;
}
