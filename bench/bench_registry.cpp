#include "bench_registry.hpp"

#include <cstdarg>
#include <cstdio>

namespace sdem::bench {

// Defined in bench_experiments.cpp; appends every experiment in paper order.
void register_all_experiments(std::vector<Experiment>& out);

const std::vector<Experiment>& all_experiments() {
  static const std::vector<Experiment> experiments = [] {
    std::vector<Experiment> out;
    register_all_experiments(out);
    return out;
  }();
  return experiments;
}

const Experiment* find_experiment(const std::string& name) {
  for (const Experiment& e : all_experiments())
    if (e.name == name) return &e;
  return nullptr;
}

std::vector<const Experiment*> match_experiments(const std::string& filter) {
  std::vector<const Experiment*> out;
  if (filter.empty() || filter == "all") {
    for (const Experiment& e : all_experiments()) out.push_back(&e);
    return out;
  }
  std::vector<std::string> needles;
  std::size_t start = 0;
  while (start <= filter.size()) {
    const std::size_t comma = filter.find(',', start);
    const std::size_t end = comma == std::string::npos ? filter.size() : comma;
    if (end > start) needles.push_back(filter.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  for (const Experiment& e : all_experiments()) {
    for (const std::string& n : needles) {
      if (e.name.find(n) != std::string::npos) {
        out.push_back(&e);
        break;
      }
    }
  }
  return out;
}

void print_result(const ExperimentResult& r) {
  print_header(r.header_title, r.header_what);
  for (const Table& t : r.tables) print_table(t);
  for (const std::string& f : r.footers) std::printf("%s\n", f.c_str());
}

int run_standalone(const std::string& name) {
  const Experiment* e = find_experiment(name);
  if (e == nullptr) {
    std::fprintf(stderr, "unknown experiment: %s\n", name.c_str());
    return 1;
  }
  ThreadPool pool(ThreadPool::hardware_jobs());
  RunOptions opt;
  opt.pool = &pool;
  print_result(e->run(opt));
  return 0;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

Json seed_comparison_json(const SeedComparison& sc) {
  Json j = Json::object();
  j.set("seed", static_cast<std::uint64_t>(sc.seed));
  j.set("sdem_system_saving", sc.sdem_system);
  j.set("mbkps_system_saving", sc.mbkps_system);
  j.set("sdem_memory_saving", sc.sdem_memory);
  j.set("mbkps_memory_saving", sc.mbkps_memory);
  j.set("energy_mbkp_j", sc.energy_mbkp);
  j.set("energy_mbkps_j", sc.energy_mbkps);
  j.set("energy_sdem_j", sc.energy_sdem);
  j.set("memory_sleep_sdem_s", sc.sleep_sdem);
  j.set("memory_sleep_mbkps_s", sc.sleep_mbkps);
  j.set("solver_seconds", sc.solver_seconds);
  // Per-cell deterministic counter attribution (docs/observability.md):
  // identical at any --jobs/--tile, but strictly additive schema — the
  // runner's --stable strips it so pre-attribution goldens stay valid.
  if (!sc.counters.empty()) {
    Json c = Json::object();
    for (const auto& [name, v] : sc.counters) c.set(name, v);
    j.set("counters", std::move(c));
  }
  return j;
}

void attach_seeds(Json& row, const std::vector<SeedComparison>& seeds,
                  double* solver_seconds_total) {
  Json arr = Json::array();
  for (const SeedComparison& sc : seeds) {
    arr.push_back(seed_comparison_json(sc));
    if (solver_seconds_total) *solver_seconds_total += sc.solver_seconds;
  }
  row.set("per_seed", std::move(arr));
}

}  // namespace sdem::bench
