// Named-experiment registry for the paper's evaluation (§8).
//
// Each figure/table sweep that used to live only in a standalone bench
// main registers here as an Experiment: a name ("fig6a"), the paper item
// it reproduces, and a run() callback that executes the sweep — in
// parallel across seeds when RunOptions.pool is set — and returns both the
// human-readable tables (byte-compatible with the legacy bench stdout) and
// a structured JSON payload with full-precision per-seed metrics.
//
// Consumers:
//   * tools/sdem_bench_runner.cpp — runs any subset (--filter, --seeds,
//     --jobs) and writes BENCH_<name>.json (schema in docs/benchmarks.md);
//   * the legacy bench mains (bench_fig6a_memory_saving, ...) — call
//     run_standalone(name) so `./bench_fig6a_memory_saving` prints exactly
//     what it always printed.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "support/json.hpp"

namespace sdem::bench {

struct RunOptions {
  int seeds = 0;               ///< 0 → the experiment's paper default
  ThreadPool* pool = nullptr;  ///< null → serial reference execution
  /// Grid cells per pool task for grid-shaped sweeps (see
  /// collect_grid_comparisons): > 1 reuses one comparison scratch across
  /// that many adjacent (point, seed) cells. Results are tile-invariant.
  int tile = 1;
};

struct ExperimentResult {
  std::string header_title;  ///< first print_header line
  std::string header_what;   ///< second print_header line
  std::vector<Table> tables;
  std::vector<std::string> footers;  ///< lines printed after the tables
  Json data;                         ///< experiment-specific JSON payload
  double solver_seconds_total = 0.0;  ///< sum of per-seed run_comparison time
};

struct Experiment {
  std::string name;         ///< registry key, e.g. "fig6a"
  std::string paper_item;   ///< "Fig. 6a", "Table 4", ...
  std::string binary;       ///< legacy standalone binary, for cross-reference
  std::string description;  ///< one line, shown by --list
  int default_seeds = 10;
  std::function<ExperimentResult(const RunOptions&)> run;
};

/// All registered experiments, in registration (paper) order.
const std::vector<Experiment>& all_experiments();

/// Exact-name lookup; null when absent.
const Experiment* find_experiment(const std::string& name);

/// Comma-separated case-sensitive substring filter against the names;
/// empty or "all" matches everything. Preserves registration order.
std::vector<const Experiment*> match_experiments(const std::string& filter);

/// Print exactly what the legacy standalone bench printed: header, tables
/// (text + CSV), footers.
void print_result(const ExperimentResult& r);

/// Body of a legacy bench main: run `name` at its default seed count on a
/// hardware-sized pool (the output is scheduling-independent) and print it.
/// Returns the process exit code.
int run_standalone(const std::string& name);

/// printf-style formatting into a std::string (for footers).
std::string strf(const char* fmt, ...);

/// Full-precision JSON rendering of one seed's comparison — the
/// bit-identical payload the determinism acceptance check diffs.
Json seed_comparison_json(const SeedComparison& sc);

/// Shared fold: per-seed array + total solver seconds onto `row`.
void attach_seeds(Json& row, const std::vector<SeedComparison>& seeds,
                  double* solver_seconds_total);

}  // namespace sdem::bench
