// Service ingest throughput: parse-on-shard pipeline vs the single-thread
// parse baseline across shard/producer counts (docs/benchmarks.md).
// Registered as "service_throughput"; `sdem_bench_runner --filter
// service_throughput` runs the same sweep with JSON output.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("service_throughput"); }
