// Extension: slack reclamation under WCET pessimism (§2's online slack
// distribution, Zhuo & Chakrabarti).
//
// Tasks execute only a fraction of their declared WCET. SDEM-ON replans on
// early completions, redistributing the slack into slower speeds and longer
// memory sleep; the no-replan variant just idles the freed time away.
//
// The sweep itself lives in bench/bench_experiments.cpp as the registered
// experiment "slack_reclamation"; this binary prints its default run (same
// bytes as the pre-registry standalone). `sdem_bench_runner --filter
// slack_reclamation` adds JSON output, seed/job control, and markdown.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("slack_reclamation"); }
