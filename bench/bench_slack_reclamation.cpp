// Extension: slack reclamation under WCET pessimism (§2's online slack
// distribution, Zhuo & Chakrabarti).
//
// Tasks execute only a fraction of their declared WCET. SDEM-ON replans on
// early completions, redistributing the slack into slower speeds and longer
// memory sleep; the no-replan variant just idles the freed time away.
#include "bench_util.hpp"
#include "core/online_sdem.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  const auto cfg = paper_cfg();
  constexpr int kSeeds = 10;

  print_header("Extension — slack reclamation (actual / WCET sweep)",
               "system energy (J, avg); 'reclaim' replans on completions, "
               "'no-reclaim' keeps the WCET plan; x = 300 ms.\n"
               "Two regimes: the default alpha != 0 races at the critical "
               "speed (per-cycle-optimal already — nothing to reclaim), the "
               "alpha = 0 model stretches, so freed work slows the rest.");

  auto run = [&](const SystemConfig& c, double f, double& e_with,
                 double& e_without) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SyntheticParams p;
      p.num_tasks = 120;
      p.max_interarrival = 0.300;
      const TaskSet ts = make_synthetic(p, seed * 67);
      std::map<int, double> frac;
      for (const auto& task : ts.tasks()) frac[task.id] = f;
      SdemOnPolicy a, b;
      const auto with = simulate_with_actuals(ts, c, a, frac, true);
      const auto without = simulate_with_actuals(ts, c, b, frac, false);
      e_with += evaluate_policy(with, c, SleepDiscipline::kOptimal, "r")
                    .energy.system_total();
      e_without +=
          evaluate_policy(without, c, SleepDiscipline::kOptimal, "n")
              .energy.system_total();
    }
  };

  auto cfg0 = cfg;
  cfg0.core.alpha = 0.0;
  cfg0.core.s_min = 0.0;
  Table t({"actual/WCET", "a!=0 reclaim", "a!=0 none", "gain %",
           "a=0 reclaim", "a=0 none", "gain %"});
  for (double f : {1.0, 0.9, 0.7, 0.5, 0.3}) {
    double w1 = 0, n1 = 0, w0 = 0, n0 = 0;
    run(cfg, f, w1, n1);
    run(cfg0, f, w0, n0);
    t.add_row({Table::fmt(f, 1), Table::fmt(w1 / kSeeds, 3),
               Table::fmt(n1 / kSeeds, 3),
               Table::fmt(100.0 * (n1 - w1) / n1, 2),
               Table::fmt(w0 / kSeeds, 4), Table::fmt(n0 / kSeeds, 4),
               Table::fmt(100.0 * (n0 - w0) / n0, 2)});
  }
  print_table(t);
  std::printf(
      "Finding: energy falls with actual/WCET (freed work shortens the\n"
      "memory busy time by itself), but replanning to *slow down* the rest\n"
      "adds nothing: speeds already sit at their per-cycle optima and the\n"
      "shared memory punishes any stretch — classic single-core slack\n"
      "reclamation does not transfer to the system-wide problem.\n");
  return 0;
}
