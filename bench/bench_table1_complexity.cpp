// Table 1: measured runtime scaling of each SDEM scheme, matching the
// complexity column of the paper's subproblem table:
//
//   common release, alpha == 0 : O(n log n)  (binary search; scan is O(n)
//                                             after the sort)
//   common release, alpha != 0 : O(n^2) in the paper; this implementation
//                                uses suffix sums, O(n log n)
//   agreeable DP,   alpha == 0 : O(n^4 + n^2) in the paper (numeric block
//                                solver here; expect steep growth)
//   agreeable DP,   alpha != 0 : O(n^5 + n^2) in the paper
//   online heuristic           : one Section 4 solve per arrival
#include <chrono>

#include "bench_util.hpp"
#include "core/agreeable.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/online_sdem.hpp"
#include "sim/event_sim.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

namespace {

template <typename F>
double time_ms(F&& f, int reps = 3) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main() {
  print_header("Table 1 — runtime scaling of the SDEM schemes",
               "best-of-3 wall times (ms); doubling n shows the growth rate");

  {
    Table t({"n", "common-release a=0 scan", "a=0 binary", "a!=0 scan"});
    auto cfg = paper_cfg();
    cfg.memory.xi_m = 0.0;
    for (int n : {1000, 2000, 4000, 8000, 16000, 32000}) {
      const TaskSet ts = make_common_release(n, 0.0, 42);
      const double scan =
          time_ms([&] { solve_common_release_alpha0(ts, cfg); });
      const double bin =
          time_ms([&] { solve_common_release_alpha0_binary(ts, cfg); });
      auto cfg_a = cfg;
      cfg_a.core.alpha = 0.31;
      const double alpha =
          time_ms([&] { solve_common_release_alpha(ts, cfg_a); });
      t.add_row({std::to_string(n), Table::fmt(scan, 3), Table::fmt(bin, 3),
                 Table::fmt(alpha, 3)});
    }
    print_table(t);
  }

  {
    Table t({"n", "agreeable DP a=0 (ms)", "agreeable DP a!=0 (ms)"});
    for (int n : {4, 6, 8, 10, 12}) {
      const TaskSet ts = make_agreeable(n, 7, 0.060);
      auto cfg0 = paper_cfg();
      cfg0.core.alpha = 0.0;
      cfg0.memory.xi_m = 0.0;
      auto cfga = paper_cfg();
      cfga.memory.xi_m = 0.0;
      const double t0 = time_ms([&] { solve_agreeable(ts, cfg0); }, 1);
      const double ta = time_ms([&] { solve_agreeable(ts, cfga); }, 1);
      t.add_row({std::to_string(n), Table::fmt(t0, 2), Table::fmt(ta, 2)});
    }
    print_table(t);
  }

  {
    Table t({"tasks", "SDEM-ON full simulation (ms)", "replans"});
    for (int n : {100, 200, 400, 800}) {
      SyntheticParams p;
      p.num_tasks = n;
      p.max_interarrival = 0.200;
      const TaskSet ts = make_synthetic(p, 3);
      SdemOnPolicy pol;
      SimResult res;
      const double ms =
          time_ms([&] { res = simulate(ts, paper_cfg(), pol); }, 1);
      t.add_row({std::to_string(n), Table::fmt(ms, 2),
                 std::to_string(res.replans)});
    }
    print_table(t);
  }
  return 0;
}
