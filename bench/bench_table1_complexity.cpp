// Table 1: measured runtime scaling of each SDEM scheme, matching the
// complexity column of the paper's subproblem table:
//
//   common release, alpha == 0 : O(n log n)  (binary search; scan is O(n)
//                                             after the sort)
//   common release, alpha != 0 : O(n^2) in the paper; this implementation
//                                uses suffix sums, O(n log n)
//   agreeable DP,   alpha == 0 : O(n^4 + n^2) in the paper; the incremental
//                                block table (core/block_context.hpp) drops
//                                the per-pair rebuild — see docs/performance.md
//   agreeable DP,   alpha != 0 : O(n^5 + n^2) in the paper
//   online heuristic           : one Section 4 solve per arrival
//
// The sweep lives in bench/bench_experiments.cpp as the registered
// experiment "table1"; this binary prints its default run (same table
// shapes as the pre-registry standalone). `sdem_bench_runner --filter
// table1` adds the full-precision JSON (BENCH_table1.json) the performance
// docs and CI artifact are built from.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("table1"); }
