// Table 4: the evaluation's parameter grid and defaults, plus a smoke run
// at the default operating point (x = 400 ms, alpha_m = 4 W, xi_m = 40 ms)
// reporting the three comparators' absolute energies — the anchor row the
// Fig. 7 sweeps move away from.
//
// The sweep is the registered experiment "table4" (bench_experiments.cpp);
// this binary prints its default run, byte-compatible with the
// pre-registry standalone.
#include "bench_registry.hpp"

int main() { return sdem::bench::run_standalone("table4"); }
