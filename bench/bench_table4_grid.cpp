// Table 4: the evaluation's parameter grid and defaults, plus a smoke run
// at the default operating point (x = 400 ms, alpha_m = 4 W, xi_m = 40 ms)
// reporting the three comparators' absolute energies — the anchor row the
// Fig. 7 sweeps move away from.
#include "bench_util.hpp"
#include "workload/generator.hpp"

using namespace sdem;
using namespace sdem::bench;

int main() {
  print_header("Table 4 — parameter grid and the default operating point",
               "* marks the default used when sweeping other parameters");

  {
    Table t({"point", "1", "2", "3", "4", "5", "6", "7", "8"});
    t.add_row({"x (ms)", "100", "200", "300", "400*", "500", "600", "700",
               "800"});
    t.add_row({"alpha_m (W)", "1", "2", "3", "4*", "5", "6", "7", "8"});
    t.add_row({"xi_m (ms)", "15", "20", "25", "30", "40*", "50", "60", "70"});
    print_table(t);
  }

  const auto cfg = paper_cfg();
  constexpr int kSeeds = 10;
  double e_mbkp = 0, e_mbkps = 0, e_sdem = 0, sleep_sdem = 0, sleep_mbkps = 0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SyntheticParams p;
    p.num_tasks = 120;
    p.max_interarrival = 0.400;
    const auto cmp = run_comparison(make_synthetic(p, seed * 97), cfg);
    e_mbkp += cmp.mbkp.energy.system_total();
    e_mbkps += cmp.mbkps.energy.system_total();
    e_sdem += cmp.sdem.energy.system_total();
    sleep_sdem += cmp.sdem.memory_sleep_time;
    sleep_mbkps += cmp.mbkps.memory_sleep_time;
  }
  Table t({"metric", "MBKP", "MBKPS", "SDEM-ON"});
  t.add_row({"system energy (J, avg)", Table::fmt(e_mbkp / kSeeds, 4),
             Table::fmt(e_mbkps / kSeeds, 4), Table::fmt(e_sdem / kSeeds, 4)});
  t.add_row({"saving vs MBKP (%)", "0.00",
             Table::fmt(100.0 * (e_mbkp - e_mbkps) / e_mbkp, 2),
             Table::fmt(100.0 * (e_mbkp - e_sdem) / e_mbkp, 2)});
  t.add_row({"memory sleep (s, avg)", "0.0000",
             Table::fmt(sleep_mbkps / kSeeds, 4),
             Table::fmt(sleep_sdem / kSeeds, 4)});
  print_table(t);
  return 0;
}
