// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) the experiment header with all parameters and
// seeds, (b) an aligned table of the series the paper plots, and (c) the
// same rows as CSV for downstream plotting. The same sweeps are registered
// with bench/bench_registry.hpp, so `sdem_bench_runner --md` re-renders any
// table as the markdown embedded in EXPERIMENTS.md and `--out` captures the
// per-seed numbers as BENCH_<name>.json (see docs/benchmarks.md for the
// schema and the regeneration commands).
//
// Seed sweeps run through support/thread_pool.hpp: seeds are computed in
// parallel into per-seed slots, then folded in seed order, so the printed
// statistics are bit-identical whatever the job count or scheduling.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "model/power.hpp"
#include "obs/obs.hpp"
#include "sim/metrics.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace sdem::bench {

/// Paper §8.1.3 configuration: A57-like cores with the real 700..1900 MHz
/// DVFS window (online policies clamp to it; the planners' speeds already
/// sit above the floor at the default alpha because s_m ~ 849 MHz), 8 cores
/// with the §8.1.2 round-robin assignment.
inline SystemConfig paper_cfg() { return SystemConfig::paper_default(); }

inline void print_header(const std::string& title, const std::string& what) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==========================================================\n");
}

inline void print_table(const Table& t) {
  std::printf("%s\n", t.to_text().c_str());
  std::printf("-- CSV --\n%s\n", t.to_csv().c_str());
}

/// Per-seed saving statistics for one operating point.
struct SavingStats {
  Stats sdem_system;
  Stats mbkps_system;
  Stats sdem_memory;
  Stats mbkps_memory;
};

/// Everything one seed of a three-way comparison produces: the four savings
/// the figures plot, the absolute energies Table 4 anchors on, and the
/// wall-clock the seed's run_comparison took (simulate + account, i.e. the
/// solver time the runner records per seed).
struct SeedComparison {
  std::uint64_t seed = 0;
  double sdem_system = 0.0;   ///< system_saving_sdem()
  double mbkps_system = 0.0;  ///< system_saving_mbkps()
  double sdem_memory = 0.0;   ///< memory_saving_sdem()
  double mbkps_memory = 0.0;  ///< memory_saving_mbkps()
  double energy_mbkp = 0.0;   ///< absolute system energies, J
  double energy_mbkps = 0.0;
  double energy_sdem = 0.0;
  double sleep_sdem = 0.0;  ///< memory sleep, s
  double sleep_mbkps = 0.0;
  double solver_seconds = 0.0;
  /// Deterministic-domain counter deltas attributed to this cell's solve
  /// (name-sorted, zero deltas dropped) — the per-(point, seed) attribution
  /// the runner JSON exposes so counter regressions localize to a cell.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// after - before for two same-thread Registry::local_counters() reads.
/// Counters only grow and cells are never removed, so `after` is a
/// superset of `before` with values >= ; both are name-sorted, so one
/// merge pass suffices. Zero deltas are dropped.
inline std::vector<std::pair<std::string, std::uint64_t>> counter_delta(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::size_t bi = 0;
  for (const auto& [name, v] : after) {
    while (bi < before.size() && before[bi].first < name) ++bi;
    std::uint64_t prev = 0;
    if (bi < before.size() && before[bi].first == name) prev = before[bi].second;
    if (v > prev) out.emplace_back(name, v - prev);
  }
  return out;
}

/// One cell's work, shared by the seed and grid collectors: run the
/// comparison with the caller's scratch, fill the slot, and attribute the
/// worker thread's deterministic counter delta to the cell. The cell runs
/// entirely on one thread, so the delta is a pure function of (trace, cfg)
/// whatever the job count, tile size, or scheduling.
inline void fill_seed_comparison(SeedComparison& sc, std::uint64_t seed,
                                 const TaskSet& trace, const SystemConfig& cfg,
                                 ComparisonScratch& scratch) {
  const auto before = obs::Registry::instance().local_counters();
  const auto t0 = std::chrono::steady_clock::now();
  const Comparison cmp = run_comparison(trace, cfg, scratch);
  const auto t1 = std::chrono::steady_clock::now();
  sc.seed = seed;
  sc.sdem_system = cmp.system_saving_sdem();
  sc.mbkps_system = cmp.system_saving_mbkps();
  sc.sdem_memory = cmp.memory_saving_sdem();
  sc.mbkps_memory = cmp.memory_saving_mbkps();
  sc.energy_mbkp = cmp.mbkp.energy.system_total();
  sc.energy_mbkps = cmp.mbkps.energy.system_total();
  sc.energy_sdem = cmp.sdem.energy.system_total();
  sc.sleep_sdem = cmp.sdem.memory_sleep_time;
  sc.sleep_mbkps = cmp.mbkps.memory_sleep_time;
  sc.solver_seconds = std::chrono::duration<double>(t1 - t0).count();
  sc.counters = counter_delta(before, obs::Registry::instance().local_counters());
}

/// Run `seeds` independent comparisons, in parallel when `pool` is given.
/// Slot i holds seed i+1; the returned vector is always in seed order.
template <typename MakeTrace>
std::vector<SeedComparison> collect_seed_comparisons(MakeTrace&& make_trace,
                                                     const SystemConfig& cfg,
                                                     int seeds,
                                                     ThreadPool* pool = nullptr) {
  std::vector<SeedComparison> out(static_cast<std::size_t>(seeds));
  parallel_for_seeds(pool, seeds, [&](std::uint64_t seed, std::size_t i) {
    ComparisonScratch scratch;
    fill_seed_comparison(out[i], seed, make_trace(seed), cfg, scratch);
  });
  return out;
}

/// Grid generalization of collect_seed_comparisons: every (operating point,
/// seed) cell runs independently on the pool, so sweeps with many points
/// and few seeds — fig7's 64 cells, a --seeds 2 rerun — still occupy every
/// worker. `make_trace(point, seed)` builds the cell's trace,
/// `cfg_for(point)` its config. `tile` > 1 batches that many consecutive
/// point-major cells per pool task and reuses one ComparisonScratch across
/// the batch (parallel_for_grid_tiled), amortizing the policies' workspace
/// growth; the serial path always reuses one scratch for the whole grid.
/// Returns one seed-ordered vector per point; cells are pure functions of
/// (point, seed) and scratch reuse is semantically stateless, so the
/// result is bit-identical to the serial point-major loop at any job count
/// and tile size.
template <typename MakeTrace, typename CfgFor>
std::vector<std::vector<SeedComparison>> collect_grid_comparisons(
    MakeTrace&& make_trace, CfgFor&& cfg_for, int points, int seeds,
    ThreadPool* pool = nullptr, int tile = 1) {
  std::vector<std::vector<SeedComparison>> out(
      static_cast<std::size_t>(points),
      std::vector<SeedComparison>(static_cast<std::size_t>(seeds)));
  parallel_for_grid_tiled(
      pool, points, seeds, tile, [] { return ComparisonScratch(); },
      [&](ComparisonScratch& scratch, std::size_t point, std::uint64_t seed,
          std::size_t) {
        fill_seed_comparison(out[point][seed - 1], seed,
                             make_trace(point, seed), cfg_for(point), scratch);
      });
  return out;
}

/// Fold per-seed comparisons into the figures' Welford accumulators, in
/// seed order (Welford is order-sensitive; this keeps --jobs N output
/// byte-identical to the serial loop it replaced).
inline SavingStats to_saving_stats(const std::vector<SeedComparison>& seeds) {
  SavingStats out;
  for (const SeedComparison& sc : seeds) {
    out.sdem_system.add(sc.sdem_system);
    out.mbkps_system.add(sc.mbkps_system);
    out.sdem_memory.add(sc.sdem_memory);
    out.mbkps_memory.add(sc.mbkps_memory);
  }
  return out;
}

template <typename MakeTrace>
SavingStats collect_comparison(MakeTrace&& make_trace, const SystemConfig& cfg,
                               int seeds, ThreadPool* pool = nullptr) {
  return to_saving_stats(
      collect_seed_comparisons(make_trace, cfg, seeds, pool));
}

/// Average a metric over seeds via a comparison callback.
template <typename MakeTrace>
void average_comparison(MakeTrace&& make_trace, const SystemConfig& cfg,
                        int seeds, double* sdem_saving, double* mbkps_saving,
                        double* sdem_mem_saving, double* mbkps_mem_saving,
                        ThreadPool* pool = nullptr) {
  const auto cmps = collect_seed_comparisons(make_trace, cfg, seeds, pool);
  double ss = 0, ms = 0, smem = 0, mmem = 0;
  for (const SeedComparison& sc : cmps) {
    ss += sc.sdem_system;
    ms += sc.mbkps_system;
    smem += sc.sdem_memory;
    mmem += sc.mbkps_memory;
  }
  if (sdem_saving) *sdem_saving = ss / seeds;
  if (mbkps_saving) *mbkps_saving = ms / seeds;
  if (sdem_mem_saving) *sdem_mem_saving = smem / seeds;
  if (mbkps_mem_saving) *mbkps_mem_saving = mmem / seeds;
}

/// "12.34 ±0.56" percentage rendering of a savings Stats.
inline std::string pct(const Stats& s) {
  return Table::fmt(100.0 * s.mean(), 2) + " +-" +
         Table::fmt(100.0 * s.sem(), 2);
}

}  // namespace sdem::bench
