// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) the experiment header with all parameters and
// seeds, (b) an aligned table of the series the paper plots, and (c) the
// same rows as CSV for downstream plotting. Rows can be pasted into
// EXPERIMENTS.md directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "model/power.hpp"
#include "sim/metrics.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace sdem::bench {

/// Paper §8.1.3 configuration: A57-like cores with the real 700..1900 MHz
/// DVFS window (online policies clamp to it; the planners' speeds already
/// sit above the floor at the default alpha because s_m ~ 849 MHz), 8 cores
/// with the §8.1.2 round-robin assignment.
inline SystemConfig paper_cfg() { return SystemConfig::paper_default(); }

inline void print_header(const std::string& title, const std::string& what) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==========================================================\n");
}

inline void print_table(const Table& t) {
  std::printf("%s\n", t.to_text().c_str());
  std::printf("-- CSV --\n%s\n", t.to_csv().c_str());
}

/// Per-seed saving statistics for one operating point.
struct SavingStats {
  Stats sdem_system;
  Stats mbkps_system;
  Stats sdem_memory;
  Stats mbkps_memory;
};

template <typename MakeTrace>
SavingStats collect_comparison(MakeTrace&& make_trace,
                               const SystemConfig& cfg, int seeds) {
  SavingStats out;
  for (int s = 1; s <= seeds; ++s) {
    const TaskSet trace = make_trace(static_cast<std::uint64_t>(s));
    const Comparison cmp = run_comparison(trace, cfg);
    out.sdem_system.add(cmp.system_saving_sdem());
    out.mbkps_system.add(cmp.system_saving_mbkps());
    out.sdem_memory.add(cmp.memory_saving_sdem());
    out.mbkps_memory.add(cmp.memory_saving_mbkps());
  }
  return out;
}

/// Average a metric over seeds via a comparison callback.
template <typename MakeTrace>
Comparison average_comparison(MakeTrace&& make_trace, const SystemConfig& cfg,
                              int seeds, double* sdem_saving,
                              double* mbkps_saving, double* sdem_mem_saving,
                              double* mbkps_mem_saving) {
  Comparison last;
  double ss = 0, ms = 0, smem = 0, mmem = 0;
  for (int s = 1; s <= seeds; ++s) {
    const TaskSet trace = make_trace(static_cast<std::uint64_t>(s));
    last = run_comparison(trace, cfg);
    ss += last.system_saving_sdem();
    ms += last.system_saving_mbkps();
    smem += last.memory_saving_sdem();
    mmem += last.memory_saving_mbkps();
  }
  if (sdem_saving) *sdem_saving = ss / seeds;
  if (mbkps_saving) *mbkps_saving = ms / seeds;
  if (sdem_mem_saving) *sdem_mem_saving = smem / seeds;
  if (mbkps_mem_saving) *mbkps_mem_saving = mmem / seeds;
  return last;
}

/// "12.34 ±0.56" percentage rendering of a savings Stats.
inline std::string pct(const Stats& s) {
  return Table::fmt(100.0 * s.mean(), 2) + " +-" +
         Table::fmt(100.0 * s.sem(), 2);
}

}  // namespace sdem::bench
