# Empty dependencies file for bench_ablation_blocks.
# This may be replaced when dependencies are built.
