file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_discrete.dir/bench_ablation_discrete.cpp.o"
  "CMakeFiles/bench_ablation_discrete.dir/bench_ablation_discrete.cpp.o.d"
  "bench_ablation_discrete"
  "bench_ablation_discrete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_discrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
