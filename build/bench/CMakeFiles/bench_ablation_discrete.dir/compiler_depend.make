# Empty compiler generated dependencies file for bench_ablation_discrete.
# This may be replaced when dependencies are built.
