file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_procrastination.dir/bench_ablation_procrastination.cpp.o"
  "CMakeFiles/bench_ablation_procrastination.dir/bench_ablation_procrastination.cpp.o.d"
  "bench_ablation_procrastination"
  "bench_ablation_procrastination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_procrastination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
