# Empty compiler generated dependencies file for bench_ablation_procrastination.
# This may be replaced when dependencies are built.
