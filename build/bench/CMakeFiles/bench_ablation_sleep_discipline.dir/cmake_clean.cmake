file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sleep_discipline.dir/bench_ablation_sleep_discipline.cpp.o"
  "CMakeFiles/bench_ablation_sleep_discipline.dir/bench_ablation_sleep_discipline.cpp.o.d"
  "bench_ablation_sleep_discipline"
  "bench_ablation_sleep_discipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sleep_discipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
