# Empty compiler generated dependencies file for bench_ablation_sleep_discipline.
# This may be replaced when dependencies are built.
