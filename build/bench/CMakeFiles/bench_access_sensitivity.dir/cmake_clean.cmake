file(REMOVE_RECURSE
  "CMakeFiles/bench_access_sensitivity.dir/bench_access_sensitivity.cpp.o"
  "CMakeFiles/bench_access_sensitivity.dir/bench_access_sensitivity.cpp.o.d"
  "bench_access_sensitivity"
  "bench_access_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
