# Empty compiler generated dependencies file for bench_access_sensitivity.
# This may be replaced when dependencies are built.
