file(REMOVE_RECURSE
  "CMakeFiles/bench_bounded_partition.dir/bench_bounded_partition.cpp.o"
  "CMakeFiles/bench_bounded_partition.dir/bench_bounded_partition.cpp.o.d"
  "bench_bounded_partition"
  "bench_bounded_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounded_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
