# Empty dependencies file for bench_bounded_partition.
# This may be replaced when dependencies are built.
