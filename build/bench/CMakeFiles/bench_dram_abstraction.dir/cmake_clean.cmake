file(REMOVE_RECURSE
  "CMakeFiles/bench_dram_abstraction.dir/bench_dram_abstraction.cpp.o"
  "CMakeFiles/bench_dram_abstraction.dir/bench_dram_abstraction.cpp.o.d"
  "bench_dram_abstraction"
  "bench_dram_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dram_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
