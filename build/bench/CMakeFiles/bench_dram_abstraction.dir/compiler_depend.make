# Empty compiler generated dependencies file for bench_dram_abstraction.
# This may be replaced when dependencies are built.
