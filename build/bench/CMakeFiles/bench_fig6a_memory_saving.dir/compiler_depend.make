# Empty compiler generated dependencies file for bench_fig6a_memory_saving.
# This may be replaced when dependencies are built.
