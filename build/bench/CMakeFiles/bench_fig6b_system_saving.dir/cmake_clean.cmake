file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_system_saving.dir/bench_fig6b_system_saving.cpp.o"
  "CMakeFiles/bench_fig6b_system_saving.dir/bench_fig6b_system_saving.cpp.o.d"
  "bench_fig6b_system_saving"
  "bench_fig6b_system_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_system_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
