# Empty compiler generated dependencies file for bench_fig6b_system_saving.
# This may be replaced when dependencies are built.
