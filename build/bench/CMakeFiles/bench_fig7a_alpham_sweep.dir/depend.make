# Empty dependencies file for bench_fig7a_alpham_sweep.
# This may be replaced when dependencies are built.
