# Empty dependencies file for bench_fig7b_xim_sweep.
# This may be replaced when dependencies are built.
