file(REMOVE_RECURSE
  "CMakeFiles/bench_islands.dir/bench_islands.cpp.o"
  "CMakeFiles/bench_islands.dir/bench_islands.cpp.o.d"
  "bench_islands"
  "bench_islands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_islands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
