# Empty dependencies file for bench_islands.
# This may be replaced when dependencies are built.
