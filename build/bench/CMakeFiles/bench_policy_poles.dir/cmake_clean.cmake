file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_poles.dir/bench_policy_poles.cpp.o"
  "CMakeFiles/bench_policy_poles.dir/bench_policy_poles.cpp.o.d"
  "bench_policy_poles"
  "bench_policy_poles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_poles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
