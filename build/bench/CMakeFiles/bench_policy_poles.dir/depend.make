# Empty dependencies file for bench_policy_poles.
# This may be replaced when dependencies are built.
