file(REMOVE_RECURSE
  "CMakeFiles/bench_rank_granularity.dir/bench_rank_granularity.cpp.o"
  "CMakeFiles/bench_rank_granularity.dir/bench_rank_granularity.cpp.o.d"
  "bench_rank_granularity"
  "bench_rank_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rank_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
