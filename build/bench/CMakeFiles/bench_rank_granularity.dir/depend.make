# Empty dependencies file for bench_rank_granularity.
# This may be replaced when dependencies are built.
