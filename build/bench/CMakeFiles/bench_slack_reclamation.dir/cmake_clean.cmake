file(REMOVE_RECURSE
  "CMakeFiles/bench_slack_reclamation.dir/bench_slack_reclamation.cpp.o"
  "CMakeFiles/bench_slack_reclamation.dir/bench_slack_reclamation.cpp.o.d"
  "bench_slack_reclamation"
  "bench_slack_reclamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slack_reclamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
