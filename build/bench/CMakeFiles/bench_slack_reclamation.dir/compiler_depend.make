# Empty compiler generated dependencies file for bench_slack_reclamation.
# This may be replaced when dependencies are built.
