file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_grid.dir/bench_table4_grid.cpp.o"
  "CMakeFiles/bench_table4_grid.dir/bench_table4_grid.cpp.o.d"
  "bench_table4_grid"
  "bench_table4_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
