file(REMOVE_RECURSE
  "CMakeFiles/batch_agreeable.dir/batch_agreeable.cpp.o"
  "CMakeFiles/batch_agreeable.dir/batch_agreeable.cpp.o.d"
  "batch_agreeable"
  "batch_agreeable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_agreeable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
