# Empty compiler generated dependencies file for batch_agreeable.
# This may be replaced when dependencies are built.
