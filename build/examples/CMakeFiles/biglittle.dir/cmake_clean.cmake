file(REMOVE_RECURSE
  "CMakeFiles/biglittle.dir/biglittle.cpp.o"
  "CMakeFiles/biglittle.dir/biglittle.cpp.o.d"
  "biglittle"
  "biglittle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biglittle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
