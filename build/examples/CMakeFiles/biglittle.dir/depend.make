# Empty dependencies file for biglittle.
# This may be replaced when dependencies are built.
