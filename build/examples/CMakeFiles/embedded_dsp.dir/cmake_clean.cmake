file(REMOVE_RECURSE
  "CMakeFiles/embedded_dsp.dir/embedded_dsp.cpp.o"
  "CMakeFiles/embedded_dsp.dir/embedded_dsp.cpp.o.d"
  "embedded_dsp"
  "embedded_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
