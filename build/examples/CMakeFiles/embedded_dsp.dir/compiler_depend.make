# Empty compiler generated dependencies file for embedded_dsp.
# This may be replaced when dependencies are built.
