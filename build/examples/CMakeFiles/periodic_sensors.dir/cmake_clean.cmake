file(REMOVE_RECURSE
  "CMakeFiles/periodic_sensors.dir/periodic_sensors.cpp.o"
  "CMakeFiles/periodic_sensors.dir/periodic_sensors.cpp.o.d"
  "periodic_sensors"
  "periodic_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
