# Empty compiler generated dependencies file for periodic_sensors.
# This may be replaced when dependencies are built.
