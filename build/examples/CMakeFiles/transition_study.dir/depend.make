# Empty dependencies file for transition_study.
# This may be replaced when dependencies are built.
