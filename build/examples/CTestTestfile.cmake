# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_embedded_dsp "/root/repo/build/examples/embedded_dsp")
set_tests_properties(example_embedded_dsp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_batch_agreeable "/root/repo/build/examples/batch_agreeable")
set_tests_properties(example_batch_agreeable PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transition_study "/root/repo/build/examples/transition_study")
set_tests_properties(example_transition_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_periodic_sensors "/root/repo/build/examples/periodic_sensors")
set_tests_properties(example_periodic_sensors PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_server_consolidation "/root/repo/build/examples/server_consolidation")
set_tests_properties(example_server_consolidation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_biglittle "/root/repo/build/examples/biglittle")
set_tests_properties(example_biglittle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
