
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/mbkp.cpp" "src/CMakeFiles/sdem.dir/baseline/mbkp.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/baseline/mbkp.cpp.o.d"
  "/root/repo/src/baseline/oa.cpp" "src/CMakeFiles/sdem.dir/baseline/oa.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/baseline/oa.cpp.o.d"
  "/root/repo/src/baseline/simple_policies.cpp" "src/CMakeFiles/sdem.dir/baseline/simple_policies.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/baseline/simple_policies.cpp.o.d"
  "/root/repo/src/baseline/yds.cpp" "src/CMakeFiles/sdem.dir/baseline/yds.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/baseline/yds.cpp.o.d"
  "/root/repo/src/bounded/bounded_scheduler.cpp" "src/CMakeFiles/sdem.dir/bounded/bounded_scheduler.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/bounded/bounded_scheduler.cpp.o.d"
  "/root/repo/src/bounded/partition.cpp" "src/CMakeFiles/sdem.dir/bounded/partition.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/bounded/partition.cpp.o.d"
  "/root/repo/src/core/agreeable.cpp" "src/CMakeFiles/sdem.dir/core/agreeable.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/agreeable.cpp.o.d"
  "/root/repo/src/core/algorithm1.cpp" "src/CMakeFiles/sdem.dir/core/algorithm1.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/algorithm1.cpp.o.d"
  "/root/repo/src/core/block.cpp" "src/CMakeFiles/sdem.dir/core/block.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/block.cpp.o.d"
  "/root/repo/src/core/common_release_alpha.cpp" "src/CMakeFiles/sdem.dir/core/common_release_alpha.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/common_release_alpha.cpp.o.d"
  "/root/repo/src/core/common_release_alpha0.cpp" "src/CMakeFiles/sdem.dir/core/common_release_alpha0.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/common_release_alpha0.cpp.o.d"
  "/root/repo/src/core/common_release_hetero.cpp" "src/CMakeFiles/sdem.dir/core/common_release_hetero.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/common_release_hetero.cpp.o.d"
  "/root/repo/src/core/discrete_solver.cpp" "src/CMakeFiles/sdem.dir/core/discrete_solver.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/discrete_solver.cpp.o.d"
  "/root/repo/src/core/discretize.cpp" "src/CMakeFiles/sdem.dir/core/discretize.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/discretize.cpp.o.d"
  "/root/repo/src/core/islands.cpp" "src/CMakeFiles/sdem.dir/core/islands.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/islands.cpp.o.d"
  "/root/repo/src/core/lemma3.cpp" "src/CMakeFiles/sdem.dir/core/lemma3.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/lemma3.cpp.o.d"
  "/root/repo/src/core/lower_bound.cpp" "src/CMakeFiles/sdem.dir/core/lower_bound.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/lower_bound.cpp.o.d"
  "/root/repo/src/core/online_sdem.cpp" "src/CMakeFiles/sdem.dir/core/online_sdem.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/online_sdem.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/CMakeFiles/sdem.dir/core/reference.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/reference.cpp.o.d"
  "/root/repo/src/core/transition.cpp" "src/CMakeFiles/sdem.dir/core/transition.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/core/transition.cpp.o.d"
  "/root/repo/src/mem/contention.cpp" "src/CMakeFiles/sdem.dir/mem/contention.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/mem/contention.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/sdem.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/ranks.cpp" "src/CMakeFiles/sdem.dir/mem/ranks.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/mem/ranks.cpp.o.d"
  "/root/repo/src/model/access.cpp" "src/CMakeFiles/sdem.dir/model/access.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/model/access.cpp.o.d"
  "/root/repo/src/model/power.cpp" "src/CMakeFiles/sdem.dir/model/power.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/model/power.cpp.o.d"
  "/root/repo/src/model/task.cpp" "src/CMakeFiles/sdem.dir/model/task.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/model/task.cpp.o.d"
  "/root/repo/src/model/voltage.cpp" "src/CMakeFiles/sdem.dir/model/voltage.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/model/voltage.cpp.o.d"
  "/root/repo/src/sched/admission.cpp" "src/CMakeFiles/sdem.dir/sched/admission.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/sched/admission.cpp.o.d"
  "/root/repo/src/sched/energy.cpp" "src/CMakeFiles/sdem.dir/sched/energy.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/sched/energy.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/sdem.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/svg.cpp" "src/CMakeFiles/sdem.dir/sched/svg.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/sched/svg.cpp.o.d"
  "/root/repo/src/sched/trace_io.cpp" "src/CMakeFiles/sdem.dir/sched/trace_io.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/sched/trace_io.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/CMakeFiles/sdem.dir/sched/validate.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/sched/validate.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/CMakeFiles/sdem.dir/sim/event_sim.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/sim/event_sim.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/sdem.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/single/sss.cpp" "src/CMakeFiles/sdem.dir/single/sss.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/single/sss.cpp.o.d"
  "/root/repo/src/support/numeric.cpp" "src/CMakeFiles/sdem.dir/support/numeric.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/support/numeric.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/sdem.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/support/table.cpp.o.d"
  "/root/repo/src/workload/dspstone.cpp" "src/CMakeFiles/sdem.dir/workload/dspstone.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/workload/dspstone.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/sdem.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/periodic.cpp" "src/CMakeFiles/sdem.dir/workload/periodic.cpp.o" "gcc" "src/CMakeFiles/sdem.dir/workload/periodic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
