file(REMOVE_RECURSE
  "libsdem.a"
)
