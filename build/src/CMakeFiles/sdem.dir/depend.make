# Empty dependencies file for sdem.
# This may be replaced when dependencies are built.
