file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm1.dir/test_algorithm1.cpp.o"
  "CMakeFiles/test_algorithm1.dir/test_algorithm1.cpp.o.d"
  "test_algorithm1"
  "test_algorithm1.pdb"
  "test_algorithm1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
