# Empty dependencies file for test_algorithm1.
# This may be replaced when dependencies are built.
