file(REMOVE_RECURSE
  "CMakeFiles/test_bounded_scheduler.dir/test_bounded_scheduler.cpp.o"
  "CMakeFiles/test_bounded_scheduler.dir/test_bounded_scheduler.cpp.o.d"
  "test_bounded_scheduler"
  "test_bounded_scheduler.pdb"
  "test_bounded_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounded_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
