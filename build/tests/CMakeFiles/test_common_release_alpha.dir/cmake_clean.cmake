file(REMOVE_RECURSE
  "CMakeFiles/test_common_release_alpha.dir/test_common_release_alpha.cpp.o"
  "CMakeFiles/test_common_release_alpha.dir/test_common_release_alpha.cpp.o.d"
  "test_common_release_alpha"
  "test_common_release_alpha.pdb"
  "test_common_release_alpha[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_release_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
