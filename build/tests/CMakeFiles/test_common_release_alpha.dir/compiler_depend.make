# Empty compiler generated dependencies file for test_common_release_alpha.
# This may be replaced when dependencies are built.
