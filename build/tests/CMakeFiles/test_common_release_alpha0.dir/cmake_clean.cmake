file(REMOVE_RECURSE
  "CMakeFiles/test_common_release_alpha0.dir/test_common_release_alpha0.cpp.o"
  "CMakeFiles/test_common_release_alpha0.dir/test_common_release_alpha0.cpp.o.d"
  "test_common_release_alpha0"
  "test_common_release_alpha0.pdb"
  "test_common_release_alpha0[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_release_alpha0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
