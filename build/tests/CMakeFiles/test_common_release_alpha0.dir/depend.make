# Empty dependencies file for test_common_release_alpha0.
# This may be replaced when dependencies are built.
