file(REMOVE_RECURSE
  "CMakeFiles/test_discrete_solver.dir/test_discrete_solver.cpp.o"
  "CMakeFiles/test_discrete_solver.dir/test_discrete_solver.cpp.o.d"
  "test_discrete_solver"
  "test_discrete_solver.pdb"
  "test_discrete_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_discrete_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
