file(REMOVE_RECURSE
  "CMakeFiles/test_discretize.dir/test_discretize.cpp.o"
  "CMakeFiles/test_discretize.dir/test_discretize.cpp.o.d"
  "test_discretize"
  "test_discretize.pdb"
  "test_discretize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_discretize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
