file(REMOVE_RECURSE
  "CMakeFiles/test_lemma3.dir/test_lemma3.cpp.o"
  "CMakeFiles/test_lemma3.dir/test_lemma3.cpp.o.d"
  "test_lemma3"
  "test_lemma3.pdb"
  "test_lemma3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lemma3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
