# Empty dependencies file for test_lemma3.
# This may be replaced when dependencies are built.
