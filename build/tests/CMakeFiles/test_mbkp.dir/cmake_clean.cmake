file(REMOVE_RECURSE
  "CMakeFiles/test_mbkp.dir/test_mbkp.cpp.o"
  "CMakeFiles/test_mbkp.dir/test_mbkp.cpp.o.d"
  "test_mbkp"
  "test_mbkp.pdb"
  "test_mbkp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbkp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
