# Empty compiler generated dependencies file for test_mbkp.
# This may be replaced when dependencies are built.
