file(REMOVE_RECURSE
  "CMakeFiles/test_oa.dir/test_oa.cpp.o"
  "CMakeFiles/test_oa.dir/test_oa.cpp.o.d"
  "test_oa"
  "test_oa.pdb"
  "test_oa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
