# Empty dependencies file for test_oa.
# This may be replaced when dependencies are built.
