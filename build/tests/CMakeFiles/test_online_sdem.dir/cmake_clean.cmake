file(REMOVE_RECURSE
  "CMakeFiles/test_online_sdem.dir/test_online_sdem.cpp.o"
  "CMakeFiles/test_online_sdem.dir/test_online_sdem.cpp.o.d"
  "test_online_sdem"
  "test_online_sdem.pdb"
  "test_online_sdem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_sdem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
