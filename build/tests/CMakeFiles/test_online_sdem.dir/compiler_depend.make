# Empty compiler generated dependencies file for test_online_sdem.
# This may be replaced when dependencies are built.
