file(REMOVE_RECURSE
  "CMakeFiles/test_properties_ext.dir/test_properties_ext.cpp.o"
  "CMakeFiles/test_properties_ext.dir/test_properties_ext.cpp.o.d"
  "test_properties_ext"
  "test_properties_ext.pdb"
  "test_properties_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
