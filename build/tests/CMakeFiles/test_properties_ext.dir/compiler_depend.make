# Empty compiler generated dependencies file for test_properties_ext.
# This may be replaced when dependencies are built.
