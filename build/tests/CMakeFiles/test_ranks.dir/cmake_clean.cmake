file(REMOVE_RECURSE
  "CMakeFiles/test_ranks.dir/test_ranks.cpp.o"
  "CMakeFiles/test_ranks.dir/test_ranks.cpp.o.d"
  "test_ranks"
  "test_ranks.pdb"
  "test_ranks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
