file(REMOVE_RECURSE
  "CMakeFiles/test_simple_policies.dir/test_simple_policies.cpp.o"
  "CMakeFiles/test_simple_policies.dir/test_simple_policies.cpp.o.d"
  "test_simple_policies"
  "test_simple_policies.pdb"
  "test_simple_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simple_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
