# Empty compiler generated dependencies file for test_simple_policies.
# This may be replaced when dependencies are built.
