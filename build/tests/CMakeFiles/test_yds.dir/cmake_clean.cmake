file(REMOVE_RECURSE
  "CMakeFiles/test_yds.dir/test_yds.cpp.o"
  "CMakeFiles/test_yds.dir/test_yds.cpp.o.d"
  "test_yds"
  "test_yds.pdb"
  "test_yds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
