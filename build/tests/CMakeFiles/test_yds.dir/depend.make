# Empty dependencies file for test_yds.
# This may be replaced when dependencies are built.
