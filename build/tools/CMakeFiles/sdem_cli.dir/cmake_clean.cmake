file(REMOVE_RECURSE
  "CMakeFiles/sdem_cli.dir/sdem_cli.cpp.o"
  "CMakeFiles/sdem_cli.dir/sdem_cli.cpp.o.d"
  "sdem_cli"
  "sdem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
