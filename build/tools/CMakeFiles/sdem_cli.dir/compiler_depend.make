# Empty compiler generated dependencies file for sdem_cli.
# This may be replaced when dependencies are built.
