// Batch server scenario: jobs trickle in FIFO (agreeable deadlines — later
// arrivals have later deadlines), and the offline DP of Section 5 decides
// how to group them into memory busy intervals ("blocks"): merge bursts
// that overlap, split across lulls so the DRAM can sleep between them.
//
// Run: ./build/examples/batch_agreeable
#include <algorithm>
#include <cstdio>

#include "core/agreeable.hpp"
#include "sched/energy.hpp"
#include "support/rng.hpp"
#include "workload/generator.hpp"

using namespace sdem;

int main() {
  SystemConfig cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.020;  // 20 ms break-even: splitting must pay for the
                            // wake-up it causes
  cfg.num_cores = 0;

  // Two bursts of jobs separated by a lull.
  TaskSet jobs;
  int id = 0;
  Xoshiro256 rng(7);
  double t = 0.0;
  double last_deadline = 0.0;  // FIFO: keep deadlines agreeable
  for (int burst = 0; burst < 2; ++burst) {
    for (int k = 0; k < 4; ++k) {
      t += rng.uniform(0.0, 0.015);
      Task task;
      task.id = id++;
      task.release = t;
      task.deadline =
          std::max(t + rng.uniform(0.040, 0.120), last_deadline);
      last_deadline = task.deadline;
      task.work = rng.uniform(2.0, 5.0);
      jobs.add(task);
    }
    t += 0.400;  // the lull
  }

  const OfflineResult res = solve_agreeable(jobs, cfg);
  if (!res.feasible) {
    std::printf("infeasible\n");
    return 1;
  }

  std::printf("Agreeable-deadline DP (Section 5): %d block(s)\n\n",
              res.case_index);
  const auto busy = res.schedule.memory_busy();
  for (std::size_t b = 0; b < busy.size(); ++b) {
    std::printf("  memory busy interval %zu: [%.1f ms, %.1f ms] (%.1f ms)\n",
                b, busy[b].lo * 1e3, busy[b].hi * 1e3,
                busy[b].length() * 1e3);
  }
  std::printf("  memory sleeps %.1f ms in total\n\n", res.sleep_time * 1e3);

  std::printf("  %-5s %-10s %-10s %-12s\n", "job", "start(ms)", "end(ms)",
              "speed(MHz)");
  for (const auto& seg : res.schedule.segments()) {
    std::printf("  %-5d %-10.2f %-10.2f %-12.1f\n", seg.task_id,
                seg.start * 1e3, seg.end * 1e3, seg.speed);
  }

  // What if we forced everything into one busy interval?
  const auto one = solve_block(jobs.sorted_by_deadline().tasks(), cfg);
  std::printf("\nDP energy %.4f J vs single-block %.4f J (%.1f%% saved by "
              "splitting across the lull)\n",
              res.energy, one.energy,
              100.0 * (one.energy - res.energy) / one.energy);
  return 0;
}
