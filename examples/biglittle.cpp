// big.LITTLE batch placement: the heterogeneous-core extension in action.
// The same common-release batch is solved three ways — all-big cores,
// all-little cores, and the mixed cluster with each task bound to one core
// type — showing how the per-core critical speeds move the race/stretch
// balance and which placement wins for which task.
//
// Run: ./build/examples/biglittle
#include <cstdio>

#include "core/common_release_hetero.hpp"
#include "workload/generator.hpp"

using namespace sdem;

namespace {

CorePower big_core() {
  CorePower c;
  c.alpha = 0.31;       // W: out-of-order cores leak
  c.beta = 2.53e-10;    // W/MHz^3
  c.lambda = 3.0;
  c.s_up = 1900.0;
  return c;
}

CorePower little_core() {
  CorePower c;
  c.alpha = 0.06;       // in-order: little leakage
  c.beta = 5.0e-10;     // but worse energy per cycle at speed
  c.lambda = 3.0;
  c.s_up = 1300.0;
  return c;
}

double solve(const TaskSet& ts, const std::vector<CorePower>& cores,
             const MemoryPower& mem, const char* label, bool print_speeds) {
  const auto res = solve_common_release_hetero(ts, cores, mem);
  if (!res.feasible) {
    std::printf("%-28s infeasible\n", label);
    return 0.0;
  }
  std::printf("%-28s %.5f J, memory sleeps %.1f ms\n", label, res.energy,
              res.sleep_time * 1e3);
  if (print_speeds) {
    for (const auto& seg : res.schedule.segments()) {
      std::printf("    task %d on %s core: %.0f MHz for %.2f ms\n",
                  seg.task_id, cores[seg.core].alpha > 0.1 ? "big " : "LITTLE",
                  seg.speed, (seg.end - seg.start) * 1e3);
    }
  }
  return res.energy;
}

}  // namespace

int main() {
  const TaskSet ts = make_common_release(6, 0.0, /*seed=*/99);
  MemoryPower mem{4.0, 0.0};
  std::printf("six tasks, common release; big: 310 mW static, 1900 MHz; "
              "LITTLE: 60 mW static, 1300 MHz\n\n");

  std::vector<CorePower> all_big(ts.size(), big_core());
  std::vector<CorePower> all_little(ts.size(), little_core());
  std::vector<CorePower> mixed;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    // Steep (tight) tasks go big, shallow tasks go LITTLE.
    mixed.push_back(ts[i].filled_speed() > 100.0 ? big_core()
                                                 : little_core());
  }

  solve(ts, all_big, mem, "all big cores", false);
  solve(ts, all_little, mem, "all LITTLE cores", false);
  solve(ts, mixed, mem, "mixed (steep->big)", true);

  std::printf(
      "\nLITTLE cores have a lower critical speed (less leakage to race\n"
      "away from), so they prefer stretching; big cores race. The shared\n"
      "memory still forces one common busy interval across both.\n");
  return 0;
}
