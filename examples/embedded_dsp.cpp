// Embedded DSP pipeline: the paper's motivating workload. Eight streams of
// FFT-1024 and matrix-multiply instances (DSPstone-style) arrive
// sporadically on an 8-core system with shared DRAM; three online
// schedulers compete:
//
//   MBKP    — per-core Optimal Available DVS, memory always on
//   MBKPS   — same schedule, memory naps in whatever gaps appear
//   SDEM-ON — this paper: procrastinate + align executions so the memory's
//             common idle time is maximized
//
// Run: ./build/examples/embedded_dsp [U]      (default U = 5)
#include <cstdio>
#include <cstdlib>

#include "sim/metrics.hpp"
#include "workload/dspstone.hpp"

using namespace sdem;

int main(int argc, char** argv) {
  const double u = argc > 1 ? std::atof(argv[1]) : 5.0;

  SystemConfig cfg = SystemConfig::paper_default();

  DspstoneParams params;
  params.num_tasks = 160;
  params.utilization_u = u;
  const TaskSet trace = make_dspstone(params, /*seed=*/2024);

  std::printf("DSPstone trace: %d instances over %.2f s, U = %.1f\n",
              params.num_tasks,
              trace.max_deadline() - trace.min_release(), u);
  std::printf("  FFT instance: %.3f Mc (%.1f ms region)\n",
              fft1024_megacycles(params.fft_batch),
              1e3 * fft1024_megacycles(params.fft_batch) / params.ref_mhz);

  const Comparison cmp = run_comparison(trace, cfg);

  std::printf("\n%-10s %12s %12s %12s %10s %8s\n", "policy", "system (J)",
              "memory (J)", "cores (J)", "sleep (s)", "misses");
  for (const auto* ev : {&cmp.mbkp, &cmp.mbkps, &cmp.sdem}) {
    std::printf("%-10s %12.4f %12.4f %12.4f %10.3f %8d\n", ev->policy.c_str(),
                ev->energy.system_total(), ev->energy.memory_total(),
                ev->energy.core_total(), ev->memory_sleep_time,
                ev->deadline_misses);
  }

  std::printf("\nsystem saving vs MBKP: MBKPS %.2f%%, SDEM-ON %.2f%%\n",
              100.0 * cmp.system_saving_mbkps(),
              100.0 * cmp.system_saving_sdem());
  std::printf("memory saving vs MBKP: MBKPS %.2f%%, SDEM-ON %.2f%%\n",
              100.0 * cmp.memory_saving_mbkps(),
              100.0 * cmp.memory_saving_sdem());
  std::printf("SDEM-ON improvement over MBKPS: %.2f pp\n",
              100.0 * cmp.improvement());
  return 0;
}
