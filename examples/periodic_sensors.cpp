// Periodic sensor fusion: a small always-on device runs four periodic
// filters (IMU, magnetometer, barometer, GPS fusion) on DVS cores over a
// shared DRAM. The periodic system expands to a job trace; SDEM-ON
// schedules it online, and the Gantt chart makes the aligned batches — and
// the memory's common idle time between them — visible.
//
// Run: ./build/examples/periodic_sensors
#include <cstdio>

#include "core/online_sdem.hpp"
#include "mem/dram.hpp"
#include "sched/trace_io.hpp"
#include "sim/metrics.hpp"
#include "workload/periodic.hpp"

using namespace sdem;

int main() {
  SystemConfig cfg = SystemConfig::paper_default();
  cfg.num_cores = 4;

  PeriodicSystem sensors;
  //                     id  wcet(Mc) period(s) deadline offset
  sensors.add(PeriodicTask{0, 2.5, 0.100, 0.0, 0.000});  // IMU filter
  sensors.add(PeriodicTask{1, 1.5, 0.200, 0.0, 0.020});  // magnetometer
  sensors.add(PeriodicTask{2, 1.0, 0.400, 0.0, 0.050});  // barometer
  sensors.add(PeriodicTask{3, 4.0, 0.400, 0.0, 0.080});  // GPS fusion

  std::printf("periodic system: demand %.1f MHz, hyperperiod %.0f ms\n",
              sensors.demand_mhz(), sensors.hyperperiod() * 1e3);

  const TaskSet jobs = sensors.expand(1.0);  // one second of operation
  std::printf("expanded to %zu jobs over 1 s\n\n", jobs.size());

  const Comparison cmp = run_comparison(jobs, cfg);
  std::printf("%-10s %12s %12s %10s %8s\n", "policy", "system (J)",
              "memory (J)", "sleep (s)", "misses");
  for (const auto* ev : {&cmp.mbkp, &cmp.mbkps, &cmp.sdem}) {
    std::printf("%-10s %12.4f %12.4f %10.3f %8d\n", ev->policy.c_str(),
                ev->energy.system_total(), ev->energy.memory_total(),
                ev->memory_sleep_time, ev->deadline_misses);
  }

  // Show the first 400 ms of the SDEM-ON schedule as a Gantt chart.
  SdemOnPolicy pol;
  const SimResult sim = simulate(jobs, cfg, pol);
  Schedule head;
  for (const auto& seg : sim.schedule.segments()) {
    if (seg.start < 0.400) head.add(seg);
  }
  std::printf("\nSDEM-ON, first 400 ms (note the aligned batches):\n%s\n",
              render_gantt(head).c_str());

  // Replay the memory profile through the DRAM power-state machine to see
  // which low-power states the common idle time actually lands in.
  const auto dram = DramPowerParams::paper_50nm();
  OracleDramPolicy oracle;
  const auto mem = replay_dram(sim.schedule, dram, oracle, sim.horizon_lo,
                               sim.horizon_hi);
  std::printf("DRAM machine replay (oracle controller):\n");
  std::printf("  active %.4f J, power-down %.4f J (%d naps), self-refresh "
              "%.4f J (%d sleeps), transitions %.4f J\n",
              mem.active, mem.powerdown, mem.powerdown_cycles,
              mem.selfrefresh, mem.selfrefresh_cycles, mem.transition);
  std::printf("  total %.4f J vs abstract model %.4f J + floor\n",
              mem.total(), cmp.sdem.energy.memory_total());
  return 0;
}
