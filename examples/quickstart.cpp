// Quickstart: schedule a handful of tasks released together on DVS cores
// sharing one memory, and see how the optimal schedule balances "race to
// idle" (sleep the memory sooner) against "stretch" (run the cores slower).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/common_release_alpha.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"

using namespace sdem;

int main() {
  // ARM Cortex-A57-like cores (P(s) = 0.31 W + 2.53e-10 W/MHz^3 * s^3,
  // 700..1900 MHz) sharing a 4 W DRAM.
  SystemConfig cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;   // the offline theory treats speed as continuous
  cfg.memory.xi_m = 0.0;  // Section 4 model: free transitions
  cfg.num_cores = 0;      // unbounded: one core per task

  // Four tasks released at t = 0 with individual deadlines (seconds) and
  // workloads (megacycles).
  TaskSet tasks;
  tasks.add(Task{.id = 0, .release = 0.0, .deadline = 0.030, .work = 4.0});
  tasks.add(Task{.id = 1, .release = 0.0, .deadline = 0.060, .work = 9.0});
  tasks.add(Task{.id = 2, .release = 0.0, .deadline = 0.090, .work = 3.0});
  tasks.add(Task{.id = 3, .release = 0.0, .deadline = 0.120, .work = 14.0});

  const OfflineResult res = solve_common_release_alpha(tasks, cfg);
  if (!res.feasible) {
    std::printf("no feasible schedule (a task exceeds s_up?)\n");
    return 1;
  }

  std::printf("Optimal common-release schedule (Section 4.2)\n");
  std::printf("  winning case: %d, memory sleeps %.2f ms of the %.0f ms horizon\n\n",
              res.case_index, res.sleep_time * 1e3, 0.120 * 1e3);
  std::printf("  %-6s %-8s %-10s %-10s %-12s\n", "task", "core", "start(ms)",
              "end(ms)", "speed(MHz)");
  for (const auto& seg : res.schedule.segments()) {
    std::printf("  %-6d %-8d %-10.3f %-10.3f %-12.1f\n", seg.task_id, seg.core,
                seg.start * 1e3, seg.end * 1e3, seg.speed);
  }

  const auto v = validate_schedule(res.schedule, tasks, cfg);
  std::printf("\n  feasible: %s\n", v.ok ? "yes" : v.error.c_str());

  const EnergyBreakdown e = compute_energy(res.schedule, cfg);
  std::printf("  core dynamic  %.4f J\n", e.core_dynamic);
  std::printf("  core static   %.4f J\n", e.core_static);
  std::printf("  memory active %.4f J\n", e.memory_active);
  std::printf("  system total  %.4f J (analytic: %.4f J)\n", e.system_total(),
              res.energy);

  // Contrast: what would pure race-to-idle (everything at s_up) cost?
  Schedule race;
  int core = 0;
  double latest = 0.0;
  for (const auto& t : tasks.tasks()) {
    const double len = t.work / cfg.core.s_up;
    race.add(Segment{t.id, core++, 0.0, len, cfg.core.s_up});
    latest = std::max(latest, len);
  }
  std::printf("\nPure race-to-idle at s_up: %.4f J (memory busy only %.2f ms)\n",
              system_energy(race, cfg), latest * 1e3);
  std::printf("The optimum saves %.1f%% over racing — 'race to idle OR NOT'.\n",
              100.0 * (system_energy(race, cfg) - res.energy) /
                  system_energy(race, cfg));
  return 0;
}
