// Server consolidation: a fixed pool of C cores (bounded case — the
// NP-hard regime of Theorem 1) receives a batch of jobs. The bounded
// scheduler partitions by LPT, runs per-core YDS, and then turns the
// race-to-idle knob: a single speed multiplier traded off against the
// DRAM's leakage. Sweeping the pool size shows consolidation pressure:
// fewer cores mean denser busy intervals and a naturally shorter memory-on
// time, more cores mean cheaper (slower) cores but a longer common busy
// union.
//
// Run: ./build/examples/server_consolidation
#include <cstdio>

#include "bounded/bounded_scheduler.hpp"
#include "sched/energy.hpp"
#include "sched/trace_io.hpp"
#include "workload/generator.hpp"

using namespace sdem;

int main() {
  SystemConfig cfg = SystemConfig::paper_default();

  SyntheticParams p;
  p.num_tasks = 24;
  p.max_interarrival = 0.040;
  const TaskSet jobs = make_synthetic(p, 4242);
  std::printf("batch of %d jobs over %.0f ms, total %.1f megacycles\n\n",
              p.num_tasks, (jobs.max_deadline() - jobs.min_release()) * 1e3,
              jobs.total_work());

  std::printf("%-7s %12s %12s %12s %12s\n", "cores", "system (J)",
              "cores (J)", "memory (J)", "sleep (ms)");
  OfflineResult best;
  int best_cores = 0;
  for (int cores : {1, 2, 4, 8, 16}) {
    cfg.num_cores = cores;
    const auto res = solve_bounded_general(jobs, cfg, cores);
    if (!res.feasible) {
      std::printf("%-7d %12s\n", cores, "infeasible");
      continue;
    }
    const auto e = compute_energy(res.schedule, cfg);
    std::printf("%-7d %12.4f %12.4f %12.4f %12.1f\n", cores, e.system_total(),
                e.core_total(), e.memory_total(), res.sleep_time * 1e3);
    if (!best.feasible || res.energy < best.energy) {
      best = res;
      best_cores = cores;
    }
  }

  std::printf("\nbest pool size: %d cores\n\n%s\n", best_cores,
              render_gantt(best.schedule).c_str());
  return 0;
}
