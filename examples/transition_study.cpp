// "Race to idle or not": the title question, made concrete. One batch of
// common-release tasks; we sweep the memory break-even time xi_m and watch
// the Section 7 optimum flip from racing (compress the busy interval, sleep
// the DRAM) to stretching (the wake-up costs more than the nap saves, so
// keep the memory on and run the cores slow).
//
// Run: ./build/examples/transition_study
#include <cstdio>

#include "core/transition.hpp"
#include "workload/generator.hpp"

using namespace sdem;

int main() {
  SystemConfig cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;
  cfg.num_cores = 0;

  const TaskSet tasks = make_common_release(6, 0.0, /*seed=*/11);
  double horizon = 0.0;
  for (const auto& t : tasks.tasks()) {
    horizon = std::max(horizon, t.deadline);
  }
  std::printf("6 tasks, common release, horizon %.1f ms, alpha_m = %.0f W\n\n",
              horizon * 1e3, cfg.memory.alpha_m);
  std::printf("%-12s %-14s %-14s %-16s\n", "xi_m (ms)", "energy (J)",
              "sleep (ms)", "decision");

  for (double xim : {0.0, 0.005, 0.010, 0.020, 0.040, 0.060, 0.080, 0.120,
                     0.200}) {
    cfg.memory.xi_m = xim;
    const OfflineResult res = solve_common_release_transition(tasks, cfg);
    if (!res.feasible) continue;
    const char* decision =
        res.sleep_time > 1e-9
            ? (res.sleep_time >= xim ? "race to idle (sleep >= xi_m)"
                                     : "short nap")
            : "do NOT race: stay awake";
    std::printf("%-12.0f %-14.5f %-14.2f %-16s\n", xim * 1e3, res.energy,
                res.sleep_time * 1e3, decision);
  }

  std::printf(
      "\nAs xi_m grows past the achievable idle window, sleeping stops\n"
      "paying and the optimum keeps the memory awake — the Table 3 cases.\n");
  return 0;
}
