#include "baseline/mbkp.hpp"

#include <algorithm>
#include <cmath>

#include "baseline/oa.hpp"

namespace sdem {

std::vector<Segment> MbkpPolicy::replan(double now,
                                        const std::vector<PendingTask>& pending,
                                        const SystemConfig& cfg) {
  const int cores = cfg.num_cores > 0 ? cfg.num_cores
                                      : static_cast<int>(pending.size());

  // Assign new tasks: round-robin inside their density class.
  for (const auto& p : pending) {
    if (core_of_.count(p.task.id)) continue;
    const double density = p.task.work / std::max(p.task.region(), 1e-12);
    const int klass = static_cast<int>(std::floor(std::log2(
        std::max(density, 1e-12))));
    int& cursor = class_cursor_[klass];
    core_of_[p.task.id] = cursor % std::max(cores, 1);
    ++cursor;
  }

  // Per-core Optimal Available over the core's own queue.
  std::vector<std::vector<OaJob>> queues(std::max(cores, 1));
  for (const auto& p : pending) {
    const int c = core_of_[p.task.id];
    queues[c].push_back(OaJob{p.task.id, p.task.deadline, p.remaining});
  }
  std::vector<Segment> plan;
  for (int c = 0; c < static_cast<int>(queues.size()); ++c) {
    if (queues[c].empty()) continue;
    auto segs = oa_plan(now, queues[c], c, cfg.core.s_up, cfg.core.s_min);
    plan.insert(plan.end(), segs.begin(), segs.end());
  }
  return plan;
}

}  // namespace sdem
