#include "baseline/mbkp.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace sdem {

void MbkpPolicy::reset() {
  task_slots_.clear();
  core_of_.clear();
  class_cursors_.clear();
  class_base_ = 0;
  for (auto& q : queues_) q.clear();
}

int& MbkpPolicy::cursor_for(int klass) {
  if (class_cursors_.empty()) {
    class_base_ = klass;
    class_cursors_.push_back(0);
  } else if (klass < class_base_) {
    class_cursors_.insert(class_cursors_.begin(), class_base_ - klass, 0);
    class_base_ = klass;
  } else if (klass >= class_base_ + static_cast<int>(class_cursors_.size())) {
    class_cursors_.resize(klass - class_base_ + 1, 0);
  }
  return class_cursors_[klass - class_base_];
}

std::vector<Segment> MbkpPolicy::replan(double now,
                                        const std::vector<PendingTask>& pending,
                                        const SystemConfig& cfg) {
  SDEM_OBS_TIMER("mbkp/replan");
  SDEM_OBS_INC("mbkp/replans");
  SDEM_OBS_COUNT("mbkp/tasks_replanned", pending.size());
  const int cores = cfg.num_cores > 0 ? cfg.num_cores
                                      : static_cast<int>(pending.size());

  // Assign new tasks: round-robin inside their density class.
  for (const auto& p : pending) {
    const int slot = task_slots_.intern(p.task.id);
    if (slot >= static_cast<int>(core_of_.size())) {
      core_of_.resize(task_slots_.size(), -1);
    }
    if (core_of_[slot] >= 0) continue;
    SDEM_OBS_INC("mbkp/tasks_assigned");
    const double density = p.task.work / std::max(p.task.region(), 1e-12);
    const int klass = static_cast<int>(std::floor(std::log2(
        std::max(density, 1e-12))));
    int& cursor = cursor_for(klass);
    core_of_[slot] = cursor % std::max(cores, 1);
    ++cursor;
  }

  // Per-core Optimal Available over the core's own queue. With unbounded
  // cores the pending set (and hence `cores`) can shrink between replans
  // while an old task keeps a higher core id, so the queue array tracks the
  // highest core ever assigned rather than the instantaneous core count.
  const std::size_t nqueues = static_cast<std::size_t>(std::max(cores, 1));
  if (queues_.size() < nqueues) queues_.resize(nqueues);
  for (auto& q : queues_) q.clear();
  for (const auto& p : pending) {
    const int c = core_of_[task_slots_.slot_of(p.task.id)];
    queues_[c].push_back(OaJob{p.task.id, p.task.deadline, p.remaining});
  }
  std::vector<Segment> plan;
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    if (queues_[c].empty()) continue;
    // The queue is rebuilt next replan, so OA may reorder it in place.
    oa_plan_into(now, queues_[c], static_cast<int>(c), cfg.core.s_up,
                 cfg.core.s_min, plan);
  }
  return plan;
}

}  // namespace sdem
