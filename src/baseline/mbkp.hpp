// MBKP baseline (paper §8): multi-core online DVS scheduling in the style of
// Albers, Müller and Schmelzer (2007) — the comparator the paper evaluates
// against.
//
// Tasks are partitioned across cores by density classes: class(T) =
// floor(log2(w / (d - r))), round-robin within each class, so cores receive
// similar mixes of "steep" and "shallow" jobs. Each core then runs Optimal
// Available speed scaling over its own queue. MBKP is energy-aware for the
// cores but ignorant of the shared memory: it neither aligns busy intervals
// nor sleeps the memory.
//
// The paper derives two comparators from this schedule:
//   MBKP  — memory never sleeps  (SleepDiscipline::kNever)
//   MBKPS — memory sleeps in any idle gap it happens to get
//           (SleepDiscipline::kOptimal accounting over the same schedule;
//           gaps below the break-even time stay idle-awake — sleeping them
//           would cost more than idling, and MBKPS is naive about creating
//           gaps, not about using them)
// Both reuse this policy's schedule; the discipline is applied at
// accounting time (see sim/metrics.hpp).
#pragma once

#include <map>

#include "sim/policy.hpp"

namespace sdem {

class MbkpPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "MBKP"; }

  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;

 private:
  std::map<int, int> core_of_;        ///< task id -> assigned core
  std::map<int, int> class_cursor_;   ///< density class -> round-robin cursor
};

}  // namespace sdem
