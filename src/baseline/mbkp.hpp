// MBKP baseline (paper §8): multi-core online DVS scheduling in the style of
// Albers, Müller and Schmelzer (2007) — the comparator the paper evaluates
// against.
//
// Tasks are partitioned across cores by density classes: class(T) =
// floor(log2(w / (d - r))), round-robin within each class, so cores receive
// similar mixes of "steep" and "shallow" jobs. Each core then runs Optimal
// Available speed scaling over its own queue. MBKP is energy-aware for the
// cores but ignorant of the shared memory: it neither aligns busy intervals
// nor sleeps the memory.
//
// The paper derives two comparators from this schedule:
//   MBKP  — memory never sleeps  (SleepDiscipline::kNever)
//   MBKPS — memory sleeps in any idle gap it happens to get
//           (SleepDiscipline::kOptimal accounting over the same schedule;
//           gaps below the break-even time stay idle-awake — sleeping them
//           would cost more than idling, and MBKPS is naive about creating
//           gaps, not about using them)
// Both reuse this policy's schedule; the discipline is applied at
// accounting time (see sim/metrics.hpp).
#pragma once

#include <vector>

#include "baseline/oa.hpp"
#include "sim/policy.hpp"
#include "support/id_slots.hpp"

namespace sdem {

class MbkpPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "MBKP"; }

  /// Drops all task->core assignments and round-robin cursors. Without this
  /// a second run on the same policy object inherits the previous trace's
  /// core map — stale for any reused task id.
  void reset() override;

  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;

 private:
  /// Round-robin cursor of a density class (classes are small signed ints:
  /// floor(log2(density)) with density clamped at 1e-12, so roughly
  /// [-40, 40]). Stored as a flat array over [base_, base_ + size).
  int& cursor_for(int klass);

  IdSlots task_slots_;                ///< task id -> dense slot
  std::vector<int> core_of_;          ///< per-slot assigned core (-1 = none)
  std::vector<int> class_cursors_;    ///< flat cursor array
  int class_base_ = 0;                ///< klass of class_cursors_[0]
  std::vector<std::vector<OaJob>> queues_;  ///< per-core queues, reused
};

}  // namespace sdem
