#include "baseline/oa.hpp"

#include <algorithm>
#include <limits>

namespace sdem {

double oa_speed(double now, const std::vector<OaJob>& jobs) {
  std::vector<OaJob> sorted = jobs;
  std::sort(sorted.begin(), sorted.end(),
            [](const OaJob& a, const OaJob& b) { return a.deadline < b.deadline; });
  double speed = 0.0;
  double work = 0.0;
  for (const auto& j : sorted) {
    work += j.remaining;
    if (j.deadline > now) speed = std::max(speed, work / (j.deadline - now));
  }
  return speed;
}

void oa_plan_into(double now, std::vector<OaJob>& jobs, int core, double s_up,
                  double s_min, std::vector<Segment>& out) {
  std::erase_if(jobs, [](const OaJob& j) { return j.remaining <= 0.0; });
  std::sort(jobs.begin(), jobs.end(),
            [](const OaJob& a, const OaJob& b) { return a.deadline < b.deadline; });

  double t = now;
  std::size_t next = 0;
  while (next < jobs.size()) {
    // Steepest prefix from `next` onward.
    double work = 0.0;
    double best_speed = 0.0;
    std::size_t best_end = next;
    for (std::size_t k = next; k < jobs.size(); ++k) {
      work += jobs[k].remaining;
      const double horizon = jobs[k].deadline - t;
      const double s = horizon > 0.0 ? work / horizon
                                     : std::numeric_limits<double>::infinity();
      if (s >= best_speed) {
        best_speed = s;
        best_end = k;
      }
    }
    double speed = best_speed;
    if (s_up > 0.0 && speed > s_up) speed = s_up;  // overload: race at s_up
    if (s_min > 0.0 && speed < s_min) speed = s_min;  // DVFS floor
    if (speed <= 0.0) break;
    for (std::size_t k = next; k <= best_end; ++k) {
      const double end = t + jobs[k].remaining / speed;
      out.push_back(Segment{jobs[k].id, core, t, end, speed});
      t = end;
    }
    next = best_end + 1;
  }
}

std::vector<Segment> oa_plan(double now, std::vector<OaJob> jobs, int core,
                             double s_up, double s_min) {
  std::vector<Segment> out;
  oa_plan_into(now, jobs, core, s_up, s_min, out);
  return out;
}

}  // namespace sdem
