// Optimal Available (OA) single-core online speed scaling (Yao et al. 1995).
//
// At each arrival, OA recomputes the optimal schedule of the remaining work
// assuming no further arrivals. With every pending job already released the
// optimal schedule is the prefix-density "staircase": sort by deadline,
// repeatedly run the prefix attaining the maximum density
// max_k (sum_{j<=k} rem_j) / (d_k - now) under EDF at that speed.
// OA is alpha^alpha-competitive on a single core; MBKP runs it per core.
#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace sdem {

struct OaJob {
  int id = 0;
  double deadline = 0.0;
  double remaining = 0.0;  ///< megacycles left
};

/// Plan all pending jobs from `now` to completion (valid until the next
/// arrival invalidates it). Speeds are capped at `s_up` when positive; an
/// overloaded prefix then runs at s_up (deadline misses surface in
/// validation, not here). Speeds are floored at `s_min` when positive (a
/// DVFS floor like the A57's 700 MHz): the prefix then finishes early and
/// the core idles. One segment per job.
std::vector<Segment> oa_plan(double now, std::vector<OaJob> jobs, int core,
                             double s_up = 0.0, double s_min = 0.0);

/// Allocation-free variant: plans `jobs` in place (drops finished jobs and
/// sorts by deadline) and appends the segments to `out`. Callers that
/// rebuild their queues every replan (MBKP) pass them directly and skip the
/// copy + temporary vector of the wrapper above.
void oa_plan_into(double now, std::vector<OaJob>& jobs, int core, double s_up,
                  double s_min, std::vector<Segment>& out);

/// The OA speed at `now` (density of the steepest prefix), uncapped.
double oa_speed(double now, const std::vector<OaJob>& jobs);

}  // namespace sdem
