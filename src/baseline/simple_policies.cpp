#include "baseline/simple_policies.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace sdem {
namespace {

/// Serialize `pending` per core in EDF order starting at `now`, each task
/// running at the speed `pick(p, window)` (clamped into the DVFS window and
/// to the remaining slack).
template <typename PickSpeed>
std::vector<Segment> serialize(double now,
                               const std::vector<PendingTask>& pending,
                               const SystemConfig& cfg, PickSpeed&& pick) {
  std::map<int, std::vector<const PendingTask*>> by_core;
  for (const auto& p : pending) {
    if (p.remaining > 0.0) by_core[p.core].push_back(&p);
  }
  std::vector<Segment> plan;
  for (auto& [core, group] : by_core) {
    std::sort(group.begin(), group.end(),
              [](const PendingTask* a, const PendingTask* b) {
                return a->task.deadline < b->task.deadline;
              });
    double cur = now;
    for (const PendingTask* p : group) {
      const double window = std::max(p->task.deadline - cur, 1e-9);
      double speed = pick(*p, window);
      // Fit the deadline if possible; the DVFS cap bounds everything.
      speed = std::max(speed, p->remaining / window);
      speed = std::max(speed, cfg.core.s_min);
      speed = std::min(speed, cfg.core.max_speed());
      const double len = p->remaining / speed;
      plan.push_back(Segment{p->task.id, core, cur, cur + len, speed});
      cur += len;
    }
  }
  return plan;
}

}  // namespace

std::vector<Segment> RaceToIdlePolicy::replan(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg) {
  return serialize(now, pending, cfg, [&](const PendingTask&, double) {
    return cfg.core.max_speed();
  });
}

std::vector<Segment> StretchPolicy::replan(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg) {
  return serialize(now, pending, cfg,
                   [&](const PendingTask& p, double window) {
                     return p.remaining / window;
                   });
}

std::vector<Segment> CriticalSpeedPolicy::replan(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg) {
  return serialize(now, pending, cfg,
                   [&](const PendingTask& p, double window) {
                     return cfg.core.critical_speed(p.remaining / window);
                   });
}

}  // namespace sdem
