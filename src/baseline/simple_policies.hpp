// The two poles of the title question as explicit online policies, plus
// the single-core-folklore middle ground:
//
//   RaceToIdlePolicy   — run every pending task immediately at s_up; the
//                        memory's busy time is minimal but the cores' cubic
//                        dynamic power is maximal.
//   StretchPolicy      — run every pending task immediately at the filled
//                        speed of its remaining window; core dynamic power
//                        is minimal but the memory (and, with alpha != 0,
//                        the cores' static power) stays on longest.
//   CriticalSpeedPolicy— run immediately at the per-task critical speed
//                        s_0 = min{max{s_m, s_f}, s_up}: optimal for a core
//                        in isolation, memory-oblivious.
//
// None of the three balances the memory sleep time against DVS — that gap
// is exactly what SDEM-ON closes, and the comparison benches quantify it.
#pragma once

#include "sim/policy.hpp"

namespace sdem {

class RaceToIdlePolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "race-to-idle"; }
  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;
};

class StretchPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "stretch"; }
  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;
};

class CriticalSpeedPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "critical-speed"; }
  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;
};

}  // namespace sdem
