#include "baseline/yds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace sdem {
namespace {

struct Collapse {
  double a = 0.0;
  double b = 0.0;  ///< interval [a, b] removed from the time axis
};

/// Preemptive EDF of `jobs` (all contained in [a, b]) at constant speed s.
/// Appends segments in the current (compressed) coordinate system.
void edf_fill(const std::vector<YdsJob>& jobs, double a, double b, double s,
              int core, std::vector<Segment>& out) {
  std::vector<double> rem(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) rem[i] = jobs[i].work;
  double t = a;
  while (t < b - 1e-15) {
    // Earliest-deadline released job with remaining work.
    int pick = -1;
    double next_release = b;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (rem[i] <= 0.0) continue;
      if (jobs[i].release <= t + 1e-15) {
        if (pick < 0 || jobs[i].deadline < jobs[pick].deadline) {
          pick = static_cast<int>(i);
        }
      } else {
        next_release = std::min(next_release, jobs[i].release);
      }
    }
    if (pick < 0) {
      if (next_release >= b) break;
      t = next_release;
      continue;
    }
    const double finish = t + rem[pick] / s;
    const double end = std::min({finish, next_release, b});
    out.push_back(Segment{jobs[pick].id, core, t, end, s});
    rem[pick] -= s * (end - t);
    if (rem[pick] < 1e-12 * std::max(1.0, jobs[pick].work)) rem[pick] = 0.0;
    t = end;
  }
}

}  // namespace

Schedule yds_schedule(std::vector<YdsJob> jobs, int core) {
  Schedule result;
  std::erase_if(jobs, [](const YdsJob& j) { return j.work <= 0.0; });

  std::vector<Collapse> collapses;           // in round-local coordinates
  std::vector<std::vector<Segment>> rounds;  // segments per round

  while (!jobs.empty()) {
    // Candidate interval endpoints: all releases and deadlines.
    std::vector<double> pts;
    for (const auto& j : jobs) {
      pts.push_back(j.release);
      pts.push_back(j.deadline);
    }
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

    double best_density = -1.0;
    double best_a = 0.0, best_b = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t k = i + 1; k < pts.size(); ++k) {
        const double a = pts[i], b = pts[k];
        double w = 0.0;
        for (const auto& j : jobs) {
          if (j.release >= a && j.deadline <= b) w += j.work;
        }
        if (w <= 0.0) continue;
        const double density = w / (b - a);
        if (density > best_density) {
          best_density = density;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_density <= 0.0) break;  // nothing schedulable (zero work)

    std::vector<YdsJob> in, rest;
    for (const auto& j : jobs) {
      if (j.release >= best_a && j.deadline <= best_b) {
        in.push_back(j);
      } else {
        rest.push_back(j);
      }
    }
    rounds.emplace_back();
    edf_fill(in, best_a, best_b, best_density, core, rounds.back());
    collapses.push_back({best_a, best_b});

    // Collapse [a, b]: times inside map to a, later times shift left.
    const double len = best_b - best_a;
    for (auto& j : rest) {
      auto squash = [&](double t) {
        if (t <= best_a) return t;
        if (t >= best_b) return t - len;
        return best_a;
      };
      j.release = squash(j.release);
      j.deadline = squash(j.deadline);
    }
    jobs = std::move(rest);
  }

  // Map each round's segments back to original time by undoing the
  // collapses of all earlier rounds, in reverse order. A segment that
  // straddles a collapse point splits around the reinserted interval (the
  // job is preempted there by the earlier, denser round).
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    std::vector<Segment> segs = std::move(rounds[r]);
    for (std::size_t c = r; c-- > 0;) {
      const double a = collapses[c].a;
      const double len = collapses[c].b - collapses[c].a;
      std::vector<Segment> next;
      next.reserve(segs.size());
      // Tolerance: a segment starting within rounding noise of the collapse
      // point belongs wholly on the far side (splitting would create a
      // zero-length orphan before its own release).
      const double fuzz = 1e-12 * std::max(1.0, std::abs(a));
      for (const auto& seg : segs) {
        if (seg.end <= a + fuzz) {
          next.push_back(seg);
        } else if (seg.start >= a - fuzz) {
          Segment s2 = seg;
          s2.start += len;
          s2.end += len;
          next.push_back(s2);
        } else {
          Segment left = seg, right = seg;
          left.end = a;
          right.start = a + len;
          right.end = seg.end + len;
          next.push_back(left);
          next.push_back(right);
        }
      }
      segs = std::move(next);
    }
    for (const auto& seg : segs) result.add(seg);
  }
  return result;
}

double yds_energy(const Schedule& s, double beta, double lambda) {
  double e = 0.0;
  for (const auto& seg : s.segments()) {
    e += beta * std::pow(seg.speed, lambda) * seg.duration();
  }
  return e;
}

}  // namespace sdem
