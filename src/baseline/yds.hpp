// YDS (Yao-Demers-Shenker 1995) optimal single-core speed scaling.
//
// Substrate for the baselines: Optimal Available (OA) replans a YDS
// schedule over the remaining work at each arrival, and MBKP runs OA per
// core. Classic algorithm: repeatedly find the maximum-density interval
// I* = argmax_I (sum of work of jobs with [r,d] inside I) / |I|, run those
// jobs there at the density speed under EDF, remove them, and collapse I*.
#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace sdem {

struct YdsJob {
  int id = 0;
  double release = 0.0;
  double deadline = 0.0;
  double work = 0.0;
};

/// Optimal single-core schedule (continuous speeds, preemptive EDF).
/// Segments come back on core `core` with the jobs' ids.
Schedule yds_schedule(std::vector<YdsJob> jobs, int core = 0);

/// Total dynamic energy of a schedule under power beta * s^lambda.
double yds_energy(const Schedule& s, double beta, double lambda);

}  // namespace sdem
