#include "bounded/bounded_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "baseline/yds.hpp"
#include "sched/energy.hpp"
#include "support/numeric.hpp"

namespace sdem {
namespace {

/// Scale every segment's speed by m (>= 1), shrinking it in place towards
/// its own start (EDF order and deadlines are preserved: each job's start
/// can only move earlier within its core, never later).
Schedule scale_speeds(const Schedule& base, double m, double s_up) {
  Schedule out;
  const int cores = base.cores_used();
  for (int c = 0; c < cores; ++c) {
    double cursor = 0.0;
    bool first = true;
    for (const auto& seg : base.core_segments(c)) {
      const double speed = std::min(seg.speed * m, s_up);
      const double len = seg.work() / speed;
      // Keep the original start unless compression freed room earlier —
      // never start before the original start (release safety: YDS only
      // starts jobs at/after release).
      const double start = first ? seg.start : std::max(seg.start, cursor);
      Segment s = seg;
      s.speed = speed;
      s.start = start;
      s.end = start + len;
      out.add(s);
      cursor = s.end;
      first = false;
    }
  }
  return out;
}

}  // namespace

OfflineResult solve_bounded_general(const TaskSet& tasks,
                                    const SystemConfig& cfg, int cores) {
  OfflineResult res;
  if (tasks.empty() || cores < 1 || !tasks.validate().empty()) return res;

  // 1. LPT assignment on workload.
  std::vector<int> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return tasks[a].work > tasks[b].work;
  });
  std::vector<double> load(cores, 0.0);
  std::vector<std::vector<YdsJob>> queue(cores);
  for (int i : order) {
    const int c = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[c] += tasks[i].work;
    queue[c].push_back(YdsJob{tasks[i].id, tasks[i].release,
                              tasks[i].deadline, tasks[i].work});
  }

  // 2. Per-core YDS.
  Schedule base;
  double max_speed = 0.0;
  double min_speed = std::numeric_limits<double>::infinity();
  for (int c = 0; c < cores; ++c) {
    const Schedule s = yds_schedule(queue[c], c);
    for (const auto& seg : s.segments()) {
      base.add(seg);
      max_speed = std::max(max_speed, seg.speed);
      min_speed = std::min(min_speed, seg.speed);
    }
  }
  const double s_up = cfg.core.max_speed();
  if (max_speed > s_up * (1.0 + 1e-9)) return res;  // overloaded core

  // 3. Global race-to-idle multiplier: per-segment speeds are min(m * s,
  // s_up), so the search must reach s_up for the *slowest* segment — the
  // fast ones simply saturate. Log-scale search (the interesting regime is
  // near m = 1, the range can span decades).
  auto energy_of = [&](double m) {
    return system_energy(scale_speeds(base, m, s_up), cfg);
  };
  double m_hi = 8.0;
  if (std::isfinite(s_up) && min_speed > 0.0 &&
      std::isfinite(min_speed)) {
    m_hi = std::min(std::max(1.0, s_up / min_speed), 1e5);
  }
  const double u = grid_refine_min(
      [&](double lg) { return energy_of(std::exp(lg)); }, 0.0,
      std::log(m_hi), 1024);
  const double m = std::exp(u);
  const double best_m = energy_of(m) <= energy_of(1.0) ? m : 1.0;

  res.feasible = true;
  res.schedule = scale_speeds(base, best_m, s_up);
  res.energy = system_energy(res.schedule, cfg);
  res.case_index = cores;
  const double lo = tasks.min_release();
  const double hi = tasks.max_deadline();
  res.sleep_time = res.schedule.memory_sleep_time(lo, hi);
  return res;
}

}  // namespace sdem
