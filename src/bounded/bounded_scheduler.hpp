// Offline heuristic for the bounded-core SDEM problem (general deadlines).
//
// Theorem 1 says the assignment subproblem alone is NP-hard, so this is a
// principled heuristic rather than an optimum:
//
//   1. assign tasks to the C cores by LPT on workload (balanced loads are
//      what the Eq. (3) analysis rewards);
//   2. schedule each core with YDS — the energy-optimal single-core speed
//      profile for that core's queue;
//   3. race-to-idle knob: scale every YDS speed by a common multiplier
//      m >= 1 (EDF feasibility is preserved — all jobs only finish
//      earlier) and pick m by golden section on the exact system energy.
//      m = 1 is pure stretch; m -> s_up/s_yds_max is pure race.
//
// Step 3 is where the paper's core-vs-memory balance reappears under
// bounded cores: larger m burns cubic core power but compresses the
// memory's busy union.
#pragma once

#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Schedule `tasks` on `cores` cores under `cfg`'s power model. Returns an
/// infeasible result when some assignment cannot meet deadlines within
/// s_up.
OfflineResult solve_bounded_general(const TaskSet& tasks,
                                    const SystemConfig& cfg, int cores);

}  // namespace sdem
