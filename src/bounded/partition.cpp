#include "bounded/partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> loads_of(const TaskSet& tasks,
                             const std::vector<int>& assignment, int cores) {
  std::vector<double> loads(cores, 0.0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    loads[assignment[i]] += tasks[i].work;
  }
  return loads;
}

}  // namespace

double bounded_energy(const std::vector<double>& core_loads,
                      const SystemConfig& cfg, double deadline,
                      double* best_interval) {
  const double beta = cfg.core.beta;
  const double lambda = cfg.core.lambda;
  const double alpha_m = cfg.memory.alpha_m;

  double sum_wl = 0.0;
  double max_load = 0.0;
  for (double w : core_loads) {
    sum_wl += std::pow(w, lambda);
    max_load = std::max(max_load, w);
  }
  if (sum_wl <= 0.0) {
    if (best_interval) *best_interval = 0.0;
    return 0.0;
  }

  // Eq. (2): unconstrained optimal interval, clamped to [W_max/s_up, D].
  double ib = alpha_m > 0.0
                  ? std::pow((lambda - 1.0) * beta * sum_wl / alpha_m,
                             1.0 / lambda)
                  : deadline;
  const double min_ib = std::isfinite(cfg.core.max_speed())
                            ? max_load / cfg.core.max_speed()
                            : 0.0;
  ib = std::clamp(ib, min_ib, deadline);
  if (ib <= 0.0 || min_ib > deadline * (1.0 + 1e-12)) return kInf;
  if (best_interval) *best_interval = ib;
  return beta * sum_wl * std::pow(ib, 1.0 - lambda) + alpha_m * ib;
}

BoundedResult solve_bounded_exact2(const TaskSet& tasks,
                                   const SystemConfig& cfg, double deadline) {
  BoundedResult res;
  const int n = static_cast<int>(tasks.size());
  if (n == 0 || n > 30) return res;

  // Meet in the middle: enumerate subset sums of each half; for every left
  // sum pick the right sum bringing the total closest to W/2.
  const int nl = n / 2;
  const int nr = n - nl;
  const double total = tasks.total_work();

  struct Sum {
    double value;
    std::uint32_t mask;
  };
  auto enumerate = [&](int offset, int count) {
    std::vector<Sum> sums(1u << count);
    for (std::uint32_t m = 0; m < (1u << count); ++m) {
      double s = 0.0;
      for (int b = 0; b < count; ++b) {
        if (m >> b & 1u) s += tasks[offset + b].work;
      }
      sums[m] = {s, m};
    }
    return sums;
  };
  auto left = enumerate(0, nl);
  auto right = enumerate(nl, nr);
  std::sort(right.begin(), right.end(),
            [](const Sum& a, const Sum& b) { return a.value < b.value; });

  double best_gap = kInf;
  std::uint32_t best_l = 0, best_r = 0;
  for (const auto& l : left) {
    const double want = total / 2.0 - l.value;
    auto it = std::lower_bound(
        right.begin(), right.end(), want,
        [](const Sum& s, double v) { return s.value < v; });
    for (auto cand : {it, it == right.begin() ? right.end() : std::prev(it)}) {
      if (cand == right.end()) continue;
      const double gap = std::abs(l.value + cand->value - total / 2.0);
      if (gap < best_gap) {
        best_gap = gap;
        best_l = l.mask;
        best_r = cand->mask;
      }
    }
  }

  res.assignment.assign(n, 1);
  for (int b = 0; b < nl; ++b) {
    if (best_l >> b & 1u) res.assignment[b] = 0;
  }
  for (int b = 0; b < nr; ++b) {
    if (best_r >> b & 1u) res.assignment[nl + b] = 0;
  }
  const auto loads = loads_of(tasks, res.assignment, 2);
  res.energy = bounded_energy(loads, cfg, deadline, &res.interval);
  res.feasible = std::isfinite(res.energy);
  return res;
}

BoundedResult solve_bounded_exact(const TaskSet& tasks,
                                  const SystemConfig& cfg, double deadline,
                                  int cores) {
  BoundedResult res;
  const int n = static_cast<int>(tasks.size());
  if (n == 0 || cores < 1) return res;
  if (std::pow(static_cast<double>(cores), n) > 5e7) return res;

  std::vector<int> assign(n, 0), best_assign;
  double best = kInf;
  while (true) {
    const auto loads = loads_of(tasks, assign, cores);
    const double e = bounded_energy(loads, cfg, deadline);
    if (e < best) {
      best = e;
      best_assign = assign;
    }
    int i = 0;
    while (i < n && ++assign[i] == cores) assign[i++] = 0;
    if (i == n) break;
  }
  if (!std::isfinite(best)) return res;
  res.feasible = true;
  res.assignment = std::move(best_assign);
  const auto loads = loads_of(tasks, res.assignment, cores);
  res.energy = bounded_energy(loads, cfg, deadline, &res.interval);
  return res;
}

BoundedResult solve_bounded_lpt(const TaskSet& tasks, const SystemConfig& cfg,
                                double deadline, int cores,
                                bool local_search) {
  BoundedResult res;
  const int n = static_cast<int>(tasks.size());
  if (n == 0 || cores < 1) return res;

  // LPT: largest tasks first onto the least-loaded core.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return tasks[a].work > tasks[b].work;
  });
  std::vector<int> assign(n, 0);
  std::vector<double> loads(cores, 0.0);
  for (int i : order) {
    const int c = static_cast<int>(
        std::min_element(loads.begin(), loads.end()) - loads.begin());
    assign[i] = c;
    loads[c] += tasks[i].work;
  }

  // Pairwise improvement: moves and swaps that reduce the energy.
  bool improved = local_search;
  double cur = bounded_energy(loads, cfg, deadline);
  int rounds = 0;
  while (improved && rounds++ < 64) {
    improved = false;
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < cores; ++c) {
        if (c == assign[i]) continue;
        loads[assign[i]] -= tasks[i].work;
        loads[c] += tasks[i].work;
        const double e = bounded_energy(loads, cfg, deadline);
        if (e < cur - 1e-15) {
          cur = e;
          assign[i] = c;
          improved = true;
        } else {
          loads[c] -= tasks[i].work;
          loads[assign[i]] += tasks[i].work;
        }
      }
    }
    for (int i = 0; i < n && !improved; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (assign[i] == assign[j]) continue;
        std::swap(assign[i], assign[j]);
        const auto l2 = loads_of(tasks, assign, cores);
        const double e = bounded_energy(l2, cfg, deadline);
        if (e < cur - 1e-15) {
          cur = e;
          loads = l2;
          improved = true;
          break;
        }
        std::swap(assign[i], assign[j]);
      }
    }
  }

  res.feasible = std::isfinite(cur);
  res.assignment = std::move(assign);
  res.energy = bounded_energy(loads, cfg, deadline, &res.interval);
  return res;
}

}  // namespace sdem
