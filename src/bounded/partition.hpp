// Bounded-core SDEM (paper §3, Theorem 1).
//
// With C < n cores, common release time and common deadline D, alpha == 0
// and xi_m == 0, the optimal schedule gives every core one busy interval of
// the same length |I_b| aligned at the start, so the system energy is
//
//   E(|I_b|) = beta * sum_c (W_c / |I_b|)^lambda * |I_b| + alpha_m |I_b|
//
// where W_c is core c's total assigned work. Eq. (2)/(3): the optimal
// |I_b| = min(D, ((lambda-1) beta sum_c W_c^lambda / alpha_m)^(1/lambda)),
// and E is minimized by the workload-balanced assignment — finding it is
// PARTITION, hence NP-hard (Theorem 1). This module provides:
//
//   * the closed-form interval/energy evaluation for a given assignment,
//   * an exact 2-core solver (meet-in-the-middle subset sums),
//   * an exact small-n solver for any C (exhaustive assignment),
//   * the LPT + pairwise-improvement heuristic for larger instances.
#pragma once

#include <cstdint>
#include <vector>

#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

struct BoundedResult {
  bool feasible = false;
  std::vector<int> assignment;  ///< task index (input order) -> core
  double interval = 0.0;        ///< optimal busy-interval length |I_b|
  double energy = 0.0;          ///< Eq. (3)-style system energy
};

/// Energy of an assignment summarised by per-core loads, with the interval
/// optimized via Eq. (2) and clamped to the deadline D and the speed cap.
double bounded_energy(const std::vector<double>& core_loads,
                      const SystemConfig& cfg, double deadline,
                      double* best_interval = nullptr);

/// Exact solver for C == 2 via meet-in-the-middle over subset sums
/// (E is monotone in the load imbalance, so the split closest to W/2 wins).
/// n <= ~30.
BoundedResult solve_bounded_exact2(const TaskSet& tasks,
                                   const SystemConfig& cfg, double deadline);

/// Exact solver for any C by exhaustive assignment (C^n) — tiny n only.
BoundedResult solve_bounded_exact(const TaskSet& tasks,
                                  const SystemConfig& cfg, double deadline,
                                  int cores);

/// LPT (longest processing time first), optionally followed by pairwise
/// move/swap local search (on by default; disable to see raw LPT's gap).
BoundedResult solve_bounded_lpt(const TaskSet& tasks, const SystemConfig& cfg,
                                double deadline, int cores,
                                bool local_search = true);

}  // namespace sdem
