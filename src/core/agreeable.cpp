#include "core/agreeable.hpp"

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "core/block_context.hpp"
#include "obs/obs.hpp"
#include "support/thread_pool.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fill row p of the flat n×n scalar table: block[p*n + q] is the optimum
/// of sorted tasks p..q in one busy interval. One growing BlockContext per
/// row; once the context proves block infeasibility the rest of the row is
/// infeasible too (a longer block still contains the impossible task), so
/// the tail keeps its default infeasible entries without opening a box.
void fill_row(const TaskSet& sorted, const SystemConfig& cfg, int n, int p,
              std::vector<BlockSolution>& block) {
  SDEM_OBS_TIMER("agreeable/fill_row");
  SDEM_OBS_ONLY(std::uint64_t cells = 0;)
  BlockContext ctx(cfg);
  for (int q = p; q < n; ++q) {
    ctx.push_task(sorted[q]);
    if (ctx.block_infeasible()) break;
    block[static_cast<std::size_t>(p) * n + q] = ctx.solve();
    SDEM_OBS_ONLY(++cells;)
  }
  SDEM_OBS_COUNT("agreeable/dp_cells", cells);
  SDEM_OBS_COUNT("agreeable/dp_cells_skipped_infeasible",
                 static_cast<std::uint64_t>(n - p) - cells);
}

}  // namespace

OfflineResult solve_agreeable(const TaskSet& tasks, const SystemConfig& cfg,
                              ThreadPool* pool) {
  SDEM_OBS_TIMER("agreeable/solve");
  OfflineResult res;
  if (tasks.empty() || !tasks.is_agreeable() || !tasks.validate().empty())
    return res;
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12))
    return res;

  const TaskSet sorted = tasks.sorted_by_deadline();
  const int n = static_cast<int>(sorted.size());
  const double pair_charge = cfg.memory.alpha_m * cfg.memory.xi_m;

  // Scalar block table (the seed stored full placement vectors per entry —
  // O(n³) memory; placements are now reconstructed only on the optimal
  // path). Rows are independent: each writes its own slots, so the parallel
  // fill is bit-identical to the serial one at any worker count.
  std::vector<BlockSolution> block(static_cast<std::size_t>(n) * n);
  if (pool != nullptr && n > 1) {
    pool->parallel_for(static_cast<std::size_t>(n), [&](std::size_t p) {
      fill_row(sorted, cfg, n, static_cast<int>(p), block);
    });
  } else {
    for (int p = 0; p < n; ++p) fill_row(sorted, cfg, n, p, block);
  }

  std::vector<double> opt(n + 1, kInf);
  std::vector<int> parent(n + 1, -1);
  opt[0] = 0.0;
  for (int q = 1; q <= n; ++q) {
    for (int p = 0; p < q; ++p) {
      const BlockSolution& b =
          block[static_cast<std::size_t>(p) * n + (q - 1)];
      if (!b.feasible || opt[p] == kInf) continue;
      const double cand = opt[p] + b.energy + pair_charge;
      if (cand < opt[q]) {
        opt[q] = cand;
        parent[q] = p;
      }
    }
  }
  if (opt[n] == kInf) return res;

  // Reconstruct the chosen blocks and emit the schedule (one core per
  // sorted task); only these O(n) blocks ever materialize placements.
  std::vector<std::pair<int, int>> blocks;  // [p, q] inclusive
  for (int q = n; q > 0; q = parent[q]) blocks.push_back({parent[q], q - 1});
  double busy = 0.0;
  std::vector<Task> sub;
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    const BlockSolution& b =
        block[static_cast<std::size_t>(it->first) * n + it->second];
    busy += b.e - b.s;
    sub.clear();
    for (int k = it->first; k <= it->second; ++k) sub.push_back(sorted[k]);
    const auto placements = block_placements_at(sub, cfg, b.s, b.e);
    for (int k = 0; k < static_cast<int>(placements.size()); ++k) {
      const auto& p = placements[k];
      if (p.len <= 0.0) continue;
      res.schedule.add(
          Segment{p.task_id, it->first + k, p.start, p.start + p.len, p.speed});
    }
  }

  res.feasible = true;
  res.energy = opt[n];
  res.case_index = static_cast<int>(blocks.size());
  res.sleep_time = (sorted[n - 1].deadline - sorted.min_release()) - busy;
  SDEM_OBS_INC("agreeable/solves");
  SDEM_OBS_COUNT("agreeable/blocks_on_optimal_path", blocks.size());
  SDEM_OBS_DIST("agreeable/sleep_time_s", res.sleep_time);
  return res;
}

OfflineResult solve_agreeable_reference(const TaskSet& tasks,
                                        const SystemConfig& cfg) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_agreeable() || !tasks.validate().empty())
    return res;
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12))
    return res;

  const TaskSet sorted = tasks.sorted_by_deadline();
  const int n = static_cast<int>(sorted.size());
  const double pair_charge = cfg.memory.alpha_m * cfg.memory.xi_m;

  // The seed's block table: optimal energy (and placements) of tasks p..q
  // in a single busy interval, every entry solved from scratch.
  std::vector<std::vector<BlockResult>> block(n, std::vector<BlockResult>(n));
  for (int p = 0; p < n; ++p) {
    std::vector<Task> sub;
    sub.reserve(n - p);
    for (int q = p; q < n; ++q) {
      sub.push_back(sorted[q]);
      block[p][q] = solve_block_reference(sub, cfg);
    }
  }

  std::vector<double> opt(n + 1, kInf);
  std::vector<int> parent(n + 1, -1);
  opt[0] = 0.0;
  for (int q = 1; q <= n; ++q) {
    for (int p = 0; p < q; ++p) {
      if (!block[p][q - 1].feasible || opt[p] == kInf) continue;
      const double cand = opt[p] + block[p][q - 1].energy + pair_charge;
      if (cand < opt[q]) {
        opt[q] = cand;
        parent[q] = p;
      }
    }
  }
  if (opt[n] == kInf) return res;

  std::vector<std::pair<int, int>> blocks;  // [p, q] inclusive
  for (int q = n; q > 0; q = parent[q]) blocks.push_back({parent[q], q - 1});
  double busy = 0.0;
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    const auto& b = block[it->first][it->second];
    busy += b.e - b.s;
    for (int k = 0; k < static_cast<int>(b.placements.size()); ++k) {
      const auto& p = b.placements[k];
      if (p.len <= 0.0) continue;
      res.schedule.add(
          Segment{p.task_id, it->first + k, p.start, p.start + p.len, p.speed});
    }
  }

  res.feasible = true;
  res.energy = opt[n];
  res.case_index = static_cast<int>(blocks.size());
  res.sleep_time = (sorted[n - 1].deadline - sorted.min_release()) - busy;
  return res;
}

}  // namespace sdem
