#include "core/agreeable.hpp"

#include <limits>
#include <vector>

namespace sdem {

OfflineResult solve_agreeable(const TaskSet& tasks, const SystemConfig& cfg) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_agreeable() || !tasks.validate().empty())
    return res;
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12))
    return res;

  const TaskSet sorted = tasks.sorted_by_deadline();
  const int n = static_cast<int>(sorted.size());
  const double pair_charge = cfg.memory.alpha_m * cfg.memory.xi_m;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // block_cost[p][q]: optimal energy of tasks p..q (sorted order, inclusive)
  // in a single busy interval.
  std::vector<std::vector<BlockResult>> block(n, std::vector<BlockResult>(n));
  for (int p = 0; p < n; ++p) {
    std::vector<Task> sub;
    sub.reserve(n - p);
    for (int q = p; q < n; ++q) {
      sub.push_back(sorted[q]);
      block[p][q] = solve_block(sub, cfg);
    }
  }

  std::vector<double> opt(n + 1, kInf);
  std::vector<int> parent(n + 1, -1);
  opt[0] = 0.0;
  for (int q = 1; q <= n; ++q) {
    for (int p = 0; p < q; ++p) {
      if (!block[p][q - 1].feasible || opt[p] == kInf) continue;
      const double cand = opt[p] + block[p][q - 1].energy + pair_charge;
      if (cand < opt[q]) {
        opt[q] = cand;
        parent[q] = p;
      }
    }
  }
  if (opt[n] == kInf) return res;

  // Reconstruct blocks and emit the schedule (one core per sorted task).
  std::vector<std::pair<int, int>> blocks;  // [p, q] inclusive
  for (int q = n; q > 0; q = parent[q]) blocks.push_back({parent[q], q - 1});
  double busy = 0.0;
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    const auto& b = block[it->first][it->second];
    busy += b.e - b.s;
    for (int k = 0; k < static_cast<int>(b.placements.size()); ++k) {
      const auto& p = b.placements[k];
      if (p.len <= 0.0) continue;
      res.schedule.add(
          Segment{p.task_id, it->first + k, p.start, p.start + p.len, p.speed});
    }
  }

  res.feasible = true;
  res.energy = opt[n];
  res.case_index = static_cast<int>(blocks.size());
  res.sleep_time = (sorted[n - 1].deadline - sorted.min_release()) - busy;
  return res;
}

}  // namespace sdem
