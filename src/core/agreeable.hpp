// Dynamic-programming optimal schemes for agreeable-deadline tasks
// (paper §5.1 for alpha == 0 and §5.2 for alpha != 0).
//
// Lemma 4: sorting tasks by deadline, some optimal solution schedules them
// in deadline order across busy intervals ("blocks"), so blocks are
// contiguous ranges of the sorted order and
//
//   OPT(q) = min_{p <= q} OPT(p) + E_min(p+1..q)  [+ alpha_m * xi_m / block]
//
// where E_min is the single-block optimum from core/block.hpp. The
// transition charge follows the Section 7 DP; with xi_m == 0 it vanishes and
// this is exactly the Section 5 recurrence.
//
// The block table is built incrementally (core/block_context.hpp): row p
// grows one BlockContext across q = p..n-1 instead of re-running the full
// single-block pipeline per (p, q) pair, stores O(n²) scalars instead of
// O(n³) placements, and rows can be filled in parallel across a thread
// pool — the DP fold and reconstruction stay serial, so results are
// bit-identical at any job count.
#pragma once

#include "core/block.hpp"
#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

class ThreadPool;

/// Generic DP over blocks. Handles both alpha == 0 and alpha != 0 because
/// the unified block objective covers both (see core/block.hpp). The result
/// `case_index` reports the number of blocks in the optimal partition.
/// With a pool, independent block-table rows are filled across its workers
/// (bit-identical to the serial fill; do not call from inside a task
/// already running on that pool — the pool does not nest).
OfflineResult solve_agreeable(const TaskSet& tasks, const SystemConfig& cfg,
                              ThreadPool* pool = nullptr);

/// The seed DP: per-(p,q) solve_block_reference calls and full placement
/// storage. Kept as the golden reference for the incremental solver.
OfflineResult solve_agreeable_reference(const TaskSet& tasks,
                                        const SystemConfig& cfg);

/// Paper-facing aliases for the two subsections.
inline OfflineResult solve_agreeable_alpha0(const TaskSet& tasks,
                                            const SystemConfig& cfg) {
  return solve_agreeable(tasks, cfg);
}
inline OfflineResult solve_agreeable_alpha(const TaskSet& tasks,
                                           const SystemConfig& cfg) {
  return solve_agreeable(tasks, cfg);
}

}  // namespace sdem
