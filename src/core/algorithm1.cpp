#include "core/algorithm1.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Ctx {
  const std::vector<Task>* tasks = nullptr;
  const SystemConfig* cfg = nullptr;
  std::vector<double> s0;  ///< per-task critical speed
  std::vector<double> s1;  ///< per-task memory-associated critical speed
};

double window(const Task& t, double s, double e, bool& ok) {
  const double lo = std::max(s, t.release);
  const double hi = std::min(e, t.deadline);
  ok = hi > lo;
  return hi - lo;
}

/// Eq. (15) restricted to `subset`: all subset tasks aligned with their
/// clipped windows, plus the memory term.
double aligned_energy(const Ctx& ctx, const std::vector<int>& subset, double s,
                      double e) {
  if (e <= s) return kInf;
  const auto& cfg = *ctx.cfg;
  double energy = cfg.memory.alpha_m * (e - s);
  for (int k : subset) {
    const Task& t = (*ctx.tasks)[k];
    bool ok = false;
    const double w = window(t, s, e, ok);
    if (!ok) return kInf;
    if (t.work / w > cfg.core.max_speed() * (1.0 + 1e-9)) return kInf;
    energy += cfg.core.beta * stretch_energy_term(t.work, w, cfg.core.lambda) +
              cfg.core.alpha * w;
  }
  return energy;
}

/// Minimize aligned_energy over one (i,j) box via the shared feasibility-
/// clamped box minimizer (smooth convex inside the box).
bool minimize_box(const Ctx& ctx, const std::vector<int>& subset, double s_lo,
                  double s_hi, double e_lo, double e_hi, double& s, double& e,
                  double& val) {
  std::vector<Task> sub;
  sub.reserve(subset.size());
  for (int k : subset) sub.push_back((*ctx.tasks)[k]);
  const BoxMin m = minimize_in_box(
      sub, ctx.cfg->core.max_speed(),
      [&](double a, double b) { return aligned_energy(ctx, subset, a, b); },
      s_lo, s_hi, e_lo, e_hi);
  if (!m.feasible) return false;
  s = m.s;
  e = m.e;
  val = m.value;
  return true;
}

/// Algorithm 1 inside one (i,j) box. Returns the block energy (including
/// evicted Type-I tasks) or +inf when the box is infeasible.
double algorithm1_in_box(const Ctx& ctx, double s_lo, double s_hi, double e_lo,
                         double e_hi, double& out_s, double& out_e,
                         std::vector<double>& out_speed) {
  const auto& tasks = *ctx.tasks;
  const auto& cfg = *ctx.cfg;
  const int n = static_cast<int>(tasks.size());

  std::vector<int> aligned;  // indices still aligned with the busy interval
  for (int k = 0; k < n; ++k) {
    if (tasks[k].work > 0.0) aligned.push_back(k);
  }
  std::vector<char> evicted(n, 0);
  out_speed.assign(n, 0.0);

  double s = s_lo, e = e_hi, val = kInf;
  constexpr double kSlack = 1.0 + 1e-9;

  // Steps 1-3: evict tasks whose aligned speed falls below s_0.
  while (!aligned.empty()) {
    if (!minimize_box(ctx, aligned, s_lo, s_hi, e_lo, e_hi, s, e, val))
      return kInf;
    std::vector<int> keep;
    for (int k : aligned) {
      bool ok = false;
      const double w = window(tasks[k], s, e, ok);
      const double sigma = tasks[k].work / w;
      if (sigma * kSlack < ctx.s0[k]) {
        evicted[k] = 1;
      } else {
        keep.push_back(k);
      }
    }
    if (keep.size() == aligned.size()) break;
    aligned = std::move(keep);
  }

  // Steps 4-5: tasks faster than s_1 re-determine the busy interval; the
  // rest prolong to align with it (evicting any that drop below s_0).
  for (int round = 0; round < n + 2 && !aligned.empty(); ++round) {
    std::vector<int> fast;
    for (int k : aligned) {
      bool ok = false;
      const double w = window(tasks[k], s, e, ok);
      if (tasks[k].work / w > ctx.s1[k] * kSlack) fast.push_back(k);
    }
    if (fast.empty()) break;
    double ns = s, ne = e, nval = kInf;
    if (!minimize_box(ctx, fast, s_lo, s_hi, e_lo, e_hi, ns, ne, nval))
      return kInf;
    s = ns;
    e = ne;
    std::vector<int> keep;
    for (int k : aligned) {
      bool ok = false;
      const double w = window(tasks[k], s, e, ok);
      if (!ok || tasks[k].work / w > cfg.core.max_speed() * kSlack) return kInf;
      if (tasks[k].work / w * kSlack < ctx.s0[k]) {
        evicted[k] = 1;
      } else {
        keep.push_back(k);
      }
    }
    aligned = std::move(keep);
  }

  // Final energy: aligned tasks fill their windows; evicted run at s_0.
  double energy = cfg.memory.alpha_m * (e - s);
  std::vector<char> is_aligned(n, 0);
  for (int k : aligned) is_aligned[k] = 1;
  for (int k = 0; k < n; ++k) {
    const Task& t = tasks[k];
    if (t.work <= 0.0) continue;
    if (is_aligned[k]) {
      bool ok = false;
      const double w = window(t, s, e, ok);
      if (!ok) return kInf;
      out_speed[k] = t.work / w;
      energy += cfg.core.exec_energy(t.work, out_speed[k]);
    } else {
      // Type-I: must fit at s_0 inside the clipped window.
      bool ok = false;
      const double w = window(t, s, e, ok);
      if (!ok || t.work / ctx.s0[k] > w * (1.0 + 1e-9)) return kInf;
      out_speed[k] = ctx.s0[k];
      energy += cfg.core.exec_energy(t.work, ctx.s0[k]);
    }
  }
  out_s = s;
  out_e = e;
  return energy;
}

}  // namespace

BlockResult solve_block_algorithm1(const std::vector<Task>& tasks,
                                   const SystemConfig& cfg) {
  BlockResult out;
  if (tasks.empty()) return out;

  Ctx ctx;
  ctx.tasks = &tasks;
  ctx.cfg = &cfg;
  const int n = static_cast<int>(tasks.size());
  ctx.s0.resize(n);
  ctx.s1.resize(n);
  for (int k = 0; k < n; ++k) {
    ctx.s0[k] = cfg.core.critical_speed(tasks[k].filled_speed());
    ctx.s1[k] = cfg.memory_critical_speed(tasks[k].filled_speed());
  }

  double r_min = kInf, r_max = -kInf, d_min = kInf, d_max = -kInf;
  for (const auto& t : tasks) {
    r_min = std::min(r_min, t.release);
    r_max = std::max(r_max, t.release);
    d_min = std::min(d_min, t.deadline);
    d_max = std::max(d_max, t.deadline);
  }
  std::vector<double> sb{r_min, d_min}, eb{r_max, d_max};
  for (const auto& t : tasks) {
    if (t.release > r_min && t.release < d_min) sb.push_back(t.release);
    if (t.deadline > r_max && t.deadline < d_max) eb.push_back(t.deadline);
  }
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  std::sort(eb.begin(), eb.end());
  eb.erase(std::unique(eb.begin(), eb.end()), eb.end());

  double best = kInf, best_s = 0.0, best_e = 0.0;
  std::vector<double> best_speed;
  for (std::size_t si = 0; si + 1 < sb.size(); ++si) {
    for (std::size_t ei = 0; ei + 1 < eb.size(); ++ei) {
      if (eb[ei + 1] <= sb[si]) continue;
      double s = 0.0, e = 0.0;
      std::vector<double> speed;
      const double v = algorithm1_in_box(ctx, sb[si], sb[si + 1], eb[ei],
                                         eb[ei + 1], s, e, speed);
      if (v < best) {
        best = v;
        best_s = s;
        best_e = e;
        best_speed = std::move(speed);
      }
    }
  }
  if (!std::isfinite(best)) return out;

  out.feasible = true;
  out.s = best_s;
  out.e = best_e;
  out.energy = best;
  for (int k = 0; k < n; ++k) {
    BlockResult::Placement p;
    p.task_id = tasks[k].id;
    if (tasks[k].work > 0.0) {
      p.speed = best_speed[k];
      p.len = tasks[k].work / p.speed;
      p.start = std::max(best_s, tasks[k].release);
    }
    out.placements.push_back(p);
  }
  return out;
}

}  // namespace sdem
