// Literal implementation of the paper's Algorithm 1 (§5.2): the five-step
// iterative classification of a block's tasks into Type-I (run at their
// critical speed s_0, core sleeps early) and Type-II (aligned with the busy
// interval, speed in [s_0, s_1]).
//
// This exists as a fidelity reference: core/block.hpp minimizes the same
// objective directly (the fixpoint Algorithm 1 converges to is exactly the
// stationary point of that convex objective); tests assert the two agree.
#pragma once

#include <vector>

#include "core/block.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Solve one block with the paper's Algorithm 1, enumerating (i,j) boxes
/// and running the five-step scheme in each. `tasks` must be agreeable.
BlockResult solve_block_algorithm1(const std::vector<Task>& tasks,
                                   const SystemConfig& cfg);

}  // namespace sdem
