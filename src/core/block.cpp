#include "core/block.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/block_context.hpp"
#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// task_window_energy tolerates a 1e-9 relative overfill of the s_up
// boundary; the feasibility geometry below must grant the same slack, or a
// task with w_k = s_up * (d_k - r_k) up to rounding makes e_min/s_max claim
// the whole box infeasible while the objective is still finite — the line
// searches then never run and only box corners are ever probed.
constexpr double kUpSlack = 1.0 + 1e-9;

}  // namespace

BoxMin minimize_in_box(const std::vector<Task>& tasks, double s_up,
                       const std::function<double(double, double)>& f,
                       double s_lo, double s_hi, double e_lo, double e_hi) {
  BoxMin out;
  if (e_hi <= s_lo) return out;  // would force e' <= s'

  // Feasibility geometry of the s_up constraint (q_k = w_k / s_up):
  //   given s, e must reach e_min(s) = max_k (max(s, r_k) + q_k);
  //   given e, s must stay below s_max(e) = min_k max(r_k, min(e,d_k) - q_k).
  struct Need {
    double r, d, q;
  };
  std::vector<Need> needs;
  for (const auto& t : tasks) {
    if (t.work <= 0.0) continue;
    needs.push_back({t.release, t.deadline,
                     std::isfinite(s_up) ? t.work / s_up / kUpSlack : 0.0});
  }
  auto e_min = [&](double s) {
    double v = s;
    for (const auto& n : needs) {
      const double x = std::max(s, n.r) + n.q;
      if (x > n.d) return kInf;  // no e can satisfy this task
      v = std::max(v, x);
    }
    return v;
  };
  auto s_max = [&](double e) {
    double v = e;
    for (const auto& n : needs) {
      if (std::min(e, n.d) - n.r < n.q) return -kInf;  // infeasible at any s
      v = std::min(v, std::max(n.r, std::min(e, n.d) - n.q));
    }
    return v;
  };

  double s = s_lo, e = e_hi;  // maximal windows: feasible if anything is
  double val = f(s, e);
  if (!std::isfinite(val)) return out;
  out.feasible = true;
  out.s = s;
  out.e = e;
  out.value = val;

  for (int round = 0; round < 64; ++round) {
    // e-step (feasible range only).
    const double elo = std::max({e_lo, s, e_min(s)});
    if (elo > e_hi) break;
    const double new_e =
        golden_min([&](double y) { return f(s, y); }, elo, e_hi, 1e-12);
    // s-step.
    const double shi = std::min({s_hi, new_e, s_max(new_e)});
    if (shi < s_lo) break;
    const double new_s =
        golden_min([&](double x) { return f(x, new_e); }, s_lo, shi, 1e-12);
    // Diagonal translation escape (handles optima pinned on the coupled
    // constraint e - s >= q of a both-sides-clipped task).
    const double t_lo = std::max(s_lo - new_s, e_lo - new_e);
    const double t_hi = std::min(s_hi - new_s, e_hi - new_e);
    double t = 0.0;
    if (t_hi > t_lo) {
      t = golden_min([&](double dt) { return f(new_s + dt, new_e + dt); },
                     t_lo, t_hi, 1e-12);
      if (!std::isfinite(f(new_s + t, new_e + t))) t = 0.0;
    }
    const double cand_s = new_s + t;
    const double cand_e = new_e + t;
    const double cand = f(cand_s, cand_e);
    const bool converged =
        std::abs(cand_s - s) < 1e-13 * std::max(1.0, std::abs(s)) &&
        std::abs(cand_e - e) < 1e-13 * std::max(1.0, std::abs(e));
    s = cand_s;
    e = cand_e;
    if (std::isfinite(cand) && cand < out.value) {
      out.value = cand;
      out.s = s;
      out.e = e;
    }
    if (converged) break;
  }
  return out;
}

double task_window_speed(const Task& t, const CorePower& core, double window) {
  if (t.work <= 0.0) return 0.0;
  if (window <= 0.0) return kInf;
  const double fill = t.work / window;
  return std::min(std::max(core.critical_speed_raw(), fill), core.max_speed());
}

double task_window_energy(const Task& t, const CorePower& core, double window) {
  if (t.work <= 0.0) return 0.0;
  const double sigma = task_window_speed(t, core, window);
  if (!std::isfinite(sigma) || sigma <= 0.0) return kInf;
  // A 1e-9 relative slack keeps optima that sit exactly on the s_up
  // boundary finite (the window-fill speed then exceeds s_up by rounding
  // noise only); validators use looser tolerances than this.
  if (t.work / sigma > window * (1.0 + 1e-9)) return kInf;  // s_up too slow
  return core.exec_energy(t.work, sigma);
}

double block_energy_at(const std::vector<Task>& tasks, const SystemConfig& cfg,
                       double s, double e) {
  if (e <= s) return kInf;
  double energy = cfg.memory.alpha_m * (e - s);
  for (const auto& t : tasks) {
    const double lo = std::max(s, t.release);
    const double hi = std::min(e, t.deadline);
    if (t.work > 0.0 && hi <= lo) return kInf;
    energy += task_window_energy(t, cfg.core, hi - lo);
    if (!std::isfinite(energy)) return kInf;
  }
  return energy;
}

std::vector<BlockResult::Placement> block_placements_at(
    const std::vector<Task>& tasks, const SystemConfig& cfg, double s,
    double e) {
  std::vector<BlockResult::Placement> placements;
  placements.reserve(tasks.size());
  for (const auto& t : tasks) {
    BlockResult::Placement p;
    p.task_id = t.id;
    if (t.work > 0.0) {
      const double lo = std::max(s, t.release);
      const double hi = std::min(e, t.deadline);
      p.speed = task_window_speed(t, cfg.core, hi - lo);
      p.len = t.work / p.speed;
      p.start = lo;  // race-to-idle tasks run at the head of their window
    }
    placements.push_back(p);
  }
  return placements;
}

BlockResult solve_block(const std::vector<Task>& tasks,
                        const SystemConfig& cfg) {
  BlockContext ctx(cfg);
  for (const auto& t : tasks) ctx.push_task(t);
  return ctx.solve_full();
}

BlockResult solve_block_reference(const std::vector<Task>& tasks,
                                  const SystemConfig& cfg) {
  BlockResult out;
  if (tasks.empty()) return out;

  double r_min = kInf, r_max = -kInf, d_min = kInf, d_max = -kInf;
  for (const auto& t : tasks) {
    r_min = std::min(r_min, t.release);
    r_max = std::max(r_max, t.release);
    d_min = std::min(d_min, t.deadline);
    d_max = std::max(d_max, t.deadline);
  }

  // Breakpoints of the (i,j)-pair partition: s' crosses release times,
  // e' crosses deadlines. s' in [r_min, d_min], e' in [r_max, d_max].
  std::vector<double> sb, eb;
  sb.push_back(r_min);
  sb.push_back(d_min);
  for (const auto& t : tasks) {
    if (t.release > r_min && t.release < d_min) sb.push_back(t.release);
  }
  eb.push_back(r_max);
  eb.push_back(d_max);
  for (const auto& t : tasks) {
    if (t.deadline > r_max && t.deadline < d_max) eb.push_back(t.deadline);
  }
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  std::sort(eb.begin(), eb.end());
  eb.erase(std::unique(eb.begin(), eb.end()), eb.end());

  auto energy_at = [&](double s, double e) {
    return block_energy_at(tasks, cfg, s, e);
  };

  double best = kInf;
  double best_s = r_min, best_e = d_max;

  // Minimize within each box. Inside a box the objective is smooth and
  // convex; globally it is convex, so the best box-local optimum is the
  // global optimum.
  for (std::size_t si = 0; si + 1 < sb.size(); ++si) {
    for (std::size_t ei = 0; ei + 1 < eb.size(); ++ei) {
      const BoxMin m =
          minimize_in_box(tasks, cfg.core.max_speed(), energy_at, sb[si],
                          sb[si + 1], eb[ei], eb[ei + 1]);
      if (m.feasible && m.value < best) {
        best = m.value;
        best_s = m.s;
        best_e = m.e;
      }
    }
  }

  if (!std::isfinite(best)) return out;

  out.feasible = true;
  out.s = best_s;
  out.e = best_e;
  out.energy = best;
  out.placements = block_placements_at(tasks, cfg, best_s, best_e);
  return out;
}

}  // namespace sdem
