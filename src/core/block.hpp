// Single-block (busy-interval) optimizer shared by the agreeable-deadline
// schemes (paper §5.1 and §5.2).
//
// A block is a subset of agreeable tasks scheduled inside one busy interval
// [s', e'] of the memory. Given (s', e'), task k owns the clipped window
// W_k = [max(s', r_k), min(e', d_k)] and its core independently runs it as
// cheaply as possible inside that window at speed
//
//   sigma_k = min{ max{ s_m, w_k / |W_k| }, s_up },
//
// i.e. stretched to fill the window unless that would drop below the core
// critical speed s_m (then the core races to s_m and sleeps — a Type-I task
// in the paper's terms; window-filling tasks are Type-II, "aligned" with the
// busy interval). The block energy is
//
//   E(s', e') = alpha_m (e' - s') + sum_k f_k(|W_k|),
//   f_k(W)    = (beta sigma_k^lambda + alpha) * w_k / sigma_k.
//
// f_k is C^1, convex and non-increasing in W (the two pieces meet with zero
// slope exactly at W = w_k / s_m), and |W_k| is concave in (s', e'), so E is
// globally convex — the paper's (i,j)-pair enumeration partitions the domain
// into boxes where E is additionally smooth. We follow that structure:
// enumerate boxes bounded by release/deadline breakpoints and minimize within
// each by alternating exact line searches. With alpha == 0 (s_m == 0) every
// task stretches to its window and this is exactly the Section 5.1
// objective; with alpha != 0 it is the fixpoint Algorithm 1 converges to
// (verified in tests against the literal Algorithm 1 implementation).
#pragma once

#include <functional>
#include <vector>

#include "model/power.hpp"
#include "model/task.hpp"
#include "sched/schedule.hpp"

namespace sdem {

struct BlockResult {
  bool feasible = false;
  double s = 0.0;        ///< busy interval start s'
  double e = 0.0;        ///< busy interval end e'
  double energy = 0.0;   ///< alpha_m (e'-s') + per-core energies
  /// One entry per input task (same order): execution [start, start+len) at
  /// `speed` on its own core.
  struct Placement {
    int task_id = 0;
    double start = 0.0;
    double len = 0.0;
    double speed = 0.0;
  };
  std::vector<Placement> placements;
};

/// Per-task minimal core energy given a window of length `window`.
/// Returns +inf when the window cannot hold the task within s_up.
double task_window_energy(const Task& t, const CorePower& core, double window);

/// Speed chosen for a window of length `window` (the sigma_k above).
double task_window_speed(const Task& t, const CorePower& core, double window);

/// Optimize one block. `tasks` must be agreeable and is treated as one busy
/// interval; placements come back on logical cores 0..n-1 (caller re-bases).
/// Routes through the incremental core/block_context solver; task vectors
/// not in agreeable deadline order fall back to solve_block_reference.
BlockResult solve_block(const std::vector<Task>& tasks,
                        const SystemConfig& cfg);

/// The seed implementation of solve_block: rebuilds breakpoints and probes
/// the O(k) block_energy_at per golden-section step. Kept as the golden
/// reference for the incremental solver (tests, cross-check, fallback).
BlockResult solve_block_reference(const std::vector<Task>& tasks,
                                  const SystemConfig& cfg);

/// Per-task placements of a block at a fixed busy interval [s, e] — the
/// reconstruction used on the DP's optimal path so the block table can hold
/// scalars only.
std::vector<BlockResult::Placement> block_placements_at(
    const std::vector<Task>& tasks, const SystemConfig& cfg, double s,
    double e);

/// Evaluate the block objective at a fixed (s', e') — exposed for tests and
/// the brute-force reference.
double block_energy_at(const std::vector<Task>& tasks, const SystemConfig& cfg,
                       double s, double e);

/// Shared box minimizer for block-style objectives f(s', e'): alternating
/// exact line searches plus a diagonal translation search, with the search
/// ranges pre-clamped to the s_up-feasible region of `tasks` (every window
/// min(e,d_k) - max(s,r_k) must hold w_k / s_up) so line searches never
/// touch the infeasibility cliff. Requires f smooth and convex in the box.
struct BoxMin {
  bool feasible = false;
  double s = 0.0;
  double e = 0.0;
  double value = 0.0;
};
BoxMin minimize_in_box(const std::vector<Task>& tasks, double s_up,
                       const std::function<double(double, double)>& f,
                       double s_lo, double s_hi, double e_lo, double e_hi);

}  // namespace sdem
