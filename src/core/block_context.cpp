#include "core/block_context.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::atomic<bool> g_cross_check{false};
std::atomic<std::uint64_t> g_probes{0};
std::atomic<std::uint64_t> g_failures{0};

/// numeric.cpp's golden_min, restated as a template so the per-probe call
/// is direct (no std::function) while keeping the iteration — and therefore
/// the convergence point — identical.
template <typename F>
double golden_min_t(F&& f, double lo, double hi, double rel_tol) {
  if (hi <= lo) return lo;
  constexpr double inv_phi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  const double tol = std::max(std::abs(hi - lo), 1.0) * rel_tol;
  while (b - a > tol) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace

void BlockContext::set_cross_check(bool on) {
  g_cross_check.store(on, std::memory_order_relaxed);
}
bool BlockContext::cross_check() {
  return g_cross_check.load(std::memory_order_relaxed);
}
std::uint64_t BlockContext::cross_check_probes() {
  return g_probes.load(std::memory_order_relaxed);
}
std::uint64_t BlockContext::cross_check_failures() {
  return g_failures.load(std::memory_order_relaxed);
}
void BlockContext::reset_cross_check_counters() {
  g_probes.store(0, std::memory_order_relaxed);
  g_failures.store(0, std::memory_order_relaxed);
}

BlockContext::BlockContext(const SystemConfig& cfg) : cfg_(cfg) {
  alpha_ = cfg_.core.alpha;
  alpha_m_ = cfg_.memory.alpha_m;
  lambda_ = cfg_.core.lambda;
  s_m_raw_ = cfg_.core.critical_speed_raw();  // one pow per context, not per probe
  s_up_ = cfg_.core.max_speed();
  kc_.alpha = alpha_;
  kc_.lambda = lambda_;
  kc_.s_m_raw = s_m_raw_;
  kc_.s_up = s_up_;
  // Lower-bound pruning needs each lane's energy nonincreasing in its
  // window, i.e. the fill-regime curve alpha*W + beta*w^λ*W^(1-λ) must have
  // its stationary point exactly at the race boundary (the definition of
  // the critical speed) — true for the physical parameter range below.
  can_prune_ = alpha_ >= 0.0 && alpha_m_ >= 0.0 && lambda_ > 1.0 &&
               cfg_.core.beta >= 0.0;
  pref_efull_.push_back(0.0);
}

void BlockContext::reset() {
  tasks_.clear();
  pr_.clear();
  pd_.clear();
  pw_.clear();
  pq_.clear();
  pwpow_.clear();
  pwrace_.clear();
  perace_.clear();
  peup_.clear();
  pefull_.clear();
  pref_efull_.assign(1, 0.0);
  nr_.clear();
  nd_.clear();
  nq_.clear();
  sb_.clear();
  eb_.clear();
  ecur_ = 0;
  sorted_ = true;
  infeasible_ = false;
}

double BlockContext::piece(std::size_t i, double window) const {
  return block_piece_scalar(kc_, pw_[i], pq_[i], pwpow_[i], perace_[i],
                            peup_[i], window);
}

void BlockContext::push_task(const Task& t) {
  if (!tasks_.empty() && (t.release < pr_.back() || t.deadline < pd_.back())) {
    sorted_ = false;  // not agreeable deadline order: solve() falls back
  }
  tasks_.push_back(t);

  double q = 0.0, wpow = 0.0, w_race = 0.0, e_race = 0.0, e_up = 0.0,
         e_full = 0.0;
  if (t.work > 0.0) {
    q = std::isfinite(s_up_) ? t.work / s_up_ : 0.0;
    wpow = cfg_.core.beta * std::pow(t.work, lambda_);
    const double c = std::min(s_m_raw_, s_up_);
    w_race = c > 0.0 ? t.work / c : kInf;
    e_race = cfg_.core.exec_energy(t.work, c);
    e_up = std::isfinite(s_up_) ? cfg_.core.exec_energy(t.work, s_up_) : kInf;
    e_full = block_piece_scalar(kc_, t.work, q, wpow, e_race, e_up,
                                t.deadline - t.release);
    if (!std::isfinite(e_full)) infeasible_ = true;
    nr_.push_back(t.release);
    nd_.push_back(t.deadline);
    // Slacked copy for the feasibility geometry: the piece kernel keeps
    // windows down to q / kBlockUpSlack finite, so feasible_e_min/
    // feasible_s_max must accept them too, or a boundary-tight task
    // collapses every box to its corners.
    nq_.push_back(q / kBlockUpSlack);
  }
  pr_.push_back(t.release);
  pd_.push_back(t.deadline);
  pw_.push_back(t.work);
  pq_.push_back(q);
  pwpow_.push_back(wpow);
  pwrace_.push_back(w_race);
  perace_.push_back(e_race);
  peup_.push_back(e_up);
  pefull_.push_back(e_full);
  pref_efull_.push_back(pref_efull_.back() + e_full);

  if (tasks_.size() == 1) {
    r_min_ = t.release;
    d_min_ = t.deadline;
    r_max_ = t.release;
    d_max_ = t.deadline;
    sb_.assign({r_min_, d_min_});
    return;
  }
  r_min_ = std::min(r_min_, t.release);
  d_min_ = std::min(d_min_, t.deadline);
  r_max_ = std::max(r_max_, t.release);
  d_max_ = std::max(d_max_, t.deadline);
  if (sorted_) {
    // Releases arrive non-decreasing, so the inner s' breakpoints stay
    // sorted by appending just before the trailing d_min.
    const double prev = sb_[sb_.size() - 2];
    if (t.release > prev && t.release < d_min_) {
      sb_.insert(sb_.end() - 1, t.release);
    }
  }
}

void BlockContext::push_lane(LaneBuf& buf, std::size_t i, double bound) {
  buf.bound.push_back(bound);
  buf.w.push_back(pw_[i]);
  buf.q.push_back(pq_[i]);
  buf.wpow.push_back(pwpow_[i]);
  buf.e_race.push_back(perace_[i]);
  buf.e_up.push_back(peup_[i]);
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline)) inline
#endif
double BlockContext::eval_box(double s, double e) const {
  SDEM_OBS_ONLY(++obs_probes_;)
  double energy = alpha_m_ * (e - s) + const_energy_;
  // One window per fused lane (left | right | coupled segments), one
  // batched-kernel call, one serial reduction in task order (left, right,
  // coupled — the order the scalar loop added them), so the sum is
  // bit-identical to per-task accumulation.
  const std::size_t n = lanes_.size();
  if (n != 0) {
    const double* bound = lanes_.bound.data();
    const std::size_t nl = nleft_, nlr = nleft_ + nright_;
    if (n < kBlockBatchMinLanes) {
      // Narrow box (the common case): evaluate each lane inline — same
      // scalar kernel, same accumulation order, so the same bits as the
      // batched path below — skipping the win_/val_ scratch round-trip,
      // which costs more than it saves at a handful of lanes.
      const LaneBuf& L = lanes_;
      for (std::size_t i = 0; i < nl; ++i) {
        energy += block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i],
                                     L.e_race[i], L.e_up[i], bound[i] - s);
      }
      for (std::size_t i = nl; i < nlr; ++i) {
        energy += block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i],
                                     L.e_race[i], L.e_up[i], e - bound[i]);
      }
      for (std::size_t i = nlr; i < n; ++i) {
        energy += block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i],
                                     L.e_race[i], L.e_up[i], e - s);
      }
    } else {
      double* win = win_.data();
      for (std::size_t i = 0; i < nl; ++i) win[i] = bound[i] - s;  // d - s'
      for (std::size_t i = nl; i < nlr; ++i) win[i] = e - bound[i];  // e' - r
      for (std::size_t i = nlr; i < n; ++i) win[i] = e - s;  // e' - s'
      block_piece_batch(kc_, lanes_.w.data(), lanes_.q.data(),
                        lanes_.wpow.data(), lanes_.e_race.data(),
                        lanes_.e_up.data(), win, val_.data(), n);
      const double* val = val_.data();
      for (std::size_t i = 0; i < n; ++i) energy += val[i];
    }
  }

  if (g_cross_check.load(std::memory_order_relaxed)) audit_probe(s, e, energy);
  return std::isfinite(energy) ? energy : kInf;
}

void BlockContext::prime_fixed_left(double s) const {
  const LaneBuf& L = lanes_;
  const double* bound = L.bound.data();
  for (std::size_t i = 0; i < nleft_; ++i) {
    fixv_[i] = block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i], L.e_race[i],
                                  L.e_up[i], bound[i] - s);
  }
}

void BlockContext::prime_fixed_right(double e) const {
  const LaneBuf& L = lanes_;
  const double* bound = L.bound.data();
  for (std::size_t i = nleft_; i < nleft_ + nright_; ++i) {
    fixv_[i] = block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i], L.e_race[i],
                                  L.e_up[i], e - bound[i]);
  }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline)) inline
#endif
double BlockContext::eval_box_fixed_s(double s, double e) const {
  SDEM_OBS_ONLY(++obs_probes_;)
  double energy = alpha_m_ * (e - s) + const_energy_;
  const LaneBuf& L = lanes_;
  const double* bound = L.bound.data();
  const std::size_t n = L.size(), nl = nleft_, nlr = nleft_ + nright_;
  const double* fix = fixv_.data();
  for (std::size_t i = 0; i < nl; ++i) energy += fix[i];  // primed at this s
  for (std::size_t i = nl; i < nlr; ++i) {
    energy += block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i], L.e_race[i],
                                 L.e_up[i], e - bound[i]);
  }
  for (std::size_t i = nlr; i < n; ++i) {
    energy += block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i], L.e_race[i],
                                 L.e_up[i], e - s);
  }
  if (g_cross_check.load(std::memory_order_relaxed)) audit_probe(s, e, energy);
  return std::isfinite(energy) ? energy : kInf;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline)) inline
#endif
double BlockContext::eval_box_fixed_e(double s, double e) const {
  SDEM_OBS_ONLY(++obs_probes_;)
  double energy = alpha_m_ * (e - s) + const_energy_;
  const LaneBuf& L = lanes_;
  const double* bound = L.bound.data();
  const std::size_t n = L.size(), nl = nleft_, nlr = nleft_ + nright_;
  const double* fix = fixv_.data();
  for (std::size_t i = 0; i < nl; ++i) {
    energy += block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i], L.e_race[i],
                                 L.e_up[i], bound[i] - s);
  }
  for (std::size_t i = nl; i < nlr; ++i) energy += fix[i];  // primed at e
  for (std::size_t i = nlr; i < n; ++i) {
    energy += block_piece_scalar(kc_, L.w[i], L.q[i], L.wpow[i], L.e_race[i],
                                 L.e_up[i], e - s);
  }
  if (g_cross_check.load(std::memory_order_relaxed)) audit_probe(s, e, energy);
  return std::isfinite(energy) ? energy : kInf;
}

// Out of line (and kept off the inlining path): the audit body is an order
// of magnitude bigger than the probe itself, and folding it into eval_box
// pushes the hot function past the inliner's size budget — gprof shows the
// probe then stops inlining into minimize_box's line searches.
void BlockContext::audit_probe(double s, double e, double energy) const {
  g_probes.fetch_add(1, std::memory_order_relaxed);
  SDEM_OBS_INC("block/cross_check_probes");
  const double exact = block_energy_at(tasks_, cfg_, s, e);
  const bool fast_inf = !std::isfinite(energy);
  const bool exact_inf = !std::isfinite(exact);
  const bool ok =
      fast_inf == exact_inf &&
      (fast_inf || std::abs(energy - exact) <=
                       1e-9 * std::max({1.0, std::abs(energy), std::abs(exact)}));
  if (!ok) {
    g_failures.fetch_add(1, std::memory_order_relaxed);
    SDEM_OBS_INC("block/cross_check_failures");
    assert(false && "BlockContext fast probe diverged from block_energy_at");
  }
}

bool BlockContext::setup_box(double s_lo, double s_hi, double e_lo,
                             double e_hi) {
  lanes_.clear();
  ctmp_.clear();
  nleft_ = nright_ = 0;
  const_energy_ = 0.0;
  box_floor_ = 0.0;
  // Feasibility geometry of the dynamic lanes, for the lower bound's memory
  // term: a finite probe needs window*slack >= q per lane, so left lanes cap
  // s' at d - q/slack, right lanes floor e' at r + q/slack, and coupled
  // lanes floor e' - s' directly. Ulp-level rounding slop against the piece
  // kernel's own boundary test is absorbed by the 1e-12 prune shave.
  double s_cap = s_hi;
  double e_floor = e_lo;
  double w_floor = 0.0;
  constexpr double inv_slack = 1.0 / kBlockUpSlack;

  const std::size_t n = pr_.size();
  // Boxes are bounded by breakpoints, so no release sits strictly inside
  // (s_lo, s_hi) and no deadline strictly inside (e_lo, e_hi): the window
  // classes are exact and, in agreeable order, contiguous index ranges.
  const std::size_t a =
      std::upper_bound(pr_.begin(), pr_.end(), s_lo) - pr_.begin();
  const std::size_t c =
      std::upper_bound(pd_.begin(), pd_.end(), e_lo) - pd_.begin();

  // Each class's feasibility probe sits at the lane's maximal window over
  // the box. A lane's energy is nonincreasing in its window (inf below the
  // q/slack feasibility knee, then the constant clamp energy, then the
  // decreasing fill curve, then the constant race energy), so that probe
  // value is also the lane's exact minimum over the box — accumulated into
  // box_floor_ as the lower bound solve() prunes with.
  const std::size_t left_end = std::min(a, c);
  for (std::size_t i = 0; i < left_end; ++i) {  // W = d - s'
    if (pw_[i] <= 0.0) continue;
    const double v = piece(i, pd_[i] - s_lo);
    if (!std::isfinite(v)) return false;  // box infeasible
    if (pd_[i] - s_hi >= pwrace_[i]) {
      const_energy_ += perace_[i];  // pinned at the race speed across the box
    } else {
      push_lane(lanes_, i, pd_[i]);
      box_floor_ += v;
      s_cap = std::min(s_cap, pd_[i] - pq_[i] * inv_slack);
    }
  }
  nleft_ = lanes_.size();
  if (a <= c) {
    // Unclipped middle class: full windows, one subtraction via prefix sums.
    const_energy_ += pref_efull_[c] - pref_efull_[a];
  } else {
    // Staged in ctmp_: coupled lanes accumulate after the right segment in
    // eval_box, but the const_energy_ folds must keep this loop order.
    for (std::size_t i = c; i < a; ++i) {  // both-sides-clipped: W = e' - s'
      if (pw_[i] <= 0.0) continue;
      const double v = piece(i, e_hi - s_lo);
      if (!std::isfinite(v)) return false;
      if (e_lo - s_hi >= pwrace_[i]) {
        const_energy_ += perace_[i];
      } else {
        push_lane(ctmp_, i, 0.0);
        box_floor_ += v;
        w_floor = std::max(w_floor, pq_[i] * inv_slack);
      }
    }
  }
  for (std::size_t i = std::max(a, c); i < n; ++i) {  // W = e' - r
    if (pw_[i] <= 0.0) continue;
    const double v = piece(i, e_hi - pr_[i]);
    if (!std::isfinite(v)) return false;
    if (e_lo - pr_[i] >= pwrace_[i]) {
      const_energy_ += perace_[i];
    } else {
      push_lane(lanes_, i, pr_[i]);
      box_floor_ += v;
      e_floor = std::max(e_floor, pr_[i] + pq_[i] * inv_slack);
    }
  }
  nright_ = lanes_.size() - nleft_;
  lanes_.append(ctmp_);
  box_mem_floor_ = std::max({0.0, e_floor - s_cap, w_floor});
  return true;
}

double BlockContext::feasible_e_min(double s) const {
  double v = s;
  for (std::size_t i = 0; i < nr_.size(); ++i) {
    const double x = std::max(s, nr_[i]) + nq_[i];
    if (x > nd_[i]) return kInf;
    v = std::max(v, x);
  }
  return v;
}

double BlockContext::feasible_s_max(double e) const {
  double v = e;
  for (std::size_t i = 0; i < nr_.size(); ++i) {
    if (std::min(e, nd_[i]) - nr_[i] < nq_[i]) return -kInf;
    v = std::min(v, std::max(nr_[i], std::min(e, nd_[i]) - nq_[i]));
  }
  return v;
}

BoxMin BlockContext::minimize_box(double s_lo, double s_hi, double e_lo,
                                  double e_hi) const {
  // minimize_in_box's alternating line searches + diagonal escape, with the
  // box-specialized evaluator and the block-level feasibility arrays.
  BoxMin out;
  double s = s_lo, e = e_hi;  // maximal windows: feasible if anything is
  double val = eval_box(s, e);
  if (!std::isfinite(val)) return out;
  out.feasible = true;
  out.s = s;
  out.e = e;
  out.value = val;

  for (int round = 0; round < 64; ++round) {
    const double elo = std::max({e_lo, s, feasible_e_min(s)});
    if (elo > e_hi) break;
    // The e-line search holds s fixed, so the left lanes' windows — and
    // values — are constants of the whole search: prime them once and let
    // the probe re-add the identical doubles instead of re-deriving them.
    prime_fixed_left(s);
    const double new_e = golden_min_t(
        [&](double y) { return eval_box_fixed_s(s, y); }, elo, e_hi, 1e-12);
    const double shi = std::min({s_hi, new_e, feasible_s_max(new_e)});
    if (shi < s_lo) break;
    prime_fixed_right(new_e);  // ditto: e fixed pins the right lanes
    const double new_s = golden_min_t(
        [&](double x) { return eval_box_fixed_e(x, new_e); }, s_lo, shi,
        1e-12);
    const double t_lo = std::max(s_lo - new_s, e_lo - new_e);
    const double t_hi = std::min(s_hi - new_s, e_hi - new_e);
    double t = 0.0;
    if (t_hi > t_lo) {
      // No segment is pinned on the diagonal: s and e move together and
      // even e' - s' changes bitwise ((e+dt) - (s+dt) != e - s in floating
      // point), so the full evaluator runs.
      t = golden_min_t(
          [&](double dt) { return eval_box(new_s + dt, new_e + dt); }, t_lo,
          t_hi, 1e-12);
      if (!std::isfinite(eval_box(new_s + t, new_e + t))) t = 0.0;
    }
    const double cand_s = new_s + t;
    const double cand_e = new_e + t;
    const double cand = eval_box(cand_s, cand_e);
    const bool converged =
        std::abs(cand_s - s) < 1e-13 * std::max(1.0, std::abs(s)) &&
        std::abs(cand_e - e) < 1e-13 * std::max(1.0, std::abs(e));
    s = cand_s;
    e = cand_e;
    if (std::isfinite(cand) && cand < out.value) {
      out.value = cand;
      out.s = s;
      out.e = e;
    }
    if (converged) break;
  }
  return out;
}

void BlockContext::build_e_breakpoints() {
  eb_.clear();
  eb_.push_back(r_max_);
  while (ecur_ < pd_.size() && pd_[ecur_] <= r_max_) ++ecur_;
  for (std::size_t j = ecur_; j < pd_.size(); ++j) {
    const double d = pd_[j];
    if (d >= d_max_) break;  // deadlines are sorted; the rest tie with d_max
    if (d > eb_.back()) eb_.push_back(d);
  }
  eb_.push_back(d_max_);
}

BlockSolution BlockContext::solve_fallback() const {
  const BlockResult r = solve_block_reference(tasks_, cfg_);
  BlockSolution out;
  out.feasible = r.feasible;
  out.s = r.s;
  out.e = r.e;
  out.energy = r.energy;
  return out;
}

BlockSolution BlockContext::solve() {
  BlockSolution out;
  if (tasks_.empty() || infeasible_) return out;
  if (!sorted_) {
    SDEM_OBS_INC("block/fallback_solves");
    return solve_fallback();
  }

  build_e_breakpoints();
  win_.resize(pr_.size());
  val_.resize(pr_.size());
  fixv_.resize(pr_.size());

  SDEM_OBS_ONLY(std::uint64_t boxes = 0; std::uint64_t boxes_pruned = 0;
                std::uint64_t boxes_lb_pruned = 0; std::uint64_t cls_left = 0;
                std::uint64_t cls_right = 0; std::uint64_t cls_coupled = 0;
                std::uint64_t cls_const = 0;)
  double best = kInf;
  double best_s = r_min_, best_e = d_max_;
  // Pass 1: set up every box once to learn its exact lower bound — the
  // memory term at its corner minimum plus the constant fold plus each
  // dynamic lane's maximal-window value (the lane's exact box minimum, see
  // setup_box). Infeasible boxes drop out here.
  cand_.clear();
  for (std::size_t si = 0; si + 1 < sb_.size(); ++si) {
    for (std::size_t ei = 0; ei + 1 < eb_.size(); ++ei) {
      const double s_lo = sb_[si], s_hi = sb_[si + 1];
      const double e_lo = eb_[ei], e_hi = eb_[ei + 1];
      if (e_hi <= s_lo) continue;  // would force e' <= s'
      if (!setup_box(s_lo, s_hi, e_lo, e_hi)) {
        SDEM_OBS_ONLY(++boxes_pruned;)
        continue;  // pruned: infeasible
      }
      // lb: the memory term at the least feasible e' - s' (setup_box folds
      // the box corner and the lanes' q/slack feasibility constraints into
      // box_mem_floor_) plus the constant fold plus the lanes' exact box
      // minima. ub: the corner value eval_box(s_lo, e_hi) — every term sits
      // at its box minimum except the memory one, which sits at its max.
      const double lb =
          alpha_m_ * box_mem_floor_ + const_energy_ + box_floor_;
      const double ub =
          alpha_m_ * (e_hi - s_lo) + const_energy_ + box_floor_;
      cand_.push_back({lb, ub, static_cast<std::uint32_t>(si),
                       static_cast<std::uint32_t>(ei)});
    }
  }
  // Pass 2: best-first branch and bound. With the bounds sorted ascending,
  // the first box whose bound — minus a 1e-12 relative shave for the
  // reassociation noise between the bound's sum and eval_box's
  // accumulation order — fails to strictly beat the best value found so
  // far ends the scan: every later box is bounded even higher. The search
  // ORDER must not leak into the result, though: distinct (s', e') can tie
  // in energy bit-for-bit (flat landscapes under degenerate powers), and
  // the seed's row-major scan resolves such ties by first arrival. So this
  // pass only records the searched boxes' minima, and the incumbent fold
  // below replays them in enumeration order with the original strict `<`.
  // Skipped boxes cannot affect that fold: their probes sit above lb minus
  // a few ulp of reassociation noise, and the 1e-12 shave is orders of
  // magnitude wider, so every skipped box stays strictly above the final
  // best — bit-identical results, box count independent. Exotic parameter
  // sets (can_prune_ false: the monotone-lane argument doesn't hold) keep
  // the enumeration order and search everything.
  if (can_prune_) {
    std::stable_sort(cand_.begin(), cand_.end(),
                     [](const BoxCand& x, const BoxCand& y) {
                       return x.lb < y.lb;
                     });
  }
  searched_.clear();
  double best_seen = kInf;  // value-only incumbent for the stop test
  auto search_box = [&](const BoxCand& c) {
    const double s_lo = sb_[c.si], s_hi = sb_[c.si + 1];
    const double e_lo = eb_[c.ei], e_hi = eb_[c.ei + 1];
    setup_box(s_lo, s_hi, e_lo, e_hi);  // feasible in pass 1, so again here
    SDEM_OBS_ONLY(++boxes; cls_left += nleft_; cls_right += nright_;
                  cls_coupled += lanes_.size() - nleft_ - nright_;
                  cls_const += nr_.size() - lanes_.size();)
    const BoxMin m = minimize_box(s_lo, s_hi, e_lo, e_hi);
    if (m.feasible) {
      best_seen = std::min(best_seen, m.value);
      searched_.push_back({c.si, c.ei, m});
    }
  };
  // Seed the incumbent from the box with the least corner value: that
  // corner is minimize_box's first probe, so searching this box first costs
  // nothing extra, and it usually holds the optimum — the sorted scan below
  // then stops at its very first candidate. Searching an extra box is
  // always fold-safe (the fold only gains strictly-better-or-tied entries).
  std::size_t first = cand_.size();
  if (can_prune_ && !cand_.empty()) {
    first = 0;
    for (std::size_t k = 1; k < cand_.size(); ++k) {
      if (cand_[k].ub < cand_[first].ub) first = k;
    }
    search_box(cand_[first]);
  }
  for (std::size_t k = 0; k < cand_.size(); ++k) {
    if (k == first) continue;
    const BoxCand& c = cand_[k];
    if (can_prune_ && c.lb - 1e-12 * std::abs(c.lb) >= best_seen) {
      SDEM_OBS_ONLY(boxes_lb_pruned +=
                    cand_.size() - k - (first > k ? 1 : 0);)
      break;
    }
    search_box(c);
  }
  std::sort(searched_.begin(), searched_.end(),
            [](const SearchedBox& x, const SearchedBox& y) {
              return x.si != y.si ? x.si < y.si : x.ei < y.ei;
            });
  for (const SearchedBox& sbx : searched_) {
    if (sbx.m.value < best) {
      best = sbx.m.value;
      best_s = sbx.m.s;
      best_e = sbx.m.e;
    }
  }
  SDEM_OBS_INC("block/solves");
  SDEM_OBS_COUNT("block/boxes_opened", boxes);
  SDEM_OBS_COUNT("block/boxes_pruned_infeasible", boxes_pruned);
  SDEM_OBS_COUNT("block/boxes_pruned_lower_bound", boxes_lb_pruned);
  SDEM_OBS_COUNT("block/box_tasks_const", cls_const);
  SDEM_OBS_COUNT("block/box_tasks_left_clipped", cls_left);
  SDEM_OBS_COUNT("block/box_tasks_right_clipped", cls_right);
  SDEM_OBS_COUNT("block/box_tasks_coupled", cls_coupled);
#if SDEM_OBS
  SDEM_OBS_COUNT("block/probes", obs_probes_);
  obs_probes_ = 0;
#endif
  if (!std::isfinite(best)) return out;
  out.feasible = true;
  out.s = best_s;
  out.e = best_e;
  out.energy = best;
  return out;
}

BlockResult BlockContext::solve_full() {
  if (!sorted_) return solve_block_reference(tasks_, cfg_);
  const BlockSolution sol = solve();
  BlockResult out;
  if (!sol.feasible) return out;
  out.feasible = true;
  out.s = sol.s;
  out.e = sol.e;
  out.energy = sol.energy;
  out.placements = block_placements_at(tasks_, cfg_, sol.s, sol.e);
  return out;
}

}  // namespace sdem
