#include "core/block_context.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Same relative slack block_energy_at grants optima sitting exactly on the
// s_up boundary; reused verbatim so feasibility decisions cannot flip
// between the fast and the exact path.
constexpr double kUpSlack = 1.0 + 1e-9;

std::atomic<bool> g_cross_check{false};
std::atomic<std::uint64_t> g_probes{0};
std::atomic<std::uint64_t> g_failures{0};

/// numeric.cpp's golden_min, restated as a template so the per-probe call
/// is direct (no std::function) while keeping the iteration — and therefore
/// the convergence point — identical.
template <typename F>
double golden_min_t(F&& f, double lo, double hi, double rel_tol) {
  if (hi <= lo) return lo;
  constexpr double inv_phi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  const double tol = std::max(std::abs(hi - lo), 1.0) * rel_tol;
  while (b - a > tol) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace

void BlockContext::set_cross_check(bool on) {
  g_cross_check.store(on, std::memory_order_relaxed);
}
bool BlockContext::cross_check() {
  return g_cross_check.load(std::memory_order_relaxed);
}
std::uint64_t BlockContext::cross_check_probes() {
  return g_probes.load(std::memory_order_relaxed);
}
std::uint64_t BlockContext::cross_check_failures() {
  return g_failures.load(std::memory_order_relaxed);
}
void BlockContext::reset_cross_check_counters() {
  g_probes.store(0, std::memory_order_relaxed);
  g_failures.store(0, std::memory_order_relaxed);
}

BlockContext::BlockContext(const SystemConfig& cfg) : cfg_(cfg) {
  alpha_ = cfg_.core.alpha;
  alpha_m_ = cfg_.memory.alpha_m;
  lambda_ = cfg_.core.lambda;
  s_m_raw_ = cfg_.core.critical_speed_raw();  // one pow per context, not per probe
  s_up_ = cfg_.core.max_speed();
  pref_efull_.push_back(0.0);
}

void BlockContext::reset() {
  tasks_.clear();
  pre_.clear();
  pref_efull_.assign(1, 0.0);
  nr_.clear();
  nd_.clear();
  nq_.clear();
  sb_.clear();
  eb_.clear();
  ecur_ = 0;
  sorted_ = true;
  infeasible_ = false;
}

void BlockContext::push_task(const Task& t) {
  if (!tasks_.empty() &&
      (t.release < pre_.back().r || t.deadline < pre_.back().d)) {
    sorted_ = false;  // not agreeable deadline order: solve() falls back
  }
  tasks_.push_back(t);

  Pre p;
  p.r = t.release;
  p.d = t.deadline;
  p.w = t.work;
  if (t.work > 0.0) {
    p.q = std::isfinite(s_up_) ? t.work / s_up_ : 0.0;
    p.wpow = cfg_.core.beta * std::pow(t.work, lambda_);
    const double c = std::min(s_m_raw_, s_up_);
    p.w_race = c > 0.0 ? t.work / c : kInf;
    p.e_race = cfg_.core.exec_energy(t.work, c);
    p.e_up = std::isfinite(s_up_) ? cfg_.core.exec_energy(t.work, s_up_) : kInf;
    p.e_full = piece(p, t.deadline - t.release);
    if (!std::isfinite(p.e_full)) infeasible_ = true;
    nr_.push_back(p.r);
    nd_.push_back(p.d);
    // Slacked copy for the feasibility geometry: piece() keeps windows down
    // to q / kUpSlack finite, so feasible_e_min/feasible_s_max must accept
    // them too, or a boundary-tight task collapses every box to its corners.
    nq_.push_back(p.q / kUpSlack);
  }
  pre_.push_back(p);
  pref_efull_.push_back(pref_efull_.back() + p.e_full);

  if (tasks_.size() == 1) {
    r_min_ = t.release;
    d_min_ = t.deadline;
    r_max_ = t.release;
    d_max_ = t.deadline;
    sb_.assign({r_min_, d_min_});
    return;
  }
  r_min_ = std::min(r_min_, t.release);
  d_min_ = std::min(d_min_, t.deadline);
  r_max_ = std::max(r_max_, t.release);
  d_max_ = std::max(d_max_, t.deadline);
  if (sorted_) {
    // Releases arrive non-decreasing, so the inner s' breakpoints stay
    // sorted by appending just before the trailing d_min.
    const double prev = sb_[sb_.size() - 2];
    if (t.release > prev && t.release < d_min_) {
      sb_.insert(sb_.end() - 1, t.release);
    }
  }
}

double BlockContext::window_power(double w_pos) const {
  if (lambda_ == 3.0) return 1.0 / (w_pos * w_pos);
  if (lambda_ == 2.0) return 1.0 / w_pos;
  return std::pow(w_pos, 1.0 - lambda_);
}

double BlockContext::piece(const Pre& p, double window) const {
  // Mirrors task_window_energy's regimes with the per-task constants
  // hoisted: sigma = min(max(s_m, w/W), s_up).
  if (!(window > 0.0)) return kInf;
  const double fill = p.w / window;
  if (fill < s_m_raw_) {  // race regime: sigma pins at min(s_m, s_up)
    if (p.q > window * kUpSlack) return kInf;
    return p.e_race;
  }
  if (fill > s_up_) {  // clamped at s_up (feasible only in the slack sliver)
    if (p.q > window * kUpSlack) return kInf;
    return p.e_up;
  }
  // Fill regime: exec_energy(w, w/W) = alpha*W + beta*w^lambda*W^(1-lambda).
  return alpha_ * window + p.wpow * window_power(window);
}

double BlockContext::eval_box(double s, double e) const {
  SDEM_OBS_ONLY(++obs_probes_;)
  double energy = alpha_m_ * (e - s) + const_energy_;
  for (const Dyn& l : left_) energy += piece(*l.pre, l.bound - s);
  for (const Dyn& r : right_) energy += piece(*r.pre, e - r.bound);
  for (const Pre* c : coupled_) energy += piece(*c, e - s);

  if (g_cross_check.load(std::memory_order_relaxed)) {
    g_probes.fetch_add(1, std::memory_order_relaxed);
    SDEM_OBS_INC("block/cross_check_probes");
    const double exact = block_energy_at(tasks_, cfg_, s, e);
    const bool fast_inf = !std::isfinite(energy);
    const bool exact_inf = !std::isfinite(exact);
    const bool ok =
        fast_inf == exact_inf &&
        (fast_inf || std::abs(energy - exact) <=
                         1e-9 * std::max({1.0, std::abs(energy), std::abs(exact)}));
    if (!ok) {
      g_failures.fetch_add(1, std::memory_order_relaxed);
      SDEM_OBS_INC("block/cross_check_failures");
      assert(false && "BlockContext fast probe diverged from block_energy_at");
    }
  }
  return std::isfinite(energy) ? energy : kInf;
}

bool BlockContext::setup_box(double s_lo, double s_hi, double e_lo,
                             double e_hi) {
  left_.clear();
  right_.clear();
  coupled_.clear();
  const_energy_ = 0.0;

  const std::size_t n = pre_.size();
  // Boxes are bounded by breakpoints, so no release sits strictly inside
  // (s_lo, s_hi) and no deadline strictly inside (e_lo, e_hi): the window
  // classes are exact and, in agreeable order, contiguous index ranges.
  const std::size_t a =
      std::upper_bound(pre_.begin(), pre_.end(), s_lo,
                       [](double v, const Pre& p) { return v < p.r; }) -
      pre_.begin();
  const std::size_t c =
      std::upper_bound(pre_.begin(), pre_.end(), e_lo,
                       [](double v, const Pre& p) { return v < p.d; }) -
      pre_.begin();

  const std::size_t left_end = std::min(a, c);
  for (std::size_t i = 0; i < left_end; ++i) {  // W = d - s'
    const Pre& p = pre_[i];
    if (p.w <= 0.0) continue;
    if (!std::isfinite(piece(p, p.d - s_lo))) return false;  // box infeasible
    if (p.d - s_hi >= p.w_race) {
      const_energy_ += p.e_race;  // pinned at the race speed across the box
    } else {
      left_.push_back({p.d, &p});
    }
  }
  if (a <= c) {
    // Unclipped middle class: full windows, one subtraction via prefix sums.
    const_energy_ += pref_efull_[c] - pref_efull_[a];
  } else {
    for (std::size_t i = c; i < a; ++i) {  // both-sides-clipped: W = e' - s'
      const Pre& p = pre_[i];
      if (p.w <= 0.0) continue;
      if (!std::isfinite(piece(p, e_hi - s_lo))) return false;
      if (e_lo - s_hi >= p.w_race) {
        const_energy_ += p.e_race;
      } else {
        coupled_.push_back(&p);
      }
    }
  }
  for (std::size_t i = std::max(a, c); i < n; ++i) {  // W = e' - r
    const Pre& p = pre_[i];
    if (p.w <= 0.0) continue;
    if (!std::isfinite(piece(p, e_hi - p.r))) return false;
    if (e_lo - p.r >= p.w_race) {
      const_energy_ += p.e_race;
    } else {
      right_.push_back({p.r, &p});
    }
  }
  return true;
}

double BlockContext::feasible_e_min(double s) const {
  double v = s;
  for (std::size_t i = 0; i < nr_.size(); ++i) {
    const double x = std::max(s, nr_[i]) + nq_[i];
    if (x > nd_[i]) return kInf;
    v = std::max(v, x);
  }
  return v;
}

double BlockContext::feasible_s_max(double e) const {
  double v = e;
  for (std::size_t i = 0; i < nr_.size(); ++i) {
    if (std::min(e, nd_[i]) - nr_[i] < nq_[i]) return -kInf;
    v = std::min(v, std::max(nr_[i], std::min(e, nd_[i]) - nq_[i]));
  }
  return v;
}

BoxMin BlockContext::minimize_box(double s_lo, double s_hi, double e_lo,
                                  double e_hi) const {
  // minimize_in_box's alternating line searches + diagonal escape, with the
  // box-specialized evaluator and the block-level feasibility arrays.
  BoxMin out;
  double s = s_lo, e = e_hi;  // maximal windows: feasible if anything is
  double val = eval_box(s, e);
  if (!std::isfinite(val)) return out;
  out.feasible = true;
  out.s = s;
  out.e = e;
  out.value = val;

  for (int round = 0; round < 64; ++round) {
    const double elo = std::max({e_lo, s, feasible_e_min(s)});
    if (elo > e_hi) break;
    const double new_e = golden_min_t(
        [&](double y) { return eval_box(s, y); }, elo, e_hi, 1e-12);
    const double shi = std::min({s_hi, new_e, feasible_s_max(new_e)});
    if (shi < s_lo) break;
    const double new_s = golden_min_t(
        [&](double x) { return eval_box(x, new_e); }, s_lo, shi, 1e-12);
    const double t_lo = std::max(s_lo - new_s, e_lo - new_e);
    const double t_hi = std::min(s_hi - new_s, e_hi - new_e);
    double t = 0.0;
    if (t_hi > t_lo) {
      t = golden_min_t(
          [&](double dt) { return eval_box(new_s + dt, new_e + dt); }, t_lo,
          t_hi, 1e-12);
      if (!std::isfinite(eval_box(new_s + t, new_e + t))) t = 0.0;
    }
    const double cand_s = new_s + t;
    const double cand_e = new_e + t;
    const double cand = eval_box(cand_s, cand_e);
    const bool converged =
        std::abs(cand_s - s) < 1e-13 * std::max(1.0, std::abs(s)) &&
        std::abs(cand_e - e) < 1e-13 * std::max(1.0, std::abs(e));
    s = cand_s;
    e = cand_e;
    if (std::isfinite(cand) && cand < out.value) {
      out.value = cand;
      out.s = s;
      out.e = e;
    }
    if (converged) break;
  }
  return out;
}

void BlockContext::build_e_breakpoints() {
  eb_.clear();
  eb_.push_back(r_max_);
  while (ecur_ < pre_.size() && pre_[ecur_].d <= r_max_) ++ecur_;
  for (std::size_t j = ecur_; j < pre_.size(); ++j) {
    const double d = pre_[j].d;
    if (d >= d_max_) break;  // deadlines are sorted; the rest tie with d_max
    if (d > eb_.back()) eb_.push_back(d);
  }
  eb_.push_back(d_max_);
}

BlockSolution BlockContext::solve_fallback() const {
  const BlockResult r = solve_block_reference(tasks_, cfg_);
  BlockSolution out;
  out.feasible = r.feasible;
  out.s = r.s;
  out.e = r.e;
  out.energy = r.energy;
  return out;
}

BlockSolution BlockContext::solve() {
  BlockSolution out;
  if (tasks_.empty() || infeasible_) return out;
  if (!sorted_) {
    SDEM_OBS_INC("block/fallback_solves");
    return solve_fallback();
  }

  build_e_breakpoints();

  SDEM_OBS_ONLY(std::uint64_t boxes = 0; std::uint64_t boxes_pruned = 0;
                std::uint64_t cls_left = 0; std::uint64_t cls_right = 0;
                std::uint64_t cls_coupled = 0; std::uint64_t cls_const = 0;)
  double best = kInf;
  double best_s = r_min_, best_e = d_max_;
  for (std::size_t si = 0; si + 1 < sb_.size(); ++si) {
    for (std::size_t ei = 0; ei + 1 < eb_.size(); ++ei) {
      const double s_lo = sb_[si], s_hi = sb_[si + 1];
      const double e_lo = eb_[ei], e_hi = eb_[ei + 1];
      if (e_hi <= s_lo) continue;  // would force e' <= s'
      if (!setup_box(s_lo, s_hi, e_lo, e_hi)) {
        SDEM_OBS_ONLY(++boxes_pruned;)
        continue;  // pruned: infeasible
      }
      SDEM_OBS_ONLY(++boxes; cls_left += left_.size();
                    cls_right += right_.size(); cls_coupled += coupled_.size();
                    cls_const += nr_.size() - left_.size() - right_.size() -
                                 coupled_.size();)
      const BoxMin m = minimize_box(s_lo, s_hi, e_lo, e_hi);
      if (m.feasible && m.value < best) {
        best = m.value;
        best_s = m.s;
        best_e = m.e;
      }
    }
  }
  SDEM_OBS_INC("block/solves");
  SDEM_OBS_COUNT("block/boxes_opened", boxes);
  SDEM_OBS_COUNT("block/boxes_pruned_infeasible", boxes_pruned);
  SDEM_OBS_COUNT("block/box_tasks_const", cls_const);
  SDEM_OBS_COUNT("block/box_tasks_left_clipped", cls_left);
  SDEM_OBS_COUNT("block/box_tasks_right_clipped", cls_right);
  SDEM_OBS_COUNT("block/box_tasks_coupled", cls_coupled);
#if SDEM_OBS
  SDEM_OBS_COUNT("block/probes", obs_probes_);
  obs_probes_ = 0;
#endif
  if (!std::isfinite(best)) return out;
  out.feasible = true;
  out.s = best_s;
  out.e = best_e;
  out.energy = best;
  return out;
}

BlockResult BlockContext::solve_full() {
  if (!sorted_) return solve_block_reference(tasks_, cfg_);
  const BlockSolution sol = solve();
  BlockResult out;
  if (!sol.feasible) return out;
  out.feasible = true;
  out.s = sol.s;
  out.e = sol.e;
  out.energy = sol.energy;
  out.placements = block_placements_at(tasks_, cfg_, sol.s, sol.e);
  return out;
}

}  // namespace sdem
