// Incremental, cache-friendly block-table solver for the agreeable DP
// (paper §5) — the hot path of the whole reproduction.
//
// The seed implementation re-ran the full single-block pipeline for every
// (p, q) pair of the DP's block table: rebuild the task subset, re-sort the
// release/deadline breakpoints, and evaluate the block objective with an
// O(k) loop whose per-task work recomputes std::pow(alpha/(beta(λ-1)), 1/λ)
// and std::pow(sigma, λ) on every golden-section probe. BlockContext keeps
// one growing block per DP row instead: push_task() extends the block by
// the next deadline-sorted task and maintains, incrementally,
//
//   * the per-task constants every probe needs — beta·w^λ, the race window
//     w / min(s_m, s_up), the race/clamped energies, and the full-window
//     (unclipped) energy — as parallel structure-of-arrays columns,
//   * prefix sums of the full-window energies (so a box's unclipped middle
//     class folds to one subtraction),
//   * the sorted s'/e' breakpoint sets (releases are non-decreasing in
//     agreeable deadline order, so maintenance is append/advance, no sort),
//   * the s_up feasibility data (w / s_up per task) shared by every box's
//     feasible-range clamps, and a block-level infeasibility flag that
//     prunes whole (p, q) pairs before any box is opened.
//
// solve() then scans the same breakpoint boxes as the seed, but each box
// first classifies tasks into {constant window, left-clipped (d - s'),
// right-clipped (e' - r), both-sides-clipped (e' - s')} — contiguous index
// ranges in agreeable order — folds every constant-energy task (unclipped,
// or pinned at the race speed across the whole box) into a single scalar,
// and packs the few remaining "dynamic" tasks into one fused SoA lane
// buffer (left, right, coupled segments). A probe fills the per-lane
// window array, evaluates every lane with one call to the batched kernel
// of core/block_kernel.hpp (SIMD for λ ∈ {2, 3} when SDEM_SIMD is on,
// scalar otherwise — bit-identical either way) and reduces the values
// serially in task order, so probe values are bit-for-bit the same as the
// scalar loop they replaced.
//
// Because each lane's energy is nonincreasing in its window, the value at
// the box's maximal windows — already computed by the feasibility check —
// is the lane's exact box minimum, so every feasible box carries an exact
// lower bound before any golden-section probing. solve() exploits this as
// best-first branch and bound: boxes are ranked by bound (stable sort, so
// equal bounds keep the seed's enumeration order) and minimized in that
// order, stopping at the first box whose bound (minus a 1e-12 relative
// shave for reassociation noise) cannot strictly beat the incumbent —
// every box after it is bounded even higher. Skipping those boxes leaves
// the result bit-identical because all incumbent updates are strict `<`;
// in practice the first-ranked box almost always contains the optimum and
// the rest of the table is never probed.
//
// Numerics: the fast evaluator computes algebraically identical energies to
// core/block.hpp's exact block_energy_at (same regime boundaries, same
// s_up feasibility slack), differing only by floating-point reassociation
// (≲1e-12 relative; tests pin ≤1e-9). set_cross_check(true) audits every
// probe — batched evaluator included — against the exact O(k) path; Debug
// builds also assert on it.
//
// Inputs must be pushed in agreeable deadline order (non-decreasing r and
// d). Anything else trips the sorted-input check and solve() falls back to
// the seed-identical solve_block_reference path, so callers with exotic
// task vectors keep the old behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "core/block.hpp"
#include "core/block_kernel.hpp"
#include "model/power.hpp"
#include "model/task.hpp"
#include "obs/obs.hpp"

namespace sdem {

/// Scalar block optimum: what the DP table stores for every (p, q) pair.
/// Placements for the few blocks on the optimal path are reconstructed on
/// demand from (s, e) — see block_placements_at — cutting the DP's memory
/// from O(n³) placement storage to O(n²) scalars.
struct BlockSolution {
  bool feasible = false;
  double s = 0.0;
  double e = 0.0;
  double energy = 0.0;
};

class BlockContext {
 public:
  explicit BlockContext(const SystemConfig& cfg);

  /// Forget every pushed task; keeps the config and scratch capacity.
  void reset();

  /// Extend the block with the next task of the deadline-sorted order.
  void push_task(const Task& t);

  std::size_t size() const { return tasks_.size(); }

  /// True when some pushed task cannot meet w/s_up even in its full region
  /// [r, d] — every block containing it is infeasible, so the caller can
  /// prune the rest of the DP row without opening a single box.
  bool block_infeasible() const { return infeasible_; }

  /// Optimal (s', e', energy) of the current block — the fast path.
  BlockSolution solve();

  /// solve() plus per-task placements (compatibility with solve_block).
  BlockResult solve_full();

  /// Audit mode: every fast probe is recomputed with the exact O(k)
  /// block_energy_at and counted on mismatch (> 1e-9 relative or a
  /// feasibility flip). Global, thread-safe, off by default.
  static void set_cross_check(bool on);
  static bool cross_check();
  static std::uint64_t cross_check_probes();
  static std::uint64_t cross_check_failures();
  static void reset_cross_check_counters();

 private:
  /// A box's dynamic lanes, packed as parallel arrays so the batched
  /// kernel streams them contiguously. `bound` is d for the left-clipped
  /// segment (W = d - s') and r for the right-clipped one (W = e' - r);
  /// the both-sides-clipped segment (W = e' - s') ignores it.
  struct LaneBuf {
    std::vector<double> bound, w, q, wpow, e_race, e_up;

    void clear() {
      bound.clear();
      w.clear();
      q.clear();
      wpow.clear();
      e_race.clear();
      e_up.clear();
    }
    void append(const LaneBuf& o) {
      bound.insert(bound.end(), o.bound.begin(), o.bound.end());
      w.insert(w.end(), o.w.begin(), o.w.end());
      q.insert(q.end(), o.q.begin(), o.q.end());
      wpow.insert(wpow.end(), o.wpow.begin(), o.wpow.end());
      e_race.insert(e_race.end(), o.e_race.begin(), o.e_race.end());
      e_up.insert(e_up.end(), o.e_up.begin(), o.e_up.end());
    }
    std::size_t size() const { return w.size(); }
  };

  double piece(std::size_t i, double window) const;  ///< lane i over window
  /// The probe: one window fill + lane evaluation + serial reduction.
  /// Every call site lives in block_context.cpp's line searches, and the
  /// few-lane body must inline into them (it is the whole hot path), so
  /// the definition is marked always_inline there; the slow audit tail
  /// lives out of line in audit_probe.
  double eval_box(double s, double e) const;
  void audit_probe(double s, double e, double energy) const;
  /// Line-search probes: one coordinate is pinned for the whole search, so
  /// the pinned segment's lane values are search constants. prime_* stores
  /// them in fixv_ (the exact doubles the full evaluator would compute) and
  /// the fixed-coordinate probes re-add them in the same chain position —
  /// bit-identical to eval_box, minus the pinned segment's re-derivation.
  void prime_fixed_left(double s) const;
  void prime_fixed_right(double e) const;
  double eval_box_fixed_s(double s, double e) const;
  double eval_box_fixed_e(double s, double e) const;
  bool setup_box(double s_lo, double s_hi, double e_lo, double e_hi);
  BoxMin minimize_box(double s_lo, double s_hi, double e_lo, double e_hi) const;
  double feasible_e_min(double s) const;
  double feasible_s_max(double e) const;
  void build_e_breakpoints();
  BlockSolution solve_fallback() const;
  void push_lane(LaneBuf& buf, std::size_t i, double bound);

  SystemConfig cfg_;
  double alpha_ = 0.0;
  double alpha_m_ = 0.0;
  double lambda_ = 3.0;
  double s_m_raw_ = 0.0;  ///< hoisted critical_speed_raw (one pow per block row)
  double s_up_ = 0.0;     ///< max_speed() (+inf when unbounded)
  BlockKernelConsts kc_;  ///< the four constants above, kernel-shaped
  bool can_prune_ = false;  ///< lower-bound box pruning is sound (see solve)

  std::vector<Task> tasks_;  ///< pushed order (exact cross-check, placements)
  // Per-task probe constants as SoA columns, parallel to tasks_ (pushed
  // order). Split from the former AoS `Pre` struct so per-box gathers and
  // the batched kernel touch only the columns they read.
  std::vector<double> pr_;      ///< release
  std::vector<double> pd_;      ///< deadline
  std::vector<double> pw_;      ///< work
  std::vector<double> pq_;      ///< w / s_up (0 when s_up is unbounded)
  std::vector<double> pwpow_;   ///< beta * w^lambda
  std::vector<double> pwrace_;  ///< w / min(s_m, s_up): window at/above which
                                ///< the speed pins at the clamped race speed
  std::vector<double> perace_;  ///< exec_energy(w, min(s_m, s_up))
  std::vector<double> peup_;    ///< exec_energy(w, s_up) (+inf when unbounded)
  std::vector<double> pefull_;  ///< energy at the maximal window d - r
  std::vector<double> pref_efull_;  ///< pref_efull_[i] = sum e_full of [0, i)
  // s_up feasibility data of every positive-work task, in pushed order —
  // the seed's per-box `needs` rebuild, hoisted to the block.
  std::vector<double> nr_, nd_, nq_;

  bool sorted_ = true;      ///< r and d non-decreasing so far
  bool infeasible_ = false;
  double r_min_ = 0.0, r_max_ = 0.0, d_min_ = 0.0, d_max_ = 0.0;

  std::vector<double> sb_;  ///< s' breakpoints, incremental (append-only)
  std::vector<double> eb_;  ///< e' breakpoints, rebuilt O(k) per solve
  std::size_t ecur_ = 0;    ///< monotone cursor: first deadline > r_max

  // Per-box scratch, reused across boxes and solves (no allocation). All
  // dynamic lanes live in one fused buffer — segments [0, nleft_),
  // [nleft_, nleft_ + nright_), [nleft_ + nright_, size) hold the left-,
  // right- and both-sides-clipped classes — so a probe fills one window
  // array, makes one batched-kernel call and reduces one value array.
  // ctmp_ stages the coupled class during setup_box (its lanes are
  // discovered between the left and right loops but accumulate last).
  LaneBuf lanes_, ctmp_;
  std::size_t nleft_ = 0, nright_ = 0;
  double const_energy_ = 0.0;
  double box_floor_ = 0.0;  ///< exact sum of the dynamic lanes' box minima
  double box_mem_floor_ = 0.0;  ///< least feasible e' - s' over the box
  mutable std::vector<double> win_, val_;  ///< per-probe lane windows/values
  mutable std::vector<double> fixv_;  ///< pinned-segment values (prime_*)

  /// One feasible breakpoint box of the current solve, ranked by its exact
  /// lower bound for the best-first scan (see solve()). `ub` is the box's
  /// corner value eval_box(s_lo, e_hi) — achieved by minimize_box's first
  /// probe, so the min-ub box is searched first to seed the incumbent.
  struct BoxCand {
    double lb, ub;
    std::uint32_t si, ei;
  };
  /// A searched box's minimum, replayed in enumeration order by solve()'s
  /// incumbent fold so energy ties keep the seed's first-arrival winner.
  struct SearchedBox {
    std::uint32_t si, ei;
    BoxMin m;
  };
  std::vector<BoxCand> cand_;        ///< per-solve scratch
  std::vector<SearchedBox> searched_;  ///< per-solve scratch

#if SDEM_OBS
  // Probe tally for the current solve(), flushed to the obs registry once
  // per solve (mutable: eval_box is const). Gated so OFF builds carry no
  // extra state and eval_box stays untouched.
  mutable std::uint64_t obs_probes_ = 0;
#endif
};

}  // namespace sdem
