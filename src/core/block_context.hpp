// Incremental, cache-friendly block-table solver for the agreeable DP
// (paper §5) — the hot path of the whole reproduction.
//
// The seed implementation re-ran the full single-block pipeline for every
// (p, q) pair of the DP's block table: rebuild the task subset, re-sort the
// release/deadline breakpoints, and evaluate the block objective with an
// O(k) loop whose per-task work recomputes std::pow(alpha/(beta(λ-1)), 1/λ)
// and std::pow(sigma, λ) on every golden-section probe. BlockContext keeps
// one growing block per DP row instead: push_task() extends the block by
// the next deadline-sorted task and maintains, incrementally,
//
//   * the per-task constants every probe needs — beta·w^λ, the race window
//     w / min(s_m, s_up), the race/clamped energies, and the full-window
//     (unclipped) energy,
//   * prefix sums of the full-window energies (so a box's unclipped middle
//     class folds to one subtraction),
//   * the sorted s'/e' breakpoint sets (releases are non-decreasing in
//     agreeable deadline order, so maintenance is append/advance, no sort),
//   * the s_up feasibility data (w / s_up per task) shared by every box's
//     feasible-range clamps, and a block-level infeasibility flag that
//     prunes whole (p, q) pairs before any box is opened.
//
// solve() then enumerates the same breakpoint boxes as the seed, but each
// box first classifies tasks into {constant window, left-clipped (d - s'),
// right-clipped (e' - r), both-sides-clipped (e' - s')} — contiguous index
// ranges in agreeable order — folds every constant-energy task (unclipped,
// or pinned at the race speed across the whole box) into a single scalar,
// and hands the few remaining "dynamic" tasks to the alternating
// golden-section minimizer. A probe therefore costs O(#dynamic) cheap
// flops (for the default λ = 3 the window power is 1/(W·W); no std::pow)
// instead of O(k) pow-heavy ones — O(1) amortized per probe across a row.
//
// Numerics: the fast evaluator computes algebraically identical energies to
// core/block.hpp's exact block_energy_at (same regime boundaries, same
// s_up feasibility slack), differing only by floating-point reassociation
// (≲1e-12 relative; tests pin ≤1e-9). set_cross_check(true) audits every
// probe against the exact O(k) path — Debug builds also assert on it.
//
// Inputs must be pushed in agreeable deadline order (non-decreasing r and
// d). Anything else trips the sorted-input check and solve() falls back to
// the seed-identical solve_block_reference path, so callers with exotic
// task vectors keep the old behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "core/block.hpp"
#include "model/power.hpp"
#include "model/task.hpp"
#include "obs/obs.hpp"

namespace sdem {

/// Scalar block optimum: what the DP table stores for every (p, q) pair.
/// Placements for the few blocks on the optimal path are reconstructed on
/// demand from (s, e) — see block_placements_at — cutting the DP's memory
/// from O(n³) placement storage to O(n²) scalars.
struct BlockSolution {
  bool feasible = false;
  double s = 0.0;
  double e = 0.0;
  double energy = 0.0;
};

class BlockContext {
 public:
  explicit BlockContext(const SystemConfig& cfg);

  /// Forget every pushed task; keeps the config and scratch capacity.
  void reset();

  /// Extend the block with the next task of the deadline-sorted order.
  void push_task(const Task& t);

  std::size_t size() const { return tasks_.size(); }

  /// True when some pushed task cannot meet w/s_up even in its full region
  /// [r, d] — every block containing it is infeasible, so the caller can
  /// prune the rest of the DP row without opening a single box.
  bool block_infeasible() const { return infeasible_; }

  /// Optimal (s', e', energy) of the current block — the fast path.
  BlockSolution solve();

  /// solve() plus per-task placements (compatibility with solve_block).
  BlockResult solve_full();

  /// Audit mode: every fast probe is recomputed with the exact O(k)
  /// block_energy_at and counted on mismatch (> 1e-9 relative or a
  /// feasibility flip). Global, thread-safe, off by default.
  static void set_cross_check(bool on);
  static bool cross_check();
  static std::uint64_t cross_check_probes();
  static std::uint64_t cross_check_failures();
  static void reset_cross_check_counters();

 private:
  /// Per-task probe constants, computed once at push_task.
  struct Pre {
    double r = 0.0;       ///< release
    double d = 0.0;       ///< deadline
    double w = 0.0;       ///< work
    double q = 0.0;       ///< w / s_up (0 when s_up is unbounded)
    double wpow = 0.0;    ///< beta * w^lambda
    double w_race = 0.0;  ///< w / min(s_m, s_up): window at/above which the
                          ///< speed pins at the clamped critical speed
    double e_race = 0.0;  ///< exec_energy(w, min(s_m, s_up))
    double e_up = 0.0;    ///< exec_energy(w, s_up) (+inf when unbounded)
    double e_full = 0.0;  ///< energy at the maximal window d - r
  };
  /// A dynamic (window-varying) task inside one box: `bound` is d for the
  /// left-clipped class (W = d - s') and r for the right-clipped one
  /// (W = e' - r).
  struct Dyn {
    double bound;
    const Pre* pre;
  };

  double window_power(double w_pos) const;   ///< W^(1-lambda), pow-free for λ∈{2,3}
  double piece(const Pre& p, double window) const;
  double eval_box(double s, double e) const;
  bool setup_box(double s_lo, double s_hi, double e_lo, double e_hi);
  BoxMin minimize_box(double s_lo, double s_hi, double e_lo, double e_hi) const;
  double feasible_e_min(double s) const;
  double feasible_s_max(double e) const;
  void build_e_breakpoints();
  BlockSolution solve_fallback() const;

  SystemConfig cfg_;
  double alpha_ = 0.0;
  double alpha_m_ = 0.0;
  double lambda_ = 3.0;
  double s_m_raw_ = 0.0;  ///< hoisted critical_speed_raw (one pow per block row)
  double s_up_ = 0.0;     ///< max_speed() (+inf when unbounded)

  std::vector<Task> tasks_;  ///< pushed order (exact cross-check, placements)
  std::vector<Pre> pre_;
  std::vector<double> pref_efull_;  ///< pref_efull_[i] = sum e_full of [0, i)
  // s_up feasibility data of every positive-work task, in pushed order —
  // the seed's per-box `needs` rebuild, hoisted to the block.
  std::vector<double> nr_, nd_, nq_;

  bool sorted_ = true;      ///< r and d non-decreasing so far
  bool infeasible_ = false;
  double r_min_ = 0.0, r_max_ = 0.0, d_min_ = 0.0, d_max_ = 0.0;

  std::vector<double> sb_;  ///< s' breakpoints, incremental (append-only)
  std::vector<double> eb_;  ///< e' breakpoints, rebuilt O(k) per solve
  std::size_t ecur_ = 0;    ///< monotone cursor: first deadline > r_max

  // Per-box scratch, reused across boxes and solves (no allocation).
  std::vector<Dyn> left_, right_;
  std::vector<const Pre*> coupled_;
  double const_energy_ = 0.0;

#if SDEM_OBS
  // Probe tally for the current solve(), flushed to the obs registry once
  // per solve (mutable: eval_box is const). Gated so OFF builds carry no
  // extra state and eval_box stays untouched.
  mutable std::uint64_t obs_probes_ = 0;
#endif
};

}  // namespace sdem
