// Batched per-task window-energy kernel of the block solver.
//
// BlockContext classifies a box's tasks into window classes and hands the
// few "dynamic" (window-varying) lanes to this kernel once per probe. The
// scalar form is the single source of truth for one lane's value; the
// batched form evaluates a contiguous SoA range of lanes, using the
// simd.hpp vector primitives for the pow-free λ ∈ {2, 3} paths and falling
// back to the scalar form otherwise (and for the odd remainder lane).
//
// Bit-equality contract: for every lane i,
//   batch(out, ...)[i] == scalar(w[i], q[i], wpow[i], ...)
// exactly. The vector path evaluates all three regime values and selects
// bitwise by the same comparisons the scalar branches take; every lane op
// is a plain IEEE double op (simd.hpp), so SDEM_SIMD=ON/OFF builds — and
// the remainder lane within one build — produce identical bits. Callers
// must reduce lanes serially in index order to keep sums bit-identical.
// tests/test_simd_kernels.cpp pins the lane equality on random inputs.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "support/simd.hpp"

namespace sdem {

/// Same relative slack block_energy_at grants optima sitting exactly on
/// the s_up boundary; shared so feasibility decisions cannot flip between
/// the fast, the batched, and the exact path.
inline constexpr double kBlockUpSlack = 1.0 + 1e-9;

/// Per-block constants of the kernel (hoisted once per BlockContext).
struct BlockKernelConsts {
  double alpha = 0.0;    ///< core static power
  double lambda = 3.0;   ///< dynamic-power exponent
  double s_m_raw = 0.0;  ///< unclamped critical speed
  double s_up = 0.0;     ///< max speed (+inf when unbounded)
};

/// W^(1-lambda), pow-free for λ ∈ {2, 3}.
inline double block_window_power(double w_pos, double lambda) {
  if (lambda == 3.0) return 1.0 / (w_pos * w_pos);
  if (lambda == 2.0) return 1.0 / w_pos;
  return std::pow(w_pos, 1.0 - lambda);
}

/// One task's energy over one window: task_window_energy's regimes with the
/// per-task constants hoisted (sigma = min(max(s_m, w/W), s_up)).
inline double block_piece_scalar(const BlockKernelConsts& c, double w,
                                 double q, double wpow, double e_race,
                                 double e_up, double window) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (!(window > 0.0)) return kInf;
  // Regime tests in multiplied form (w ⋚ s·W rather than w/W ⋚ s): the race
  // regime — where golden-section probes spend most of their iterations —
  // then needs no division at all. The two forms can only disagree when
  // w/W rounds onto the regime boundary, where the energy curve is
  // continuous (race and fill values meet at the knee), so a flip would be
  // ulp-sized; the golden-file and fast-vs-reference tests pin that none
  // occurs. The batched path below uses the same multiplied comparisons.
  if (w < c.s_m_raw * window) {  // race regime: sigma pins at min(s_m, s_up)
    if (q > window * kBlockUpSlack) return kInf;
    return e_race;
  }
  if (w > c.s_up * window) {  // clamped at s_up (feasible in the slack sliver)
    if (q > window * kBlockUpSlack) return kInf;
    return e_up;
  }
  // Fill regime: exec_energy(w, w/W) = alpha*W + beta*w^lambda*W^(1-lambda).
  return c.alpha * window + wpow * block_window_power(window, c.lambda);
}

/// Below this many lanes the batch takes the scalar loop even when a SIMD
/// backend is compiled in: the vector path's per-call setup (constant
/// broadcasts, λ dispatch) and its always-computed fill curve only amortize
/// across several vector iterations, and small batches dominated by the
/// race regime resolve faster through the scalar early-exit branches.
/// Purely a speed cutoff — both paths produce identical bits per lane.
inline constexpr std::size_t kBlockBatchMinLanes = 8;

/// Batched lane evaluation: out[i] = block_piece_scalar(lane i), for n SoA
/// lanes. Vectorized for λ ∈ {2, 3} when a SIMD backend is compiled in and
/// the batch is big enough to amortize the vector setup.
inline void block_piece_batch(const BlockKernelConsts& c, const double* w,
                              const double* q, const double* wpow,
                              const double* e_race, const double* e_up,
                              const double* win, double* out, std::size_t n) {
  std::size_t i = 0;
  if constexpr (simd::enabled()) {
    if (n >= kBlockBatchMinLanes && (c.lambda == 3.0 || c.lambda == 2.0)) {
      const bool cubic = c.lambda == 3.0;
      const simd::DVec one = simd::set1(1.0);
      const simd::DVec zero = simd::set1(0.0);
      const simd::DVec inf =
          simd::set1(std::numeric_limits<double>::infinity());
      const simd::DVec alpha = simd::set1(c.alpha);
      const simd::DVec s_m = simd::set1(c.s_m_raw);
      const simd::DVec s_up = simd::set1(c.s_up);
      const simd::DVec slack = simd::set1(kBlockUpSlack);
      for (; i + simd::kLanes <= n; i += simd::kLanes) {
        const simd::DVec W = simd::load(win + i);
        const simd::DVec wv = simd::load(w + i);
        const simd::DMask pos = simd::cmp_gt(W, zero);
        const simd::DMask race = simd::cmp_lt(wv, simd::mul(s_m, W));
        const simd::DMask infeas =
            simd::cmp_gt(simd::load(q + i), simd::mul(W, slack));
        // Near a box optimum every dynamic lane sits at a window past its
        // race knee, so the whole vector usually resolves to e_race after
        // one division — skip the fill-curve division chain then.
        if (simd::all(simd::mask_andnot(simd::mask_and(pos, race), infeas))) {
          simd::store(out + i, simd::load(e_race + i));
          continue;
        }
        // All three regime values are computed; rejected lanes are discarded
        // by the bitwise selects, so their garbage (0/0, inf) never leaks.
        const simd::DVec wp = cubic ? simd::div(one, simd::mul(W, W))
                                    : simd::div(one, W);
        const simd::DVec v_fill = simd::add(
            simd::mul(alpha, W), simd::mul(simd::load(wpow + i), wp));
        const simd::DVec v_race =
            simd::select(infeas, inf, simd::load(e_race + i));
        const simd::DVec v_up = simd::select(infeas, inf, simd::load(e_up + i));
        simd::DVec v = simd::select(
            race, v_race,
            simd::select(simd::cmp_gt(wv, simd::mul(s_up, W)), v_up, v_fill));
        v = simd::select(pos, v, inf);
        simd::store(out + i, v);
      }
    }
  }
  for (; i < n; ++i) {
    out[i] = block_piece_scalar(c, w[i], q[i], wpow[i], e_race[i], e_up[i],
                                win[i]);
  }
}

}  // namespace sdem
