#include "core/common_release_alpha.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/common_release_scratch.hpp"
#include "support/numeric.hpp"

namespace sdem {

OfflineResult solve_common_release_alpha(const TaskSet& tasks,
                                         const SystemConfig& cfg,
                                         CommonReleaseScratch& ws,
                                         bool validated) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_common_release()) return res;
  if (!validated && !tasks.validate().empty()) return res;
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12))
    return res;

  const double alpha = cfg.core.alpha;
  const double alpha_m = cfg.memory.alpha_m;
  const double beta = cfg.core.beta;
  const double lambda = cfg.core.lambda;
  const double s_up = cfg.core.max_speed();
  const double release = tasks[0].release;
  // critical_speed(fs) = min(max(s_m_raw, fs), s_up); the raw critical speed
  // costs a pow, so pay it once per solve instead of once per task.
  const double s_m_raw = cfg.core.critical_speed_raw();

  const int n = static_cast<int>(tasks.size());
  auto& es = ws.entries;
  es.clear();
  es.reserve(n);
  for (const auto& t : tasks.tasks()) {
    CommonReleaseScratch::AlphaEntry e;
    e.task = t;
    e.s0 = std::min(std::max(s_m_raw, t.filled_speed()), s_up);
    e.c = (t.work > 0.0) ? t.work / e.s0 : 0.0;
    es.push_back(e);
  }
  std::sort(es.begin(), es.end(),
            [](const CommonReleaseScratch::AlphaEntry& a,
               const CommonReleaseScratch::AlphaEntry& b) { return a.c < b.c; });

  const double horizon = es.back().c;  // |I| = c_n
  if (horizon <= 0.0) {
    // All workloads are zero: nothing runs, memory sleeps the whole time.
    res.feasible = true;
    res.energy = 0.0;
    res.sleep_time = 0.0;
    return res;
  }

  // Suffix sums over the c-sorted order (1-based).
  ws.suffix_wl.assign(n + 2, 0.0);
  ws.suffix_wmax.assign(n + 2, 0.0);
  ws.prefix.assign(n + 2, 0.0);  // energy of tasks < i at s0
  auto& suffix_wl = ws.suffix_wl;
  auto& suffix_wmax = ws.suffix_wmax;
  auto& prefix_const = ws.prefix;
  for (int i = n; i >= 1; --i) {
    const auto& e = es[i - 1];
    suffix_wl[i] = suffix_wl[i + 1] + std::pow(e.task.work, lambda);
    suffix_wmax[i] = std::max(suffix_wmax[i + 1], e.task.work);
  }
  for (int i = 1; i <= n; ++i) {
    const auto& e = es[i - 1];
    prefix_const[i + 1] =
        prefix_const[i] + (e.task.work > 0.0
                               ? (beta * std::pow(e.s0, lambda) + alpha) * e.c
                               : 0.0);
  }
  auto delta_of = [&](int i) { return horizon - es[i - 1].c; };

  // E_i(Delta) without the constant early-task term.
  auto case_energy = [&](int i, double delta) {
    const double T = horizon - delta;
    if (T <= 0.0) {
      return suffix_wl[i] > 0.0 ? std::numeric_limits<double>::infinity()
                                : 0.0;
    }
    const double devices = static_cast<double>(n - i + 1) * alpha + alpha_m;
    return devices * T + beta * suffix_wl[i] * std::pow(T, 1.0 - lambda);
  };

  int best_case = -1;
  double best_delta = 0.0;
  double best_energy = std::numeric_limits<double>::infinity();
  for (int i = 1; i <= n; ++i) {
    const double lo = delta_of(i);
    double hi = (i >= 2) ? delta_of(i - 1) : horizon;
    if (std::isfinite(s_up) && suffix_wmax[i] > 0.0) {
      hi = std::min(hi, horizon - suffix_wmax[i] / s_up);
    }
    if (hi < lo) continue;  // speed cap excludes this whole case

    // Eq. (8) unconstrained minimizer, clamped into the case domain.
    double dm;
    const double devices = static_cast<double>(n - i + 1) * alpha + alpha_m;
    if (suffix_wl[i] <= 0.0) {
      dm = hi;
    } else if (devices <= 0.0) {
      dm = lo;  // no static power at all: never shrink the interval
    } else {
      dm = horizon -
           std::pow(beta * (lambda - 1.0) * suffix_wl[i] / devices,
                    1.0 / lambda);
      dm = std::clamp(dm, lo, hi);
    }
    const double e = case_energy(i, dm) + prefix_const[i];
    if (e < best_energy) {
      best_energy = e;
      best_delta = dm;
      best_case = i;
    }
  }
  if (best_case < 0) return res;

  res.feasible = true;
  res.case_index = best_case;
  res.sleep_time = best_delta;
  res.energy = best_energy;
  const double T = horizon - best_delta;
  for (int j = 1; j <= n; ++j) {
    const auto& e = es[j - 1];
    if (e.task.work <= 0.0) continue;
    // Early tasks keep s0; the rest align with the memory busy interval.
    const double len = (j < best_case) ? e.c : T;
    res.schedule.add(Segment{e.task.id, j - 1, release, release + len,
                             e.task.work / len});
  }
  return res;
}

OfflineResult solve_common_release_alpha(const TaskSet& tasks,
                                         const SystemConfig& cfg) {
  CommonReleaseScratch ws;
  return solve_common_release_alpha(tasks, cfg, ws, /*validated=*/false);
}

}  // namespace sdem
