// Optimal scheme for common-release tasks with non-negligible core static
// power (paper §4.2, Lemma 2, Theorem 3).
//
// Each core can sleep independently once its task completes; the memory
// sleeps during the common idle time Delta at the right end. Every task has
// a critical speed s_0 = min{max{s_m, s_f}, s_up} with
// s_m = (alpha / (beta (lambda-1)))^(1/lambda): running slower than s_0
// never pays because the core's static energy grows faster than the dynamic
// energy shrinks.
//
// Run everything at s_0, sort by completion time c_i = w_i / s_0i, let
// |I| = c_n and delta_i = |I| - c_i. Under Case i (delta_i <= Delta <
// delta_{i-1}) tasks j >= i align with the memory busy interval [0, T],
// T = |I| - Delta (speed w_j / T >= s_0j), and tasks j < i keep s_0 with
// their cores sleeping early. Excluding the constant early-task term,
//
//   E_i(Delta) = [(n-i+1) alpha + alpha_m] T + beta sum_{j>=i} w_j^l T^(1-l)
//
// minimized at Eq. (8):
//
//   Delta_mi = |I| - (beta (l-1) sum_{j>=i} w_j^l
//                     / ((n-i+1) alpha + alpha_m))^(1/l).
//
// The global optimum is the best of the n case-local optima (Theorem 3).
// With alpha == 0 this scheme reduces exactly to Section 4.1.
#pragma once

#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

struct CommonReleaseScratch;

OfflineResult solve_common_release_alpha(const TaskSet& tasks,
                                         const SystemConfig& cfg);

/// Scratch-reusing variant for repeated solves; `validated` skips the
/// TaskSet::validate() pass for trusted callers. Same result as above.
OfflineResult solve_common_release_alpha(const TaskSet& tasks,
                                         const SystemConfig& cfg,
                                         CommonReleaseScratch& ws,
                                         bool validated = false);

}  // namespace sdem
