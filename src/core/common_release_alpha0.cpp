#include "core/common_release_alpha0.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/common_release_scratch.hpp"
#include "support/numeric.hpp"

namespace sdem {
namespace {

/// Precomputed per-instance state shared by both solver variants. The
/// arrays live in the caller's CommonReleaseScratch so repeated solves (one
/// per replan in the online policy) reuse their capacity instead of
/// reallocating.
struct Instance {
  CommonReleaseScratch* ws = nullptr;
  double release = 0.0;             ///< common release time
  double horizon = 0.0;             ///< |I| = d_n - release
  double alpha_m = 0.0;
  double beta = 0.0;
  double lambda = 0.0;
  double s_up = 0.0;                ///< +inf when unconstrained

  const std::vector<Task>& tasks() const { return ws->sorted; }
  int n() const { return static_cast<int>(ws->sorted.size()); }
};

Instance build_instance(const TaskSet& tasks, const SystemConfig& cfg,
                        CommonReleaseScratch& ws) {
  Instance in;
  in.ws = &ws;
  // Same copy + comparator as TaskSet::sorted_by_deadline, minus the
  // temporary TaskSet.
  ws.sorted.assign(tasks.tasks().begin(), tasks.tasks().end());
  std::sort(ws.sorted.begin(), ws.sorted.end(),
            [](const Task& a, const Task& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              if (a.release != b.release) return a.release < b.release;
              return a.id < b.id;
            });
  in.release = ws.sorted.front().release;
  in.alpha_m = cfg.memory.alpha_m;
  in.beta = cfg.core.beta;
  in.lambda = cfg.core.lambda;
  in.s_up = cfg.core.max_speed();

  const int n = in.n();
  ws.d.resize(n + 1);
  ws.delta.resize(n + 1);
  ws.suffix_wl.assign(n + 2, 0.0);
  ws.suffix_wmax.assign(n + 2, 0.0);
  ws.prefix.assign(n + 2, 0.0);

  in.horizon = ws.sorted.back().deadline - in.release;
  for (int i = 1; i <= n; ++i) {
    const Task& t = ws.sorted[i - 1];
    ws.d[i] = t.deadline - in.release;
    ws.delta[i] = in.horizon - ws.d[i];
  }
  for (int i = n; i >= 1; --i) {
    const Task& t = ws.sorted[i - 1];
    ws.suffix_wl[i] = ws.suffix_wl[i + 1] + std::pow(t.work, in.lambda);
    ws.suffix_wmax[i] = std::max(ws.suffix_wmax[i + 1], t.work);
  }
  for (int i = 1; i <= n; ++i) {
    const Task& t = ws.sorted[i - 1];
    ws.prefix[i + 1] =
        ws.prefix[i] +
        in.beta * stretch_energy_term(t.work, ws.d[i], in.lambda);
  }
  return in;
}

/// E_i(Delta): total energy in Case i at memory sleep length Delta.
double case_energy(const Instance& in, int i, double delta) {
  const double T = in.horizon - delta;
  if (T < 0.0) return std::numeric_limits<double>::infinity();
  double e = in.alpha_m * T + in.ws->prefix[i];
  if (in.ws->suffix_wl[i] > 0.0) {
    if (T <= 0.0) return std::numeric_limits<double>::infinity();
    e += in.beta * in.ws->suffix_wl[i] * std::pow(T, 1.0 - in.lambda);
  }
  return e;
}

/// Unconstrained case-i minimizer Delta_mi (Eq. 4).
double delta_mi(const Instance& in, int i) {
  if (in.alpha_m <= 0.0) return 0.0;  // free memory: never shrink the interval
  const double s = in.ws->suffix_wl[i];
  if (s <= 0.0) return in.horizon;
  const double t =
      std::pow(in.beta * (in.lambda - 1.0) * s / in.alpha_m, 1.0 / in.lambda);
  return in.horizon - t;
}

struct CaseLocal {
  bool feasible = false;
  double delta = 0.0;
  double energy = std::numeric_limits<double>::infinity();
};

/// Feasible Delta domain of case i: [delta_i, min(delta_{i-1}, speed cap)].
/// The speed cap keeps the stretched tasks (j >= i) within s_up.
CaseLocal case_local_optimum(const Instance& in, int i) {
  CaseLocal out;
  const double lo = in.ws->delta[i];
  double hi = (i >= 2) ? in.ws->delta[i - 1] : in.horizon;
  if (std::isfinite(in.s_up) && in.ws->suffix_wmax[i] > 0.0) {
    hi = std::min(hi, in.horizon - in.ws->suffix_wmax[i] / in.s_up);
  }
  if (hi < lo) return out;  // case entirely infeasible under the speed cap
  const double dm = std::clamp(delta_mi(in, i), lo, hi);
  out.feasible = true;
  out.delta = dm;
  out.energy = case_energy(in, i, dm);
  return out;
}

OfflineResult finalize(const Instance& in, int best_case, double best_delta,
                       double best_energy) {
  OfflineResult res;
  res.feasible = true;
  res.case_index = best_case;
  res.sleep_time = best_delta;
  res.energy = best_energy;
  const double T = in.horizon - best_delta;
  for (int j = 1; j <= in.n(); ++j) {
    const Task& t = in.ws->sorted[j - 1];
    if (t.work <= 0.0) continue;
    // Tasks with delta_j > Delta keep their whole region; the rest stretch
    // to finish exactly at |I| - Delta.
    const double len = (j < best_case) ? in.ws->d[j] : T;
    res.schedule.add(Segment{t.id, j - 1, in.release, in.release + len,
                             t.work / len});
  }
  return res;
}

OfflineResult infeasible_result() { return {}; }

bool instance_ok(const TaskSet& tasks, const SystemConfig& cfg,
                 bool validated) {
  return !tasks.empty() && tasks.is_common_release() &&
         (validated || tasks.validate().empty()) &&
         tasks.max_filled_speed() <= cfg.core.max_speed() * (1.0 + 1e-12);
}

}  // namespace

OfflineResult solve_common_release_alpha0(const TaskSet& tasks,
                                          const SystemConfig& cfg,
                                          CommonReleaseScratch& ws,
                                          bool validated) {
  if (!instance_ok(tasks, cfg, validated)) return infeasible_result();
  const Instance in = build_instance(tasks, cfg, ws);

  int best_case = -1;
  double best_delta = 0.0;
  double best_energy = std::numeric_limits<double>::infinity();
  for (int i = 1; i <= in.n(); ++i) {
    const CaseLocal loc = case_local_optimum(in, i);
    if (loc.feasible && loc.energy < best_energy) {
      best_energy = loc.energy;
      best_delta = loc.delta;
      best_case = i;
    }
  }
  if (best_case < 0) return infeasible_result();
  return finalize(in, best_case, best_delta, best_energy);
}

OfflineResult solve_common_release_alpha0(const TaskSet& tasks,
                                          const SystemConfig& cfg) {
  CommonReleaseScratch ws;
  return solve_common_release_alpha0(tasks, cfg, ws, /*validated=*/false);
}

OfflineResult solve_common_release_alpha0_binary(const TaskSet& tasks,
                                                 const SystemConfig& cfg) {
  if (!instance_ok(tasks, cfg, /*validated=*/false)) return infeasible_result();
  CommonReleaseScratch ws;
  const Instance in = build_instance(tasks, cfg, ws);
  const int n = in.n();

  // Lemma 1: classify Case i by where its (speed-cap-clamped) local optimum
  // falls relative to the case domain [delta_i, delta_{i-1}). "Just-fit"
  // (pinned at the lower boundary) sends the search towards larger i,
  // "invalid" (pinned at the shared upper boundary delta_{i-1}) towards
  // smaller i, an s_up-capped or interior ("valid") optimum terminates: the
  // speed cap only tightens with smaller i, so no smaller-i case is
  // feasible beyond it.
  int lo = 1, hi = n;
  int best_case = -1;
  double best_delta = 0.0;
  double best_energy = std::numeric_limits<double>::infinity();
  auto record = [&](int i, const CaseLocal& loc) {
    if (loc.feasible && loc.energy < best_energy) {
      best_energy = loc.energy;
      best_delta = loc.delta;
      best_case = i;
    }
  };
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    const CaseLocal loc = case_local_optimum(in, mid);
    if (!loc.feasible) {
      // The case's whole domain violates the speed cap: feasible sleep
      // lengths are strictly smaller, i.e. in higher-i cases.
      lo = mid + 1;
      continue;
    }
    record(mid, loc);
    const double dom_lo = ws.delta[mid];
    const double dom_hi = (mid >= 2) ? ws.delta[mid - 1] : in.horizon;
    const double dm = delta_mi(in, mid);
    if (dm < dom_lo) {
      lo = mid + 1;  // just-fit
    } else if (dm >= dom_hi && mid >= 2 && loc.delta >= dom_hi - 1e-15) {
      hi = mid - 1;  // invalid (and not merely capped by s_up)
    } else {
      break;  // valid interior or pinned by the speed cap: global optimum
    }
  }
  if (best_case < 0) return infeasible_result();
  return finalize(in, best_case, best_delta, best_energy);
}

}  // namespace sdem
