// Optimal scheme for common-release tasks with negligible core static power
// (paper §4.1, Theorem 2, Lemma 1).
//
// Setup: n tasks released together at r (shifted to 0 internally), task i
// has deadline d_i (sorted increasing) and workload w_i; |I| = d_n. The only
// decision is the memory sleep length Delta at the right end of |I|. Under
// "Case i" (delta_i <= Delta < delta_{i-1}, where delta_i = d_n - d_i) tasks
// T_1..T_{i-1} run at their filled speed over their whole region and tasks
// T_i..T_n stretch to finish exactly at |I| - Delta:
//
//   E_i(Delta) = alpha_m (|I| - Delta)
//              + beta * sum_{j<i}  w_j^l d_j^(1-l)
//              + beta * sum_{j>=i} w_j^l (|I| - Delta)^(1-l)
//
// whose unconstrained minimizer is Eq. (4):
//
//   Delta_mi = |I| - (beta (l-1) sum_{j>=i} w_j^l / alpha_m)^(1/l).
//
// The global optimum is the best local optimum over the n cases; the paper
// shows the valid/just-fit/invalid structure makes a binary search over
// cases correct (Lemma 1), giving O(n log n) including the sort.
#pragma once

#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

struct CommonReleaseScratch;

/// Linear case scan (Theorem 2 order, evaluating every case): O(n) after
/// sorting. Robust reference implementation.
OfflineResult solve_common_release_alpha0(const TaskSet& tasks,
                                          const SystemConfig& cfg);

/// Scratch-reusing variant for callers that solve repeatedly (the online
/// policy). `validated` skips the O(n log n) TaskSet::validate() pass when
/// the caller constructed the set itself. Same result as the plain entry.
OfflineResult solve_common_release_alpha0(const TaskSet& tasks,
                                          const SystemConfig& cfg,
                                          CommonReleaseScratch& ws,
                                          bool validated = false);

/// Binary search over cases per Lemma 1: O(log n) case evaluations after
/// sorting. Produces the same result as the linear scan.
OfflineResult solve_common_release_alpha0_binary(const TaskSet& tasks,
                                                 const SystemConfig& cfg);

}  // namespace sdem
