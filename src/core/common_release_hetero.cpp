#include "core/common_release_hetero.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/block.hpp"
#include "support/numeric.hpp"

namespace sdem {

OfflineResult solve_common_release_hetero(const TaskSet& tasks,
                                          const std::vector<CorePower>& cores,
                                          const MemoryPower& memory) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_common_release() ||
      cores.size() != tasks.size() || !tasks.validate().empty()) {
    return res;
  }
  const double release = tasks[0].release;
  const int n = static_cast<int>(tasks.size());
  for (int k = 0; k < n; ++k) {
    if (tasks[k].filled_speed() > cores[k].max_speed() * (1.0 + 1e-12)) {
      return res;
    }
  }

  double horizon = 0.0;
  for (const auto& t : tasks.tasks()) {
    horizon = std::max(horizon, t.deadline - release);
  }

  auto energy = [&](double T) {
    if (T <= 0.0) {
      return tasks.total_work() > 0.0 ? std::numeric_limits<double>::infinity()
                                      : 0.0;
    }
    double e = memory.alpha_m * T;
    for (int k = 0; k < n; ++k) {
      const double window = std::min(T, tasks[k].deadline - release);
      e += task_window_energy(tasks[k], cores[k], window);
      if (!std::isfinite(e)) return std::numeric_limits<double>::infinity();
    }
    return e;
  };

  // Feasible floor and piece breakpoints.
  double t_min = 0.0;
  std::set<double> bps;
  for (int k = 0; k < n; ++k) {
    const Task& t = tasks[k];
    if (t.work <= 0.0) continue;
    if (std::isfinite(cores[k].max_speed())) {
      t_min = std::max(t_min, t.work / cores[k].max_speed());
    }
    if (t.deadline - release < horizon) bps.insert(t.deadline - release);
    const double s_m = cores[k].critical_speed_raw();
    const double knee_speed = std::min(
        s_m > 0.0 ? s_m : cores[k].max_speed(), cores[k].max_speed());
    if (std::isfinite(knee_speed) && knee_speed > 0.0) {
      const double knee = t.work / knee_speed;
      if (knee > t_min && knee < horizon) bps.insert(knee);
    }
  }
  std::vector<double> edges(bps.begin(), bps.end());
  std::erase_if(edges, [&](double e) { return e <= t_min; });
  edges.insert(edges.begin(), t_min);
  edges.push_back(horizon);

  double best_T = horizon;
  double best = energy(horizon);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    if (edges[i + 1] <= edges[i]) continue;
    const double t = golden_min(energy, edges[i], edges[i + 1], 1e-13);
    for (double cand : {t, edges[i], edges[i + 1]}) {
      const double e = energy(cand);
      if (e < best) {
        best = e;
        best_T = cand;
      }
    }
  }
  if (!std::isfinite(best)) return res;

  res.feasible = true;
  res.energy = best;
  res.sleep_time = horizon - best_T;
  for (int k = 0; k < n; ++k) {
    const Task& t = tasks[k];
    if (t.work <= 0.0) continue;
    const double window = std::min(best_T, t.deadline - release);
    const double speed = task_window_speed(t, cores[k], window);
    res.schedule.add(
        Segment{t.id, k, release, release + t.work / speed, speed});
  }
  return res;
}

}  // namespace sdem
