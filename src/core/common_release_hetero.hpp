// Heterogeneous-core extension of the Section 4 common-release scheme.
//
// The paper notes (end of §4.2) that the common-release schemes extend to
// heterogeneous cores with per-core power functions — each core then has
// its own critical speed, and the per-case energy sums the dynamic terms
// per core. We implement that via the same window formulation used for the
// homogeneous case: with the memory busy on [0, T], task k (bound to its
// own core with power alpha_k + beta_k s^lambda_k) owns the window
// min(T, d_k) and contributes its window-optimal core energy f_k; every
// f_k is convex non-increasing in the window, so
//
//   E(T) = alpha_m T + sum_k f_k(min(T, d_k))
//
// is piecewise convex with breakpoints at the deadlines and at each core's
// critical-speed knee w_k / min(s_mk, s_upk): per-piece golden section is
// exact (the same argument as core/transition.hpp with zero overheads).
#pragma once

#include <vector>

#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Solve the common-release problem where task i runs on a dedicated core
/// with power model `cores[i]` (same order as `tasks`; must match size).
/// `memory` supplies alpha_m. Transition overheads are not modeled here.
OfflineResult solve_common_release_hetero(const TaskSet& tasks,
                                          const std::vector<CorePower>& cores,
                                          const MemoryPower& memory);

}  // namespace sdem
