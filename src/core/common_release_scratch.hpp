// Reusable buffers for the Section 4 common-release solvers.
//
// The online policy solves a common-release instance on every replan; the
// sorted task copy and the suffix/prefix arrays here survive across solves
// so that path allocates nothing in steady state. Each solver overwrites
// every entry it reads, so one scratch can serve all of them in turn.
#pragma once

#include <vector>

#include "model/task.hpp"

namespace sdem {

struct CommonReleaseScratch {
  /// alpha-variant entry: task plus its critical-speed completion time.
  struct AlphaEntry {
    Task task;
    double s0 = 0.0;  ///< per-task critical speed
    double c = 0.0;   ///< completion time at s0, relative to release
  };

  std::vector<Task> sorted;         ///< alpha0: tasks sorted by deadline
  std::vector<AlphaEntry> entries;  ///< alpha: entries sorted by c
  std::vector<double> d;            ///< deadlines relative to release
  std::vector<double> delta;        ///< delta_i = |I| - d_i (1-based)
  std::vector<double> suffix_wl;    ///< sum_{j>=i} w_j^lambda (1-based)
  std::vector<double> suffix_wmax;  ///< max_{j>=i} w_j (1-based)
  std::vector<double> prefix;       ///< per-solver prefix constants (1-based)
};

}  // namespace sdem
