#include "core/discrete_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Level minimizing the race energy exec(w, s) — independent of the window
/// and of w (energy-per-cycle P(s)/s is minimized at the level closest to
/// the critical speed in cost).
double best_race_level(const CorePower& core, const FrequencyLadder& ladder) {
  double best = ladder.levels().front();
  double best_epc = kInf;
  for (double s : ladder.levels()) {
    if (s > core.max_speed() * (1.0 + 1e-12)) continue;
    const double epc = core.power(s) / s;
    if (epc < best_epc) {
      best_epc = epc;
      best = s;
    }
  }
  return best;
}

}  // namespace

double discrete_window_energy(const Task& t, const CorePower& core,
                              const FrequencyLadder& ladder, double window,
                              double* hi_level, double* lo_level,
                              double* hi_time) {
  if (hi_level) *hi_level = 0.0;
  if (lo_level) *lo_level = 0.0;
  if (hi_time) *hi_time = 0.0;
  if (t.work <= 0.0) return 0.0;
  if (window <= 0.0) return kInf;

  const double fill = t.work / window;
  const double top = std::min(ladder.highest(), core.max_speed());
  if (fill > top * (1.0 + 1e-9)) return kInf;

  const double race = best_race_level(core, ladder);
  if (t.work / race <= window * (1.0 + 1e-12)) {
    // Loose window: race at the cheapest level and sleep.
    if (hi_level) *hi_level = race;
    if (lo_level) *lo_level = race;
    if (hi_time) *hi_time = t.work / race;
    return core.exec_energy(t.work, race);
  }

  // Tight window: fill it exactly with the adjacent bracketing pair.
  const auto [lo, hi] = ladder.bracket(fill);
  if (lo == hi) {
    if (hi_level) *hi_level = hi;
    if (lo_level) *lo_level = hi;
    if (hi_time) *hi_time = window;
    return core.power(hi) * window;
  }
  const double t_hi = window * (fill - lo) / (hi - lo);
  if (hi_level) *hi_level = hi;
  if (lo_level) *lo_level = lo;
  if (hi_time) *hi_time = t_hi;
  return core.power(hi) * t_hi + core.power(lo) * (window - t_hi);
}

OfflineResult solve_common_release_discrete(const TaskSet& tasks,
                                            const SystemConfig& cfg,
                                            const FrequencyLadder& ladder) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_common_release() || !tasks.validate().empty())
    return res;
  const double top = std::min(ladder.highest(), cfg.core.max_speed());
  if (tasks.max_filled_speed() > top * (1.0 + 1e-12)) return res;

  const double release = tasks[0].release;
  double horizon = 0.0;
  for (const auto& t : tasks.tasks()) {
    horizon = std::max(horizon, t.deadline - release);
  }

  auto energy = [&](double T) {
    if (T <= 0.0) {
      return tasks.total_work() > 0.0 ? kInf : 0.0;
    }
    double e = cfg.memory.alpha_m * T;
    for (const auto& t : tasks.tasks()) {
      e += discrete_window_energy(t, cfg.core, ladder,
                                  std::min(T, t.deadline - release));
      if (!std::isfinite(e)) return kInf;
    }
    return e;
  };

  // Feasible floor and piece breakpoints: deadlines, per-task bracket
  // switches (window = w / level), race knees.
  double t_min = 0.0;
  std::set<double> bps;
  const double race = best_race_level(cfg.core, ladder);
  for (const auto& t : tasks.tasks()) {
    if (t.work <= 0.0) continue;
    t_min = std::max(t_min, t.work / top);
    if (t.deadline - release < horizon) bps.insert(t.deadline - release);
    for (double s : ladder.levels()) {
      const double w = t.work / s;
      if (w > t_min && w < horizon) bps.insert(w);
    }
    const double knee = t.work / race;
    if (knee > t_min && knee < horizon) bps.insert(knee);
  }
  std::vector<double> edges(bps.begin(), bps.end());
  std::erase_if(edges, [&](double e) { return e <= t_min; });
  edges.insert(edges.begin(), t_min);
  edges.push_back(horizon);

  double best_T = horizon;
  double best = energy(horizon);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    if (edges[i + 1] <= edges[i]) continue;
    const double t = golden_min(energy, edges[i], edges[i + 1], 1e-13);
    for (double cand : {t, edges[i], edges[i + 1]}) {
      const double e = energy(cand);
      if (e < best) {
        best = e;
        best_T = cand;
      }
    }
  }
  if (!std::isfinite(best)) return res;

  res.feasible = true;
  res.energy = best;
  res.sleep_time = horizon - best_T;
  int core_idx = 0;
  for (const auto& t : tasks.tasks()) {
    if (t.work <= 0.0) {
      ++core_idx;
      continue;
    }
    const double window = std::min(best_T, t.deadline - release);
    double hi = 0.0, lo = 0.0, t_hi = 0.0;
    discrete_window_energy(t, cfg.core, ladder, window, &hi, &lo, &t_hi);
    if (hi == lo) {
      res.schedule.add(
          Segment{t.id, core_idx, release, release + t_hi, hi});
    } else {
      // A fill speed landing exactly on a ladder level puts all the work on
      // one side of the bracket; skip the degenerate piece. Compare the
      // emitted endpoints, not the durations: adding `release` can absorb a
      // sub-ulp duration into a zero-length segment.
      const double split = release + t_hi;
      const double end = release + window;
      if (split > release) {
        res.schedule.add(Segment{t.id, core_idx, release, split, hi});
      }
      if (end > split) {
        res.schedule.add(Segment{t.id, core_idx, split, end, lo});
      }
    }
    ++core_idx;
  }
  return res;
}

}  // namespace sdem
