// Discrete-DVFS-aware optimal common-release scheme.
//
// core/discretize.hpp realizes a *continuous* optimum on a ladder after the
// fact. Solving directly over the ladder does better: inside a window of
// length W the cheapest discrete execution of w megacycles is the convex
// envelope of the per-level costs — run the two adjacent levels bracketing
// w / W (Ishihara-Yasuura), or race at the single best level when the
// window is loose. That per-task cost
//
//   f_disc(W) = min over feasible level mixes of exec energy
//
// is again convex and non-increasing in W (it is the lower convex envelope
// of finitely many affine-in-(1/W)... evaluated exactly below), so the
// memory-busy-end search of the continuous scheme carries over: E(T) =
// alpha_m T + sum_k f_disc(min(T, d_k)) is piecewise convex with
// breakpoints where a task's bracketing pair changes (window = w / level).
//
// Guarantees tested: never better than the continuous optimum, never worse
// than post-hoc discretization of it, and exact agreement with brute force
// on small instances.
#pragma once

#include "core/discretize.hpp"
#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Cheapest discrete execution of `t` inside a window of length `window`:
/// two adjacent levels splitting the window (work and duration preserved)
/// or a single level finishing early when that level is at or above the
/// core's critical speed. Returns +inf if even the top level cannot fit.
/// Outputs the chosen levels and the time spent at the faster one.
double discrete_window_energy(const Task& t, const CorePower& core,
                              const FrequencyLadder& ladder, double window,
                              double* hi_level = nullptr,
                              double* lo_level = nullptr,
                              double* hi_time = nullptr);

/// Optimal common-release schedule restricted to ladder speeds.
OfflineResult solve_common_release_discrete(const TaskSet& tasks,
                                            const SystemConfig& cfg,
                                            const FrequencyLadder& ladder);

}  // namespace sdem
