#include "core/discretize.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sdem {

FrequencyLadder::FrequencyLadder(std::vector<double> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty()) {
    throw std::invalid_argument("FrequencyLadder needs at least one level");
  }
  std::sort(levels_.begin(), levels_.end());
  if (levels_.front() <= 0.0) {
    throw std::invalid_argument("frequency levels must be positive");
  }
}

std::pair<double, double> FrequencyLadder::bracket(double s) const {
  if (s <= levels_.front()) return {levels_.front(), levels_.front()};
  if (s >= levels_.back()) return {levels_.back(), levels_.back()};
  const auto hi = std::lower_bound(levels_.begin(), levels_.end(), s);
  if (*hi == s) return {s, s};
  return {*std::prev(hi), *hi};
}

FrequencyLadder FrequencyLadder::uniform(int n, double lo, double hi) {
  std::vector<double> v;
  v.reserve(n);
  if (n <= 1) {
    v.push_back(hi);
  } else {
    for (int i = 0; i < n; ++i) {
      v.push_back(lo + (hi - lo) * static_cast<double>(i) / (n - 1));
    }
  }
  return FrequencyLadder(std::move(v));
}

FrequencyLadder FrequencyLadder::a57_opps() {
  return FrequencyLadder({700.0, 1000.0, 1200.0, 1400.0, 1700.0, 1900.0});
}

DiscretizeResult discretize_schedule(const Schedule& continuous,
                                     const FrequencyLadder& ladder) {
  DiscretizeResult out;
  for (const auto& seg : continuous.segments()) {
    const auto [lo, hi] = ladder.bracket(seg.speed);
    if (seg.speed > ladder.highest() * (1.0 + 1e-9)) {
      // Cannot realize: clamp to the top level; the duration grows past the
      // original window, so the result is flagged.
      out.feasible = false;
      Segment s = seg;
      s.speed = ladder.highest();
      s.end = s.start + seg.work() / s.speed;
      out.schedule.add(s);
      continue;
    }
    if (lo == hi) {
      // Exact level (or below the bottom level: race at the bottom level
      // and finish early).
      Segment s = seg;
      s.speed = std::max(seg.speed, ladder.lowest());
      s.end = s.start + seg.work() / s.speed;
      out.schedule.add(s);
      continue;
    }
    // Ishihara-Yasuura split: preserve work and duration exactly.
    const double t = seg.duration();
    const double t_hi = t * (seg.speed - lo) / (hi - lo);
    const double t_lo = t - t_hi;
    ++out.splits;
    // Run the faster level first: intermediate progress dominates the
    // continuous schedule, so any later preemption point is safe too.
    Segment fast = seg, slow = seg;
    fast.speed = hi;
    fast.end = seg.start + t_hi;
    slow.speed = lo;
    slow.start = fast.end;
    slow.end = seg.start + t;
    if (t_hi > 0.0) out.schedule.add(fast);
    if (t_lo > 0.0) out.schedule.add(slow);
  }
  return out;
}

}  // namespace sdem
