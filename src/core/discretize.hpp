// Discrete-frequency realization of continuous-speed schedules.
//
// The paper assumes continuous speeds and cites Ishihara & Yasuura (1998)
// for the transformation to real DVFS ladders: any continuous speed s
// executed for time T is realized optimally by the two *adjacent* ladder
// levels s_lo <= s <= s_hi, time-weighted to preserve both the executed
// work and the duration:
//
//   t_hi = T (s - s_lo) / (s_hi - s_lo),   t_lo = T - t_hi.
//
// By convexity of the power function no other level pair (or richer mix)
// does better, and because both the window and the work are preserved the
// transformed schedule remains feasible. This module applies that split
// per segment and quantifies the energy penalty of a given ladder.
#pragma once

#include <vector>

#include "model/power.hpp"
#include "sched/schedule.hpp"

namespace sdem {

/// A sorted set of allowed core frequencies (MHz).
class FrequencyLadder {
 public:
  explicit FrequencyLadder(std::vector<double> levels);

  const std::vector<double>& levels() const { return levels_; }
  double lowest() const { return levels_.front(); }
  double highest() const { return levels_.back(); }

  /// Adjacent pair bracketing s: returns {s_lo, s_hi} with s_lo <= s <=
  /// s_hi (both equal when s matches a level or falls outside the ladder,
  /// clamped).
  std::pair<double, double> bracket(double s) const;

  /// n evenly spaced levels spanning [lo, hi].
  static FrequencyLadder uniform(int n, double lo, double hi);

  /// A Cortex-A57-like OPP table: {700, 1000, 1200, 1400, 1700, 1900} MHz.
  static FrequencyLadder a57_opps();

 private:
  std::vector<double> levels_;
};

struct DiscretizeResult {
  Schedule schedule;
  bool feasible = true;  ///< false if some speed exceeded the top level
  int splits = 0;        ///< segments that needed the two-level split
};

/// Realize `continuous` on `ladder`. Speeds below the bottom level run at
/// the bottom level (finishing early — always safe); speeds above the top
/// level are clamped and flagged infeasible (the work then cannot fit the
/// original window).
DiscretizeResult discretize_schedule(const Schedule& continuous,
                                     const FrequencyLadder& ladder);

}  // namespace sdem
