#include "core/islands.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Island {
  double total_work = 0.0;  ///< W_I
  double max_work = 0.0;    ///< w_max,I
  double min_speed = 0.0;   ///< feasibility floor: max member filled speed
  std::vector<int> members; ///< task indices
};

}  // namespace

OfflineResult solve_common_release_islands(
    const TaskSet& tasks, const SystemConfig& cfg,
    const std::vector<int>& assignment) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_common_release() ||
      assignment.size() != tasks.size() || !tasks.validate().empty()) {
    return res;
  }
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12)) {
    return res;
  }
  const double release = tasks[0].release;

  int num_islands = 0;
  for (int a : assignment) {
    if (a < 0) return res;
    num_islands = std::max(num_islands, a + 1);
  }
  std::vector<Island> islands(num_islands);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& isl = islands[assignment[i]];
    if (tasks[i].work <= 0.0) continue;
    isl.total_work += tasks[i].work;
    isl.max_work = std::max(isl.max_work, tasks[i].work);
    isl.min_speed = std::max(isl.min_speed, tasks[i].filled_speed());
    isl.members.push_back(static_cast<int>(i));
  }
  std::erase_if(islands, [](const Island& i) { return i.members.empty(); });
  if (islands.empty()) {
    res.feasible = true;
    return res;
  }

  const double s_m = cfg.core.critical_speed_raw();
  const double s_up = cfg.core.max_speed();
  double horizon = 0.0;
  for (const auto& t : tasks.tasks()) {
    horizon = std::max(horizon, t.deadline - release);
  }

  auto island_speed = [&](const Island& isl, double T) {
    const double needed = std::max(isl.max_work / T, isl.min_speed);
    return std::min(std::max(s_m, needed), s_up);
  };
  auto energy = [&](double T) {
    if (T <= 0.0) return kInf;
    double e = cfg.memory.alpha_m * T;
    for (const auto& isl : islands) {
      const double sigma = island_speed(isl, T);
      if (isl.max_work / sigma > T * (1.0 + 1e-9)) return kInf;  // s_up bound
      e += cfg.core.exec_energy(isl.total_work, sigma);
    }
    return e;
  };

  // Piece edges: feasibility floor + per-island knees.
  double t_min = 0.0;
  for (const auto& isl : islands) {
    t_min = std::max(t_min, isl.max_work / s_up);
  }
  std::set<double> bps;
  for (const auto& isl : islands) {
    const double lb = std::max({s_m, isl.min_speed, 1e-12});
    const double knee = isl.max_work / lb;
    if (knee > t_min && knee < horizon) bps.insert(knee);
  }
  std::vector<double> edges(bps.begin(), bps.end());
  edges.insert(edges.begin(), t_min);
  edges.push_back(horizon);

  double best_T = horizon;
  double best = energy(horizon);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    if (edges[i + 1] <= edges[i]) continue;
    const double t = golden_min(energy, edges[i], edges[i + 1], 1e-13);
    for (double cand : {t, edges[i], edges[i + 1]}) {
      const double e = energy(cand);
      if (e < best) {
        best = e;
        best_T = cand;
      }
    }
  }
  if (!std::isfinite(best)) return res;

  res.feasible = true;
  res.energy = best;
  res.sleep_time = horizon - best_T;
  res.case_index = static_cast<int>(islands.size());
  int core = 0;
  for (const auto& isl : islands) {
    const double sigma = island_speed(isl, best_T);
    for (int i : isl.members) {
      const Task& t = tasks[i];
      res.schedule.add(Segment{t.id, core++, release,
                               release + t.work / sigma, sigma});
    }
  }
  return res;
}

std::vector<int> assign_islands_similar_speed(const TaskSet& tasks,
                                              int num_islands) {
  const int n = static_cast<int>(tasks.size());
  num_islands = std::max(1, std::min(num_islands, n));
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return tasks[a].filled_speed() > tasks[b].filled_speed();
  });
  // Contiguous chunks of the sorted order: similar speeds share a rail.
  std::vector<int> assignment(n, 0);
  const int chunk = (n + num_islands - 1) / num_islands;
  for (int k = 0; k < n; ++k) {
    assignment[order[k]] = std::min(k / chunk, num_islands - 1);
  }
  return assignment;
}

}  // namespace sdem
