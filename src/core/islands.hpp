// Voltage/frequency islands (the paper's declared future work, §3: systems
// where groups of cores share one voltage supply island — Herbert &
// Marculescu 2007).
//
// Model: cores are grouped into islands; all cores of an island run at one
// shared speed sigma_I (each still executes its own task, starting at the
// common release). Task j on island I takes w_j / sigma_I, so the island's
// completion is w_max,I / sigma_I and feasibility needs sigma_I >= every
// member's filled speed. With the memory busy until T = max_I completions,
//
//   sigma_I(T) = clamp( s_m, max(w_max,I / T, max_j s_fj), s_up ),
//   E(T) = alpha_m T + sum_I (beta sigma_I^lambda + alpha) W_I / sigma_I
//
// where W_I is the island's total work — the same convex window structure
// as the per-core scheme with (W_I, w_max,I) replacing (w, w): piecewise
// convex in T with knees at w_max,I / s_lb,I, solved exactly per piece.
// Singleton islands recover Section 4.2 exactly (tested).
#pragma once

#include <vector>

#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Solve the common-release problem with cores grouped per `assignment`
/// (task index in input order -> island id, 0-based, contiguous ids).
OfflineResult solve_common_release_islands(const TaskSet& tasks,
                                           const SystemConfig& cfg,
                                           const std::vector<int>& assignment);

/// Group tasks with similar filled speeds together (sorted chunking) — the
/// natural heuristic: a shared rail hurts most when it yokes a steep task
/// to shallow ones.
std::vector<int> assign_islands_similar_speed(const TaskSet& tasks,
                                              int num_islands);

}  // namespace sdem
