#include "core/lemma3.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

BlockResult solve_block_lemma3(const std::vector<Task>& tasks,
                               const SystemConfig& cfg) {
  BlockResult out;
  if (tasks.empty() || cfg.core.alpha != 0.0) return out;

  const double beta = cfg.core.beta;
  const double lambda = cfg.core.lambda;
  const double alpha_m = cfg.memory.alpha_m;
  const double s_up = cfg.core.max_speed();

  double r_min = kInf, r_max = -kInf, d_min = kInf, d_max = -kInf;
  for (const auto& t : tasks) {
    r_min = std::min(r_min, t.release);
    r_max = std::max(r_max, t.release);
    d_min = std::min(d_min, t.deadline);
    d_max = std::max(d_max, t.deadline);
  }
  std::vector<double> sb{r_min, d_min}, eb{r_max, d_max};
  for (const auto& t : tasks) {
    if (t.release > r_min && t.release < d_min) sb.push_back(t.release);
    if (t.deadline > r_max && t.deadline < d_max) eb.push_back(t.deadline);
  }
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  std::sort(eb.begin(), eb.end());
  eb.erase(std::unique(eb.begin(), eb.end()), eb.end());

  auto energy_at = [&](double s, double e) {
    return block_energy_at(tasks, cfg, s, e);
  };

  const double target = alpha_m / (beta * (lambda - 1.0));
  double best = kInf, best_s = r_min, best_e = d_max;

  for (std::size_t si = 0; si + 1 < sb.size(); ++si) {
    for (std::size_t ei = 0; ei + 1 < eb.size(); ++ei) {
      const double s_lo = sb[si], s_hi = sb[si + 1];
      const double e_lo = eb[ei], e_hi = eb[ei + 1];
      if (e_hi <= s_lo) continue;

      // Classify tasks for an interior point of this box, hoisting the
      // loop-invariant w^lambda out of the bisection callbacks (it was
      // recomputed on every probe).
      struct Side {
        const Task* t;
        double wpow;  ///< pow(w, lambda)
      };
      std::vector<Side> left, right;
      bool coupled = false;  // a task clipped on both sides (paper case 3)
      for (const auto& t : tasks) {
        const bool l = t.release <= s_lo;
        const bool r = t.deadline >= e_hi;
        if (l && r) coupled = true;
        if (l && !r) left.push_back({&t, std::pow(t.work, lambda)});
        if (r && !l) right.push_back({&t, std::pow(t.work, lambda)});
      }
      if (coupled) {
        // The lemma's separable equations do not apply; use the shared
        // convex box minimizer (the paper: "the analysis is similar").
        const BoxMin m = minimize_in_box(tasks, s_up, energy_at, s_lo, s_hi,
                                         e_lo, e_hi);
        if (m.feasible && m.value < best) {
          best = m.value;
          best_s = m.s;
          best_e = m.e;
        }
        continue;
      }

      // s_up feasibility clamps — fully separable without coupled tasks.
      double s_cap = s_hi, e_floor = e_lo;
      if (std::isfinite(s_up)) {
        for (const Side& l : left) {
          s_cap = std::min(s_cap, l.t->deadline - l.t->work / s_up);
        }
        for (const Side& r : right) {
          e_floor = std::max(e_floor, r.t->release + r.t->work / s_up);
        }
      }
      if (s_cap < s_lo || e_floor > e_hi) continue;

      // dE/ds' = -alpha_m + beta (l-1) sum_L w^l (d_k - s')^-l: increasing.
      auto dE_ds = [&](double s) {
        double acc = -target;
        for (const Side& l : left) {
          acc += l.wpow * std::pow(l.t->deadline - s, -lambda);
        }
        return acc;
      };
      double s_star;
      if (left.empty()) {
        s_star = s_cap;  // pure memory term: shrink from the left
      } else if (dE_ds(s_cap) <= 0.0) {
        s_star = s_cap;
      } else if (dE_ds(s_lo) >= 0.0) {
        s_star = s_lo;
      } else {
        s_star = bisect_root(dE_ds, s_lo, s_cap);
      }

      // dE/de' = alpha_m - beta (l-1) sum_R w^l (e' - r_k)^-l: increasing.
      auto dE_de = [&](double e) {
        double acc = target;
        for (const Side& r : right) {
          acc -= r.wpow * std::pow(e - r.t->release, -lambda);
        }
        return acc;
      };
      double e_star;
      if (right.empty()) {
        e_star = e_floor;  // shrink from the right
      } else if (dE_de(e_floor) >= 0.0) {
        e_star = e_floor;
      } else if (dE_de(e_hi) <= 0.0) {
        e_star = e_hi;
      } else {
        e_star = bisect_root(dE_de, e_floor, e_hi);
      }

      const double val = energy_at(s_star, e_star);
      if (val < best) {
        best = val;
        best_s = s_star;
        best_e = e_star;
      }
    }
  }

  if (!std::isfinite(best)) return out;
  out.feasible = true;
  out.s = best_s;
  out.e = best_e;
  out.energy = best;
  for (const auto& t : tasks) {
    BlockResult::Placement p;
    p.task_id = t.id;
    if (t.work > 0.0) {
      const double lo = std::max(best_s, t.release);
      const double hi = std::min(best_e, t.deadline);
      p.speed = t.work / (hi - lo);
      p.len = hi - lo;
      p.start = lo;
    }
    out.placements.push_back(p);
  }
  return out;
}

}  // namespace sdem
