// Literal implementation of Lemma 3 (§5.1): per-(i,j)-pair stationarity by
// bisection on the paper's exact first-order conditions, for alpha == 0.
//
// For a pair with i < n' - j (no both-sides-clipped task), the optimum
// (Delta_1, Delta_2) separates:
//
//   sum_{k <= i}       ( w_k / (d_k - Delta_1) )^lambda        = alpha_m / (beta (lambda-1))
//   sum_{k >= n'-j+1}  ( w_k / (d_n' - r_k - Delta_2) )^lambda = alpha_m / (beta (lambda-1))
//
// each side monotone in its variable, solved by bisection and clamped to
// the pair's feasible box ((r_i, r_{i+1}] x [d_n'-d_{n'-j+1}, d_n'-d_{n'-j}))
// exactly as the lemma prescribes. Pairs with a both-sides-clipped task
// (i >= n' - j, the case the paper only sketches) fall back to the shared
// convex box minimizer.
//
// This is the third independent route to the Section 5.1 block optimum
// (besides core/block.hpp and the grid reference); the three must agree,
// which tests/test_lemma3.cpp asserts.
#pragma once

#include <vector>

#include "core/block.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Solve one alpha == 0 block by Lemma 3's case analysis. `tasks` must be
/// agreeable; cfg.core.alpha must be 0 (returns infeasible otherwise).
BlockResult solve_block_lemma3(const std::vector<Task>& tasks,
                               const SystemConfig& cfg);

}  // namespace sdem
