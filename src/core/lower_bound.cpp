#include "core/lower_bound.hpp"

#include <algorithm>
#include <cmath>

#include "core/block.hpp"

namespace sdem {

double weighted_interval_schedule(std::vector<WeightedInterval> v) {
  std::erase_if(v, [](const WeightedInterval& w) {
    return w.weight <= 0.0 || w.hi <= w.lo;
  });
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end(),
            [](const WeightedInterval& a, const WeightedInterval& b) {
              return a.hi < b.hi;
            });
  const int n = static_cast<int>(v.size());
  std::vector<double> ends(n);
  for (int i = 0; i < n; ++i) ends[i] = v[i].hi;
  std::vector<double> best(n + 1, 0.0);
  for (int i = 1; i <= n; ++i) {
    const auto& cur = v[i - 1];
    // p = how many of the first i-1 intervals end at or before cur.lo.
    const int p = static_cast<int>(
        std::upper_bound(ends.begin(), ends.begin() + (i - 1), cur.lo) -
        ends.begin());
    best[i] = std::max(best[i - 1], best[p] + cur.weight);
  }
  return best[n];
}

LowerBound lower_bound_energy(const TaskSet& tasks, const SystemConfig& cfg) {
  LowerBound lb;
  std::vector<WeightedInterval> regions;
  const double s_up = cfg.core.max_speed();
  for (const auto& t : tasks.tasks()) {
    if (t.work <= 0.0) continue;
    lb.core += task_window_energy(t, cfg.core, t.region());
    if (std::isfinite(s_up)) {
      regions.push_back({t.release, t.deadline, t.work / s_up});
    }
  }
  lb.memory = cfg.memory.alpha_m * weighted_interval_schedule(regions);
  return lb;
}

}  // namespace sdem
