// Rigorous energy lower bounds for general task sets.
//
// The agreeable DP certifies online schedules on agreeable inputs; general
// inputs need a bound that holds for *every* feasible schedule:
//
//   * cores: each task's core energy is at least its window-optimal energy
//     over its full feasible region (no schedule can give it more room);
//   * memory: within any set of pairwise-disjoint task regions, the memory
//     must be awake at least w_k / s_up inside each region, so
//     alpha_m * (max-weight disjoint-region packing) lower-bounds the
//     memory energy. The packing is weighted interval scheduling, solved
//     exactly by DP.
//
// The two parts bound disjoint energy components, so their sum is a valid
// system-wide lower bound (transition overheads only increase energy).
#pragma once

#include <vector>

#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

struct WeightedInterval {
  double lo = 0.0;
  double hi = 0.0;
  double weight = 0.0;
};

/// Max-weight set of pairwise-disjoint intervals (classic DP, O(n log n)).
double weighted_interval_schedule(std::vector<WeightedInterval> v);

struct LowerBound {
  double core = 0.0;    ///< sum of per-task window-optimal energies
  double memory = 0.0;  ///< alpha_m * disjoint-region busy packing
  double total() const { return core + memory; }
};

/// Valid lower bound on the system energy of any feasible schedule of
/// `tasks` under `cfg` (unbounded cores; bounded cores only increase it).
LowerBound lower_bound_energy(const TaskSet& tasks, const SystemConfig& cfg);

}  // namespace sdem
