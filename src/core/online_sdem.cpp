#include "core/online_sdem.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/transition.hpp"

namespace sdem {
namespace {

/// Pick the Section 4 / Section 7 scheme matching the configuration.
OfflineResult plan_common_release(const TaskSet& tasks,
                                  const SystemConfig& cfg) {
  if (cfg.memory.xi_m > 0.0 || (cfg.core.alpha > 0.0 && cfg.core.xi > 0.0)) {
    return solve_common_release_transition(tasks, cfg);
  }
  if (cfg.core.alpha > 0.0) return solve_common_release_alpha(tasks, cfg);
  return solve_common_release_alpha0(tasks, cfg);
}

}  // namespace

std::vector<Segment> SdemOnPolicy::replan(double now,
                                          const std::vector<PendingTask>& pending,
                                          const SystemConfig& cfg) {
  return plan(now, pending, cfg, procrastinate_);
}

std::vector<Segment> SdemOnPolicy::replan_completion(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg) {
  return plan(now, pending, cfg, /*procrastinate=*/false);
}

std::vector<Segment> SdemOnPolicy::plan(double now,
                                        const std::vector<PendingTask>& pending,
                                        const SystemConfig& cfg,
                                        bool procrastinate) {
  std::vector<Segment> plan;
  if (pending.empty()) return plan;
  const double s_up = cfg.core.max_speed();

  // Re-release everything at `now`. Overdue or overloaded tasks get a
  // race-to-finish effective deadline (the miss is already unavoidable;
  // the validator will count it).
  TaskSet virt;
  std::map<int, double> eff_deadline;
  for (const auto& p : pending) {
    Task t;
    t.id = p.task.id;
    t.release = now;
    t.work = p.remaining;
    const double min_span =
        std::isfinite(s_up) ? p.remaining / s_up : 1e-9;
    t.deadline = std::max(p.task.deadline, now + std::max(min_span, 1e-12));
    eff_deadline[t.id] = t.deadline;
    virt.add(t);
  }

  const OfflineResult local = plan_common_release(virt, cfg);

  // Per-task execution length p_j and speed from the local optimum.
  std::map<int, double> dur;
  for (const auto& seg : local.schedule.segments()) {
    dur[seg.task_id] += seg.duration();
  }

  // Latest start of each task; the batch wakes at the earliest one.
  double wake = std::numeric_limits<double>::infinity();
  for (const auto& p : pending) {
    const double d = eff_deadline[p.task.id];
    const double len = dur.count(p.task.id) ? dur[p.task.id] : 0.0;
    if (len > 0.0) wake = std::min(wake, d - len);
  }
  if (!std::isfinite(wake)) return plan;
  wake = procrastinate ? std::max(wake, now) : now;

  // All tasks start when the memory wakes; tasks sharing a core serialize
  // in EDF order, compressing up to s_up when needed.
  std::map<int, std::vector<const PendingTask*>> by_core;
  for (const auto& p : pending) by_core[p.core].push_back(&p);
  for (auto& [core, group] : by_core) {
    std::sort(group.begin(), group.end(),
              [&](const PendingTask* a, const PendingTask* b) {
                return eff_deadline[a->task.id] < eff_deadline[b->task.id];
              });
    double cur = wake;
    for (const PendingTask* p : group) {
      if (p->remaining <= 0.0) continue;
      double len = dur.count(p->task.id) ? dur[p->task.id] : 0.0;
      if (len <= 0.0) len = p->remaining / std::min(s_up, 1e9);
      const double d = eff_deadline[p->task.id];
      if (cur + len > d) {
        // Compress to fit, bounded by s_up (beyond that the miss stands).
        const double min_len =
            std::isfinite(s_up) ? p->remaining / s_up : 1e-12;
        len = std::max(d - cur, min_len);
      }
      if (cfg.core.s_min > 0.0) {
        // DVFS floor: a plan slower than s_min runs at s_min and the core
        // sleeps the difference.
        len = std::min(len, p->remaining / cfg.core.s_min);
      }
      plan.push_back(
          Segment{p->task.id, core, cur, cur + len, p->remaining / len});
      cur += len;
    }
  }
  return plan;
}

}  // namespace sdem
