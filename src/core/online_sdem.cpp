#include "core/online_sdem.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/transition.hpp"
#include "obs/obs.hpp"

namespace sdem {
namespace {

/// Pick the Section 4 / Section 7 scheme matching the configuration.
OfflineResult plan_common_release(const TaskSet& tasks,
                                  const SystemConfig& cfg,
                                  TransitionWorkspace& tw,
                                  CommonReleaseScratch& cw, bool validated) {
  if (cfg.memory.xi_m > 0.0 || (cfg.core.alpha > 0.0 && cfg.core.xi > 0.0)) {
    return solve_common_release_transition(tasks, cfg, tw, validated);
  }
  if (cfg.core.alpha > 0.0) {
    return solve_common_release_alpha(tasks, cfg, cw, validated);
  }
  return solve_common_release_alpha0(tasks, cfg, cw, validated);
}

}  // namespace

void SdemOnPolicy::reset() {
  rs_.slots.clear();
  rs_.seen_epoch.clear();
  rs_.eff_deadline.clear();
  rs_.dur.clear();
  rs_.epoch = 0;
}

std::vector<Segment> SdemOnPolicy::replan(double now,
                                          const std::vector<PendingTask>& pending,
                                          const SystemConfig& cfg) {
  return plan(now, pending, cfg, procrastinate_);
}

std::vector<Segment> SdemOnPolicy::replan_completion(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg) {
  return plan(now, pending, cfg, /*procrastinate=*/false);
}

std::vector<Segment> SdemOnPolicy::plan(double now,
                                        const std::vector<PendingTask>& pending,
                                        const SystemConfig& cfg,
                                        bool procrastinate) {
  std::vector<Segment> plan;
  if (pending.empty()) return plan;
  SDEM_OBS_TIMER("online_sdem/replan");
  SDEM_OBS_INC("online_sdem/replans");
  SDEM_OBS_COUNT("online_sdem/tasks_replanned", pending.size());
  const double s_up = cfg.core.max_speed();
  const double s_up_capped = std::min(s_up, 1e9);

  ReplanScratch& rs = rs_;
  const int epoch = ++rs.epoch;

  // Re-release everything at `now`. Overdue or overloaded tasks get a
  // race-to-finish effective deadline (the miss is already unavoidable;
  // the validator will count it). `trusted` certifies here what the
  // solvers' validate() pass would check (the constructed deadlines always
  // exceed the release), so they can skip it.
  rs.virt.clear();
  rs.virt.reserve(pending.size());
  bool trusted = true;
  for (const auto& p : pending) {
    Task t;
    t.id = p.task.id;
    t.release = now;
    t.work = p.remaining;
    const double min_span =
        std::isfinite(s_up) ? p.remaining / s_up : 1e-9;
    t.deadline = std::max(p.task.deadline, now + std::max(min_span, 1e-12));
    // The max() engaged its second arm: the task cannot make its real
    // deadline any more, i.e. it is past the admission test and races.
    if (t.deadline > p.task.deadline) SDEM_OBS_INC("online_sdem/admission_rejects");
    const int slot = rs.slots.intern(t.id);
    if (slot >= static_cast<int>(rs.eff_deadline.size())) {
      const std::size_t size = rs.slots.size();
      rs.eff_deadline.resize(size, 0.0);
      rs.dur.resize(size, 0.0);
      rs.seen_epoch.resize(size, 0);
    }
    if (rs.seen_epoch[slot] == epoch) trusted = false;  // duplicate id
    rs.seen_epoch[slot] = epoch;
    if (p.remaining < 0.0) trusted = false;
    rs.eff_deadline[slot] = t.deadline;
    rs.dur[slot] = 0.0;
    rs.virt.add(t);
  }

  const OfflineResult local =
      plan_common_release(rs.virt, cfg, rs.tw, rs.cw, trusted);
  if (!local.feasible) SDEM_OBS_INC("online_sdem/local_plan_infeasible");

  // Per-task execution length p_j and speed from the local optimum.
  for (const auto& seg : local.schedule.segments()) {
    rs.dur[rs.slots.slot_of(seg.task_id)] += seg.duration();
  }

  // Latest start of each task; the batch wakes at the earliest one.
  double wake = std::numeric_limits<double>::infinity();
  for (const auto& p : pending) {
    const int slot = rs.slots.slot_of(p.task.id);
    const double d = rs.eff_deadline[slot];
    const double len = rs.dur[slot];
    if (len > 0.0) wake = std::min(wake, d - len);
  }
  if (!std::isfinite(wake)) return plan;
  wake = procrastinate ? std::max(wake, now) : now;
  if (wake > now) SDEM_OBS_INC("online_sdem/procrastinated_replans");
  SDEM_OBS_DIST("online_sdem/wake_delay_s", wake - now);

  // All tasks start when the memory wakes; tasks sharing a core serialize
  // in EDF order, compressing up to s_up when needed. Groups are formed by
  // counting sort over the ascending core list, keeping arrival order
  // within each group before the EDF sort.
  auto& cores = rs.cores;
  cores.clear();
  for (const auto& p : pending) cores.push_back(p.core);
  std::sort(cores.begin(), cores.end());
  cores.erase(std::unique(cores.begin(), cores.end()), cores.end());

  const std::size_t ncores = cores.size();
  rs.offsets.assign(ncores + 1, 0);
  auto core_index = [&](int core) {
    return static_cast<std::size_t>(
        std::lower_bound(cores.begin(), cores.end(), core) - cores.begin());
  };
  for (const auto& p : pending) ++rs.offsets[core_index(p.core) + 1];
  for (std::size_t i = 1; i <= ncores; ++i) rs.offsets[i] += rs.offsets[i - 1];
  rs.cursor.assign(rs.offsets.begin(), rs.offsets.end());
  rs.items.resize(pending.size());
  for (const auto& p : pending) {
    const int slot = rs.slots.slot_of(p.task.id);
    rs.items[rs.cursor[core_index(p.core)]++] =
        ReplanScratch::Item{rs.eff_deadline[slot], slot, &p};
  }

  for (std::size_t ci = 0; ci < ncores; ++ci) {
    const int core = cores[ci];
    const auto begin = rs.items.begin() + rs.offsets[ci];
    const auto end = rs.items.begin() + rs.offsets[ci + 1];
    std::sort(begin, end,
              [](const ReplanScratch::Item& a, const ReplanScratch::Item& b) {
                return a.eff < b.eff;
              });
    double cur = wake;
    for (auto it = begin; it != end; ++it) {
      const PendingTask* p = it->p;
      if (p->remaining <= 0.0) continue;
      double len = rs.dur[it->slot];
      if (len <= 0.0) len = p->remaining / s_up_capped;
      const double d = it->eff;
      if (cur + len > d) {
        // Compress to fit, bounded by s_up (beyond that the miss stands).
        const double min_len =
            std::isfinite(s_up) ? p->remaining / s_up : 1e-12;
        len = std::max(d - cur, min_len);
        SDEM_OBS_INC("online_sdem/tasks_compressed");
      }
      if (cfg.core.s_min > 0.0) {
        // DVFS floor: a plan slower than s_min runs at s_min and the core
        // sleeps the difference.
        len = std::min(len, p->remaining / cfg.core.s_min);
      }
      plan.push_back(
          Segment{p->task.id, core, cur, cur + len, p->remaining / len});
      cur += len;
    }
  }
  return plan;
}

}  // namespace sdem
