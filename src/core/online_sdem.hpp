// SDEM-ON: the paper's online heuristic for general tasks (§6).
//
// At every arrival, all unfinished tasks are re-released at `now` (remaining
// work, original deadlines) and the common-release optimal scheme of
// Section 4 (Section 7 when transition overheads are configured) computes
// each task's execution length p_j. The plan then procrastinates: memory and
// cores stay asleep until the first task hits its latest start d_j - p_j,
// at which point every pending task starts (step 6 of the paper's listing),
// maximizing the execution overlap and therefore the memory's common idle
// time. A new arrival before the wake point simply triggers a fresh replan.
//
// The scheme's unbounded-cores assumption meets reality in the per-core
// serializer: when two pending tasks share a core, they run back-to-back in
// EDF order, compressing (up to s_up) when the deadline demands it.
#pragma once

#include "sim/policy.hpp"

namespace sdem {

class SdemOnPolicy : public OnlinePolicy {
 public:
  /// `procrastinate == false` disables step 5 (sleep until the first latest
  /// start) while keeping the per-replan optimal execution lengths: the
  /// batch starts immediately. Exists for the procrastination ablation —
  /// the gap between the two is exactly the value of aligning executions.
  explicit SdemOnPolicy(bool procrastinate = true)
      : procrastinate_(procrastinate) {}

  std::string name() const override {
    return procrastinate_ ? "SDEM-ON" : "SDEM-ON/eager";
  }

  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;

  /// Completion-triggered replans recompute the optimal speeds for the
  /// remaining work but start immediately: the batch is already running, so
  /// re-procrastinating would split the memory busy interval.
  std::vector<Segment> replan_completion(
      double now, const std::vector<PendingTask>& pending,
      const SystemConfig& cfg) override;

 private:
  std::vector<Segment> plan(double now,
                            const std::vector<PendingTask>& pending,
                            const SystemConfig& cfg, bool procrastinate);

  bool procrastinate_ = true;
};

}  // namespace sdem
