// SDEM-ON: the paper's online heuristic for general tasks (§6).
//
// At every arrival, all unfinished tasks are re-released at `now` (remaining
// work, original deadlines) and the common-release optimal scheme of
// Section 4 (Section 7 when transition overheads are configured) computes
// each task's execution length p_j. The plan then procrastinates: memory and
// cores stay asleep until the first task hits its latest start d_j - p_j,
// at which point every pending task starts (step 6 of the paper's listing),
// maximizing the execution overlap and therefore the memory's common idle
// time. A new arrival before the wake point simply triggers a fresh replan.
//
// The scheme's unbounded-cores assumption meets reality in the per-core
// serializer: when two pending tasks share a core, they run back-to-back in
// EDF order, compressing (up to s_up) when the deadline demands it.
#pragma once

#include <vector>

#include "core/common_release_scratch.hpp"
#include "core/transition.hpp"
#include "sim/policy.hpp"
#include "support/id_slots.hpp"

namespace sdem {

class SdemOnPolicy : public OnlinePolicy {
 public:
  /// `procrastinate == false` disables step 5 (sleep until the first latest
  /// start) while keeping the per-replan optimal execution lengths: the
  /// batch starts immediately. Exists for the procrastination ablation —
  /// the gap between the two is exactly the value of aligning executions.
  explicit SdemOnPolicy(bool procrastinate = true)
      : procrastinate_(procrastinate) {}

  std::string name() const override {
    return procrastinate_ ? "SDEM-ON" : "SDEM-ON/eager";
  }

  void reset() override;

  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;

  /// Completion-triggered replans recompute the optimal speeds for the
  /// remaining work but start immediately: the batch is already running, so
  /// re-procrastinating would split the memory busy interval.
  std::vector<Segment> replan_completion(
      double now, const std::vector<PendingTask>& pending,
      const SystemConfig& cfg) override;

 private:
  /// Buffers reused across replans so the per-arrival hot path allocates
  /// nothing in steady state. Per-task values are keyed by dense id slot;
  /// slot-indexed arrays only grow (stale slots are never read because every
  /// read is preceded by a same-replan write for that pending id).
  struct ReplanScratch {
    struct Item {
      double eff = 0.0;  ///< effective deadline (sort key)
      int slot = 0;      ///< dense slot of the task id
      const PendingTask* p = nullptr;
    };

    TaskSet virt;                      ///< re-released pending set
    IdSlots slots;                     ///< task id -> dense slot
    std::vector<int> seen_epoch;       ///< per-slot replan stamp (dup check)
    std::vector<double> eff_deadline;  ///< per-slot effective deadline
    std::vector<double> dur;           ///< per-slot planned execution length
    std::vector<int> cores;            ///< sorted-unique cores this replan
    std::vector<int> offsets;          ///< per-core group offsets into items
    std::vector<int> cursor;           ///< counting-sort placement cursors
    std::vector<Item> items;           ///< pending grouped by core
    TransitionWorkspace tw;            ///< §7 solver workspace
    CommonReleaseScratch cw;           ///< §4 solver workspaces
    int epoch = 0;
  };

  std::vector<Segment> plan(double now,
                            const std::vector<PendingTask>& pending,
                            const SystemConfig& cfg, bool procrastinate);

  bool procrastinate_ = true;
  ReplanScratch rs_;
};

}  // namespace sdem
