#include "core/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/block.hpp"
#include "core/transition.hpp"
#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double tail_cost(double static_power, double gap, double break_even) {
  if (gap <= 0.0 || static_power <= 0.0) return 0.0;
  if (break_even <= 0.0) return 0.0;  // free transition: always sleep
  return std::min(static_power * gap, static_power * break_even);
}

}  // namespace

double reference_common_release(const TaskSet& tasks, const SystemConfig& cfg,
                                std::size_t grid) {
  if (tasks.empty()) return 0.0;
  const double release = tasks[0].release;
  double d_max = 0.0;
  for (const auto& t : tasks.tasks()) {
    d_max = std::max(d_max, t.deadline - release);
  }
  auto energy = [&](double m) {
    if (m <= 0.0) return tasks.total_work() > 0.0 ? kInf : 0.0;
    double e = cfg.memory.alpha_m * m;
    for (const auto& t : tasks.tasks()) {
      e += task_window_energy(t, cfg.core,
                              std::min(m, t.deadline - release));
      if (!std::isfinite(e)) return kInf;
    }
    return e;
  };
  // Search only the s_up-feasible domain [max_k w_k / s_up, d_max]; golden
  // refinement cannot bracket a minimum pinned against an infinite cliff.
  double m_min = 0.0;
  if (std::isfinite(cfg.core.max_speed())) {
    for (const auto& t : tasks.tasks()) {
      m_min = std::max(m_min, t.work / cfg.core.max_speed());
    }
  }
  const double m = grid_refine_min(energy, m_min, d_max, grid);
  return std::min(energy(m), energy(m_min));
}

double reference_common_release_transition(const TaskSet& tasks,
                                           const SystemConfig& cfg,
                                           std::size_t grid) {
  if (tasks.empty()) return 0.0;
  const double release = tasks[0].release;
  double d_max = 0.0;
  for (const auto& t : tasks.tasks()) {
    d_max = std::max(d_max, t.deadline - release);
  }
  // Same model as core/transition.hpp: system awake at [0, H], H = d_max;
  // the decision variable is the memory busy end M. Per-task costs use the
  // shared two-candidate lemma (stretch vs race-and-sleep); the independence
  // of this reference is in the dense outer search over M, which replaces
  // the analytic case/candidate scan.
  const double H = d_max;
  auto energy = [&](double m) {
    if (m <= 0.0) return tasks.total_work() > 0.0 ? kInf : 0.0;
    double e = cfg.memory.alpha_m * m +
               tail_cost(cfg.memory.alpha_m, H - m, cfg.memory.xi_m);
    for (const auto& t : tasks.tasks()) {
      double run = 0.0, speed = 0.0;
      e += transition_task_cost(t, cfg, H, std::min(m, t.deadline - release),
                                run, speed);
      if (!std::isfinite(e)) return kInf;
    }
    return e;
  };
  double m_min = 0.0;
  if (std::isfinite(cfg.core.max_speed())) {
    for (const auto& t : tasks.tasks()) {
      m_min = std::max(m_min, t.work / cfg.core.max_speed());
    }
  }
  const double m = grid_refine_min(energy, m_min, d_max, grid);
  return std::min(energy(m), energy(m_min));
}

double reference_block(const std::vector<Task>& tasks, const SystemConfig& cfg,
                       std::size_t grid) {
  if (tasks.empty()) return 0.0;
  double r_min = kInf, r_max = -kInf, d_min = kInf, d_max = -kInf;
  for (const auto& t : tasks) {
    r_min = std::min(r_min, t.release);
    r_max = std::max(r_max, t.release);
    d_min = std::min(d_min, t.deadline);
    d_max = std::max(d_max, t.deadline);
  }
  double s = 0.0, e = 0.0;
  return grid_refine_min2(
      [&](double a, double b) { return block_energy_at(tasks, cfg, a, b); },
      r_min, d_min, r_max, d_max, s, e, grid);
}

double reference_agreeable(const TaskSet& tasks, const SystemConfig& cfg,
                           std::size_t grid) {
  const TaskSet sorted = tasks.sorted_by_deadline();
  const int n = static_cast<int>(sorted.size());
  if (n == 0) return 0.0;
  const double pair_charge = cfg.memory.alpha_m * cfg.memory.xi_m;

  // Memoize block costs over contiguous ranges.
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, -1.0));
  auto block_cost = [&](int p, int q) {
    if (cost[p][q] >= 0.0) return cost[p][q];
    std::vector<Task> sub(sorted.tasks().begin() + p,
                          sorted.tasks().begin() + q + 1);
    cost[p][q] = reference_block(sub, cfg, grid);
    return cost[p][q];
  };

  // Enumerate all 2^(n-1) contiguous partitions via bitmask of cut points.
  double best = kInf;
  const unsigned long masks = 1UL << (n - 1);
  for (unsigned long mask = 0; mask < masks; ++mask) {
    double total = 0.0;
    int start = 0;
    for (int i = 0; i < n; ++i) {
      const bool cut = (i == n - 1) || (mask >> i) & 1UL;
      if (cut) {
        total += block_cost(start, i) + pair_charge;
        start = i + 1;
        if (total >= best) break;
      }
    }
    best = std::min(best, total);
  }
  return best;
}

}  // namespace sdem
