// Brute-force / numeric reference optimizers used to certify the analytic
// schemes in tests. These deliberately share as little code as possible with
// the closed-form solvers: dense grid scans + golden refinement instead of
// case analysis, and exhaustive partition enumeration instead of DP.
//
// Only intended for small n (the partition enumeration is O(2^n)).
#pragma once

#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Common-release reference (both alpha cases): the memory busy interval is
/// [release, release + M]; task k owns the window min(M, d_k - release) and
/// runs at its window-clamped optimal speed. Returns the minimum over M of
///
///   E(M) = alpha_m * M + sum_k f_k(min(M, d_k - release))
///
/// via a dense grid + golden refinement. Transition overheads are ignored
/// (Section 4 model).
double reference_common_release(const TaskSet& tasks, const SystemConfig& cfg,
                                std::size_t grid = 200000);

/// Same, but with break-even transition accounting (Section 7 model): the
/// memory tail gap and each core's tail gap cost min(static * gap,
/// static * break_even). Tasks are still all released together.
double reference_common_release_transition(const TaskSet& tasks,
                                           const SystemConfig& cfg,
                                           std::size_t grid = 200000);

/// Agreeable-deadline reference: enumerate every contiguous partition of the
/// deadline-sorted tasks into blocks; optimize each block by an independent
/// 2-D grid + coordinate refinement of the block objective; charge
/// alpha_m * xi_m per block. O(2^n) — keep n <= ~12.
double reference_agreeable(const TaskSet& tasks, const SystemConfig& cfg,
                           std::size_t grid = 160);

/// Single-block 2-D reference (exposed for block-solver tests).
double reference_block(const std::vector<Task>& tasks, const SystemConfig& cfg,
                       std::size_t grid = 160);

}  // namespace sdem
