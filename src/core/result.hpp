// Shared result type for the offline SDEM schemes.
#pragma once

#include "sched/schedule.hpp"

namespace sdem {

struct OfflineResult {
  Schedule schedule;
  double energy = 0.0;      ///< analytic system-wide energy of the schedule
  double sleep_time = 0.0;  ///< memory sleep time Delta chosen by the scheme
  int case_index = -1;      ///< winning Case i (1-based; -1 if n/a)
  bool feasible = false;    ///< false when no feasible schedule exists
};

}  // namespace sdem
