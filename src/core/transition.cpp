#include "core/transition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double tail_cost(double static_power, double gap, double break_even) {
  if (gap <= 0.0 || static_power <= 0.0) return 0.0;
  if (break_even <= 0.0) return 0.0;
  return std::min(static_power * gap, static_power * break_even);
}

}  // namespace

double transition_task_cost(const Task& t, const SystemConfig& cfg, double H,
                            double window, double& run, double& speed) {
  run = 0.0;
  speed = 0.0;
  if (t.work <= 0.0) return 0.0;
  if (window <= 0.0) return kInf;
  const double fill = t.work / window;
  if (fill > cfg.core.max_speed() * (1.0 + 1e-12)) return kInf;

  auto cost_at = [&](double r) {
    const double s = t.work / r;
    return cfg.core.exec_energy(t.work, s) +
           tail_cost(cfg.core.alpha, H - r, cfg.core.xi);
  };

  // Candidate 1: stretch to the window.
  double best_run = window;
  double best = cost_at(window);
  // Candidate 2: race at the (clamped) critical speed and sleep.
  const double s_m = cfg.core.critical_speed_raw();
  if (s_m > 0.0) {
    const double s_race = std::min(std::max(s_m, fill), cfg.core.max_speed());
    const double r = t.work / s_race;
    const double c = cost_at(r);
    if (c < best) {
      best = c;
      best_run = r;
    }
  } else if (cfg.core.alpha <= 0.0) {
    // No static power: the tail is free; stretching is optimal (candidate 1).
  }
  run = best_run;
  speed = t.work / best_run;
  return best;
}

OfflineResult solve_common_release_transition(const TaskSet& tasks,
                                              const SystemConfig& cfg) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_common_release() || !tasks.validate().empty())
    return res;
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12))
    return res;

  const double release = tasks[0].release;
  double H = 0.0;
  for (const auto& t : tasks.tasks()) H = std::max(H, t.deadline - release);
  if (H <= 0.0) return res;

  const double alpha = cfg.core.alpha;
  const double alpha_m = cfg.memory.alpha_m;
  const double beta = cfg.core.beta;
  const double lambda = cfg.core.lambda;
  const double s_m = cfg.core.critical_speed_raw();

  // Total energy as a function of the memory busy end T.
  auto energy = [&](double T) {
    if (T <= 0.0) return tasks.total_work() > 0.0 ? kInf : 0.0;
    double e = alpha_m * T + tail_cost(alpha_m, H - T, cfg.memory.xi_m);
    for (const auto& t : tasks.tasks()) {
      double run = 0.0, speed = 0.0;
      e += transition_task_cost(t, cfg, H, std::min(T, t.deadline - release),
                                run, speed);
      if (!std::isfinite(e)) return kInf;
    }
    return e;
  };

  // E(T) is piecewise convex between breakpoints where some term changes
  // branch:
  //   * T = d_k            (task k's window stops growing),
  //   * T = knee_k = w_k / min(s_m, s_up)
  //                        (window-fill speed crosses the race speed),
  //   * T = H - xi_m, H - xi (tail gaps cross their break-even times),
  //   * T = tau_k          (stretch-and-idle crosses race-and-sleep: on the
  //     idle branch the stretch cost is beta w^l T^(1-l) + alpha H, so the
  //     crossing with the constant race cost is closed-form).
  // Within a piece every per-task term keeps one smooth convex branch and
  // the memory term is linear, so golden section per piece is exact.
  // Feasible domain: every task needs window min(T, d_k) >= w_k / s_up, so
  // T >= T_min = max_k w_k / s_up (deadlines already satisfy it). Searching
  // below T_min would walk golden sections into the +inf region.
  double t_min = 0.0;
  if (std::isfinite(cfg.core.max_speed())) {
    for (const auto& t : tasks.tasks()) {
      t_min = std::max(t_min, t.work / cfg.core.max_speed());
    }
  }

  std::set<double> bps;
  auto add = [&](double T) {
    if (T > t_min && T < H) bps.insert(T);
  };
  add(H - cfg.core.xi);
  add(H - cfg.memory.xi_m);
  const double s_race = std::min(s_m > 0.0 ? s_m : cfg.core.max_speed(),
                                 cfg.core.max_speed());
  for (const auto& t : tasks.tasks()) {
    if (t.work <= 0.0) continue;
    add(t.deadline - release);
    if (s_m > 0.0) {
      add(t.work / s_race);  // knee
      // Idle-branch crossing tau_k (only meaningful when alpha > 0).
      if (alpha > 0.0 && std::isfinite(s_race)) {
        const double run = t.work / s_race;
        const double race_cost =
            cfg.core.exec_energy(t.work, s_race) +
            std::min(alpha * (H - run), alpha * cfg.core.xi);
        const double rhs = race_cost - alpha * H;
        if (rhs > 0.0) {
          add(std::pow(beta * std::pow(t.work, lambda) / rhs,
                       1.0 / (lambda - 1.0)));
        }
      }
    }
  }
  std::vector<double> edges(bps.begin(), bps.end());
  edges.insert(edges.begin(), t_min);
  edges.push_back(H);

  double best_T = H;
  double best = energy(H);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    const double lo = edges[i], hi = edges[i + 1];
    if (hi <= lo) continue;
    const double t = golden_min(energy, lo, hi, 1e-13);
    for (double cand : {t, lo, hi}) {
      const double e = energy(cand);
      if (e < best) {
        best = e;
        best_T = cand;
      }
    }
  }
  if (!std::isfinite(best)) return res;

  res.feasible = true;
  res.energy = best;
  res.sleep_time = H - best_T;
  int core = 0;
  for (const auto& t : tasks.tasks()) {
    double run = 0.0, speed = 0.0;
    transition_task_cost(t, cfg, H, std::min(best_T, t.deadline - release),
                         run, speed);
    if (t.work > 0.0) {
      res.schedule.add(Segment{t.id, core, release, release + run, speed});
    }
    ++core;
  }
  return res;
}

}  // namespace sdem
