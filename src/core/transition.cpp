#include "core/transition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/obs.hpp"
#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double tail_cost(double static_power, double gap, double break_even) {
  if (gap <= 0.0 || static_power <= 0.0) return 0.0;
  if (break_even <= 0.0) return 0.0;
  return std::min(static_power * gap, static_power * break_even);
}

/// Per-solve constants of the transition scheme: everything
/// transition_task_cost re-reads from the config on every probe, hoisted.
struct SolveConsts {
  double H = 0.0;
  double alpha = 0.0;
  double beta = 0.0;
  double lambda = 0.0;
  double xi = 0.0;
  double s_m = 0.0;       ///< critical_speed_raw(): one pow per solve
  double s_up = 0.0;      ///< max_speed()
  double fill_cap = 0.0;  ///< max_speed() * (1 + 1e-12)
};

/// CorePower::exec_energy with the config reads hoisted; identical
/// operation order (power(s) * (work / s)).
inline double exec_energy_c(const SolveConsts& sc, double work, double s) {
  if (work <= 0.0) return 0.0;
  if (s <= 0.0) return kInf;
  return (sc.alpha + sc.beta * std::pow(s, sc.lambda)) * (work / s);
}

/// transition_task_cost over precomputed per-task constants (one SoA lane).
/// While the window fill stays at or below the critical speed the race
/// candidate's speed clamp resolves to min(s_m, s_up) independently of the
/// window, so its cost is the per-solve constant race_cost; only windows
/// tighter than w/s_m ("overloaded") still pay a pow here. Bit-identical to
/// the Task-based function above.
inline double task_cost_ctx(const SolveConsts& sc, double work,
                            double race_run, double race_cost, double window,
                            double& run, double& speed) {
  run = 0.0;
  speed = 0.0;
  if (work <= 0.0) return 0.0;
  if (window <= 0.0) return kInf;
  const double fill = work / window;
  if (fill > sc.fill_cap) return kInf;

  // Candidate 1: stretch to the window (the execution speed is the fill).
  double best_run = window;
  double best = exec_energy_c(sc, work, fill) +
                tail_cost(sc.alpha, sc.H - window, sc.xi);
  // Candidate 2: race at the (clamped) critical speed and sleep.
  if (sc.s_m > 0.0) {
    double r, c;
    if (fill <= sc.s_m) {
      r = race_run;
      c = race_cost;
    } else {
      const double s_race = std::min(fill, sc.s_up);
      r = work / s_race;
      c = exec_energy_c(sc, work, work / r) +
          tail_cost(sc.alpha, sc.H - r, sc.xi);
    }
    if (c < best) {
      best = c;
      best_run = r;
    }
  }
  run = best_run;
  speed = work / best_run;
  return best;
}

}  // namespace

double transition_task_cost(const Task& t, const SystemConfig& cfg, double H,
                            double window, double& run, double& speed) {
  run = 0.0;
  speed = 0.0;
  if (t.work <= 0.0) return 0.0;
  if (window <= 0.0) return kInf;
  const double fill = t.work / window;
  if (fill > cfg.core.max_speed() * (1.0 + 1e-12)) return kInf;

  auto cost_at = [&](double r) {
    const double s = t.work / r;
    return cfg.core.exec_energy(t.work, s) +
           tail_cost(cfg.core.alpha, H - r, cfg.core.xi);
  };

  // Candidate 1: stretch to the window.
  double best_run = window;
  double best = cost_at(window);
  // Candidate 2: race at the (clamped) critical speed and sleep.
  const double s_m = cfg.core.critical_speed_raw();
  if (s_m > 0.0) {
    const double s_race = std::min(std::max(s_m, fill), cfg.core.max_speed());
    const double r = t.work / s_race;
    const double c = cost_at(r);
    if (c < best) {
      best = c;
      best_run = r;
    }
  } else if (cfg.core.alpha <= 0.0) {
    // No static power: the tail is free; stretching is optimal (candidate 1).
  }
  run = best_run;
  speed = t.work / best_run;
  return best;
}

OfflineResult solve_common_release_transition(const TaskSet& tasks,
                                              const SystemConfig& cfg,
                                              TransitionWorkspace& ws,
                                              bool validated) {
  SDEM_OBS_TIMER("transition/solve");
  OfflineResult res;
  if (tasks.empty() || !tasks.is_common_release()) return res;
  if (!validated && !tasks.validate().empty()) return res;
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12))
    return res;

  const double release = tasks[0].release;
  double H = 0.0;
  for (const auto& t : tasks.tasks()) H = std::max(H, t.deadline - release);
  if (H <= 0.0) return res;

  SolveConsts sc;
  sc.H = H;
  sc.alpha = cfg.core.alpha;
  sc.beta = cfg.core.beta;
  sc.lambda = cfg.core.lambda;
  sc.xi = cfg.core.xi;
  sc.s_m = cfg.core.critical_speed_raw();
  sc.s_up = cfg.core.max_speed();
  sc.fill_cap = cfg.core.max_speed() * (1.0 + 1e-12);
  const double alpha = sc.alpha;
  const double alpha_m = cfg.memory.alpha_m;
  const double xi_m = cfg.memory.xi_m;
  const double beta = sc.beta;
  const double lambda = sc.lambda;
  const double s_race = std::min(sc.s_m > 0.0 ? sc.s_m : sc.s_up, sc.s_up);

  // Per-task constants: the pow-bearing race candidate and the cost floor
  // are paid once here instead of once per golden-section probe. Stored as
  // SoA columns so the per-probe loops stream contiguously.
  const std::size_t n = tasks.size();
  ws.work.resize(n);
  ws.window_cap.resize(n);
  ws.race_run.resize(n);
  ws.race_cost.resize(n);
  ws.cost_floor.resize(n);
  double total_work = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = tasks[i];
    ws.work[i] = t.work;
    ws.window_cap[i] = t.deadline - release;
    ws.race_run[i] = 0.0;
    ws.race_cost[i] = 0.0;
    total_work += t.work;
    if (sc.s_m > 0.0 && t.work > 0.0) {
      const double r = t.work / s_race;
      ws.race_run[i] = r;
      ws.race_cost[i] = exec_energy_c(sc, t.work, t.work / r) +
                        tail_cost(alpha, H - r, sc.xi);
    }
    // Execution energy is convex in the speed with its minimum at the
    // unclamped critical speed, and every tail term is nonnegative, so this
    // bounds the task's cost from below for every window. Only consulted by
    // the piece-skip test; never enters an energy value.
    ws.cost_floor[i] = (t.work > 0.0 && sc.s_m > 0.0)
                           ? exec_energy_c(sc, t.work, sc.s_m)
                           : 0.0;
  }
  const bool has_work = total_work > 0.0;

  // Probe accounting, flushed to the registry once per solve. A "probe" is
  // one evaluation of the total-energy objective E(T); live/replayed task
  // evals split each probe's inner loop by whether the per-task cost was
  // recomputed or served from the capped-cost cache. Counted at call entry
  // so the tallies are a pure function of the probe sequence.
  SDEM_OBS_ONLY(std::uint64_t obs_probes = 0; std::uint64_t obs_live = 0;
                std::uint64_t obs_replay = 0; std::uint64_t obs_pieces = 0;
                std::uint64_t obs_pruned = 0; std::uint64_t obs_cap_dl = 0;
                std::uint64_t obs_cap_race = 0; std::size_t obs_capped = 0;)

  // Total energy as a function of the memory busy end T.
  auto energy = [&](double T) {
    SDEM_OBS_ONLY(++obs_probes; obs_live += n;)
    if (T <= 0.0) return has_work ? kInf : 0.0;
    double e = alpha_m * T + tail_cost(alpha_m, H - T, xi_m);
    for (std::size_t k = 0; k < n; ++k) {
      double run = 0.0, speed = 0.0;
      e += task_cost_ctx(sc, ws.work[k], ws.race_run[k], ws.race_cost[k],
                         std::min(T, ws.window_cap[k]), run, speed);
      if (!std::isfinite(e)) return kInf;
    }
    return e;
  };

  // E(T) is piecewise convex between breakpoints where some term changes
  // branch:
  //   * T = d_k            (task k's window stops growing),
  //   * T = knee_k = w_k / min(s_m, s_up)
  //                        (window-fill speed crosses the race speed),
  //   * T = H - xi_m, H - xi (tail gaps cross their break-even times),
  //   * T = tau_k          (stretch-and-idle crosses race-and-sleep: on the
  //     idle branch the stretch cost is beta w^l T^(1-l) + alpha H, so the
  //     crossing with the constant race cost is closed-form).
  // Within a piece every per-task term keeps one smooth convex branch and
  // the memory term is linear, so golden section per piece is exact.
  // Feasible domain: every task needs window min(T, d_k) >= w_k / s_up, so
  // T >= T_min = max_k w_k / s_up (deadlines already satisfy it). Searching
  // below T_min would walk golden sections into the +inf region.
  double t_min = 0.0;
  if (std::isfinite(sc.s_up)) {
    for (std::size_t k = 0; k < n; ++k) {
      t_min = std::max(t_min, ws.work[k] / sc.s_up);
    }
  }

  auto& edges = ws.edges;
  edges.clear();
  auto add = [&](double T) {
    if (T > t_min && T < H) edges.push_back(T);
  };
  add(H - sc.xi);
  add(H - xi_m);
  for (std::size_t k = 0; k < n; ++k) {
    const double w = ws.work[k];
    if (w <= 0.0) continue;
    add(ws.window_cap[k]);
    if (sc.s_m > 0.0) {
      add(w / s_race);  // knee
      // Idle-branch crossing tau_k (only meaningful when alpha > 0).
      if (alpha > 0.0 && std::isfinite(s_race)) {
        const double run = w / s_race;
        const double race_cost = exec_energy_c(sc, w, s_race) +
                                 std::min(alpha * (H - run), alpha * sc.xi);
        const double rhs = race_cost - alpha * H;
        if (rhs > 0.0) {
          add(std::pow(beta * std::pow(w, lambda) / rhs,
                       1.0 / (lambda - 1.0)));
        }
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges.insert(edges.begin(), t_min);
  edges.push_back(H);

  // The skip test below needs E(T) >= lb on each piece, which holds when the
  // memory term grows with T and the exec floor really is a floor
  // (lambda > 1).
  const bool can_prune = alpha_m >= 0.0 && lambda > 1.0;
  // With free core tails (no static power or zero break-even) the race
  // candidate's total is its exec energy at the critical speed — the exact
  // minimum of the convex exec curve — so once the window fill sits below
  // s_m by a certified relative margin, the stretch candidate loses the
  // `c < best` comparison with certainty: the true-value gap is
  // ~(margin)^2 relative (convexity), dwarfing the few-ulp rounding error
  // of either side. The task's probe value is then the cached race_cost.
  const bool tail_free = sc.alpha <= 0.0 || sc.xi <= 0.0;
  constexpr double kCertMargin = 1e-5;  // gap ~1e-10 rel vs ~1e-15 rounding
  const double cert_speed = sc.s_m * (1.0 - kCertMargin);

  // Per-piece, per-task probe mode. 0 = evaluate live; nonzero = the cost is
  // T-independent on this and every later piece and capped_cost replays it:
  //   1 = window capped by the deadline (cap <= lo),
  //   2 = certified race winner (fill <= cert_speed across the piece).
  // Both conditions are monotone in lo, so modes only ever ratchet up.
  ws.capped.assign(n, 0);
  ws.capped_cost.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    if (ws.work[k] <= 0.0) {
      ws.capped[k] = 1;
      SDEM_OBS_ONLY(++obs_capped;)
    }
  }

  // Batched-probe tables, rebuilt once per piece. The ratcheted capped
  // state is a left-to-right artifact, but each cached value is
  // T-independent and tied only to the piece's own lower edge: a task is
  // deadline-capped on a piece iff window_cap <= lo (cost = the mode-1
  // capped_cost), race-certified iff its fill at lo clears the margin
  // (cost = race_cost; when both hold the two caches agree bit-for-bit,
  // since below the margin task_cost_ctx returns the race candidate). So a
  // piece's probe table can be rebuilt for ANY piece after the ratchet has
  // run, which is what lets the scan below visit pieces in bound order
  // instead of left to right.
  ws.live.clear();
  ws.live.reserve(n);
  ws.probe_cost.assign(n, 0.0);
  const auto rebuild_piece_tables = [&](double lo) {
    ws.live.clear();
    for (std::size_t k = 0; k < n; ++k) {
      if (ws.work[k] <= 0.0) {
        ws.probe_cost[k] = 0.0;
      } else if (ws.window_cap[k] <= lo) {
        ws.probe_cost[k] = ws.capped_cost[k];
      } else if (tail_free && sc.s_m > 0.0 && lo > 0.0 &&
                 ws.work[k] / lo <= cert_speed) {
        ws.probe_cost[k] = ws.race_cost[k];
      } else {
        ws.live.push_back(static_cast<std::uint32_t>(k));
      }
    }
  };

  // Same value sequence as `energy`: the cached costs replay bit-for-bit
  // what task_cost_ctx would return. A probe recomputes only the live
  // lanes' entries of probe_cost, then accumulates every task in index
  // order with the finiteness check after each add — exactly the pre-SoA
  // interleaved loop's values and order.
  auto energy_piece = [&](double T) {
    SDEM_OBS_ONLY(++obs_probes; obs_replay += obs_capped;
                  obs_live += n - obs_capped;)
    if (T <= 0.0) return has_work ? kInf : 0.0;
    double e = alpha_m * T + tail_cost(alpha_m, H - T, xi_m);
    for (const std::uint32_t k : ws.live) {
      double run = 0.0, speed = 0.0;
      ws.probe_cost[k] =
          task_cost_ctx(sc, ws.work[k], ws.race_run[k], ws.race_cost[k],
                        std::min(T, ws.window_cap[k]), run, speed);
    }
    for (std::size_t k = 0; k < n; ++k) {
      e += ws.probe_cost[k];
      if (!std::isfinite(e)) return kInf;
    }
    return e;
  };

  double best_T = H;
  double best = energy(H);
  // Pass 1, left to right: ratchet the capped caches exactly as the line
  // searches would have seen them and record each piece's lower bound —
  // the memory terms at their piece minima (alpha_m*T at lo; the tail is
  // nonincreasing in T, so at hi), the exact T-independent cost for cached
  // tasks, the convexity floor for live ones.
  ws.piece_lb.assign(edges.size(), 0.0);  // indexed by lower-edge position
  ws.piece_order.clear();
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    const double lo = edges[i], hi = edges[i + 1];
    if (hi <= lo) continue;
    for (std::size_t k = 0; k < n; ++k) {
      if (ws.capped[k] != 1 && ws.window_cap[k] <= lo) {
        double run = 0.0, speed = 0.0;
        ws.capped_cost[k] =
            task_cost_ctx(sc, ws.work[k], ws.race_run[k], ws.race_cost[k],
                          ws.window_cap[k], run, speed);
        SDEM_OBS_ONLY(if (ws.capped[k] == 0) ++obs_capped; ++obs_cap_dl;)
        ws.capped[k] = 1;
      } else if (ws.capped[k] == 0 && tail_free && sc.s_m > 0.0 && lo > 0.0 &&
                 ws.work[k] / lo <= cert_speed) {
        ws.capped_cost[k] = ws.race_cost[k];
        ws.capped[k] = 2;
        SDEM_OBS_ONLY(++obs_capped; ++obs_cap_race;)
      }
    }
    SDEM_OBS_ONLY(++obs_pieces;)
    double lb = -kInf;
    if (can_prune) {
      lb = alpha_m * lo;
      lb += tail_cost(alpha_m, H - hi, xi_m);
      for (std::size_t k = 0; k < n; ++k) {
        lb += ws.capped[k] ? ws.capped_cost[k] : ws.cost_floor[k];
      }
    }
    ws.piece_order.push_back(static_cast<std::uint32_t>(i));
    ws.piece_lb[i] = lb;
  }
  // Pass 2: best-first branch and bound over the pieces. Bounds sorted
  // ascending, and the first piece whose bound — minus a 1e-12 relative
  // shave for the few-ulp slack the floors and the differently-shaped base
  // expression may carry — fails to strictly beat the best value found so
  // far ends the scan: every later piece is bounded even higher. The
  // evaluation ORDER must not leak into the result, though: distinct T can
  // tie in energy bit-for-bit (flat pieces under degenerate powers), and
  // the left-to-right scan resolves such ties by first arrival. So this
  // pass only records each searched piece's three candidates, and the
  // incumbent fold below replays them in left-to-right order with the
  // original strict `<`. Skipped pieces cannot affect that fold: their
  // probes sit above lb minus a few ulp, and the 1e-12 shave is orders of
  // magnitude wider, so every skipped candidate is strictly above the
  // final best — bit-identical results, piece count independent. Exotic
  // parameter sets (can_prune false: the floors don't hold) keep every
  // bound at -inf, which keeps the left-to-right order and searches every
  // piece.
  if (can_prune) {
    std::stable_sort(ws.piece_order.begin(), ws.piece_order.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       return ws.piece_lb[x] < ws.piece_lb[y];
                     });
  }
  ws.searched.clear();
  double best_seen = best;  // value-only incumbent for the stop test
  for (std::size_t j = 0; j < ws.piece_order.size(); ++j) {
    const std::uint32_t i = ws.piece_order[j];
    const double lb = ws.piece_lb[i];
    if (can_prune && lb - 1e-12 * std::abs(lb) >= best_seen) {
      SDEM_OBS_ONLY(obs_pruned += ws.piece_order.size() - j;)
      break;
    }
    const double lo = edges[i], hi = edges[i + 1];
    rebuild_piece_tables(lo);
    const double t = golden_min_t(energy_piece, lo, hi, 1e-13);
    TransitionWorkspace::SearchedPiece pc;
    pc.idx = i;
    pc.t[0] = t;
    pc.t[1] = lo;
    pc.t[2] = hi;
    for (int m = 0; m < 3; ++m) {
      pc.e[m] = energy_piece(pc.t[m]);
      best_seen = std::min(best_seen, pc.e[m]);
    }
    ws.searched.push_back(pc);
  }
  std::sort(ws.searched.begin(), ws.searched.end(),
            [](const TransitionWorkspace::SearchedPiece& x,
               const TransitionWorkspace::SearchedPiece& y) {
              return x.idx < y.idx;
            });
  for (const TransitionWorkspace::SearchedPiece& pc : ws.searched) {
    for (int m = 0; m < 3; ++m) {
      if (pc.e[m] < best) {
        best = pc.e[m];
        best_T = pc.t[m];
      }
    }
  }
  SDEM_OBS_INC("transition/solves");
  SDEM_OBS_COUNT("transition/tasks", n);
  SDEM_OBS_COUNT("transition/probes", obs_probes);
  SDEM_OBS_COUNT("transition/task_evals_live", obs_live);
  SDEM_OBS_COUNT("transition/task_evals_cached", obs_replay);
  SDEM_OBS_COUNT("transition/pieces", obs_pieces);
  SDEM_OBS_COUNT("transition/pieces_pruned", obs_pruned);
  SDEM_OBS_COUNT("transition/tasks_capped_deadline", obs_cap_dl);
  SDEM_OBS_COUNT("transition/tasks_capped_race", obs_cap_race);
  if (!std::isfinite(best)) return res;

  res.feasible = true;
  res.energy = best;
  res.sleep_time = H - best_T;
  SDEM_OBS_DIST("transition/sleep_time_s", res.sleep_time);
  int core = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = tasks[i];
    double run = 0.0, speed = 0.0;
    task_cost_ctx(sc, ws.work[i], ws.race_run[i], ws.race_cost[i],
                  std::min(best_T, ws.window_cap[i]), run, speed);
    if (t.work > 0.0) {
      res.schedule.add(Segment{t.id, core, release, release + run, speed});
    }
    ++core;
  }
  return res;
}

OfflineResult solve_common_release_transition(const TaskSet& tasks,
                                              const SystemConfig& cfg) {
  TransitionWorkspace ws;
  return solve_common_release_transition(tasks, cfg, ws, /*validated=*/false);
}

}  // namespace sdem
