// Mode-transition overhead extension (paper §7).
//
// Model: the system is awake at both ends of the horizon [0, H] with
// H = d_max - release (the maximal interval I of the task set, as in the
// paper's constrained-critical-speed definition). The memory is busy on
// [0, T]; the trailing gap H - T costs min(alpha_m (H-T), alpha_m xi_m)
// (idle-awake vs one sleep cycle). Each core runs its task over [0, run]
// and its trailing gap costs min(alpha (H-run), alpha xi).
//
// Per task, given the window W = min(T, d_k - release), the core either
//   * stretches: run = W (cheapest when its trailing gap would be shorter
//     than the break-even time anyway), or
//   * races: run = w / s_c with the constrained critical speed
//     s_c = min{max{s_m, w/W}, s_up} and sleeps through the tail
// — the two candidates of the paper's constrained-critical-speed analysis;
// no other run length can be optimal (the idle branch of the tail makes the
// energy decreasing in run, the sleep branch is convex with minimum at s_m).
//
// The scheme scans T over the piecewise-smooth total energy
//   E(T) = alpha_m T + tail_m(H - T) + sum_k task_cost_k(T)
// using the paper's stationary candidates (Eqs. 4 and 8 and the
// cores-sleep/memory-idle variant), all piece breakpoints (c_k, d_k, H-xi,
// H-xi_m), and a safety grid; Table 3's case analysis is exactly the
// restriction of this candidate set to the relevant orderings of Delta, xi
// and xi_m. With xi == xi_m == 0 the scheme reduces to Section 4.
#pragma once

#include <vector>

#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Minimal core energy (exec + trailing-gap cost against horizon H) for a
/// task whose window is `window`. Outputs the chosen run length and speed.
double transition_task_cost(const Task& t, const SystemConfig& cfg, double H,
                            double window, double& run, double& speed);

/// Reusable scratch for solve_common_release_transition. Holds the per-task
/// probe constants (the race candidate is constant in T while the window
/// fill stays below the critical speed, so its `pow` terms are paid once per
/// solve instead of once per golden-section probe) and the breakpoint/edge
/// storage, so a caller that solves once per replan allocates nothing.
struct TransitionWorkspace {
  struct TaskCtx {
    double work = 0.0;
    double window_cap = 0.0;  ///< d_k - release; the window stops growing here
    double race_run = 0.0;    ///< w / min(s_m, s_up): run length when racing
    double race_cost = 0.0;   ///< total race cost while fill <= s_m
    double cost_floor = 0.0;  ///< lower bound of the task cost over any window
  };
  std::vector<TaskCtx> tasks;
  std::vector<double> edges;  ///< t_min, sorted unique breakpoints, H
  // Per-piece constant-cost cache: once the piece lower edge has passed a
  // task's deadline cap, its window (and hence its cost) no longer depends
  // on T, so the pow-bearing evaluation is paid once per solve rather than
  // once per probe. `capped` is monotone across the left-to-right piece scan.
  std::vector<char> capped;
  std::vector<double> capped_cost;
};

/// Optimal common-release schedule under transition overheads.
OfflineResult solve_common_release_transition(const TaskSet& tasks,
                                              const SystemConfig& cfg);

/// Scratch-reusing overload, bit-identical to the one above.
/// `validated == true` additionally skips the TaskSet::validate() pass for
/// callers whose task sets are valid by construction (the online policy
/// re-releases pending work with positive remaining cycles and unique ids);
/// the common-release and speed-cap feasibility checks still run.
OfflineResult solve_common_release_transition(const TaskSet& tasks,
                                              const SystemConfig& cfg,
                                              TransitionWorkspace& ws,
                                              bool validated = false);

}  // namespace sdem
