// Mode-transition overhead extension (paper §7).
//
// Model: the system is awake at both ends of the horizon [0, H] with
// H = d_max - release (the maximal interval I of the task set, as in the
// paper's constrained-critical-speed definition). The memory is busy on
// [0, T]; the trailing gap H - T costs min(alpha_m (H-T), alpha_m xi_m)
// (idle-awake vs one sleep cycle). Each core runs its task over [0, run]
// and its trailing gap costs min(alpha (H-run), alpha xi).
//
// Per task, given the window W = min(T, d_k - release), the core either
//   * stretches: run = W (cheapest when its trailing gap would be shorter
//     than the break-even time anyway), or
//   * races: run = w / s_c with the constrained critical speed
//     s_c = min{max{s_m, w/W}, s_up} and sleeps through the tail
// — the two candidates of the paper's constrained-critical-speed analysis;
// no other run length can be optimal (the idle branch of the tail makes the
// energy decreasing in run, the sleep branch is convex with minimum at s_m).
//
// The scheme scans T over the piecewise-smooth total energy
//   E(T) = alpha_m T + tail_m(H - T) + sum_k task_cost_k(T)
// using the paper's stationary candidates (Eqs. 4 and 8 and the
// cores-sleep/memory-idle variant), all piece breakpoints (c_k, d_k, H-xi,
// H-xi_m), and a safety grid; Table 3's case analysis is exactly the
// restriction of this candidate set to the relevant orderings of Delta, xi
// and xi_m. With xi == xi_m == 0 the scheme reduces to Section 4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/result.hpp"
#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// Minimal core energy (exec + trailing-gap cost against horizon H) for a
/// task whose window is `window`. Outputs the chosen run length and speed.
double transition_task_cost(const Task& t, const SystemConfig& cfg, double H,
                            double window, double& run, double& speed);

/// Reusable scratch for solve_common_release_transition. Holds the per-task
/// probe constants (the race candidate is constant in T while the window
/// fill stays below the critical speed, so its `pow` terms are paid once per
/// solve instead of once per golden-section probe) and the breakpoint/edge
/// storage, so a caller that solves once per replan allocates nothing.
///
/// Per-task state is structure-of-arrays: the former TaskCtx struct is
/// split into parallel columns so the per-probe loop streams exactly the
/// columns it reads, and the per-probe cost table (`probe_cost`) separates
/// the recompute pass over the live lanes from the fixed-order accumulation
/// over all tasks — the accumulation order (task index order, finiteness
/// check after each add) is what pins the probe values bit-identical to the
/// pre-SoA loop.
struct TransitionWorkspace {
  // Per-task probe constants, parallel columns indexed by task.
  std::vector<double> work;
  std::vector<double> window_cap;  ///< d_k - release; window stops growing here
  std::vector<double> race_run;    ///< w / min(s_m, s_up): run length racing
  std::vector<double> race_cost;   ///< total race cost while fill <= s_m
  std::vector<double> cost_floor;  ///< lower bound of the cost over any window
  std::vector<double> edges;  ///< t_min, sorted unique breakpoints, H
  // Per-piece constant-cost cache: once the piece lower edge has passed a
  // task's deadline cap, its window (and hence its cost) no longer depends
  // on T, so the pow-bearing evaluation is paid once per solve rather than
  // once per probe. `capped` is monotone across the left-to-right piece scan.
  std::vector<char> capped;
  std::vector<double> capped_cost;
  // Batched-probe scratch, rebuilt once per piece: `live` lists the indices
  // still evaluated per probe (capped == 0), `probe_cost` holds every
  // task's cost for the current probe (capped entries prefilled from
  // capped_cost once per piece, live entries rewritten per probe).
  std::vector<std::uint32_t> live;
  std::vector<double> probe_cost;
  // Best-first piece scan (see transition.cpp): per-piece lower bounds,
  // the bound-sorted order the line searches run in, and the searched
  // pieces' candidate probes, replayed in left-to-right order by the
  // incumbent fold.
  struct SearchedPiece {
    std::uint32_t idx;  ///< lower-edge position: canonical piece order
    double t[3], e[3];  ///< the {interior, lo, hi} probes, in fold order
  };
  std::vector<double> piece_lb;
  std::vector<std::uint32_t> piece_order;
  std::vector<SearchedPiece> searched;

  std::size_t size() const { return work.size(); }
};

/// Optimal common-release schedule under transition overheads.
OfflineResult solve_common_release_transition(const TaskSet& tasks,
                                              const SystemConfig& cfg);

/// Scratch-reusing overload, bit-identical to the one above.
/// `validated == true` additionally skips the TaskSet::validate() pass for
/// callers whose task sets are valid by construction (the online policy
/// re-releases pending work with positive remaining cycles and unique ids);
/// the common-release and speed-cap feasibility checks still run.
OfflineResult solve_common_release_transition(const TaskSet& tasks,
                                              const SystemConfig& cfg,
                                              TransitionWorkspace& ws,
                                              bool validated = false);

}  // namespace sdem
