#include "mem/contention.hpp"

#include <algorithm>
#include <vector>

namespace sdem {

ContentionReport analyze_contention(const Schedule& sched,
                                    const ContentionParams& params) {
  ContentionReport out;
  if (sched.empty()) return out;

  // Slice boundaries: every segment start/end.
  std::vector<double> cuts;
  cuts.reserve(sched.size() * 2);
  for (const auto& s : sched.segments()) {
    cuts.push_back(s.start);
    cuts.push_back(s.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  double util_time = 0.0;   // integral of u over busy time
  double demand = 0.0;      // total requests issued
  double wait_demand = 0.0; // integral of wait * request rate

  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double lo = cuts[i], hi = cuts[i + 1];
    const double len = hi - lo;
    if (len <= 0.0) continue;
    double mhz = 0.0;
    bool busy = false;
    for (const auto& s : sched.segments()) {
      if (s.start <= lo && s.end >= hi) {
        mhz += s.speed;
        busy = true;
      }
    }
    if (!busy) continue;
    out.busy_time += len;
    const double rate = mhz * 1e6 / 1e6 * params.accesses_per_megacycle;
    // rate: accesses per second = (megacycles per second) * apm.
    const double u = rate * params.service_time /
                     static_cast<double>(params.banks);
    out.peak_utilization = std::max(out.peak_utilization, u);
    util_time += u * len;
    const double slice_demand = rate * len;
    demand += slice_demand;
    if (u >= 1.0) {
      out.saturated_fraction += len;
    } else {
      const double wait = params.service_time * u / (2.0 * (1.0 - u));
      wait_demand += wait * slice_demand;
    }
  }

  if (out.busy_time > 0.0) {
    out.mean_utilization = util_time / out.busy_time;
    out.saturated_fraction /= out.busy_time;
  }
  if (demand > 0.0) out.mean_wait = wait_demand / demand;
  return out;
}

WakeStallReport analyze_wake_stalls(const Schedule& sched,
                                    const SleepLadder& ladder,
                                    double horizon_lo, double horizon_hi) {
  WakeStallReport out;
  if (ladder.empty()) return out;
  const auto busy = sched.memory_busy();

  double busy_time = 0.0;
  for (const auto& b : busy) busy_time += b.length();

  std::vector<double> gaps;
  if (busy.empty()) {
    if (horizon_hi > horizon_lo) gaps.push_back(horizon_hi - horizon_lo);
  } else {
    if (horizon_hi > horizon_lo && busy.front().lo > horizon_lo) {
      gaps.push_back(busy.front().lo - horizon_lo);
    }
    for (std::size_t i = 1; i < busy.size(); ++i) {
      gaps.push_back(busy[i].lo - busy[i - 1].hi);
    }
    if (horizon_hi > horizon_lo && horizon_hi > busy.back().hi) {
      gaps.push_back(horizon_hi - busy.back().hi);
    }
  }

  for (double g : gaps) {
    if (g <= 0.0) continue;
    const int k = ladder.oracle_state(g);
    if (k < 0) continue;
    const double lat = ladder.state(k).latency;
    out.sleeps += 1.0;
    out.stall_time += lat;
    if (lat > out.worst_stall) out.worst_stall = lat;
  }
  if (busy_time > 0.0) out.stall_fraction = out.stall_time / busy_time;
  return out;
}

}  // namespace sdem
