#include "mem/contention.hpp"

#include <algorithm>
#include <vector>

namespace sdem {

ContentionReport analyze_contention(const Schedule& sched,
                                    const ContentionParams& params) {
  ContentionReport out;
  if (sched.empty()) return out;

  // Slice boundaries: every segment start/end.
  std::vector<double> cuts;
  cuts.reserve(sched.size() * 2);
  for (const auto& s : sched.segments()) {
    cuts.push_back(s.start);
    cuts.push_back(s.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  double util_time = 0.0;   // integral of u over busy time
  double demand = 0.0;      // total requests issued
  double wait_demand = 0.0; // integral of wait * request rate

  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double lo = cuts[i], hi = cuts[i + 1];
    const double len = hi - lo;
    if (len <= 0.0) continue;
    double mhz = 0.0;
    bool busy = false;
    for (const auto& s : sched.segments()) {
      if (s.start <= lo && s.end >= hi) {
        mhz += s.speed;
        busy = true;
      }
    }
    if (!busy) continue;
    out.busy_time += len;
    const double rate = mhz * 1e6 / 1e6 * params.accesses_per_megacycle;
    // rate: accesses per second = (megacycles per second) * apm.
    const double u = rate * params.service_time /
                     static_cast<double>(params.banks);
    out.peak_utilization = std::max(out.peak_utilization, u);
    util_time += u * len;
    const double slice_demand = rate * len;
    demand += slice_demand;
    if (u >= 1.0) {
      out.saturated_fraction += len;
    } else {
      const double wait = params.service_time * u / (2.0 * (1.0 - u));
      wait_demand += wait * slice_demand;
    }
  }

  if (out.busy_time > 0.0) {
    out.mean_utilization = util_time / out.busy_time;
    out.saturated_fraction /= out.busy_time;
  }
  if (demand > 0.0) out.mean_wait = wait_demand / demand;
  return out;
}

}  // namespace sdem
