// Memory-controller contention probe (paper §3's "we assume that the
// access delay can be ignored", justified there by disjoint per-core areas
// and bank-level parallelism — this module measures what that assumption
// costs under each scheduler).
//
// Fluid model: a task running at speed s (MHz) issues
// s * accesses_per_megacycle requests per second to the shared controller;
// the controller has `banks` banks, each serving one request per
// `service_time` seconds. Over any interval where the set of running tasks
// is constant the offered load is constant, so the schedule decomposes into
// slices with utilization
//
//   u = (sum of running speeds) * apm * t_s / banks
//
// and the M/D/1 mean queueing wait  w = t_s * u / (2 (1 - u))  per slice.
// The probe reports the peak utilization, the demand-weighted mean wait,
// and the fraction of busy time spent saturated (u >= 1, where the fluid
// model's delay diverges and the paper's assumption actually breaks).
//
// The interesting finding (bench_contention): SDEM-ON's alignment
// *concentrates* accesses — it buys memory sleep by raising the peak
// bandwidth demand, the exact trade the paper waves at with "tasks have the
// potential to be scheduled concentratively".
#pragma once

#include "model/sleep_ladder.hpp"
#include "sched/schedule.hpp"

namespace sdem {

struct ContentionParams {
  double accesses_per_megacycle = 2000.0;  ///< ~ one access per 500 cycles
  double service_time = 50e-9;             ///< controller service time, s
  int banks = 8;                           ///< parallel banks
};

struct ContentionReport {
  double peak_utilization = 0.0;    ///< max over slices of u
  double mean_utilization = 0.0;    ///< busy-time-weighted
  double mean_wait = 0.0;           ///< demand-weighted M/D/1 wait, seconds
  double saturated_fraction = 0.0;  ///< busy time with u >= 1
  double busy_time = 0.0;           ///< total time with >= 1 task running
};

/// Analyze a schedule's offered memory load.
ContentionReport analyze_contention(const Schedule& sched,
                                    const ContentionParams& params);

// The energy accounting (sched/energy.hpp) charges a sleep state's
// enter+exit latency as energy but assumes the wakeup is prescient — the
// state is already exited when the next access arrives. A real controller
// wakes on demand: the first access after a gap stalls for the exit
// latency. This probe measures what that assumption hides for a given
// ladder under clairvoyant (oracle) gap decisions.
struct WakeStallReport {
  double sleeps = 0.0;          ///< gaps slept through
  double stall_time = 0.0;      ///< summed enter+exit latencies, seconds
  double worst_stall = 0.0;     ///< largest single latency taken
  double stall_fraction = 0.0;  ///< stall_time / memory busy time
};

/// Wake-stall exposure of `sched`'s memory gap profile under `ladder`
/// (horizon semantics as in sched/energy.hpp; a trailing gap wakes into
/// the horizon edge and still counts).
WakeStallReport analyze_wake_stalls(const Schedule& sched,
                                    const SleepLadder& ladder,
                                    double horizon_lo, double horizon_hi);

}  // namespace sdem
