#include "mem/dram.hpp"

#include <algorithm>

namespace sdem {

DramPowerParams DramPowerParams::paper_50nm() {
  DramPowerParams p;
  p.p_active = 4.25;
  p.p_powerdown = 1.40;
  p.p_selfrefresh = 0.25;
  p.t_powerdown = 60e-9;
  p.t_selfrefresh = 300e-6;
  p.e_powerdown = 0.002;
  // Chosen so the derived break-even time lands in the paper's
  // 15..70 ms sweep: xi_m = e / (p_active - p_selfrefresh) = 40 ms.
  p.e_selfrefresh = 0.040 * (p.p_active - p.p_selfrefresh);
  return p;
}

std::string to_string(DramState s) {
  switch (s) {
    case DramState::kActive: return "active";
    case DramState::kPowerDown: return "power-down";
    case DramState::kSelfRefresh: return "self-refresh";
  }
  return "?";
}

namespace {

bool fits(DramState s, double gap, const DramPowerParams& p) {
  switch (s) {
    case DramState::kActive: return true;
    case DramState::kPowerDown: return gap >= p.t_powerdown;
    case DramState::kSelfRefresh: return gap >= p.t_selfrefresh;
  }
  return false;
}

double gap_energy(DramState s, double gap, const DramPowerParams& p) {
  switch (s) {
    case DramState::kActive: return p.p_active * gap;
    case DramState::kPowerDown: return p.p_powerdown * gap + p.e_powerdown;
    case DramState::kSelfRefresh:
      return p.p_selfrefresh * gap + p.e_selfrefresh;
  }
  return 0.0;
}

}  // namespace

GapDecision ImmediatePowerDownPolicy::decide(double gap,
                                             const DramPowerParams& p) {
  GapDecision d;
  if (fits(DramState::kPowerDown, gap, p)) d.state = DramState::kPowerDown;
  return d;
}

GapDecision OracleDramPolicy::decide(double gap, const DramPowerParams& p) {
  GapDecision d;
  double best = gap_energy(DramState::kActive, gap, p);
  for (DramState s : {DramState::kPowerDown, DramState::kSelfRefresh}) {
    if (!fits(s, gap, p)) continue;
    const double e = gap_energy(s, gap, p);
    if (e < best) {
      best = e;
      d.state = s;
    }
  }
  return d;
}

DramEnergyResult replay_dram(const Schedule& sched, const DramPowerParams& p,
                             DramPolicy& policy, double horizon_lo,
                             double horizon_hi) {
  DramEnergyResult out;
  const auto busy = sched.memory_busy();

  // Busy residency: always active.
  for (const auto& b : busy) {
    const double lo = std::max(b.lo, horizon_lo);
    const double hi = std::min(b.hi, horizon_hi);
    if (hi > lo) out.active += p.p_active * (hi - lo);
  }

  // Gaps (leading, interior, trailing), per sched/energy.hpp's horizon
  // semantics.
  std::vector<double> gaps;
  if (busy.empty()) {
    if (horizon_hi > horizon_lo) gaps.push_back(horizon_hi - horizon_lo);
  } else {
    if (busy.front().lo > horizon_lo) gaps.push_back(busy.front().lo - horizon_lo);
    for (std::size_t i = 1; i < busy.size(); ++i) {
      gaps.push_back(busy[i].lo - busy[i - 1].hi);
    }
    if (horizon_hi > busy.back().hi) gaps.push_back(horizon_hi - busy.back().hi);
  }

  for (double g : gaps) {
    if (g <= 0.0) continue;
    GapDecision d = policy.decide(g, p);
    if (!fits(d.state, g, p)) d.state = DramState::kActive;  // clamp illegal
    switch (d.state) {
      case DramState::kActive:
        out.active += p.p_active * g;
        break;
      case DramState::kPowerDown:
        out.powerdown += p.p_powerdown * g;
        out.transition += p.e_powerdown;
        ++out.powerdown_cycles;
        break;
      case DramState::kSelfRefresh:
        out.selfrefresh += p.p_selfrefresh * g;
        out.transition += p.e_selfrefresh;
        ++out.selfrefresh_cycles;
        break;
    }
  }
  return out;
}

SleepLadder to_sleep_ladder(const DramPowerParams& p) {
  SleepLadder ladder;
  ladder.add_state("powerdown", p.p_powerdown, p.e_powerdown, p.t_powerdown,
                   p.p_active);
  ladder.add_state("selfrefresh", p.p_selfrefresh, p.e_selfrefresh,
                   p.t_selfrefresh, p.p_active);
  return ladder;
}

DramAbstraction abstraction_for(const DramPowerParams& p, DramState depth) {
  DramAbstraction a;
  const double floor =
      depth == DramState::kSelfRefresh ? p.p_selfrefresh : p.p_powerdown;
  const double pair =
      depth == DramState::kSelfRefresh ? p.e_selfrefresh : p.e_powerdown;
  a.floor_power = floor;
  a.alpha_m = p.p_active - floor;
  a.xi_m = a.alpha_m > 0.0 ? pair / a.alpha_m : 0.0;
  return a;
}

}  // namespace sdem
