// DRAM power-state machine (the substrate behind the paper's memory model).
//
// The paper abstracts the main memory as: static power alpha_m while
// active, zero while asleep, one transition pair costing alpha_m * xi_m.
// Real DRAM (the 50nm parts the paper cites via CACTI, and the power-mode
// analysis of Fan/Ellis/Lebeck 2001) has a richer ladder:
//
//   ACTIVE_STANDBY      serving or ready to serve; full leakage + refresh
//   PRECHARGE_POWERDOWN clocks gated; fast exit; most leakage remains
//   SELF_REFRESH        on-die refresh only; slow exit; minimal power
//
// This module replays a schedule's memory busy/idle profile through that
// ladder under a pluggable power-management policy. Entering/exiting a
// low-power state costs energy and *time*: a state is only usable in a gap
// long enough to cover its entry+exit latency (otherwise the next access
// would stall — the schedulers above assume accesses are never delayed).
//
// `abstraction_for()` derives the (alpha_m, xi_m) pair that best represents
// a parameter set in the paper's model, and tests verify the abstraction
// tracks the machine.
#pragma once

#include <string>
#include <vector>

#include "model/sleep_ladder.hpp"
#include "sched/schedule.hpp"

namespace sdem {

struct DramPowerParams {
  // State powers, watts (whole device).
  double p_active = 4.0;        ///< active/standby (busy or idle-awake)
  double p_powerdown = 1.4;     ///< precharge power-down
  double p_selfrefresh = 0.25;  ///< self refresh

  // Entry + exit latencies, seconds (must fit inside the gap).
  double t_powerdown = 60e-9;     ///< tXP-ish: effectively instant
  double t_selfrefresh = 300e-6;  ///< tXSDLL-ish exit, scaled device-level

  // Per-transition-pair energies, joules (entry + exit).
  double e_powerdown = 0.002;
  double e_selfrefresh = 0.090;

  /// A 50nm-DRAM-flavored parameter set whose derived abstraction matches
  /// the paper's defaults (alpha_m ~ 4 W) at the self-refresh depth.
  static DramPowerParams paper_50nm();
};

enum class DramState { kActive, kPowerDown, kSelfRefresh };

std::string to_string(DramState s);

/// Decision a power-management policy makes for one idle gap.
struct GapDecision {
  DramState state = DramState::kActive;
};

/// Policy interface: choose a state for a gap of known length. The replay
/// clamps illegal choices (latency does not fit) back to kActive.
class DramPolicy {
 public:
  virtual ~DramPolicy() = default;
  virtual std::string name() const = 0;
  virtual GapDecision decide(double gap, const DramPowerParams& p) = 0;
};

/// Never leaves active/standby (the MBKP memory).
class NoPowerDownPolicy : public DramPolicy {
 public:
  std::string name() const override { return "no-power-down"; }
  GapDecision decide(double, const DramPowerParams&) override { return {}; }
};

/// Enters precharge power-down in every gap it fits in (common controller
/// default).
class ImmediatePowerDownPolicy : public DramPolicy {
 public:
  std::string name() const override { return "immediate-power-down"; }
  GapDecision decide(double gap, const DramPowerParams& p) override;
};

/// Energy-oracle: picks the feasible state minimizing the gap's energy
/// (state power * residency + pair energy) — the machine-level analogue of
/// the paper's break-even rule.
class OracleDramPolicy : public DramPolicy {
 public:
  std::string name() const override { return "oracle"; }
  GapDecision decide(double gap, const DramPowerParams& p) override;
};

struct DramEnergyResult {
  double active = 0.0;       ///< energy in active/standby (busy + idle)
  double powerdown = 0.0;    ///< energy while in power-down
  double selfrefresh = 0.0;  ///< energy while in self refresh
  double transition = 0.0;   ///< pair energies
  int powerdown_cycles = 0;
  int selfrefresh_cycles = 0;

  double total() const {
    return active + powerdown + selfrefresh + transition;
  }
};

/// Replay the memory busy profile of `sched` over [horizon_lo, horizon_hi]
/// (awake at both boundaries, as in sched/energy.hpp).
DramEnergyResult replay_dram(const Schedule& sched, const DramPowerParams& p,
                             DramPolicy& policy, double horizon_lo,
                             double horizon_hi);

/// The paper-model equivalent of a parameter set at a given low-power depth:
/// alpha_m = p_active - p_floor (the shedable leakage) and
/// xi_m = pair_energy / alpha_m (the break-even time). The non-shedable
/// floor p_floor * horizon is a policy-independent constant.
struct DramAbstraction {
  double alpha_m = 0.0;
  double xi_m = 0.0;
  double floor_power = 0.0;
};
DramAbstraction abstraction_for(const DramPowerParams& p,
                                DramState depth = DramState::kSelfRefresh);

/// The parameter set as a 2-state SleepLadder (power-down, self-refresh)
/// against active power p_active — the machine-level ladder the
/// generalized energy accounting (sched/energy.hpp) consumes directly.
/// Per-state xi is derived as pair_energy / (p_active - power).
SleepLadder to_sleep_ladder(const DramPowerParams& p);

}  // namespace sdem
