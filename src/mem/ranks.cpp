#include "mem/ranks.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "obs/timeline.hpp"

namespace sdem {

RankEnergy rank_memory_energy(const Schedule& sched, const MemoryPower& memory,
                              int num_ranks, int num_cores, double horizon_lo,
                              double horizon_hi) {
  RankEnergy out;
  num_ranks = std::max(1, num_ranks);
  num_cores = std::max(num_cores, sched.cores_used());
  const double rank_power = memory.alpha_m / num_ranks;

  for (int r = 0; r < num_ranks; ++r) {
    // Busy union of the rank's cores.
    std::vector<Interval> v;
    for (const auto& seg : sched.segments()) {
      if (seg.core % num_ranks == r) v.push_back({seg.start, seg.end});
    }
    const auto busy = merge_intervals(std::move(v));

    for (const auto& b : busy) out.active += rank_power * b.length();

    std::vector<double> gaps;
    if (busy.empty()) {
      if (horizon_hi > horizon_lo) gaps.push_back(horizon_hi - horizon_lo);
    } else {
      if (busy.front().lo > horizon_lo) {
        gaps.push_back(busy.front().lo - horizon_lo);
      }
      for (std::size_t i = 1; i < busy.size(); ++i) {
        gaps.push_back(busy[i].lo - busy[i - 1].hi);
      }
      if (horizon_hi > busy.back().hi) {
        gaps.push_back(horizon_hi - busy.back().hi);
      }
    }
    for (double g : gaps) {
      if (g <= 0.0) continue;
      if (memory.xi_m <= 0.0 || g >= memory.xi_m) {
        out.transition += rank_power * memory.xi_m;
        out.sleep_time += g;
      } else {
        out.idle += rank_power * g;
      }
    }
  }
  return out;
}

RankEnergy rank_memory_energy_ladder(
    const Schedule& sched, const MemoryPower& memory, const SleepLadder& ladder,
    int num_ranks, int num_cores, double horizon_lo, double horizon_hi,
    const std::vector<MemoryGapGovernor*>& governors) {
  RankEnergy out;
  num_ranks = std::max(1, num_ranks);
  num_cores = std::max(num_cores, sched.cores_used());
  const double share = 1.0 / num_ranks;
  const double rank_power = memory.alpha_m * share;

  for (int r = 0; r < num_ranks; ++r) {
    std::vector<Interval> v;
    for (const auto& seg : sched.segments()) {
      if (seg.core % num_ranks == r) v.push_back({seg.start, seg.end});
    }
    const auto busy = merge_intervals(std::move(v));

    for (const auto& b : busy) out.active += rank_power * b.length();

    // Chronological gaps — the governor's observation order. gap_t0 feeds
    // the power-timeline journal (one pass per rank/island).
    std::vector<double> gaps;
    std::vector<double> gap_t0;
    auto push_gap = [&](double t0, double g) {
      gaps.push_back(g);
      gap_t0.push_back(t0);
    };
    if (busy.empty()) {
      if (horizon_hi > horizon_lo) {
        push_gap(horizon_lo, horizon_hi - horizon_lo);
      }
    } else {
      if (busy.front().lo > horizon_lo) {
        push_gap(horizon_lo, busy.front().lo - horizon_lo);
      }
      for (std::size_t i = 1; i < busy.size(); ++i) {
        push_gap(busy[i - 1].hi, busy[i].lo - busy[i - 1].hi);
      }
      if (horizon_hi > busy.back().hi) {
        push_gap(busy.back().hi, horizon_hi - busy.back().hi);
      }
    }

    MemoryGapGovernor* gov =
        static_cast<std::size_t>(r) < governors.size()
            ? governors[static_cast<std::size_t>(r)]
            : nullptr;
#if SDEM_OBS
    const int tl_pass = obs::timeline::enabled()
                            ? obs::timeline::begin_pass(r, "rank")
                            : -1;
#endif
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      const double g = gaps[i];
      if (g <= 0.0) continue;
      int k = gov != nullptr ? gov->choose_state(ladder)
                             : ladder.oracle_state(g);
      if (k >= ladder.depth()) k = ladder.depth() - 1;
      bool aborted = false;
      if (k < 0) {
        out.idle += rank_power * g;
      } else {
        const SleepState& s = ladder.state(k);
        if (g < s.latency) {
          aborted = true;
          out.idle += rank_power * g;
          out.transition += s.pair_energy * share;
          out.aborts += 1.0;
        } else {
          out.residency += s.power * share * g;
          out.transition += s.pair_energy * share;
          out.sleep_time += g;
          out.cycles += 1.0;
          if (s.xi > 0.0 && g < s.xi) out.mispredicts += 1.0;
        }
      }
#if SDEM_OBS
      if (tl_pass >= 0) {
        const double predicted = gov != nullptr ? gov->predict_gap() : g;
        const bool mispredicted = k >= 0 && !aborted &&
                                  ladder.state(k).xi > 0.0 &&
                                  g < ladder.state(k).xi;
        const auto oc = k < 0 ? obs::timeline::Outcome::kIdle
                        : aborted ? obs::timeline::Outcome::kAbort
                        : mispredicted ? obs::timeline::Outcome::kMispredict
                                       : obs::timeline::Outcome::kCycle;
        obs::timeline::record_decision(tl_pass, gap_t0[i], gap_t0[i] + g,
                                       predicted, k, oc);
      }
#endif
      if (gov != nullptr) gov->observe(g, aborted);
    }
  }
  return out;
}

}  // namespace sdem
