// Multi-rank memory with per-rank power management.
//
// The paper assumes each core owns a disjoint memory area (§3) but the
// *device* sleeps only during the common idle time of all cores — that
// coupling is the whole problem. Real DRAM offers a middle ground: with
// one rank per core (or partial-array self refresh), a rank can nap
// whenever its own core idles, regardless of the others.
//
// This module evaluates a schedule under a rank-granular memory: rank r
// (serving a group of cores) is busy when any of its cores executes, and
// sleeps independently under break-even accounting. Two corner cases
// bracket the paper's setting:
//
//   * one rank for all cores  == the paper's monolithic memory;
//   * one rank per core       == fully decoupled: the common-idle-time
//     coupling disappears and with it most of SDEM-ON's edge over
//     memory-oblivious scheduling (quantified in bench_rank_granularity).
//
// Total leakage is conserved: each rank carries alpha_m / num_ranks and
// the per-rank break-even time stays xi_m (pair energy scales with the
// rank's share of the leakage).
#pragma once

#include <vector>

#include "model/power.hpp"
#include "sched/energy.hpp"
#include "sched/schedule.hpp"

namespace sdem {

struct RankEnergy {
  double active = 0.0;
  double idle = 0.0;
  double transition = 0.0;
  double sleep_time = 0.0;  ///< summed over ranks
  // Ladder-path extras (zero on the single-state path below).
  double residency = 0.0;    ///< in-state power * time, summed over ranks
  double cycles = 0.0;       ///< completed sleep cycles, summed over ranks
  double aborts = 0.0;       ///< pairs that did not fit their gap
  double mispredicts = 0.0;  ///< governor slept in a state with xi > gap
  double total() const { return active + idle + transition + residency; }
};

/// Evaluate `sched` with `num_ranks` ranks; core c maps to rank
/// c % num_ranks. Gap discipline: sleep iff gap >= xi_m (per rank).
/// Horizon semantics as in sched/energy.hpp (awake at both ends).
RankEnergy rank_memory_energy(const Schedule& sched, const MemoryPower& memory,
                              int num_ranks, int num_cores, double horizon_lo,
                              double horizon_hi);

/// Ladder generalization: each rank carries a 1/num_ranks share of the
/// device (state powers and pair energies scale; per-state xi and latency
/// are scale-invariant). Per gap, rank r either consults its own governor
/// (`governors[r]`, when given — per-rank predictor state is the "per
/// island" EWMA/histogram the governor design calls for) or takes the
/// clairvoyant oracle state. Gaps shorter than the chosen state's latency
/// abort: idle power for the gap plus the sunk pair energy.
RankEnergy rank_memory_energy_ladder(
    const Schedule& sched, const MemoryPower& memory, const SleepLadder& ladder,
    int num_ranks, int num_cores, double horizon_lo, double horizon_hi,
    const std::vector<MemoryGapGovernor*>& governors = {});

}  // namespace sdem
