#include "model/access.hpp"

#include <algorithm>

namespace sdem {

std::vector<Interval> memory_busy_with_access(
    const Schedule& sched, const std::map<int, TaskAccess>& access) {
  std::vector<Interval> v;
  for (const auto& seg : sched.segments()) {
    TaskAccess a;  // default kWhole
    if (auto it = access.find(seg.task_id); it != access.end()) {
      a = it->second;
    }
    const double f = std::clamp(a.fraction, 0.0, 1.0);
    if (f <= 0.0) continue;
    const double len = seg.duration() * f;
    switch (a.pattern) {
      case AccessPattern::kWhole:
        v.push_back({seg.start, seg.end});
        break;
      case AccessPattern::kPrefix:
        v.push_back({seg.start, seg.start + len});
        break;
      case AccessPattern::kSuffix:
        v.push_back({seg.end - len, seg.end});
        break;
    }
  }
  return merge_intervals(std::move(v));
}

AccessAwareMemoryEnergy access_aware_memory_energy(
    const Schedule& sched, const std::map<int, TaskAccess>& access,
    const MemoryPower& memory, double horizon_lo, double horizon_hi) {
  AccessAwareMemoryEnergy out;
  const auto busy = memory_busy_with_access(sched, access);
  for (const auto& b : busy) out.active += memory.alpha_m * b.length();

  std::vector<double> gaps;
  if (busy.empty()) {
    if (horizon_hi > horizon_lo) gaps.push_back(horizon_hi - horizon_lo);
  } else {
    if (busy.front().lo > horizon_lo) gaps.push_back(busy.front().lo - horizon_lo);
    for (std::size_t i = 1; i < busy.size(); ++i) {
      gaps.push_back(busy[i].lo - busy[i - 1].hi);
    }
    if (horizon_hi > busy.back().hi) gaps.push_back(horizon_hi - busy.back().hi);
  }
  for (double g : gaps) {
    if (g <= 0.0) continue;
    if (memory.xi_m <= 0.0 || g >= memory.xi_m) {
      out.transition += memory.alpha_m * memory.xi_m;
      out.sleep_time += g;
    } else {
      out.idle += memory.alpha_m * g;
    }
  }
  return out;
}

}  // namespace sdem
