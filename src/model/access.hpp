// Memory-access patterns (relaxing the paper's §3 assumption that a task
// accesses the memory during its whole execution — the "memory access
// behaviors" the paper leaves as future work).
//
// Each task gets an access descriptor: the fraction of its execution that
// touches DRAM and where that fraction sits inside each execution segment:
//
//   kWhole   the paper's model: the memory must be awake for the whole run
//   kPrefix  a load phase: the first `fraction` of every segment accesses
//   kSuffix  a store phase: the last `fraction` of every segment accesses
//
// Given a schedule and per-task descriptors, `memory_busy_with_access`
// rebuilds the memory busy intervals from the access phases only, and
// `access_aware_energy` re-accounts the memory under them. The schedulers
// above stay conservative (they plan with kWhole); the delta measures how
// much extra sleep a memory-phase-aware scheduler could hope to claw back.
#pragma once

#include <map>

#include "model/power.hpp"
#include "sched/energy.hpp"
#include "sched/schedule.hpp"

namespace sdem {

enum class AccessPattern { kWhole, kPrefix, kSuffix };

struct TaskAccess {
  AccessPattern pattern = AccessPattern::kWhole;
  double fraction = 1.0;  ///< in [0, 1]
};

/// Access (DRAM-busy) intervals of a schedule under per-task descriptors.
/// Tasks without an entry default to kWhole.
std::vector<Interval> memory_busy_with_access(
    const Schedule& sched, const std::map<int, TaskAccess>& access);

/// Memory-side energy under the access-phase busy profile, with the same
/// gap semantics as sched/energy.hpp (horizon-aware, kOptimal discipline).
struct AccessAwareMemoryEnergy {
  double active = 0.0;
  double idle = 0.0;
  double transition = 0.0;
  double sleep_time = 0.0;
  double total() const { return active + idle + transition; }
};
AccessAwareMemoryEnergy access_aware_memory_energy(
    const Schedule& sched, const std::map<int, TaskAccess>& access,
    const MemoryPower& memory, double horizon_lo, double horizon_hi);

}  // namespace sdem
