#include "model/power.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace sdem {

double CorePower::power(double s) const { return alpha + dynamic_power(s); }

double CorePower::dynamic_power(double s) const {
  return beta * std::pow(s, lambda);
}

double CorePower::exec_energy(double work, double s) const {
  if (work <= 0.0) return 0.0;
  if (s <= 0.0) return std::numeric_limits<double>::infinity();
  return power(s) * (work / s);
}

double CorePower::critical_speed_raw() const {
  if (alpha <= 0.0) return 0.0;
  return std::pow(alpha / (beta * (lambda - 1.0)), 1.0 / lambda);
}

double CorePower::critical_speed(double filled_speed) const {
  return std::min(std::max(critical_speed_raw(), filled_speed), max_speed());
}

double CorePower::max_speed() const {
  return s_up > 0.0 ? s_up : std::numeric_limits<double>::infinity();
}

double CorePower::clamp_speed(double s, double filled_speed) const {
  return std::min(std::max({s, s_min, filled_speed}), max_speed());
}

std::string CorePower::describe() const {
  std::ostringstream os;
  os << "CorePower{alpha=" << alpha << "W, beta=" << beta
     << "W/MHz^l, lambda=" << lambda << ", s=[" << s_min << "," << s_up
     << "]MHz, xi=" << xi << "s}";
  return os.str();
}

double SystemConfig::memory_critical_speed_raw() const {
  const double a = core.alpha + memory.alpha_m;
  if (a <= 0.0) return 0.0;
  return std::pow(a / (core.beta * (core.lambda - 1.0)), 1.0 / core.lambda);
}

double SystemConfig::memory_critical_speed(double filled_speed) const {
  return std::min(std::max(memory_critical_speed_raw(), filled_speed),
                  core.max_speed());
}

double SystemConfig::constrained_critical_speed(const Task& t,
                                                double interval_len) const {
  const double s_f = t.filled_speed();
  const double s_m = core.critical_speed_raw();
  const double run_speed = std::min(s_m > 0.0 ? s_m : core.max_speed(),
                                    core.max_speed());
  // s_c = min{max{s_m, s_f}, s_up} when running at min(s_m, s_up) leaves an
  // idle tail of at least xi in the maximal interval; otherwise stretch to
  // the filled speed (no useful core sleep is possible).
  if (run_speed > 0.0 && interval_len - t.work / run_speed >= core.xi) {
    return std::min(std::max(s_m, s_f), core.max_speed());
  }
  return std::min(s_f, core.max_speed());
}

SystemConfig SystemConfig::paper_default() {
  SystemConfig cfg;
  cfg.core.alpha = 0.31;        // 310 mW
  cfg.core.beta = 2.53e-10;     // 2.53e-7 mW/MHz^3 = 2.53e-10 W/MHz^3
  cfg.core.lambda = 3.0;
  cfg.core.s_min = 700.0;       // MHz
  cfg.core.s_up = 1900.0;       // MHz
  cfg.core.xi = 0.0;
  cfg.memory.alpha_m = 4.0;     // W (Table 4 default)
  cfg.memory.xi_m = 0.040;      // 40 ms (Table 4 default)
  cfg.num_cores = 8;
  return cfg;
}

SystemConfig SystemConfig::paper_default_alpha0() {
  SystemConfig cfg = paper_default();
  cfg.core.alpha = 0.0;
  return cfg;
}

}  // namespace sdem
