// Power model (paper §3, §4.2, §5.2, §7).
//
// Core:   P(s) = alpha + beta * s^lambda   (s in MHz, P in watts)
// Memory: static power alpha_m while active; zero while asleep; each
//         sleep/wake cycle costs alpha_m * xi_m (break-even accounting).
//
// Derived speeds:
//   s_m  = (alpha / (beta (lambda-1)))^(1/lambda)      core critical speed
//   s_0  = clamp of s_m into [s_f, s_up]               per-task critical speed
//   s_cm = ((alpha+alpha_m)/(beta (lambda-1)))^(1/λ)   memory-associated speed
//   s_1  = clamp of s_cm into [s_f, s_up]
//   s_c  = constrained critical speed under core break-even xi (§7)
#pragma once

#include <string>

#include "model/sleep_ladder.hpp"
#include "model/task.hpp"

namespace sdem {

/// Homogeneous core power model.
struct CorePower {
  double alpha = 0.0;    ///< static power, W (0 => idle cores are free)
  double beta = 1.0;     ///< dynamic coefficient, W / MHz^lambda
  double lambda = 3.0;   ///< dynamic exponent, > 1
  double s_min = 0.0;    ///< lowest speed, MHz (0 => unconstrained below)
  double s_up = 0.0;     ///< highest speed, MHz (0 => unconstrained above)
  double xi = 0.0;       ///< core break-even time, seconds (§7)

  /// Total power at speed s (active core).
  double power(double s) const;

  /// Dynamic-only power beta * s^lambda.
  double dynamic_power(double s) const;

  /// Energy to run `work` megacycles at constant speed s (includes alpha).
  double exec_energy(double work, double s) const;

  /// Unclamped core critical speed s_m = (alpha/(beta(lambda-1)))^(1/lambda).
  double critical_speed_raw() const;

  /// Per-task critical speed s_0 = min{max{s_m, s_f}, s_up} (§4.2).
  double critical_speed(double filled_speed) const;

  /// Effective maximum speed: s_up if set, else +inf.
  double max_speed() const;

  /// Clamp s into [max(s_min, filled), max_speed()].
  double clamp_speed(double s, double filled_speed = 0.0) const;

  std::string describe() const;
};

/// Shared main memory power model.
struct MemoryPower {
  double alpha_m = 0.0;  ///< static (leakage) power while active, W
  double xi_m = 0.0;     ///< break-even time of a sleep cycle, seconds

  /// Optional multi-state sleep ladder. Empty (the default) selects the
  /// legacy single-state model above; `SleepLadder::single(alpha_m, xi_m)`
  /// as a depth-1 ladder is bit-identical to it.
  SleepLadder ladder;

  /// Energy cost of one active->sleep->active transition pair.
  double transition_energy() const { return alpha_m * xi_m; }
};

/// Complete system description used by every scheduler.
struct SystemConfig {
  CorePower core;
  MemoryPower memory;
  int num_cores = 0;  ///< 0 => unbounded (>= number of tasks); else bounded

  bool unbounded() const { return num_cores <= 0; }

  /// Memory-associated critical speed s_cm (unclamped) — §5.2.
  double memory_critical_speed_raw() const;

  /// Per-task s_1 = min{max{s_cm, s_f}, s_up} — §5.2.
  double memory_critical_speed(double filled_speed) const;

  /// Constrained critical speed s_c of a task under core break-even xi (§7):
  /// s_c = s_0 when the task, run at min(s_m, s_up), leaves at least xi idle
  /// time inside the maximal interval |I|; otherwise s_c = s_f.
  double constrained_critical_speed(const Task& t, double interval_len) const;

  /// Paper §8.1.3 default configuration: ARM Cortex-A57-like cores
  /// (beta = 2.53e-10 W/MHz^3, alpha = 0.31 W, lambda = 3, 700..1900 MHz),
  /// 8 cores, 50nm-DRAM-like memory (alpha_m = 4 W, xi_m = 40 ms).
  static SystemConfig paper_default();

  /// Same, with negligible core static power (alpha = 0 model).
  static SystemConfig paper_default_alpha0();
};

}  // namespace sdem
