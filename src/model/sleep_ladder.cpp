#include "model/sleep_ladder.hpp"

#include <utility>

namespace sdem {

SleepLadder SleepLadder::single(double alpha_m, double xi_m) {
  SleepLadder out;
  SleepState s;
  s.name = "sleep";
  s.power = 0.0;
  s.pair_energy = alpha_m * xi_m;
  s.latency = 0.0;
  s.xi = xi_m;  // stored verbatim: pair_energy / alpha_m can differ by 1 ulp
  out.add_state_exact(std::move(s));
  return out;
}

SleepLadder SleepLadder::geometric(double alpha_m, double xi_m, int depth,
                                   double latency_scale) {
  SleepLadder out;
  if (depth <= 0) return out;
  for (int k = 1; k <= depth; ++k) {
    const double frac = static_cast<double>(k) / static_cast<double>(depth);
    SleepState s;
    s.name = "L" + std::to_string(k);
    s.power = alpha_m * (1.0 - frac);
    s.xi = xi_m * frac * frac;
    s.pair_energy = (alpha_m - s.power) * s.xi;
    s.latency = latency_scale * s.xi;
    out.add_state_exact(std::move(s));
  }
  // Pin the deepest rung to the exact paper state so a depth sweep's last
  // point is the single-state model verbatim.
  SleepState& deepest = out.states_.back();
  deepest.power = 0.0;
  deepest.xi = xi_m;
  deepest.pair_energy = alpha_m * xi_m;
  deepest.latency = latency_scale * xi_m;
  return out;
}

void SleepLadder::add_state(std::string name, double power, double pair_energy,
                            double latency, double alpha_m) {
  SleepState s;
  s.name = std::move(name);
  s.power = power;
  s.pair_energy = pair_energy;
  s.latency = latency;
  const double saved = alpha_m - power;
  s.xi = saved > 0.0 ? pair_energy / saved : 0.0;
  add_state_exact(std::move(s));
}

void SleepLadder::add_state_exact(SleepState s) {
  states_.push_back(std::move(s));
}

SleepLadder SleepLadder::prefix(int d) const {
  SleepLadder out;
  const int n = d < depth() ? d : depth();
  for (int k = 0; k < n; ++k) out.add_state_exact(states_[k]);
  return out;
}

std::string SleepLadder::validate(double alpha_m) const {
  for (std::size_t k = 0; k < states_.size(); ++k) {
    const SleepState& s = states_[k];
    const std::string at = "state " + std::to_string(k) +
                           (s.name.empty() ? "" : " (" + s.name + ")");
    if (!(s.power >= 0.0)) return at + ": power must be >= 0";
    if (!(s.power < alpha_m))
      return at + ": power must be < active power alpha_m";
    if (!(s.pair_energy > 0.0)) return at + ": pair_energy must be > 0";
    if (!(s.latency >= 0.0)) return at + ": latency must be >= 0";
    if (!(s.xi > 0.0)) return at + ": xi must be > 0";
    if (k > 0) {
      const SleepState& prev = states_[k - 1];
      if (!(s.power < prev.power))
        return at + ": power must strictly decrease with depth";
      if (!(s.xi > prev.xi))
        return at + ": xi must strictly increase with depth";
      if (!(s.latency >= prev.latency))
        return at + ": latency must be non-decreasing with depth";
    }
  }
  return "";
}

int SleepLadder::deepest_fit(double gap) const {
  for (int k = depth() - 1; k >= 0; --k) {
    const SleepState& s = states_[static_cast<std::size_t>(k)];
    if ((s.xi <= 0.0 || gap >= s.xi) && gap >= s.latency) return k;
  }
  return -1;
}

int SleepLadder::oracle_state(double gap) const {
  int best = -1;
  double best_cost = 0.0;
  for (int k = 0; k < depth(); ++k) {
    const SleepState& s = states_[static_cast<std::size_t>(k)];
    if (!(s.xi <= 0.0 || gap >= s.xi)) continue;
    if (gap < s.latency) continue;
    const double cost = s.power * gap + s.pair_energy;
    if (best < 0 || cost <= best_cost) {  // ties prefer the deeper state
      best = k;
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace sdem
