// Multi-state memory sleep ladder (generalizes the paper's single sleep
// state; ROADMAP "multi-sleep-state memory" item).
//
// The paper models memory with one sleep state: zero power while asleep and
// a transition pair costing alpha_m * xi_m (break-even formulation, §3).
// Real DRAM/CPU idle management exposes a *ladder* of states — e.g. DDR3
// precharge power-down vs self-refresh, or cpuidle C-states — each with its
// own residency power, enter+exit energy and enter+exit latency. A deeper
// state saves more power per second asleep but costs more to enter and
// leave, so each state k has its own break-even time
//
//   xi[k] = pair_energy[k] / (alpha_m - power[k])
//
// against staying idle-awake at alpha_m: sleeping in state k through a gap
// of length g beats idling iff g >= xi[k].
//
// The single-state paper model is the exact depth=1 special case:
// `SleepLadder::single(alpha_m, xi_m)` stores power = 0, latency = 0,
// pair_energy = alpha_m * xi_m and — crucially — xi = xi_m *verbatim*
// rather than re-deriving it, so the ladder accounting path reproduces the
// legacy single-state output bit for bit (frozen-oracle policy).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdem {

/// One rung of the sleep ladder.
struct SleepState {
  std::string name;          ///< label, e.g. "powerdown", "selfrefresh"
  double power = 0.0;        ///< residency power while in the state, W
  double pair_energy = 0.0;  ///< energy of one enter+exit transition pair, J
  double latency = 0.0;      ///< enter+exit latency of the pair, seconds
  double xi = 0.0;           ///< break-even vs idle-awake, seconds (stored)
};

/// An ordered ladder of sleep states, shallow (index 0) to deep (back()).
/// Empty ladder == legacy single-state model driven by MemoryPower::xi_m.
class SleepLadder {
 public:
  SleepLadder() = default;

  /// The paper's single sleep state as a depth-1 ladder. xi is stored as
  /// the given xi_m (not derived), pair_energy = alpha_m * xi_m, power and
  /// latency are zero — accounting through this ladder is bit-identical to
  /// the legacy path.
  static SleepLadder single(double alpha_m, double xi_m);

  /// A synthetic depth-d ladder whose deepest state is exactly the paper's
  /// single state (power 0, break-even xi_m). Shallower rungs at fraction
  /// f = k/d of the depth have residency power alpha_m * (1 - f), break-even
  /// xi_m * f^2 and latency latency_scale * xi, mimicking the convex
  /// power/latency trade of real C-state tables.
  static SleepLadder geometric(double alpha_m, double xi_m, int depth,
                               double latency_scale = 0.05);

  /// Append a state, deriving xi = pair_energy / (alpha_m - power).
  void add_state(std::string name, double power, double pair_energy,
                 double latency, double alpha_m);

  /// Append a state with an explicitly stored xi (no derivation).
  void add_state_exact(SleepState s);

  bool empty() const { return states_.empty(); }
  int depth() const { return static_cast<int>(states_.size()); }
  const SleepState& state(int k) const {
    return states_[static_cast<std::size_t>(k)];
  }
  const std::vector<SleepState>& states() const { return states_; }

  /// A ladder containing only the first `d` rungs (for depth sweeps).
  SleepLadder prefix(int d) const;

  /// Empty string when the ladder is well formed against active power
  /// alpha_m; else a human-readable reason. Checks: every state has
  /// 0 <= power < alpha_m, pair_energy > 0, latency >= 0, xi > 0; along
  /// the ladder power is strictly decreasing and xi strictly increasing
  /// (otherwise a rung is dominated and the ladder is ill-formed), and
  /// latency is non-decreasing.
  std::string validate(double alpha_m) const;

  /// Deepest state k with xi[k] <= gap and latency[k] <= gap; -1 if no
  /// state fits (stay awake). This is the governor's selection rule.
  int deepest_fit(double gap) const;

  /// Clairvoyant per-gap optimum: among states with xi[k] <= gap (or
  /// xi[k] <= 0) and latency[k] <= gap, the one minimizing
  /// power[k] * gap + pair_energy[k]; ties prefer the deeper state. -1 when
  /// no state beats idle-awake. At depth 1 this reduces exactly to the
  /// legacy rule "sleep iff xi <= 0 or gap >= xi".
  int oracle_state(double gap) const;

 private:
  std::vector<SleepState> states_;
};

}  // namespace sdem
