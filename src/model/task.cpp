#include "model/task.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

namespace sdem {

double Task::filled_speed() const {
  const double len = region();
  if (len <= 0.0) return std::numeric_limits<double>::infinity();
  return work / len;
}

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {}

void TaskSet::add(Task t) { tasks_.push_back(t); }

bool TaskSet::is_common_release() const {
  if (tasks_.empty()) return true;
  const double r0 = tasks_.front().release;
  return std::all_of(tasks_.begin(), tasks_.end(),
                     [&](const Task& t) { return t.release == r0; });
}

bool TaskSet::is_agreeable() const {
  // r_i <= r_j implies d_i <= d_j for all pairs: equivalent to deadlines
  // being non-decreasing when sorted by (release, deadline).
  auto sorted = tasks_;
  std::sort(sorted.begin(), sorted.end(), [](const Task& a, const Task& b) {
    if (a.release != b.release) return a.release < b.release;
    return a.deadline < b.deadline;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    // A strictly earlier release with a strictly later deadline breaks
    // agreeability (equal releases may have any deadline order).
    if (sorted[i - 1].release < sorted[i].release &&
        sorted[i - 1].deadline > sorted[i].deadline) {
      return false;
    }
  }
  return true;
}

TaskModel TaskSet::classify() const {
  if (is_common_release()) {
    const bool common_deadline =
        tasks_.empty() ||
        std::all_of(tasks_.begin(), tasks_.end(), [&](const Task& t) {
          return t.deadline == tasks_.front().deadline;
        });
    return common_deadline ? TaskModel::kCommonReleaseDeadline
                           : TaskModel::kCommonRelease;
  }
  if (is_agreeable()) return TaskModel::kAgreeable;
  return TaskModel::kGeneral;
}

double TaskSet::min_release() const {
  double v = std::numeric_limits<double>::infinity();
  for (const auto& t : tasks_) v = std::min(v, t.release);
  return v;
}

double TaskSet::max_deadline() const {
  double v = -std::numeric_limits<double>::infinity();
  for (const auto& t : tasks_) v = std::max(v, t.deadline);
  return v;
}

double TaskSet::total_work() const {
  double w = 0.0;
  for (const auto& t : tasks_) w += t.work;
  return w;
}

double TaskSet::max_filled_speed() const {
  double v = 0.0;
  for (const auto& t : tasks_) v = std::max(v, t.filled_speed());
  return v;
}

TaskSet TaskSet::sorted_by_deadline() const {
  auto copy = tasks_;
  std::sort(copy.begin(), copy.end(), [](const Task& a, const Task& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    if (a.release != b.release) return a.release < b.release;
    return a.id < b.id;
  });
  return TaskSet(std::move(copy));
}

TaskSet TaskSet::sorted_by_release() const {
  auto copy = tasks_;
  std::sort(copy.begin(), copy.end(), [](const Task& a, const Task& b) {
    if (a.release != b.release) return a.release < b.release;
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.id < b.id;
  });
  return TaskSet(std::move(copy));
}

std::string TaskSet::validate() const {
  std::set<int> ids;
  for (const auto& t : tasks_) {
    std::ostringstream err;
    if (t.work < 0.0) {
      err << "task " << t.id << ": negative workload " << t.work;
      return err.str();
    }
    if (t.deadline <= t.release) {
      err << "task " << t.id << ": empty feasible region [" << t.release
          << ", " << t.deadline << "]";
      return err.str();
    }
    if (!ids.insert(t.id).second) {
      err << "duplicate task id " << t.id;
      return err.str();
    }
  }
  return {};
}

std::string to_string(TaskModel m) {
  switch (m) {
    case TaskModel::kCommonRelease: return "common-release";
    case TaskModel::kCommonReleaseDeadline: return "common-release+deadline";
    case TaskModel::kAgreeable: return "agreeable";
    case TaskModel::kGeneral: return "general";
  }
  return "?";
}

}  // namespace sdem
