// Task and task-set model (paper §3).
//
// A task T_i has release time r_i, deadline d_i and workload w_i (megacycles).
// The feasible region is [r_i, d_i]; the filled speed s_fi = w_i / (d_i - r_i)
// is the slowest speed that still meets the deadline when the task occupies
// its whole region. Tasks are non-preemptive and non-migrating in the offline
// schemes; the online simulator allows preemption (§6).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdem {

struct Task {
  int id = 0;
  double release = 0.0;   ///< r_i, seconds
  double deadline = 0.0;  ///< d_i, seconds
  double work = 0.0;      ///< w_i, megacycles

  /// Length of the feasible region |I_i| = d_i - r_i.
  double region() const { return deadline - release; }

  /// Filled speed s_fi = w_i / |I_i| in MHz.
  double filled_speed() const;
};

/// Classification of a task set against the paper's task models.
enum class TaskModel {
  kCommonRelease,      ///< all r_i equal (individual deadlines) — §4
  kCommonReleaseDeadline,  ///< all r_i equal and all d_i equal — §3 (Thm 1)
  kAgreeable,          ///< r_i <= r_j implies d_i <= d_j — §5
  kGeneral,            ///< arbitrary — §6
};

/// A set of tasks plus the helpers every scheme needs.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks);

  const std::vector<Task>& tasks() const { return tasks_; }
  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  const Task& operator[](std::size_t i) const { return tasks_[i]; }

  void add(Task t);

  /// Drop all tasks but keep the capacity — for scratch task sets that are
  /// rebuilt every replan.
  void clear() { tasks_.clear(); }
  void reserve(std::size_t n) { tasks_.reserve(n); }

  /// Strictest model this set satisfies (common release+deadline is reported
  /// as kCommonReleaseDeadline, which also implies the other two).
  TaskModel classify() const;

  bool is_common_release() const;
  bool is_agreeable() const;

  /// Earliest release / latest deadline over the set. Undefined when empty.
  double min_release() const;
  double max_deadline() const;

  /// Total workload in megacycles.
  double total_work() const;

  /// Largest filled speed over the set (infeasibility check vs s_up).
  double max_filled_speed() const;

  /// Returns a copy sorted by (deadline, release, id).
  TaskSet sorted_by_deadline() const;

  /// Returns a copy sorted by (release, deadline, id).
  TaskSet sorted_by_release() const;

  /// Validation: positive workloads, deadline > release, unique ids.
  /// Returns an empty string when valid, else a diagnostic.
  std::string validate() const;

 private:
  std::vector<Task> tasks_;
};

/// Human-readable name of a task model (for diagnostics and tables).
std::string to_string(TaskModel m);

}  // namespace sdem
