#include "model/voltage.hpp"

#include <cmath>
#include <vector>

namespace sdem {

double VoltageModel::speed_at(double v) const {
  if (v <= v_t) return 0.0;
  return kappa * (v - v_t) * (v - v_t) / v;
}

double VoltageModel::vdd_for(double s) const {
  if (s <= 0.0) return v_t;
  // kappa V^2 - (2 kappa v_t + s) V + kappa v_t^2 = 0.
  const double b = 2.0 * kappa * v_t + s;
  const double disc = b * b - 4.0 * kappa * kappa * v_t * v_t;
  return (b + std::sqrt(disc)) / (2.0 * kappa);
}

double VoltageModel::dynamic_power(double s) const {
  const double v = vdd_for(s);
  return c_ef * v * v * s;
}

double VoltageModel::exec_energy(double work, double s) const {
  if (work <= 0.0 || s <= 0.0) return 0.0;
  return dynamic_power(s) * (work / s);
}

PowerFit fit_power_law(const VoltageModel& m, double s_lo, double s_hi,
                       int samples) {
  // Linear regression of y = log P on x = log s.
  std::vector<double> xs, ys;
  xs.reserve(samples);
  ys.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    const double f = static_cast<double>(i) / (samples - 1);
    const double s = s_lo * std::pow(s_hi / s_lo, f);
    xs.push_back(std::log(s));
    ys.push_back(std::log(m.dynamic_power(s)));
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int i = 0; i < samples; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double n = static_cast<double>(samples);
  PowerFit fit;
  fit.lambda = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  fit.beta = std::exp((sy - fit.lambda * sx) / n);
  for (int i = 0; i < samples; ++i) {
    const double pred = fit.beta * std::exp(fit.lambda * xs[i]);
    const double truth = std::exp(ys[i]);
    fit.max_rel_error =
        std::max(fit.max_rel_error, std::abs(pred - truth) / truth);
  }
  return fit;
}

}  // namespace sdem
