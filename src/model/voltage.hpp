// Physical voltage/frequency model (paper §3, Rabaey et al.):
//
//   P_d(V, s) = C_ef * V_dd^2 * s,          s = kappa * (V_dd - V_t)^2 / V_dd
//
// The paper (like most of the DVS literature) works with the polynomial
// abstraction P_d ~ beta * s^lambda. This module keeps the physical model
// around so that abstraction can be *derived* instead of assumed: it
// inverts the speed equation for V_dd, evaluates the true dynamic power,
// and least-squares-fits (beta, lambda) over a frequency range — the fit
// used to justify lambda = 3 for A57-like parameters is validated in
// tests/test_voltage.cpp.
#pragma once

namespace sdem {

struct VoltageModel {
  double c_ef = 1.0e-9;   ///< effective switched capacitance, F (scaled)
  double v_t = 0.3;       ///< threshold voltage, V
  double kappa = 900.0;   ///< hardware constant, MHz * V / V^2

  /// Speed delivered at supply voltage v (MHz); 0 for v <= v_t.
  double speed_at(double v) const;

  /// Supply voltage required for speed s (MHz): the larger root of
  /// kappa V^2 - (2 kappa v_t + s) V + kappa v_t^2 = 0 (the physical
  /// branch with V > v_t).
  double vdd_for(double s) const;

  /// True dynamic power at speed s: C_ef * V(s)^2 * s (watts when c_ef is
  /// in F and s in MHz — callers treat the result as model units).
  double dynamic_power(double s) const;

  /// Energy for `work` megacycles at speed s (dynamic only).
  double exec_energy(double work, double s) const;
};

/// Least-squares fit of log P = log beta + lambda log s over `samples`
/// geometrically spaced speeds in [s_lo, s_hi].
struct PowerFit {
  double beta = 0.0;
  double lambda = 0.0;
  double max_rel_error = 0.0;  ///< worst relative error over the samples
};
PowerFit fit_power_law(const VoltageModel& m, double s_lo, double s_hi,
                       int samples = 64);

}  // namespace sdem
