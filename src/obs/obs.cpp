#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"
#include "obs/window.hpp"

namespace sdem::obs {

void DistCell::add(double v) {
  if (count == 0 || v < min) min = v;
  if (count == 0 || v > max) max = v;
  ++count;
  sum_fx += static_cast<std::int64_t>(std::llround(v * kDistFxScale));
  int idx = 0;
  if (v > 0.0 && std::isfinite(v)) {
    idx = std::clamp(std::ilogb(v), -63, 62) + 64;  // [1, 126]
  } else if (v > 0.0) {
    idx = kDistBuckets - 1;  // +inf overflow bucket
  }
  ++buckets[idx];
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

// One mutex guards shard registration, per-shard cell creation, reset and
// snapshot. Cell increments never touch it (thread-local pointers).
std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

struct Registry::Shard {
  // Node-stable storage: returned cell pointers survive later insertions.
  std::deque<std::uint64_t> counter_storage;
  std::deque<DistCell> dist_storage;
  std::deque<TimerCell> timer_storage;
  std::deque<WindowCell> window_storage;
  std::map<std::string, std::pair<Domain, std::uint64_t*>> counters;
  std::map<std::string, std::pair<Domain, DistCell*>> dists;
  std::map<std::string, TimerCell*> timers;
  std::map<std::string, WindowCell*> windows;
};

Registry& Registry::instance() {
  // Leaked singleton: worker threads may flush cells during static
  // destruction of other objects; the registry must outlive them all.
  static Registry* r = new Registry();
  return *r;
}

Registry::Shard& Registry::local_shard() {
  // One shard per (thread, registry) pair, registered on first use and
  // owned by the registry so it survives thread exit (snapshot after a
  // transient pool is torn down still sees its counts).
  static thread_local Shard* shard = nullptr;
  if (shard == nullptr) {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    std::lock_guard<std::mutex> lock(registry_mutex());
    shards_.push_back(owned.release());
  }
  return *shard;
}

std::uint64_t* Registry::counter_cell(const char* name, Domain domain) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    shard.counter_storage.push_back(0);
    it = shard.counters
             .emplace(name, std::make_pair(domain, &shard.counter_storage.back()))
             .first;
  }
  return it->second.second;
}

DistCell* Registry::dist_cell(const char* name, Domain domain) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = shard.dists.find(name);
  if (it == shard.dists.end()) {
    shard.dist_storage.emplace_back();
    it = shard.dists
             .emplace(name, std::make_pair(domain, &shard.dist_storage.back()))
             .first;
  }
  return it->second.second;
}

TimerCell* Registry::timer_cell(const char* name) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = shard.timers.find(name);
  if (it == shard.timers.end()) {
    shard.timer_storage.emplace_back();
    it = shard.timers.emplace(name, &shard.timer_storage.back()).first;
  }
  return it->second;
}

WindowCell* Registry::window_cell(const char* name, const WindowSpec& spec) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = shard.windows.find(name);
  if (it == shard.windows.end()) {
    shard.window_storage.emplace_back(spec);
    it = shard.windows.emplace(name, &shard.window_storage.back()).first;
  }
  return it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::local_counters() {
  Shard& shard = local_shard();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::lock_guard<std::mutex> lock(registry_mutex());
  out.reserve(shard.counters.size());
  for (const auto& [name, dc] : shard.counters) {
    if (dc.first == Domain::kDeterministic) out.emplace_back(name, *dc.second);
  }
  return out;  // std::map iteration: already name-sorted
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (void* p : shards_) {
    Shard& s = *static_cast<Shard*>(p);
    for (auto& c : s.counter_storage) c = 0;
    for (auto& d : s.dist_storage) d = DistCell{};
    for (auto& t : s.timer_storage) t = TimerCell{};
    for (auto& w : s.window_storage) w.clear();
  }
}

namespace {

DistValue to_value(const DistCell& cell) {
  DistValue v;
  v.count = cell.count;
  v.sum_fx = cell.sum_fx;
  v.min = cell.min;
  v.max = cell.max;
  for (int i = 0; i < kDistBuckets; ++i) {
    if (cell.buckets[i] > 0) {
      v.buckets.emplace_back(i == 0 ? -9999 : i - 64, cell.buckets[i]);
    }
  }
  return v;
}

void merge_dist(DistValue& into, const DistCell& cell) {
  if (cell.count == 0) return;
  if (into.count == 0 || cell.min < into.min) into.min = cell.min;
  if (into.count == 0 || cell.max > into.max) into.max = cell.max;
  into.count += cell.count;
  into.sum_fx += cell.sum_fx;
  // Merge sparse-vs-dense buckets: rebuild the sparse list in order.
  std::map<int, std::uint64_t> merged;
  for (const auto& [e, c] : into.buckets) merged[e] += c;
  for (int i = 0; i < kDistBuckets; ++i) {
    if (cell.buckets[i] > 0) merged[i == 0 ? -9999 : i - 64] += cell.buckets[i];
  }
  into.buckets.assign(merged.begin(), merged.end());
}

Json dist_json(const DistValue& d) {
  Json j = Json::object();
  j.set("count", Json(static_cast<double>(d.count)));
  j.set("min", Json(d.min));
  j.set("max", Json(d.max));
  j.set("mean", Json(d.mean()));
  j.set("sum", Json(d.sum()));
  Json hist = Json::object();
  for (const auto& [e, c] : d.buckets) {
    hist.set(e == -9999 ? std::string("nonpos") : "2^" + std::to_string(e),
             Json(static_cast<double>(c)));
  }
  j.set("log2_hist", hist);
  return j;
}

}  // namespace

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::map<std::string, std::pair<Domain, std::uint64_t>> counters;
  std::map<std::string, std::pair<Domain, DistValue>> dists;
  std::map<std::string, TimerCell> timers;
  for (void* p : shards_) {
    const Shard& s = *static_cast<const Shard*>(p);
    for (const auto& [name, dc] : s.counters) {
      auto& slot = counters[name];
      slot.first = dc.first;
      slot.second += *dc.second;
    }
    for (const auto& [name, dc] : s.dists) {
      auto& slot = dists[name];
      slot.first = dc.first;
      merge_dist(slot.second, *dc.second);
    }
    for (const auto& [name, tc] : s.timers) {
      auto& slot = timers[name];
      slot.count += tc->count;
      slot.total_ns += tc->total_ns;
      if (tc->max_ns > slot.max_ns) slot.max_ns = tc->max_ns;
    }
  }
  Snapshot snap;
  for (const auto& [name, dc] : counters) {
    (dc.first == Domain::kDeterministic ? snap.counters
                                        : snap.runtime_counters)
        .emplace_back(name, dc.second);
  }
  for (const auto& [name, dc] : dists) {
    (dc.first == Domain::kDeterministic ? snap.dists : snap.runtime_dists)
        .emplace_back(name, dc.second);
  }
  for (const auto& [name, tc] : timers) snap.timers.emplace_back(name, tc);
  return snap;
}

std::vector<std::pair<std::string, WindowValue>> Registry::window_values(
    std::uint64_t as_of_ns) const {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::map<std::string, WindowValue> merged;
  for (void* p : shards_) {
    const Shard& s = *static_cast<const Shard*>(p);
    for (const auto& [name, cell] : s.windows) {
      merge_window(merged[name], *cell, as_of_ns);
    }
  }
  return {merged.begin(), merged.end()};
}

Json Snapshot::counters_json() const {
  Json j = Json::object();
  // Counters and dists interleave in one lexicographically ordered object
  // so the section's bytes are a pure function of the merged values.
  auto ci = counters.begin();
  auto di = dists.begin();
  while (ci != counters.end() || di != dists.end()) {
    const bool take_counter =
        di == dists.end() ||
        (ci != counters.end() && ci->first < di->first);
    if (take_counter) {
      j.set(ci->first, Json(static_cast<double>(ci->second)));
      ++ci;
    } else {
      j.set(di->first, dist_json(di->second));
      ++di;
    }
  }
  return j;
}

Json Snapshot::runtime_json() const {
  Json j = Json::object();
  Json cj = Json::object();
  for (const auto& [name, v] : runtime_counters) {
    cj.set(name, Json(static_cast<double>(v)));
  }
  j.set("counters", cj);
  Json dj = Json::object();
  for (const auto& [name, d] : runtime_dists) dj.set(name, dist_json(d));
  j.set("dists", dj);
  Json tj = Json::object();
  for (const auto& [name, t] : timers) {
    if (name.find(kTimerEdgeSep) != std::string::npos) continue;
    Json entry = Json::object();
    entry.set("count", Json(static_cast<double>(t.count)));
    entry.set("total_ms", Json(static_cast<double>(t.total_ns) * 1e-6));
    entry.set("max_ms", Json(static_cast<double>(t.max_ns) * 1e-6));
    tj.set(name, entry);
  }
  j.set("timers", tj);
  return j;
}

const std::uint64_t* Snapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  for (const auto& [n, v] : runtime_counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const DistValue* Snapshot::dist(const std::string& name) const {
  for (const auto& [n, v] : dists) {
    if (n == name) return &v;
  }
  for (const auto& [n, v] : runtime_dists) {
    if (n == name) return &v;
  }
  return nullptr;
}

#if SDEM_OBS

namespace {

// Per-thread stack of live ScopedTimer names. Timers are strictly nested
// RAII scopes, so the element below the top is always the closing timer's
// parent *on this thread* — pool workers start fresh stacks, so a timer
// whose parent scope lives on another thread is a root of its own subtree
// (the rollup documents this).
thread_local std::vector<const char*> t_timer_stack;

// Resolve the parent→child edge cell, cached per (parent, child) name
// pointer so the composed "parent\x1echild" registry name is built once
// per pair per thread. \x1e (ASCII record separator) cannot appear in a
// timer name literal, so edge names never collide with plain timers;
// runtime_json filters them out and --timer-rollup rebuilds the tree from
// them. Name literals are pointer-stable (string literals / the static
// experiment registry), so pointer keys are safe.
TimerCell* edge_cell(const char* parent, const char* child) {
  static thread_local std::map<std::pair<const void*, const void*>,
                               TimerCell*>
      cache;
  const auto key = std::make_pair(static_cast<const void*>(parent),
                                  static_cast<const void*>(child));
  auto it = cache.find(key);
  if (it == cache.end()) {
    const std::string name = std::string(parent) + kTimerEdgeSep + child;
    it = cache.emplace(key, Registry::instance().timer_cell(name.c_str()))
             .first;
  }
  return it->second;
}

}  // namespace

ScopedTimer::ScopedTimer(const char* name, TimerCell* cell)
    : name_(name), cell_(cell), t0_(now_ns()), traced_(trace::enabled()) {
  if (traced_) trace::begin(name_, t0_);
  t_timer_stack.push_back(name_);
}

ScopedTimer::ScopedTimer(const char* name)
    : ScopedTimer(name, Registry::instance().timer_cell(name)) {}

ScopedTimer::~ScopedTimer() {
  const std::uint64_t t1 = now_ns();
  cell_->add(t1 - t0_);
  t_timer_stack.pop_back();
  if (!t_timer_stack.empty()) {
    edge_cell(t_timer_stack.back(), name_)->add(t1 - t0_);
  }
  if (traced_) trace::end(name_, t1);
}

#endif  // SDEM_OBS

}  // namespace sdem::obs
