// Observability layer: hierarchical counters/gauges, RAII scoped timers,
// and (via obs/trace.hpp) a Chrome-trace event sink — the instrumentation
// spine behind `sdem_bench_runner --trace` and the per-experiment
// "counters" JSON section (docs/observability.md has the catalogue).
//
// Design constraints, in order:
//
//   * Zero cost when compiled out. The whole layer is gated on the
//     compile-time flag SDEM_OBS (CMake option, default ON). With
//     -DSDEM_OBS=OFF every SDEM_OBS_* macro expands to nothing — no
//     locals, no branches, no clock reads — and instrumented code is
//     token-identical to the pre-instrumentation source. The registry API
//     below stays declared either way so tools compile unchanged; it just
//     never sees a write.
//
//   * Deterministic merge. Counters and distributions live in thread-local
//     shards; snapshot() folds the shards into one name-sorted view whose
//     *values* do not depend on how work was scheduled. Integer counters
//     are commutative sums. Distributions carry count/min/max, a log2
//     histogram (integer buckets), and a fixed-point sum (2^-20 units, so
//     the fold is an integer addition — no float reassociation across
//     shards). A sweep that computes the same cells therefore reports the
//     same Domain::kDeterministic metrics at --jobs 1 and --jobs 8; the
//     determinism test diffs the JSON bytes.
//
//   * Runtime metrics are quarantined. Wall-clock timers, pool idle time,
//     and tasks-per-worker are real observability but inherently depend on
//     the job count and the clock; they register as Domain::kRuntime and
//     render under a separate "runtime" JSON key so the deterministic
//     "counters" section keeps its byte-equality contract.
//
// Threading contract: cell *creation* (first use of a name on a thread) and
// snapshot()/reset() take locks; cell *increments* are unsynchronized
// thread-local writes. Callers must quiesce instrumented work (e.g.
// ThreadPool::wait_idle) before snapshot()/reset() — exactly the moment a
// deterministic snapshot is meaningful anyway.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

#ifndef SDEM_OBS
#define SDEM_OBS 1
#endif

namespace sdem::obs {

/// Whether the instrumentation layer is compiled in (the CMake SDEM_OBS
/// option). Tools use this to omit empty counters sections in OFF builds.
constexpr bool compiled() { return SDEM_OBS != 0; }

/// Metric domain: deterministic values are pure functions of the work
/// performed (identical at any --jobs); runtime values depend on
/// scheduling and the clock.
enum class Domain { kDeterministic, kRuntime };

/// Fixed-point scale for distribution sums: 2^-20 units (~1e-6 absolute
/// resolution per sample). Integer accumulation keeps the merged sum
/// independent of how samples were sharded across threads.
inline constexpr double kDistFxScale = 1048576.0;  // 2^20

/// Log2 histogram geometry: bucket 0 holds v <= 0; bucket i in [1, 127]
/// holds v with clamp(ilogb(v), -63, 62) == i - 64.
inline constexpr int kDistBuckets = 128;

/// Separator of "parent<sep>child" timer-edge cell names (ASCII record
/// separator, so it can never appear in a plain timer name literal). Every
/// closing ScopedTimer also accounts its elapsed time to the edge cell of
/// its innermost enclosing timer on the same thread; the flamegraph-style
/// rollup (`sdem_bench_runner --timer-rollup`) rebuilds the timer tree
/// from these edges, and Snapshot::runtime_json skips them so the plain
/// "timers" JSON section keeps its flat schema.
inline constexpr char kTimerEdgeSep = '\x1e';

/// A distribution cell (thread-local shard storage). add() is the hot
/// path: one llround, one ilogb, four integer/double updates.
struct DistCell {
  std::uint64_t count = 0;
  std::int64_t sum_fx = 0;  ///< sum in kDistFxScale units
  double min = 0.0;
  double max = 0.0;
  std::uint64_t buckets[kDistBuckets] = {};

  void add(double v);
};

/// A timer cell (thread-local shard storage, Domain::kRuntime always).
struct TimerCell {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  void add(std::uint64_t ns) {
    ++count;
    total_ns += ns;
    if (ns > max_ns) max_ns = ns;
  }
};

/// Merged distribution in a snapshot: same stats, sparse histogram.
struct DistValue {
  std::uint64_t count = 0;
  std::int64_t sum_fx = 0;
  double min = 0.0;
  double max = 0.0;
  /// (bucket index - 64 = floor(log2(v)), count), ascending; index 0
  /// (nonpositive samples) is reported as exponent INT_MIN sentinel -9999.
  std::vector<std::pair<int, std::uint64_t>> buckets;

  double sum() const { return static_cast<double>(sum_fx) / kDistFxScale; }
  double mean() const { return count > 0 ? sum() / static_cast<double>(count) : 0.0; }
};

/// Name-sorted, shard-merged view of every metric.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, DistValue>> dists;
  std::vector<std::pair<std::string, std::uint64_t>> runtime_counters;
  std::vector<std::pair<std::string, DistValue>> runtime_dists;
  std::vector<std::pair<std::string, TimerCell>> timers;

  /// Deterministic section: counters and dists, one object keyed by metric
  /// name in lexicographic order (byte-identical at any job count).
  Json counters_json() const;
  /// Runtime section: runtime counters/dists plus timers (ms).
  Json runtime_json() const;

  /// Test helpers: value lookup by exact name (null when absent).
  const std::uint64_t* counter(const std::string& name) const;
  const DistValue* dist(const std::string& name) const;
};

// Sliding-window histogram cells (obs/window.hpp) share the registry
// shards; declared here so Registry can hand them out without obs.hpp
// depending on the window header.
struct WindowSpec;
struct WindowCell;
struct WindowValue;

class Registry {
 public:
  static Registry& instance();

  /// Resolve a named cell in the calling thread's shard. Stable pointer
  /// (valid for the thread's lifetime and across reset()). Cold path: the
  /// SDEM_OBS_* macros cache the result per call site per thread.
  std::uint64_t* counter_cell(const char* name, Domain domain);
  DistCell* dist_cell(const char* name, Domain domain);
  TimerCell* timer_cell(const char* name);
  /// Resolve a sliding-window histogram cell (obs/window.hpp). Windows are
  /// always runtime-tier (caller-supplied clock timestamps) and never
  /// appear in snapshot(); read them with window_values(). The first
  /// registration of a name fixes its WindowSpec.
  WindowCell* window_cell(const char* name, const WindowSpec& spec);

  /// Zero every cell in every shard (cells stay registered, so cached
  /// call-site pointers remain valid). Quiesce instrumented work first.
  void reset();

  /// Merge all shards into a name-sorted snapshot. Quiesce first.
  Snapshot snapshot() const;

  /// Merge every shard's window cells over the window ending at
  /// `as_of_ns`, name-sorted. Same quiesce contract as snapshot(). The
  /// fold is a commutative integer merge, so given identical (value,
  /// timestamp) samples the result is independent of thread count.
  std::vector<std::pair<std::string, WindowValue>> window_values(
      std::uint64_t as_of_ns) const;

  /// The calling thread's deterministic counters, name-sorted — the
  /// per-cell attribution primitive. A grid cell runs entirely on one
  /// worker thread, so reading this before and after the cell and diffing
  /// (bench_util.hpp's counter_delta) yields counts that are a pure
  /// function of the cell's work, independent of scheduling or job count.
  /// Only the shard lock is taken; other shards are never touched.
  std::vector<std::pair<std::string, std::uint64_t>> local_counters();

 private:
  Registry() = default;
  struct Shard;
  Shard& local_shard();

  mutable std::vector<void*> shards_;  // Shard*, kept alive for process life
  // (mutex lives in the .cpp to keep this header light; see obs.cpp)
};

/// Monotonic nanoseconds since an arbitrary process-wide epoch.
std::uint64_t now_ns();

/// Convenience wrappers used by the macros below.
inline std::uint64_t* counter_cell(const char* name, Domain d) {
  return Registry::instance().counter_cell(name, d);
}
inline DistCell* dist_cell(const char* name, Domain d) {
  return Registry::instance().dist_cell(name, d);
}
inline TimerCell* timer_cell(const char* name) {
  return Registry::instance().timer_cell(name);
}

#if SDEM_OBS

/// RAII scope timer: updates a TimerCell (runtime domain) and, when the
/// trace sink is recording, emits a Chrome B/E event pair on this thread.
class ScopedTimer {
 public:
  /// Call-site-cached cell (the SDEM_OBS_TIMER macro); `name` must be a
  /// string literal (it is stored by pointer in trace events).
  ScopedTimer(const char* name, TimerCell* cell);
  /// Dynamic-name scope (experiment-granularity; resolves the cell itself).
  /// `name` must outlive the trace sink's serialization.
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  TimerCell* cell_;
  std::uint64_t t0_;
  bool traced_;
};

#define SDEM_OBS_CONCAT_(a, b) a##b
#define SDEM_OBS_CONCAT(a, b) SDEM_OBS_CONCAT_(a, b)

/// Statement that exists only in instrumented builds (for locals that feed
/// a flush-at-end SDEM_OBS_COUNT).
#define SDEM_OBS_ONLY(...) __VA_ARGS__

/// Add `n` to a deterministic counter. `name` must be a string literal.
#define SDEM_OBS_COUNT(name, n)                                              \
  do {                                                                       \
    static thread_local std::uint64_t* sdem_obs_cell_ =                      \
        ::sdem::obs::counter_cell(name, ::sdem::obs::Domain::kDeterministic); \
    *sdem_obs_cell_ += static_cast<std::uint64_t>(n);                        \
  } while (0)
#define SDEM_OBS_INC(name) SDEM_OBS_COUNT(name, 1)

/// Runtime-domain counter (job-count/scheduling dependent).
#define SDEM_OBS_RUNTIME_COUNT(name, n)                                   \
  do {                                                                    \
    static thread_local std::uint64_t* sdem_obs_cell_ =                   \
        ::sdem::obs::counter_cell(name, ::sdem::obs::Domain::kRuntime);   \
    *sdem_obs_cell_ += static_cast<std::uint64_t>(n);                     \
  } while (0)

/// Add a sample to a deterministic distribution gauge.
#define SDEM_OBS_DIST(name, v)                                               \
  do {                                                                       \
    static thread_local ::sdem::obs::DistCell* sdem_obs_cell_ =              \
        ::sdem::obs::dist_cell(name, ::sdem::obs::Domain::kDeterministic);   \
    sdem_obs_cell_->add(v);                                                  \
  } while (0)

/// Runtime-domain distribution (e.g. worker idle time).
#define SDEM_OBS_RUNTIME_DIST(name, v)                                    \
  do {                                                                    \
    static thread_local ::sdem::obs::DistCell* sdem_obs_cell_ =           \
        ::sdem::obs::dist_cell(name, ::sdem::obs::Domain::kRuntime);      \
    sdem_obs_cell_->add(v);                                               \
  } while (0)

/// Scoped timer statement; `name` must be a string literal. Block scope
/// only (expands to a declaration).
#define SDEM_OBS_TIMER(name)                                              \
  static thread_local ::sdem::obs::TimerCell* SDEM_OBS_CONCAT(            \
      sdem_obs_tc_, __LINE__) = ::sdem::obs::timer_cell(name);            \
  ::sdem::obs::ScopedTimer SDEM_OBS_CONCAT(sdem_obs_timer_, __LINE__)(    \
      name, SDEM_OBS_CONCAT(sdem_obs_tc_, __LINE__))

#else  // !SDEM_OBS — every instrumentation site compiles to nothing.

class ScopedTimer {
 public:
  explicit ScopedTimer(const char*) {}
  ScopedTimer(const char*, TimerCell*) {}
};

#define SDEM_OBS_ONLY(...)
#define SDEM_OBS_COUNT(name, n) ((void)0)
#define SDEM_OBS_INC(name) ((void)0)
#define SDEM_OBS_RUNTIME_COUNT(name, n) ((void)0)
#define SDEM_OBS_DIST(name, v) ((void)0)
#define SDEM_OBS_RUNTIME_DIST(name, v) ((void)0)
#define SDEM_OBS_TIMER(name) ((void)0)

#endif  // SDEM_OBS

}  // namespace sdem::obs
