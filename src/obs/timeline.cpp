#include "obs/timeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace sdem::obs::timeline {

namespace {

struct Decision {
  double t0_s;
  double t1_s;
  double predicted_s;
  int chosen_state;
  Outcome outcome;
};

struct Pass {
  int island = 0;
  std::string label;
  std::vector<Decision> decisions;
};

struct State {
  std::mutex mu;
  std::vector<Pass> passes;
  // Caller-supplied counter tracks, name-sorted for deterministic export.
  std::map<std::string, std::vector<std::pair<double, double>>> counters;
};

State& state() {
  static State* s = new State();
  return *s;
}

std::atomic<bool> g_enabled{false};

const char* span_name(Outcome o) {
  switch (o) {
    case Outcome::kIdle: return "gap:idle";
    case Outcome::kCycle: return "gap:sleep";
    case Outcome::kMispredict: return "gap:mispredict";
    case Outcome::kAbort: return "gap:abort";
  }
  return "gap";
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kIdle: return "idle";
    case Outcome::kCycle: return "cycle";
    case Outcome::kMispredict: return "mispredict";
    case Outcome::kAbort: return "abort";
  }
  return "?";
}

// Simulated seconds -> Chrome microseconds.
double us(double t_s) { return t_s * 1e6; }

Json base_event(const std::string& name, const char* ph, int tid, double ts) {
  Json j = Json::object();
  j.set("name", Json(name));
  j.set("cat", Json(std::string("sdem-power")));
  j.set("ph", Json(std::string(ph)));
  j.set("pid", Json(1.0));  // pid 0 is the scoped-timer trace
  j.set("tid", Json(static_cast<double>(tid)));
  j.set("ts", Json(ts));
  return j;
}

Json metadata(const std::string& kind, int tid, const std::string& value) {
  Json j = base_event(kind, "M", tid, 0.0);
  Json args = Json::object();
  args.set("name", Json(value));
  j.set("args", std::move(args));
  return j;
}

Json counter_event(const std::string& track, int tid, double t_s,
                   double value) {
  Json j = base_event(track, "C", tid, us(t_s));
  Json args = Json::object();
  args.set("value", Json(value));
  j.set("args", std::move(args));
  return j;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void start() {
  clear();
  g_enabled.store(true, std::memory_order_release);
}

void stop() { g_enabled.store(false, std::memory_order_release); }

void clear() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.passes.clear();
  s.counters.clear();
}

int begin_pass(int island, const std::string& label) {
  if (!enabled()) return -1;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.passes.push_back(Pass{island, label, {}});
  return static_cast<int>(s.passes.size()) - 1;
}

void record_decision(int pass, double t0_s, double t1_s, double predicted_s,
                     int chosen_state, Outcome outcome) {
  if (pass < 0) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (static_cast<std::size_t>(pass) >= s.passes.size()) return;
  s.passes[static_cast<std::size_t>(pass)].decisions.push_back(
      Decision{t0_s, t1_s, predicted_s, chosen_state, outcome});
}

void counter_sample(const std::string& track, double t_s, double value) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.counters[track].emplace_back(t_s, value);
}

void append_events(Json& trace_events) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.passes.empty() && s.counters.empty()) return;
  trace_events.push_back(
      metadata("process_name", 0, "sdem power timeline"));
  // Decision spans: one tid per pass, chronological and non-overlapping by
  // construction (gaps are separated by busy intervals), hence well-nested.
  for (std::size_t p = 0; p < s.passes.size(); ++p) {
    const Pass& pass = s.passes[p];
    const int tid = static_cast<int>(p);
    std::string thread_name = "mem island " + std::to_string(pass.island);
    if (!pass.label.empty()) thread_name += " · " + pass.label;
    trace_events.push_back(metadata("thread_name", tid, thread_name));
    for (const Decision& d : pass.decisions) {
      Json b = base_event(span_name(d.outcome), "B", tid, us(d.t0_s));
      Json args = Json::object();
      args.set("predicted_s", Json(d.predicted_s));
      args.set("gap_s", Json(d.t1_s - d.t0_s));
      args.set("state", Json(static_cast<double>(d.chosen_state)));
      args.set("outcome", Json(std::string(outcome_name(d.outcome))));
      b.set("args", std::move(args));
      trace_events.push_back(std::move(b));
      trace_events.push_back(
          base_event(span_name(d.outcome), "E", tid, us(d.t1_s)));
    }
  }
  // Counter tracks, each on its own tid past the pass tids so every tid's
  // event stream stays monotone. Residency tracks first (one per island,
  // ascending; value = rung + 1 while asleep, 0 awake, derived from the
  // journal), then the caller-supplied tracks in name order. Samples are
  // time-sorted per track — several passes can feed one island's track.
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
      tracks;
  std::map<int, std::vector<std::pair<double, double>>> residency;
  for (const Pass& pass : s.passes) {
    for (const Decision& d : pass.decisions) {
      if (d.chosen_state < 0) continue;
      auto& r = residency[pass.island];
      r.emplace_back(d.t0_s, static_cast<double>(d.chosen_state + 1));
      r.emplace_back(d.t1_s, 0.0);
    }
  }
  for (auto& [island, samples] : residency) {
    tracks.emplace_back("mem/island" + std::to_string(island) +
                            "/sleep_state",
                        std::move(samples));
  }
  for (const auto& [track, samples] : s.counters) {
    tracks.emplace_back(track, samples);
  }
  int tid = static_cast<int>(s.passes.size());
  for (auto& [track, samples] : tracks) {
    std::stable_sort(samples.begin(), samples.end(),
                     [](const std::pair<double, double>& a,
                        const std::pair<double, double>& b) {
                       return a.first < b.first;
                     });
    for (const auto& [t_s, value] : samples) {
      trace_events.push_back(counter_event(track, tid, t_s, value));
    }
    ++tid;
  }
}

Json to_json() {
  Json events = Json::array();
  append_events(events);
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json(std::string("ms")));
  return doc;
}

bool write_file(const std::string& path) {
  stop();
  const std::string text = to_json().dump(2);  // dump(2) ends with '\n'
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace sdem::obs::timeline
