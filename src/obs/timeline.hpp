// Power-state timeline: a deterministic per-gap journal of governor/ladder
// sleep decisions, exported as Chrome-trace/Perfetto tracks
// (docs/observability.md §timeline).
//
// The ladder accounting in src/sched/energy.cpp and src/mem/ranks.cpp
// walks each memory island's idle gaps chronologically; when the timeline
// is recording, every decision (predicted idle, chosen rung, actual gap,
// outcome) is journaled under a *pass* — one pass per accounting walk per
// island. Serialization turns each pass into its own tid of well-nested
// B/E spans (one span per gap, annotated with prediction/actual/state),
// plus one "C" counter track per island showing sleep-state residency
// (value = rung + 1 while asleep, 0 awake) and any caller-supplied counter
// tracks (sdem_cli adds per-core CPU speed from the schedule).
//
// Timestamps are *simulated* seconds (reported as microseconds), not wall
// clock, so the journal is a pure function of the accounting sequence —
// byte-identical across reruns of a serial tool like `sdem_cli
// --power-trace`. Recording is off unless a tool enables it
// (`sdem_cli --power-trace out.json`, `sdem_bench_runner --trace`) and the
// journal only ever *records* — it never feeds back into the numerics, so
// the --stable byte-identity contract is untouched. The recording hooks in
// the accounting compile out under SDEM_OBS=OFF; this API stays declared
// (writing an empty-but-valid trace) so the tools build unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "support/json.hpp"

namespace sdem::obs::timeline {

/// What happened to one idle gap.
enum class Outcome {
  kIdle,        ///< no sleep chosen (rung < 0): gap charged at idle power
  kCycle,       ///< committed sleep, gap >= break-even: the bet paid off
  kMispredict,  ///< committed sleep but gap < xi_m[k]: cost more than idle
  kAbort,       ///< gap < exit latency: sleep cut short, pair energy sunk
};

/// Whether the journal is recording (one relaxed atomic load).
bool enabled();

/// Clear the journal and begin recording.
void start();

/// Stop recording; journaled passes stay available for serialization.
void stop();

/// Drop every journaled pass and counter track.
void clear();

/// Open a decision track for one accounting walk over one memory island.
/// Returns the pass id to hand to record_decision, or -1 when not
/// recording (record_decision ignores -1, so callers can stay branch-free).
int begin_pass(int island, const std::string& label);

/// Journal one gap decision on `pass`. Times are simulated seconds;
/// `predicted_s` < 0 means "no prediction" (clairvoyant or static
/// disciplines); `chosen_state` < 0 means the gap was left idle-awake.
void record_decision(int pass, double t0_s, double t1_s, double predicted_s,
                     int chosen_state, Outcome outcome);

/// Append one sample to a named counter track (e.g. "cpu/core0/speed").
/// `t_s` is simulated seconds. No-op while not recording.
void counter_sample(const std::string& track, double t_s, double value);

/// Serialize the journal as a standalone Chrome-trace document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
Json to_json();

/// Append the journal's events to an existing traceEvents array (the
/// shared-file path: trace::to_json() merges the timeline, pid 1, next to
/// the scoped-timer spans, pid 0).
void append_events(Json& trace_events);

/// stop() + serialize + write to `path`. Returns false on IO failure.
bool write_file(const std::string& path);

}  // namespace sdem::obs::timeline
