#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"
#include "obs/timeline.hpp"

namespace sdem::obs::trace {

namespace {

struct Event {
  const char* name;
  std::uint64_t ts_ns;
  char phase;  // 'B' or 'E'
};

struct ThreadBuffer {
  int tid = 0;
  std::vector<Event> events;
};

struct State {
  std::mutex mu;
  std::deque<ThreadBuffer> buffers;  // node-stable; owned for process life
  std::uint64_t epoch_ns = 0;
  int next_tid = 0;
};

State& state() {
  static State* s = new State();
  return *s;
}

std::atomic<bool> g_enabled{false};

ThreadBuffer& local_buffer() {
  static thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.emplace_back();
    buf = &s.buffers.back();
    buf->tid = s.next_tid++;
  }
  return *buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void start() {
  State& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& b : s.buffers) b.events.clear();
    s.epoch_ns = now_ns();
  }
  g_enabled.store(true, std::memory_order_release);
}

void stop() { g_enabled.store(false, std::memory_order_release); }

void begin(const char* name, std::uint64_t ts_ns) {
  local_buffer().events.push_back(Event{name, ts_ns, 'B'});
}

void end(const char* name, std::uint64_t ts_ns) {
  local_buffer().events.push_back(Event{name, ts_ns, 'E'});
}

Json to_json() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  Json events = Json::array();
  for (const auto& buf : s.buffers) {
    for (const Event& e : buf.events) {
      Json j = Json::object();
      j.set("name", Json(std::string(e.name)));
      j.set("cat", Json(std::string("sdem")));
      j.set("ph", Json(std::string(1, e.phase)));
      j.set("pid", Json(0.0));
      j.set("tid", Json(static_cast<double>(buf.tid)));
      // Chrome expects microseconds; fractional values keep full ns
      // precision.
      j.set("ts", Json(static_cast<double>(e.ts_ns - s.epoch_ns) * 1e-3));
      events.push_back(std::move(j));
    }
  }
  // Power-state timeline spans/counters ride in the same file (pid 1,
  // simulated-time timestamps) when the timeline was recording.
  timeline::append_events(events);
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json(std::string("ms")));
  return doc;
}

bool write_file(const std::string& path) {
  stop();
  const std::string text = to_json().dump(2);  // dump(2) ends with '\n'
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace sdem::obs::trace
