// Chrome-trace event sink (chrome://tracing / Perfetto "JSON Array
// Format"). Recording is off by default; `--trace out.json` on the tools
// calls start() before the workload and write_file() after. While
// recording, every ScopedTimer emits a B/E duration pair into a per-thread
// buffer; serialization assigns dense tids in thread-registration order
// and reports timestamps as microseconds since start().
//
// Event names are stored as `const char*` and must outlive serialization
// (string literals, or strings owned by a static registry).
#pragma once

#include <cstdint>
#include <string>

#include "support/json.hpp"

namespace sdem::obs::trace {

/// Whether a trace is currently being recorded (one relaxed atomic load —
/// the only cost a ScopedTimer pays for tracing when it is off).
bool enabled();

/// Clear buffered events and begin recording (sets the trace epoch).
void start();

/// Stop recording; buffered events stay available for serialization.
void stop();

/// Append a B (begin) / E (end) duration event on the calling thread.
/// `ts_ns` is an obs::now_ns() timestamp.
void begin(const char* name, std::uint64_t ts_ns);
void end(const char* name, std::uint64_t ts_ns);

/// Serialize buffered events as a Chrome-trace JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
Json to_json();

/// stop() + serialize + write to `path`. Returns false on IO failure.
bool write_file(const std::string& path);

}  // namespace sdem::obs::trace
