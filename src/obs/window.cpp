#include "obs/window.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace sdem::obs {

WindowCell::WindowCell(const WindowSpec& s) : spec(s) {
  if (spec.slice_ns == 0) spec.slice_ns = 1;
  if (spec.slices < 1) spec.slices = 1;
  ring.resize(static_cast<std::size_t>(spec.slices));
}

void WindowCell::add(double v, std::uint64_t ts_ns) {
  const std::uint64_t idx = ts_ns / spec.slice_ns;
  Slice& s = ring[static_cast<std::size_t>(idx % ring.size())];
  if (s.index != idx) {
    s = Slice{};  // lazy rotation: reclaim a stale (or fresh) slot
    s.index = idx;
  }
  if (s.count == 0 || v < s.min) s.min = v;
  if (s.count == 0 || v > s.max) s.max = v;
  ++s.count;
  s.sum_fx += static_cast<std::int64_t>(std::llround(v * kDistFxScale));
  int b = 0;
  if (v > 0.0 && std::isfinite(v)) {
    b = std::clamp(std::ilogb(v), -63, 62) + 64;  // [1, 126]
  } else if (v > 0.0) {
    b = kDistBuckets - 1;  // +inf overflow bucket
  }
  ++s.buckets[b];
}

void WindowCell::clear() {
  for (Slice& s : ring) s = Slice{};
}

void merge_window(WindowValue& into, const WindowCell& cell,
                  std::uint64_t as_of_ns) {
  into.spec = cell.spec;
  into.as_of_ns = as_of_ns;
  const std::uint64_t cur = as_of_ns / cell.spec.slice_ns;
  const std::uint64_t span = static_cast<std::uint64_t>(cell.spec.slices) - 1;
  const std::uint64_t lo = cur >= span ? cur - span : 0;
  // Rebuild the sparse bucket list through an ordered map, like merge_dist.
  std::map<int, std::uint64_t> merged;
  for (const auto& [e, c] : into.buckets) merged[e] += c;
  for (const WindowCell::Slice& s : cell.ring) {
    if (s.index == WindowCell::kEmptySlice || s.index < lo || s.index > cur) {
      continue;  // stale or future slot: aged out of the window
    }
    if (s.count == 0) continue;
    if (into.count == 0 || s.min < into.min) into.min = s.min;
    if (into.count == 0 || s.max > into.max) into.max = s.max;
    into.count += s.count;
    into.sum_fx += s.sum_fx;
    for (int i = 0; i < kDistBuckets; ++i) {
      if (s.buckets[i] > 0) merged[i == 0 ? -9999 : i - 64] += s.buckets[i];
    }
  }
  into.buckets.assign(merged.begin(), merged.end());
}

double WindowValue::percentile(double q) const {
  if (count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (const auto& [e, c] : buckets) {
    seen += c;
    if (seen >= target) {
      if (e == -9999) return 0.0;  // nonpositive-sample bucket
      return std::min(max, std::ldexp(1.0, e + 1));
    }
  }
  return max;
}

}  // namespace sdem::obs
