// Sliding-window log-bucket histograms — the *live* telemetry tier on top
// of the cumulative registry in obs.hpp (docs/observability.md §windowed).
//
// A WindowCell is a ring of time slices; each slice is a small log2
// histogram (count / min / max / fixed-point sum / 128 buckets) stamped
// with the *absolute* slice number it covers (timestamp / slice_ns).
// add() rotates lazily: when a sample lands in a ring slot whose stored
// slice number differs, the slot is cleared and re-claimed — no timers, no
// background sweeps. A merged WindowValue covers the last `slices` slice
// numbers ending at an explicit as-of instant, so stale slots age out by
// simply failing the range test at merge time.
//
// Cells live in the same per-thread registry shards as the cumulative
// cells (one WindowCell per name per thread, registered on first use) and
// merge with the same determinism discipline: integer counts, integer
// bucket sums, 2^-20 fixed-point value sums. Given the same (value,
// timestamp) samples, the merged WindowValue is byte-identical however the
// samples were distributed over threads — tests/test_window.cpp asserts
// the 1-thread vs 4-thread fold. Timestamps come from the caller
// (obs::now_ns() in the service), so windows are inherently runtime-tier:
// they never feed the deterministic "counters" JSON section and are
// excluded from every --stable surface.
//
// Like the rest of the layer, instrumentation *sites* compile out under
// SDEM_OBS=OFF; the types and registry API below stay declared so the
// tools build unchanged (they just never see a write).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace sdem::obs {

/// Window geometry. The covered span is `slices * slice_ns` ending at the
/// merge instant; the default (8 x 1 s) matches the service's METRICS verb
/// (docs/service.md). The first registration of a name fixes its spec.
struct WindowSpec {
  std::uint64_t slice_ns = 1'000'000'000ull;  ///< slice width (1 s)
  int slices = 8;                             ///< ring length

  std::uint64_t window_ns() const {
    return slice_ns * static_cast<std::uint64_t>(slices);
  }
};

/// Thread-local shard storage for one windowed histogram.
struct WindowCell {
  /// Slice-number sentinel for a never-used ring slot.
  static constexpr std::uint64_t kEmptySlice = ~0ull;

  struct Slice {
    std::uint64_t index = kEmptySlice;  ///< absolute slice number
    std::uint64_t count = 0;
    std::int64_t sum_fx = 0;  ///< sum in kDistFxScale units
    double min = 0.0;
    double max = 0.0;
    std::uint64_t buckets[kDistBuckets] = {};
  };

  WindowSpec spec;
  std::vector<Slice> ring;  ///< spec.slices slots, indexed by slice % slices

  explicit WindowCell(const WindowSpec& s = WindowSpec{});

  /// Record `v` at absolute time `ts_ns`, rotating the ring lazily. Same
  /// bucket geometry as DistCell::add. Unsynchronized thread-local write.
  void add(double v, std::uint64_t ts_ns);

  /// Drop every slice (Registry::reset path).
  void clear();
};

/// Shard-merged view of a window ending at `as_of_ns`.
struct WindowValue {
  WindowSpec spec;
  std::uint64_t as_of_ns = 0;
  std::uint64_t count = 0;
  std::int64_t sum_fx = 0;
  double min = 0.0;
  double max = 0.0;
  /// Sparse log2 histogram, ascending (exponent, count); exponent -9999 is
  /// the nonpositive-sample sentinel, matching DistValue.
  std::vector<std::pair<int, std::uint64_t>> buckets;

  double sum() const { return static_cast<double>(sum_fx) / kDistFxScale; }
  double mean() const {
    return count > 0 ? sum() / static_cast<double>(count) : 0.0;
  }
  /// Quantile estimate from the log2 histogram: the upper edge of the
  /// bucket holding the ceil(q*count)-th sample, clamped to the observed
  /// max (the same estimator STATS uses on cumulative dists). Empty window
  /// => 0.
  double percentile(double q) const;
};

/// Fold `cell`'s in-window slices (absolute slice numbers in
/// [as_of/slice_ns - slices + 1, as_of/slice_ns]) into `into`. Commutative
/// integer merge: any shard order yields the same value.
void merge_window(WindowValue& into, const WindowCell& cell,
                  std::uint64_t as_of_ns);

}  // namespace sdem::obs
