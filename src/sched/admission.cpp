#include "sched/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/obs.hpp"

namespace sdem {

double demand_bound(const TaskSet& tasks, double t1, double t2) {
  double w = 0.0;
  for (const auto& t : tasks.tasks()) {
    if (t.release >= t1 && t.deadline <= t2) w += t.work;
  }
  return w;
}

bool edf_schedulable_single_core(const TaskSet& tasks, double s_up) {
  if (tasks.empty()) return true;
  if (s_up <= 0.0) s_up = std::numeric_limits<double>::infinity();
  // Critical windows: [release_i, deadline_j] pairs.
  std::vector<double> starts, ends;
  for (const auto& t : tasks.tasks()) {
    starts.push_back(t.release);
    ends.push_back(t.deadline);
  }
  for (double t1 : starts) {
    for (double t2 : ends) {
      if (t2 <= t1) continue;
      if (demand_bound(tasks, t1, t2) > s_up * (t2 - t1) * (1.0 + 1e-12)) {
        return false;
      }
    }
  }
  return true;
}

bool schedulable_unbounded(const TaskSet& tasks, double s_up) {
  if (s_up <= 0.0) return tasks.validate().empty();
  return tasks.validate().empty() &&
         tasks.max_filled_speed() <= s_up * (1.0 + 1e-12);
}

AdmissionReport admit(const TaskSet& tasks, const SystemConfig& cfg) {
  AdmissionReport r;
  const double s_up = cfg.core.max_speed();
  for (const auto& t : tasks.tasks()) {
    const double f = t.filled_speed();
    if (f > r.max_filled_speed) {
      r.max_filled_speed = f;
      r.bottleneck_task = t.id;
    }
  }
  // Peak density over critical windows (informative even when unbounded).
  std::vector<double> starts, ends;
  for (const auto& t : tasks.tasks()) {
    starts.push_back(t.release);
    ends.push_back(t.deadline);
  }
  for (double t1 : starts) {
    for (double t2 : ends) {
      if (t2 <= t1) continue;
      const double d = demand_bound(tasks, t1, t2) / (t2 - t1);
      r.peak_density = std::max(r.peak_density, d);
    }
  }
  if (std::isfinite(s_up)) r.peak_density /= s_up;
  r.schedulable = schedulable_unbounded(tasks, cfg.core.s_up);
  SDEM_OBS_INC("admission/checks");
  if (!r.schedulable) SDEM_OBS_INC("admission/rejects");
  return r;
}

}  // namespace sdem
