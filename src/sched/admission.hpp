// Schedulability / admission analysis for the real-time substrate.
//
// Before asking any SDEM scheme for an energy-optimal schedule, a real
// system asks whether the task set is schedulable at all. This module
// provides the classical checks at the model's level of abstraction:
//
//   * per-task: filled speed within s_up (the paper's standing assumption);
//   * single core: EDF demand-bound function — work demanded in every
//     window [t1, t2] must fit s_up * (t2 - t1);
//   * unbounded cores: per-task check only (each task can have a core);
//   * C cores, partitioned: a safe sufficient condition via LPT-style
//     density packing.
#pragma once

#include <vector>

#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem {

/// EDF demand bound: total work of tasks fully contained in [t1, t2].
/// Evaluated over all critical windows (release/deadline pairs).
double demand_bound(const TaskSet& tasks, double t1, double t2);

/// Exact single-core EDF schedulability at speed cap s_up (preemptive).
bool edf_schedulable_single_core(const TaskSet& tasks, double s_up);

/// Unbounded cores: schedulable iff every filled speed fits s_up.
bool schedulable_unbounded(const TaskSet& tasks, double s_up);

struct AdmissionReport {
  bool schedulable = false;
  double max_filled_speed = 0.0;   ///< MHz, must be <= s_up
  double peak_density = 0.0;       ///< max over windows of demand/(len*s_up)
  int bottleneck_task = -1;        ///< task with the max filled speed
};

/// Full report for a task set against a config (unbounded-core model).
AdmissionReport admit(const TaskSet& tasks, const SystemConfig& cfg);

}  // namespace sdem
