#include "sched/energy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/obs.hpp"

namespace sdem {
namespace {

struct GapCosts {
  double idle = 0.0;       ///< time spent idle-awake in gaps
  double sleeps = 0.0;     ///< number of sleep cycles taken
  double asleep = 0.0;     ///< time spent asleep
  double sleep_min = 0.0;  ///< shortest single sleep interval (0 when none)
  double sleep_max = 0.0;  ///< longest single sleep interval
};

/// Decide idle-vs-sleep for every gap between consecutive busy intervals,
/// including leading/trailing gaps against the horizon when one is given.
/// Gaps are folded in place (leading, trailing, then internal in order)
/// rather than materialized. `is_memory` routes per-gap samples to the
/// memory sleep/idle gauges (the device the paper's race-vs-stretch
/// tension is about).
GapCosts account_gaps(const std::vector<Interval>& busy, double break_even,
                      SleepDiscipline disc, double horizon_lo,
                      double horizon_hi, bool is_memory) {
  GapCosts out;
  auto sleep_for = [&](double g) {
    out.sleeps += 1.0;
    out.asleep += g;
    if (out.sleeps == 1.0 || g < out.sleep_min) out.sleep_min = g;
    if (g > out.sleep_max) out.sleep_max = g;
    if (is_memory) SDEM_OBS_DIST("energy/memory_sleep_interval_s", g);
  };
  auto idle_for = [&](double g) {
    out.idle += g;
    if (is_memory) SDEM_OBS_DIST("energy/memory_idle_gap_s", g);
  };
  if (busy.empty()) {
    // A device that never runs: idle-awake across the horizon under kNever,
    // otherwise it sleeps through it (one cycle if the horizon is nonempty).
    if (horizon_hi > horizon_lo) {
      const double span = horizon_hi - horizon_lo;
      if (disc == SleepDiscipline::kNever) {
        idle_for(span);
      } else if (disc == SleepDiscipline::kAlways ||
                 (disc == SleepDiscipline::kOptimal && span >= break_even)) {
        sleep_for(span);
      } else {
        idle_for(span);
      }
    }
    return out;
  }

  auto consider = [&](double g) {
    if (g <= 0.0) return;
    switch (disc) {
      case SleepDiscipline::kNever:
        idle_for(g);
        break;
      case SleepDiscipline::kAlways:
        sleep_for(g);
        break;
      case SleepDiscipline::kOptimal:
        // Sleep iff the gap is at least the break-even time (with a free
        // transition, always sleep).
        if (break_even <= 0.0 || g >= break_even) {
          sleep_for(g);
        } else {
          idle_for(g);
        }
        break;
    }
  };

  if (horizon_hi > horizon_lo) {
    if (busy.front().lo > horizon_lo) consider(busy.front().lo - horizon_lo);
    if (horizon_hi > busy.back().hi) consider(horizon_hi - busy.back().hi);
  }
  for (std::size_t i = 1; i < busy.size(); ++i) {
    consider(busy[i].lo - busy[i - 1].hi);
  }
  return out;
}

}  // namespace

EnergyBreakdown compute_energy(const Schedule& sched, const SystemConfig& cfg,
                               const EnergyOptions& opts) {
  EnergyBreakdown e;

  for (const auto& s : sched.segments()) {
    e.core_dynamic += cfg.core.dynamic_power(s.speed) * s.duration();
  }

  if (cfg.core.alpha > 0.0) {
    const int cores = sched.cores_used();
    // Bucket segments by core in one pass instead of scanning the whole
    // schedule once per core; per-core interval order (segment order) and
    // the merge are exactly what core_busy(c) computes.
    std::vector<std::vector<Interval>> per_core(
        static_cast<std::size_t>(cores));
    for (const auto& s : sched.segments()) {
      if (s.core >= 0 && s.core < cores) {
        per_core[static_cast<std::size_t>(s.core)].push_back(
            {s.start, s.end});
      }
    }
    for (int c = 0; c < cores; ++c) {
      const auto busy =
          merge_intervals(std::move(per_core[static_cast<std::size_t>(c)]));
      for (const auto& i : busy) e.core_static += cfg.core.alpha * i.length();
      const auto gaps = account_gaps(busy, cfg.core.xi, opts.core_gaps,
                                     opts.horizon_lo, opts.horizon_hi,
                                     /*is_memory=*/false);
      e.core_idle += cfg.core.alpha * gaps.idle;
      e.core_transition += cfg.core.alpha * cfg.core.xi * gaps.sleeps;
    }
  }

  {
    const auto busy = sched.memory_busy();
    for (const auto& i : busy) {
      e.memory_active += cfg.memory.alpha_m * i.length();
    }
    const auto gaps = account_gaps(busy, cfg.memory.xi_m, opts.memory_gaps,
                                   opts.horizon_lo, opts.horizon_hi,
                                   /*is_memory=*/true);
    e.memory_idle += cfg.memory.alpha_m * gaps.idle;
    e.memory_transition +=
        cfg.memory.alpha_m * cfg.memory.xi_m * gaps.sleeps;
    e.memory_sleep_time = gaps.asleep;
    e.memory_sleep_cycles = gaps.sleeps;
    e.memory_sleep_min = gaps.sleep_min;
    e.memory_sleep_max = gaps.sleep_max;
  }

  return e;
}

double system_energy(const Schedule& sched, const SystemConfig& cfg,
                     const EnergyOptions& opts) {
  return compute_energy(sched, cfg, opts).system_total();
}

}  // namespace sdem
