#include "sched/energy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/obs.hpp"
#include "obs/timeline.hpp"

namespace sdem {
namespace {

struct GapCosts {
  double idle = 0.0;       ///< time spent idle-awake in gaps
  double sleeps = 0.0;     ///< number of sleep cycles taken
  double asleep = 0.0;     ///< time spent asleep
  double sleep_min = 0.0;  ///< shortest single sleep interval (0 when none)
  double sleep_max = 0.0;  ///< longest single sleep interval
};

/// Decide idle-vs-sleep for every gap between consecutive busy intervals,
/// including leading/trailing gaps against the horizon when one is given.
/// Gaps are folded in place (leading, trailing, then internal in order)
/// rather than materialized. `is_memory` routes per-gap samples to the
/// memory sleep/idle gauges (the device the paper's race-vs-stretch
/// tension is about).
GapCosts account_gaps(const std::vector<Interval>& busy, double break_even,
                      SleepDiscipline disc, double horizon_lo,
                      double horizon_hi, bool is_memory) {
  GapCosts out;
  auto sleep_for = [&](double g) {
    out.sleeps += 1.0;
    out.asleep += g;
    if (out.sleeps == 1.0 || g < out.sleep_min) out.sleep_min = g;
    if (g > out.sleep_max) out.sleep_max = g;
    if (is_memory) SDEM_OBS_DIST("energy/memory_sleep_interval_s", g);
  };
  auto idle_for = [&](double g) {
    out.idle += g;
    if (is_memory) SDEM_OBS_DIST("energy/memory_idle_gap_s", g);
  };
  if (busy.empty()) {
    // A device that never runs: idle-awake across the horizon under kNever,
    // otherwise it sleeps through it (one cycle if the horizon is nonempty).
    if (horizon_hi > horizon_lo) {
      const double span = horizon_hi - horizon_lo;
      if (disc == SleepDiscipline::kNever) {
        idle_for(span);
      } else if (disc == SleepDiscipline::kAlways || span >= break_even) {
        // kOptimal and (governor-less) kGovernor sleep iff the span covers
        // the break-even time.
        sleep_for(span);
      } else {
        idle_for(span);
      }
    }
    return out;
  }

  auto consider = [&](double g) {
    if (g <= 0.0) return;
    switch (disc) {
      case SleepDiscipline::kNever:
        idle_for(g);
        break;
      case SleepDiscipline::kAlways:
        sleep_for(g);
        break;
      case SleepDiscipline::kOptimal:
      case SleepDiscipline::kGovernor:  // no governor on this path: kOptimal
        // Sleep iff the gap is at least the break-even time (with a free
        // transition, always sleep).
        if (break_even <= 0.0 || g >= break_even) {
          sleep_for(g);
        } else {
          idle_for(g);
        }
        break;
    }
  };

  if (horizon_hi > horizon_lo) {
    if (busy.front().lo > horizon_lo) consider(busy.front().lo - horizon_lo);
    if (horizon_hi > busy.back().hi) consider(horizon_hi - busy.back().hi);
  }
  for (std::size_t i = 1; i < busy.size(); ++i) {
    consider(busy[i].lo - busy[i - 1].hi);
  }
  return out;
}

struct LadderCosts {
  double idle = 0.0;       ///< time spent idle-awake in gaps
  double sleeps = 0.0;     ///< completed sleep cycles (all states)
  double asleep = 0.0;     ///< time spent in some sleep state
  double sleep_min = 0.0;  ///< shortest single sleep interval (0 when none)
  double sleep_max = 0.0;  ///< longest single sleep interval
  double exit_latency = 0.0;  ///< sum of enter+exit latencies taken
  double mispredicts = 0.0;   ///< slept in a state whose xi exceeds the gap
  double aborts = 0.0;        ///< entries cut short before the pair fit
  std::vector<SleepStateBreakdown> per_state;
};

/// Ladder-path analogue of account_gaps. Decisions are made in
/// *chronological* gap order (the governor is an online predictor), then
/// the accounting sums are folded in the legacy order — leading, trailing,
/// then internal — so a depth-1 ladder reproduces the single-state totals
/// bit for bit.
///
/// Per-gap semantics for a chosen state k:
///   gap <  latency[k]  — abort: the pair doesn't fit; the gap is charged
///                        idle-awake and the pair energy is still paid.
///   gap >= latency[k]  — a completed cycle: residency power[k] for the
///                        whole gap plus the pair energy; counted as a
///                        mispredict when gap < xi[k] (the state loses to
///                        idling, but the decision was already taken).
LadderCosts account_ladder_gaps(const std::vector<Interval>& busy,
                                const SleepLadder& ladder,
                                SleepDiscipline disc,
                                MemoryGapGovernor* governor, double horizon_lo,
                                double horizon_hi, int tl_pass) {
  LadderCosts out;
  out.per_state.resize(static_cast<std::size_t>(ladder.depth()));

  // Chronological gap list: leading, internal..., trailing. gap_t0 carries
  // each gap's start time for the power-timeline journal.
  std::vector<double> gaps;
  std::vector<double> gap_t0;
  auto push_gap = [&](double t0, double g) {
    gaps.push_back(g);
    gap_t0.push_back(t0);
  };
  bool has_leading = false;
  bool has_trailing = false;
  if (busy.empty()) {
    if (horizon_hi > horizon_lo) {
      push_gap(horizon_lo, horizon_hi - horizon_lo);
      has_leading = true;
    }
  } else {
    if (horizon_hi > horizon_lo) {
      if (busy.front().lo > horizon_lo) {
        const double g = busy.front().lo - horizon_lo;
        if (g > 0.0) {
          push_gap(horizon_lo, g);
          has_leading = true;
        }
      }
    }
    for (std::size_t i = 1; i < busy.size(); ++i) {
      const double g = busy[i].lo - busy[i - 1].hi;
      if (g > 0.0) push_gap(busy[i - 1].hi, g);
    }
    if (horizon_hi > horizon_lo && horizon_hi > busy.back().hi) {
      const double g = horizon_hi - busy.back().hi;
      if (g > 0.0) {
        push_gap(busy.back().hi, g);
        has_trailing = true;
      }
    }
  }
  if (gaps.empty()) return out;

  // Decide every gap chronologically.
  std::vector<int> decision(gaps.size(), -1);
  std::vector<double> predicted;
  if (tl_pass >= 0) predicted.assign(gaps.size(), -1.0);
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    const double g = gaps[i];
    int k = -1;
    switch (disc) {
      case SleepDiscipline::kNever:
        break;
      case SleepDiscipline::kAlways:
        // Sleep-when-idle, oblivious: always the deepest state.
        k = ladder.depth() - 1;
        break;
      case SleepDiscipline::kOptimal:
        k = ladder.oracle_state(g);
        break;
      case SleepDiscipline::kGovernor:
        if (governor != nullptr) {
          k = governor->choose_state(ladder);
          if (k >= ladder.depth()) k = ladder.depth() - 1;
          if (k < -1) k = -1;
        } else {
          k = ladder.oracle_state(g);
        }
        break;
    }
    decision[i] = k;
    if (tl_pass >= 0) {
      // Clairvoyant disciplines "predicted" the true gap; a live governor
      // exposes the prediction its choice was based on.
      if (disc == SleepDiscipline::kOptimal ||
          (disc == SleepDiscipline::kGovernor && governor == nullptr)) {
        predicted[i] = g;
      } else if (disc == SleepDiscipline::kGovernor) {
        predicted[i] = governor->predict_gap();
      }
    }
    if (disc == SleepDiscipline::kGovernor && governor != nullptr) {
      const bool aborted =
          k >= 0 && g < ladder.state(k).latency;
      governor->observe(g, aborted);
    }
  }

#if SDEM_OBS
  // Journal every decision chronologically (the fold below runs in legacy
  // order, which would scramble the timeline).
  if (tl_pass >= 0) {
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      const double g = gaps[i];
      const int k = decision[i];
      obs::timeline::Outcome oc = obs::timeline::Outcome::kIdle;
      if (k >= 0) {
        const SleepState& s = ladder.state(k);
        oc = g < s.latency ? obs::timeline::Outcome::kAbort
             : (s.xi > 0.0 && g < s.xi)
                 ? obs::timeline::Outcome::kMispredict
                 : obs::timeline::Outcome::kCycle;
      }
      obs::timeline::record_decision(tl_pass, gap_t0[i], gap_t0[i] + g,
                                     predicted[i], k, oc);
    }
  }
#endif

  // Fold accounting in legacy order: leading, trailing, then internal.
  auto fold = [&](std::size_t i) {
    const double g = gaps[i];
    const int k = decision[i];
    if (k < 0) {
      out.idle += g;
      SDEM_OBS_DIST("energy/memory_idle_gap_s", g);
      return;
    }
    const SleepState& s = ladder.state(k);
    auto& ps = out.per_state[static_cast<std::size_t>(k)];
    if (g < s.latency) {
      // Abort: woken before the enter+exit pair fit inside the gap. The
      // pair energy is sunk; the residency saving never materializes.
      out.idle += g;
      out.aborts += 1.0;
      ps.aborts += 1.0;
      SDEM_OBS_INC("energy/ladder_aborts");
      SDEM_OBS_DIST("energy/memory_idle_gap_s", g);
      return;
    }
    out.sleeps += 1.0;
    out.asleep += g;
    if (out.sleeps == 1.0 || g < out.sleep_min) out.sleep_min = g;
    if (g > out.sleep_max) out.sleep_max = g;
    out.exit_latency += s.latency;
    ps.cycles += 1.0;
    ps.sleep_time += g;
    if (s.xi > 0.0 && g < s.xi) {
      out.mispredicts += 1.0;
      ps.mispredicts += 1.0;
      SDEM_OBS_INC("energy/ladder_mispredicts");
    }
    SDEM_OBS_DIST("energy/memory_sleep_interval_s", g);
    // Per-state residency gauges (docs/observability.md): fixed names for
    // the first rungs, one shared bucket for anything deeper.
    switch (k) {
      case 0: SDEM_OBS_DIST("energy/ladder_state0_sleep_s", g); break;
      case 1: SDEM_OBS_DIST("energy/ladder_state1_sleep_s", g); break;
      case 2: SDEM_OBS_DIST("energy/ladder_state2_sleep_s", g); break;
      case 3: SDEM_OBS_DIST("energy/ladder_state3_sleep_s", g); break;
      default: SDEM_OBS_DIST("energy/ladder_state_deep_sleep_s", g); break;
    }
  };

  const std::size_t n = gaps.size();
  std::size_t internal_lo = 0;
  std::size_t internal_hi = n;
  if (has_leading) {
    fold(0);
    internal_lo = 1;
  }
  if (has_trailing) {
    fold(n - 1);
    internal_hi = n - 1;
  }
  for (std::size_t i = internal_lo; i < internal_hi; ++i) fold(i);

  // One multiply per state, mirroring the legacy
  // `alpha_m * xi_m * sleeps` association.
  for (std::size_t k = 0; k < out.per_state.size(); ++k) {
    auto& ps = out.per_state[k];
    const SleepState& s = ladder.state(static_cast<int>(k));
    ps.residency_energy = s.power * ps.sleep_time;
    ps.transition_energy = s.pair_energy * (ps.cycles + ps.aborts);
  }
  return out;
}

}  // namespace

EnergyBreakdown compute_energy(const Schedule& sched, const SystemConfig& cfg,
                               const EnergyOptions& opts) {
  EnergyBreakdown e;

  for (const auto& s : sched.segments()) {
    e.core_dynamic += cfg.core.dynamic_power(s.speed) * s.duration();
  }

  if (cfg.core.alpha > 0.0) {
    const int cores = sched.cores_used();
    // Bucket segments by core in one pass instead of scanning the whole
    // schedule once per core; per-core interval order (segment order) and
    // the merge are exactly what core_busy(c) computes.
    std::vector<std::vector<Interval>> per_core(
        static_cast<std::size_t>(cores));
    for (const auto& s : sched.segments()) {
      if (s.core >= 0 && s.core < cores) {
        per_core[static_cast<std::size_t>(s.core)].push_back(
            {s.start, s.end});
      }
    }
    for (int c = 0; c < cores; ++c) {
      const auto busy =
          merge_intervals(std::move(per_core[static_cast<std::size_t>(c)]));
      for (const auto& i : busy) e.core_static += cfg.core.alpha * i.length();
      const auto gaps = account_gaps(busy, cfg.core.xi, opts.core_gaps,
                                     opts.horizon_lo, opts.horizon_hi,
                                     /*is_memory=*/false);
      e.core_idle += cfg.core.alpha * gaps.idle;
      e.core_transition += cfg.core.alpha * cfg.core.xi * gaps.sleeps;
    }
  }

  {
    const auto busy = sched.memory_busy();
    for (const auto& i : busy) {
      e.memory_active += cfg.memory.alpha_m * i.length();
    }
    const bool ladder_path = !cfg.memory.ladder.empty() ||
                             opts.memory_gaps == SleepDiscipline::kGovernor;
    if (!ladder_path) {
      const auto gaps = account_gaps(busy, cfg.memory.xi_m, opts.memory_gaps,
                                     opts.horizon_lo, opts.horizon_hi,
                                     /*is_memory=*/true);
      e.memory_idle += cfg.memory.alpha_m * gaps.idle;
      e.memory_transition +=
          cfg.memory.alpha_m * cfg.memory.xi_m * gaps.sleeps;
      e.memory_sleep_time = gaps.asleep;
      e.memory_sleep_cycles = gaps.sleeps;
      e.memory_sleep_min = gaps.sleep_min;
      e.memory_sleep_max = gaps.sleep_max;
    } else {
      // kGovernor on a ladder-less config runs against the paper's single
      // state as a depth-1 ladder (bit-identical accounting basis).
      SleepLadder fallback;
      if (cfg.memory.ladder.empty()) {
        fallback = SleepLadder::single(cfg.memory.alpha_m, cfg.memory.xi_m);
      }
      const SleepLadder& ladder =
          cfg.memory.ladder.empty() ? fallback : cfg.memory.ladder;
      int tl_pass = -1;
#if SDEM_OBS
      if (obs::timeline::enabled()) {
        tl_pass = obs::timeline::begin_pass(
            opts.timeline_island,
            opts.timeline_label != nullptr ? opts.timeline_label : "");
      }
#endif
      const auto costs = account_ladder_gaps(
          busy, ladder, opts.memory_gaps, opts.governor, opts.horizon_lo,
          opts.horizon_hi, tl_pass);
      e.memory_idle += cfg.memory.alpha_m * costs.idle;
      for (const auto& ps : costs.per_state) {
        e.memory_sleep_residency += ps.residency_energy;
        e.memory_transition += ps.transition_energy;
      }
      e.memory_sleep_time = costs.asleep;
      e.memory_sleep_cycles = costs.sleeps;
      e.memory_sleep_min = costs.sleep_min;
      e.memory_sleep_max = costs.sleep_max;
      e.memory_exit_latency = costs.exit_latency;
      e.governor_mispredicts = costs.mispredicts;
      e.governor_aborts = costs.aborts;
      e.memory_states = costs.per_state;
    }
  }

  return e;
}

double system_energy(const Schedule& sched, const SystemConfig& cfg,
                     const EnergyOptions& opts) {
  return compute_energy(sched, cfg, opts).system_total();
}

}  // namespace sdem
