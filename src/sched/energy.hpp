// Energy accounting (paper §3, §7).
//
// Model: a device (core or memory) is awake at both horizon boundaries (the
// system is on before the task set arrives and after it completes). While
// awake it burns static power (alpha / alpha_m); while executing, a core
// additionally burns dynamic power beta * s^lambda. Between busy intervals a
// device may stay idle-awake (static power for the whole gap) or take a
// sleep cycle: sleep is free but the transition pair costs
// static_power * break_even (paper's break-even-time formulation). With a
// zero break-even time, sleeping is free and instantaneous, which recovers
// the Section 3 model where idle cores and sleeping memory cost nothing.
//
// Gap disciplines:
//   kNever    — idle-awake through every gap (MBKP's memory)
//   kAlways   — sleep through every gap, however short (MBKPS's memory)
//   kOptimal  — sleep iff the gap length >= the break-even time; with a
//               sleep ladder, the clairvoyant per-gap energy minimum
//   kGovernor — a MemoryGapGovernor predicts each gap online and picks a
//               ladder state before seeing the gap's true length
//
// When `cfg.memory.ladder` is non-empty (or the discipline is kGovernor),
// gap accounting runs through the ladder path: per-state residency power,
// per-state transition pairs, and an abort path for gaps shorter than the
// chosen state's enter+exit latency. The empty-ladder kNever/kAlways/
// kOptimal path is the legacy single-state code, unchanged.
//
// Leading and trailing gaps (horizon edge to first/last busy interval) are
// gaps like any other when a horizon is given; otherwise the horizon
// defaults to the busy span and they are empty.
#pragma once

#include <vector>

#include "model/power.hpp"
#include "sched/schedule.hpp"

namespace sdem {

/// How a device treats an idle gap between busy intervals.
enum class SleepDiscipline {
  kNever,
  kAlways,
  kOptimal,
  kGovernor,
};

/// Online sleep-state selector for memory idle gaps. Implementations live
/// above the sched layer (src/sim/governor.*); energy accounting calls
/// `choose_state` once per gap in chronological order, then feeds the true
/// gap back via `observe` so the predictor can learn. Decisions must be a
/// pure function of the observation history for determinism.
class MemoryGapGovernor {
 public:
  virtual ~MemoryGapGovernor() = default;
  /// Ladder state to enter for the upcoming gap; -1 = stay idle-awake.
  virtual int choose_state(const SleepLadder& ladder) = 0;
  /// Feedback after the gap: its true length, and whether the chosen state
  /// had to be aborted (gap shorter than the state's enter+exit latency).
  virtual void observe(double gap, bool aborted) = 0;
  /// Predicted length of the gap backing the latest choose_state, for the
  /// power-timeline journal (obs/timeline.hpp); < 0 = no prediction
  /// exposed. Purely observational — accounting never branches on it.
  virtual double predict_gap() const { return -1.0; }
};

/// Per-ladder-state accounting (parallel to SleepLadder::states()).
struct SleepStateBreakdown {
  double sleep_time = 0.0;         ///< residency time in the state, s
  double cycles = 0.0;             ///< completed sleep cycles
  double aborts = 0.0;             ///< entries aborted before break-even fit
  double mispredicts = 0.0;        ///< committed cycles with gap < xi[k]
  double residency_energy = 0.0;   ///< power[k] * sleep_time
  double transition_energy = 0.0;  ///< pair_energy[k] * (cycles + aborts)
};

struct EnergyBreakdown {
  double core_dynamic = 0.0;      ///< beta * s^lambda * time
  double core_static = 0.0;       ///< alpha * execution time
  double core_idle = 0.0;         ///< alpha * idle-awake gap time
  double core_transition = 0.0;   ///< alpha * xi per sleep cycle
  double memory_active = 0.0;     ///< alpha_m * busy time
  double memory_idle = 0.0;       ///< alpha_m * idle-awake gap time
  double memory_transition = 0.0; ///< alpha_m * xi_m per sleep cycle
  double memory_sleep_time = 0.0; ///< total time the memory spends asleep

  // Memory sleep-interval statistics (paper §3's central quantity): how
  // many sleep cycles the discipline took and the shortest/longest single
  // interval. Zero when the memory never sleeps.
  double memory_sleep_cycles = 0.0;
  double memory_sleep_min = 0.0;
  double memory_sleep_max = 0.0;

  // Ladder-path extras; all zero on the legacy single-state path.
  double memory_sleep_residency = 0.0;  ///< sum of power[k] * time-in-state
  double memory_exit_latency = 0.0;     ///< time inside enter/exit pairs
  double governor_mispredicts = 0.0;    ///< slept in a state with xi > gap
  double governor_aborts = 0.0;         ///< woken before the pair completed
  /// Per-state residency/cycles/energy, parallel to the ladder's states;
  /// empty on the legacy path.
  std::vector<SleepStateBreakdown> memory_states;

  /// Mean sleep-interval length (0 when the memory never sleeps).
  double memory_sleep_mean() const {
    return memory_sleep_cycles > 0.0 ? memory_sleep_time / memory_sleep_cycles
                                     : 0.0;
  }

  double core_total() const {
    return core_dynamic + core_static + core_idle + core_transition;
  }
  double memory_total() const {
    return memory_active + memory_idle + memory_transition +
           memory_sleep_residency;
  }
  double system_total() const { return core_total() + memory_total(); }
};

struct EnergyOptions {
  SleepDiscipline core_gaps = SleepDiscipline::kOptimal;
  SleepDiscipline memory_gaps = SleepDiscipline::kOptimal;
  /// Accounting horizon; when hi <= lo it defaults to the schedule's busy
  /// span (leading/trailing gaps empty).
  double horizon_lo = 0.0;
  double horizon_hi = 0.0;
  /// Required when memory_gaps == kGovernor; consulted once per memory gap
  /// in chronological order. Not owned. Null + kGovernor falls back to
  /// kOptimal.
  MemoryGapGovernor* governor = nullptr;
  /// Power-timeline labeling (obs/timeline.hpp): the memory island this
  /// accounting covers and a display label for its decision track. Only
  /// read while the timeline is recording; never affects the numerics.
  int timeline_island = 0;
  const char* timeline_label = "";
};

/// Full accounting of `sched` under `cfg`.
EnergyBreakdown compute_energy(const Schedule& sched, const SystemConfig& cfg,
                               const EnergyOptions& opts = {});

/// Convenience: system-wide total.
double system_energy(const Schedule& sched, const SystemConfig& cfg,
                     const EnergyOptions& opts = {});

}  // namespace sdem
