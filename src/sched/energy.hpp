// Energy accounting (paper §3, §7).
//
// Model: a device (core or memory) is awake at both horizon boundaries (the
// system is on before the task set arrives and after it completes). While
// awake it burns static power (alpha / alpha_m); while executing, a core
// additionally burns dynamic power beta * s^lambda. Between busy intervals a
// device may stay idle-awake (static power for the whole gap) or take a
// sleep cycle: sleep is free but the transition pair costs
// static_power * break_even (paper's break-even-time formulation). With a
// zero break-even time, sleeping is free and instantaneous, which recovers
// the Section 3 model where idle cores and sleeping memory cost nothing.
//
// Gap disciplines:
//   kNever   — idle-awake through every gap (MBKP's memory)
//   kAlways  — sleep through every gap, however short (MBKPS's memory)
//   kOptimal — sleep iff the gap length >= the break-even time
//
// Leading and trailing gaps (horizon edge to first/last busy interval) are
// gaps like any other when a horizon is given; otherwise the horizon
// defaults to the busy span and they are empty.
#pragma once

#include "model/power.hpp"
#include "sched/schedule.hpp"

namespace sdem {

/// How a device treats an idle gap between busy intervals.
enum class SleepDiscipline {
  kNever,
  kAlways,
  kOptimal,
};

struct EnergyBreakdown {
  double core_dynamic = 0.0;      ///< beta * s^lambda * time
  double core_static = 0.0;       ///< alpha * execution time
  double core_idle = 0.0;         ///< alpha * idle-awake gap time
  double core_transition = 0.0;   ///< alpha * xi per sleep cycle
  double memory_active = 0.0;     ///< alpha_m * busy time
  double memory_idle = 0.0;       ///< alpha_m * idle-awake gap time
  double memory_transition = 0.0; ///< alpha_m * xi_m per sleep cycle
  double memory_sleep_time = 0.0; ///< total time the memory spends asleep

  // Memory sleep-interval statistics (paper §3's central quantity): how
  // many sleep cycles the discipline took and the shortest/longest single
  // interval. Zero when the memory never sleeps.
  double memory_sleep_cycles = 0.0;
  double memory_sleep_min = 0.0;
  double memory_sleep_max = 0.0;

  /// Mean sleep-interval length (0 when the memory never sleeps).
  double memory_sleep_mean() const {
    return memory_sleep_cycles > 0.0 ? memory_sleep_time / memory_sleep_cycles
                                     : 0.0;
  }

  double core_total() const {
    return core_dynamic + core_static + core_idle + core_transition;
  }
  double memory_total() const {
    return memory_active + memory_idle + memory_transition;
  }
  double system_total() const { return core_total() + memory_total(); }
};

struct EnergyOptions {
  SleepDiscipline core_gaps = SleepDiscipline::kOptimal;
  SleepDiscipline memory_gaps = SleepDiscipline::kOptimal;
  /// Accounting horizon; when hi <= lo it defaults to the schedule's busy
  /// span (leading/trailing gaps empty).
  double horizon_lo = 0.0;
  double horizon_hi = 0.0;
};

/// Full accounting of `sched` under `cfg`.
EnergyBreakdown compute_energy(const Schedule& sched, const SystemConfig& cfg,
                               const EnergyOptions& opts = {});

/// Convenience: system-wide total.
double system_energy(const Schedule& sched, const SystemConfig& cfg,
                     const EnergyOptions& opts = {});

}  // namespace sdem
