#include "sched/schedule.hpp"

#include <algorithm>

namespace sdem {

std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::erase_if(v, [](const Interval& i) { return i.length() <= 0.0; });
  std::sort(v.begin(), v.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> out;
  for (const auto& i : v) {
    if (!out.empty() && i.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, i.hi);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

int Schedule::cores_used() const {
  int m = 0;
  for (const auto& s : segments_) m = std::max(m, s.core + 1);
  return m;
}

std::vector<Interval> Schedule::core_busy(int core) const {
  std::vector<Interval> v;
  for (const auto& s : segments_) {
    if (s.core == core) v.push_back({s.start, s.end});
  }
  return merge_intervals(std::move(v));
}

std::vector<Interval> Schedule::memory_busy() const {
  std::vector<Interval> v;
  v.reserve(segments_.size());
  for (const auto& s : segments_) v.push_back({s.start, s.end});
  return merge_intervals(std::move(v));
}

double Schedule::memory_busy_time() const {
  double t = 0.0;
  for (const auto& i : memory_busy()) t += i.length();
  return t;
}

double Schedule::memory_sleep_time(double horizon_lo, double horizon_hi) const {
  double busy = 0.0;
  for (const auto& i : memory_busy()) {
    const double lo = std::max(i.lo, horizon_lo);
    const double hi = std::min(i.hi, horizon_hi);
    if (hi > lo) busy += hi - lo;
  }
  return (horizon_hi - horizon_lo) - busy;
}

double Schedule::start_time() const {
  double t = 0.0;
  bool first = true;
  for (const auto& s : segments_) {
    if (first || s.start < t) t = s.start;
    first = false;
  }
  return t;
}

double Schedule::end_time() const {
  double t = 0.0;
  for (const auto& s : segments_) t = std::max(t, s.end);
  return t;
}

double Schedule::task_work(int task_id) const {
  double w = 0.0;
  for (const auto& s : segments_) {
    if (s.task_id == task_id) w += s.work();
  }
  return w;
}

std::map<int, std::vector<Segment>> Schedule::by_task() const {
  std::map<int, std::vector<Segment>> m;
  for (const auto& s : segments_) m[s.task_id].push_back(s);
  for (auto& [id, v] : m) {
    std::sort(v.begin(), v.end(),
              [](const Segment& a, const Segment& b) { return a.start < b.start; });
  }
  return m;
}

std::vector<Segment> Schedule::core_segments(int core) const {
  std::vector<Segment> v;
  for (const auto& s : segments_) {
    if (s.core == core) v.push_back(s);
  }
  std::sort(v.begin(), v.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return v;
}

}  // namespace sdem
