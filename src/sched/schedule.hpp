// Schedule representation (paper §3).
//
// A schedule is a set of execution segments: task `task_id` runs on core
// `core` over [start, end) at constant speed `speed` (MHz). The offline
// schemes emit one segment per task (non-preemptive, non-migrating); the
// online simulator may emit several segments per task (preemption allowed,
// §6). Memory is busy whenever at least one core executes; the memory sleep
// time Delta is the complement inside the schedule horizon.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "model/task.hpp"

namespace sdem {

struct Segment {
  int task_id = 0;
  int core = 0;
  double start = 0.0;
  double end = 0.0;
  double speed = 0.0;  ///< MHz

  double duration() const { return end - start; }
  /// Megacycles executed in this segment.
  double work() const { return speed * duration(); }
};

/// Closed interval [lo, hi) with helpers.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double length() const { return hi - lo; }
};

/// Merge overlapping/touching intervals; input need not be sorted.
std::vector<Interval> merge_intervals(std::vector<Interval> v);

class Schedule {
 public:
  Schedule() = default;

  void add(Segment s) { segments_.push_back(s); }
  const std::vector<Segment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }
  std::size_t size() const { return segments_.size(); }

  /// Largest core index used + 1.
  int cores_used() const;

  /// Sorted, merged busy intervals of one core.
  std::vector<Interval> core_busy(int core) const;

  /// Sorted, merged busy intervals of the memory (union over cores).
  std::vector<Interval> memory_busy() const;

  /// Sum of memory busy interval lengths.
  double memory_busy_time() const;

  /// Memory sleep time inside [horizon_lo, horizon_hi]:
  /// horizon length minus memory busy time (busy clipped to the horizon).
  double memory_sleep_time(double horizon_lo, double horizon_hi) const;

  /// Earliest segment start / latest segment end (0 for empty schedules).
  double start_time() const;
  double end_time() const;

  /// Total megacycles executed for a task across all its segments.
  double task_work(int task_id) const;

  /// Map task_id -> its segments (sorted by start).
  std::map<int, std::vector<Segment>> by_task() const;

  /// Segments of one core sorted by start time.
  std::vector<Segment> core_segments(int core) const;

 private:
  std::vector<Segment> segments_;
};

}  // namespace sdem
