#include "sched/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sdem {
namespace {

/// Deterministic pleasant color per task id (golden-angle hue walk).
std::string task_color(int id) {
  const double hue = std::fmod(137.50776405003785 * id, 360.0);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "hsl(%.1f, 62%%, 58%%)", hue);
  return buf;
}

}  // namespace

std::string render_svg(const Schedule& sched, const SvgOptions& opts) {
  std::ostringstream os;
  const int cores = std::max(sched.cores_used(), 1);
  const int lanes = cores + (opts.show_memory ? 1 : 0);
  const int margin_left = 70, margin_top = opts.title.empty() ? 12 : 36;
  const int height = margin_top + lanes * (opts.lane_height + 6) + 28;
  const int plot_w = opts.width - margin_left - 12;

  const double t0 = sched.start_time();
  const double t1 = std::max(sched.end_time(), t0 + 1e-9);
  auto x_of = [&](double t) {
    return margin_left + (t - t0) / (t1 - t0) * plot_w;
  };
  auto y_of = [&](int lane) {
    return margin_top + lane * (opts.lane_height + 6);
  };

  char buf[512];
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opts.width
     << "\" height=\"" << height << "\" font-family=\"sans-serif\" "
     << "font-size=\"11\">\n";
  if (!opts.title.empty()) {
    os << "<text x=\"" << margin_left << "\" y=\"20\" font-size=\"14\">"
       << opts.title << "</text>\n";
  }

  // Lane backgrounds + labels.
  for (int c = 0; c < cores; ++c) {
    std::snprintf(buf, sizeof(buf),
                  "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
                  "fill=\"#f2f2f2\"/>\n<text x=\"6\" y=\"%d\">core %d</text>\n",
                  margin_left, y_of(c), plot_w, opts.lane_height,
                  y_of(c) + opts.lane_height - 8, c);
    os << buf;
  }

  // Segments.
  for (const auto& seg : sched.segments()) {
    const double x = x_of(seg.start);
    const double w = std::max(x_of(seg.end) - x, 1.0);
    std::snprintf(buf, sizeof(buf),
                  "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" "
                  "fill=\"%s\" stroke=\"#444\" stroke-width=\"0.4\">"
                  "<title>task %d: [%.4f, %.4f] s @ %.0f MHz</title>"
                  "</rect>\n",
                  x, y_of(seg.core), w, opts.lane_height,
                  task_color(seg.task_id).c_str(), seg.task_id, seg.start,
                  seg.end, seg.speed);
    os << buf;
    if (opts.show_labels && w > 24.0) {
      std::snprintf(buf, sizeof(buf),
                    "<text x=\"%.2f\" y=\"%d\" fill=\"#fff\">%d</text>\n",
                    x + 4.0, y_of(seg.core) + opts.lane_height - 8,
                    seg.task_id);
      os << buf;
    }
  }

  // Memory lane.
  if (opts.show_memory) {
    const int lane = cores;
    std::snprintf(buf, sizeof(buf),
                  "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
                  "fill=\"#fbfbfb\" stroke=\"#ccc\" stroke-width=\"0.5\"/>"
                  "\n<text x=\"6\" y=\"%d\">MEM</text>\n",
                  margin_left, y_of(lane), plot_w, opts.lane_height,
                  y_of(lane) + opts.lane_height - 8);
    os << buf;
    for (const auto& b : sched.memory_busy()) {
      const double x = x_of(b.lo);
      const double w = std::max(x_of(b.hi) - x, 1.0);
      std::snprintf(buf, sizeof(buf),
                    "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" "
                    "fill=\"#666\"/>\n",
                    x, y_of(lane), w, opts.lane_height);
      os << buf;
    }
  }

  // Time axis.
  const int axis_y = y_of(lanes) + 4;
  std::snprintf(buf, sizeof(buf),
                "<text x=\"%d\" y=\"%d\">%.4f s</text>\n"
                "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%.4f s</text>\n",
                margin_left, axis_y + 12, t0, margin_left + plot_w,
                axis_y + 12, t1);
  os << buf;

  os << "</svg>\n";
  return os.str();
}

}  // namespace sdem
