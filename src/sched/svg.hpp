// SVG Gantt export — publication-ready schedule figures.
//
// One lane per core plus a memory lane; each task gets a deterministic
// color from its id (golden-angle hue walk). The memory lane shows the busy
// union; gaps there are the common idle time the paper maximizes.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace sdem {

struct SvgOptions {
  int width = 900;        ///< px, time axis
  int lane_height = 26;   ///< px per core lane
  bool show_memory = true;
  bool show_labels = true;
  std::string title;      ///< optional header text
};

/// Render `sched` as a standalone SVG document.
std::string render_svg(const Schedule& sched, const SvgOptions& opts = {});

}  // namespace sdem
