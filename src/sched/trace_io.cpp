#include "sched/trace_io.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sdem {

std::string schedule_to_csv(const Schedule& sched) {
  std::ostringstream os;
  os << "task,core,start,end,speed\n";
  char buf[160];
  for (const auto& s : sched.segments()) {
    std::snprintf(buf, sizeof(buf), "%d,%d,%.17g,%.17g,%.17g\n", s.task_id,
                  s.core, s.start, s.end, s.speed);
    os << buf;
  }
  return os.str();
}

std::string task_set_to_csv(const TaskSet& tasks) {
  std::ostringstream os;
  os << "id,release,deadline,work\n";
  char buf[128];
  for (const auto& t : tasks.tasks()) {
    std::snprintf(buf, sizeof(buf), "%d,%.17g,%.17g,%.17g\n", t.id, t.release,
                  t.deadline, t.work);
    os << buf;
  }
  return os.str();
}

TaskSet task_set_from_csv(const std::string& csv) {
  TaskSet out;
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line) || line.rfind("id,release,deadline,work", 0) != 0) {
    throw std::invalid_argument("task_set_from_csv: missing header");
  }
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    Task t;
    if (std::sscanf(line.c_str(), "%d,%lf,%lf,%lf", &t.id, &t.release,
                    &t.deadline, &t.work) != 4) {
      throw std::invalid_argument("task_set_from_csv: bad row at line " +
                                  std::to_string(lineno));
    }
    out.add(t);
  }
  return out;
}

Schedule schedule_from_csv(const std::string& csv) {
  Schedule out;
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line) || line.rfind("task,core,start,end,speed", 0) != 0) {
    throw std::invalid_argument("schedule_from_csv: missing header");
  }
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    Segment s;
    if (std::sscanf(line.c_str(), "%d,%d,%lf,%lf,%lf", &s.task_id, &s.core,
                    &s.start, &s.end, &s.speed) != 5) {
      throw std::invalid_argument("schedule_from_csv: bad row at line " +
                                  std::to_string(lineno));
    }
    out.add(s);
  }
  return out;
}

std::string render_gantt(const Schedule& sched, const GanttOptions& opts) {
  std::ostringstream os;
  if (sched.empty()) return "(empty schedule)\n";
  const double t0 = sched.start_time();
  const double t1 = sched.end_time();
  const double span = std::max(t1 - t0, 1e-12);
  const int w = std::max(opts.width, 8);
  auto col = [&](double t) {
    const int c = static_cast<int>((t - t0) / span * w);
    return std::clamp(c, 0, w - 1);
  };

  const int cores = sched.cores_used();
  for (int c = 0; c < cores; ++c) {
    std::string lane(w, '.');
    for (const auto& seg : sched.core_segments(c)) {
      const int a = col(seg.start);
      const int b = std::max(col(seg.end), a);
      for (int i = a; i <= b; ++i) lane[i] = '#';
      // Label with the task id where there is room.
      const std::string id = std::to_string(seg.task_id);
      if (b - a + 1 > static_cast<int>(id.size())) {
        for (std::size_t k = 0; k < id.size(); ++k) {
          lane[a + 1 + static_cast<int>(k)] = id[k];
        }
      }
    }
    char head[24];
    std::snprintf(head, sizeof(head), "core %2d |", c);
    os << head << lane << "|\n";
  }
  if (opts.show_memory) {
    std::string lane(w, ' ');
    for (const auto& b : sched.memory_busy()) {
      const int a = col(b.lo);
      const int z = std::max(col(b.hi), a);
      for (int i = a; i <= z; ++i) lane[i] = '=';
    }
    os << "MEM     |" << lane << "|\n";
  }
  char foot[96];
  std::snprintf(foot, sizeof(foot),
                "        %.*s  t = [%.4f s, %.4f s]\n", 0, "", t0, t1);
  os << foot;
  return os.str();
}

}  // namespace sdem
