// Schedule export and visualization.
//
// * CSV round-trip of segment schedules (task, core, start, end, speed) —
//   lets benches and examples dump traces for external plotting;
// * an ASCII Gantt chart (one lane per core plus a memory lane) used by the
//   examples to make the "common idle time" visible at a glance.
#pragma once

#include <string>

#include "model/task.hpp"
#include "sched/schedule.hpp"

namespace sdem {

/// CSV with header "task,core,start,end,speed" (times in seconds, speeds in
/// MHz; full double precision).
std::string schedule_to_csv(const Schedule& sched);

/// Task-set CSV with header "id,release,deadline,work" (seconds /
/// megacycles, full precision) and its parser.
std::string task_set_to_csv(const TaskSet& tasks);
TaskSet task_set_from_csv(const std::string& csv);

/// Parse the schedule_to_csv format. Throws std::invalid_argument on
/// malformed input.
Schedule schedule_from_csv(const std::string& csv);

struct GanttOptions {
  int width = 72;          ///< characters across the time axis
  bool show_memory = true; ///< add a MEM lane showing the busy union
};

/// ASCII Gantt: one row per core; '#'-blocks for executions labelled with
/// task ids where they fit, '.' for idle. The MEM lane shows '=' while any
/// core is busy and ' ' while the memory could sleep.
std::string render_gantt(const Schedule& sched, const GanttOptions& opts = {});

}  // namespace sdem
