#include "sched/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace sdem {
namespace {

using Kind = ScheduleViolation::Kind;

/// Accumulates violations up to the configured cap.
class Collector {
 public:
  explicit Collector(std::size_t cap) : cap_(cap) {}

  bool full() const { return list_.size() >= cap_; }

  void add(Kind kind, int task_id, int core, double at,
           const std::string& message) {
    if (full()) return;
    list_.push_back({kind, task_id, core, at, message});
  }

  std::vector<ScheduleViolation> take() { return std::move(list_); }

 private:
  std::size_t cap_;
  std::vector<ScheduleViolation> list_;
};

}  // namespace

std::string to_string(ScheduleViolation::Kind k) {
  switch (k) {
    case Kind::kUnknownTask:
      return "unknown-task";
    case Kind::kEmptySegment:
      return "empty-segment";
    case Kind::kBadSpeed:
      return "bad-speed";
    case Kind::kBeforeRelease:
      return "before-release";
    case Kind::kAfterDeadline:
      return "after-deadline";
    case Kind::kBadCore:
      return "bad-core";
    case Kind::kTooManyCores:
      return "too-many-cores";
    case Kind::kWorkMismatch:
      return "work-mismatch";
    case Kind::kOverlap:
      return "overlap";
    case Kind::kMigration:
      return "migration";
    case Kind::kPreemption:
      return "preemption";
  }
  return "unknown";
}

std::string ValidationResult::describe() const {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += '\n';
    out += to_string(v.kind);
    out += ": ";
    out += v.message;
  }
  return out;
}

ValidationResult validate_schedule(const Schedule& sched, const TaskSet& tasks,
                                   const SystemConfig& cfg,
                                   const ValidateOptions& opts) {
  Collector out(opts.max_violations);

  std::map<int, const Task*> by_id;
  for (const auto& t : tasks.tasks()) by_id[t.id] = &t;

  // Segment sanity + window containment.
  for (const auto& s : sched.segments()) {
    std::ostringstream err;
    auto it = by_id.find(s.task_id);
    if (it == by_id.end()) {
      err << "segment references unknown task id " << s.task_id;
      out.add(Kind::kUnknownTask, s.task_id, s.core, s.start, err.str());
      continue;  // remaining checks need the task
    }
    const Task& t = *it->second;
    if (s.end <= s.start) {
      err << "task " << s.task_id << ": empty segment [" << s.start << ", "
          << s.end << "]";
      out.add(Kind::kEmptySegment, s.task_id, s.core, s.start, err.str());
    }
    if (s.speed <= 0.0) {
      err.str({});
      err << "task " << s.task_id << ": non-positive speed " << s.speed;
      out.add(Kind::kBadSpeed, s.task_id, s.core, s.start, err.str());
    } else if (opts.enforce_speed_bounds && cfg.core.s_up > 0.0 &&
               s.speed > cfg.core.s_up * (1.0 + opts.speed_tol)) {
      err.str({});
      err << "task " << s.task_id << ": speed " << s.speed << " exceeds s_up "
          << cfg.core.s_up;
      out.add(Kind::kBadSpeed, s.task_id, s.core, s.start, err.str());
    }
    if (s.start < t.release - opts.time_tol) {
      err.str({});
      err << "task " << s.task_id << ": starts at " << s.start
          << " before release " << t.release;
      out.add(Kind::kBeforeRelease, s.task_id, s.core, s.start, err.str());
    }
    if (s.end > t.deadline + opts.time_tol) {
      err.str({});
      err << "task " << s.task_id << ": ends at " << s.end
          << " after deadline " << t.deadline;
      out.add(Kind::kAfterDeadline, s.task_id, s.core, s.end, err.str());
    }
    if (s.core < 0) {
      err.str({});
      err << "task " << s.task_id << ": negative core index " << s.core;
      out.add(Kind::kBadCore, s.task_id, s.core, s.start, err.str());
    }
    if (out.full()) break;
  }

  // Bounded core count.
  if (!cfg.unbounded() && sched.cores_used() > cfg.num_cores) {
    std::ostringstream err;
    err << "schedule uses " << sched.cores_used() << " cores, config allows "
        << cfg.num_cores;
    out.add(Kind::kTooManyCores, -1, sched.cores_used() - 1, 0.0, err.str());
  }

  // Workload completion.
  for (const auto& t : tasks.tasks()) {
    if (out.full()) break;
    const double done = sched.task_work(t.id);
    if (std::abs(done - t.work) >
        opts.work_tol * std::max(1.0, std::abs(t.work))) {
      std::ostringstream err;
      err << "task " << t.id << ": executed " << done << " of " << t.work
          << " megacycles";
      out.add(Kind::kWorkMismatch, t.id, -1, t.release, err.str());
    }
  }

  // Per-core overlap.
  const int cores = sched.cores_used();
  for (int c = 0; c < cores && !out.full(); ++c) {
    const auto segs = sched.core_segments(c);
    for (std::size_t i = 1; i < segs.size(); ++i) {
      if (segs[i].start < segs[i - 1].end - opts.time_tol) {
        std::ostringstream err;
        err << "core " << c << ": tasks " << segs[i - 1].task_id << " and "
            << segs[i].task_id << " overlap at t=" << segs[i].start;
        out.add(Kind::kOverlap, segs[i].task_id, c, segs[i].start, err.str());
        if (out.full()) break;
      }
    }
  }

  // Non-migration / non-preemption.
  for (const auto& [id, segs] : sched.by_task()) {
    if (out.full()) break;
    if (opts.require_non_migrating) {
      for (const auto& s : segs) {
        if (s.core != segs.front().core) {
          std::ostringstream err;
          err << "task " << id << " migrates between cores "
              << segs.front().core << " and " << s.core;
          out.add(Kind::kMigration, id, s.core, s.start, err.str());
          break;
        }
      }
    }
    if (opts.require_non_preemptive) {
      for (std::size_t i = 1; i < segs.size(); ++i) {
        if (segs[i].start > segs[i - 1].end + opts.time_tol) {
          std::ostringstream err;
          err << "task " << id << " is preempted at t=" << segs[i - 1].end;
          out.add(Kind::kPreemption, id, segs[i].core, segs[i - 1].end,
                  err.str());
          break;
        }
      }
    }
  }

  ValidationResult res;
  res.violations = out.take();
  res.ok = res.violations.empty();
  if (!res.ok) res.error = res.violations.front().message;
  return res;
}

}  // namespace sdem
