#include "sched/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace sdem {
namespace {

ValidationResult fail(const std::string& msg) { return {false, msg}; }

}  // namespace

ValidationResult validate_schedule(const Schedule& sched, const TaskSet& tasks,
                                   const SystemConfig& cfg,
                                   const ValidateOptions& opts) {
  std::map<int, const Task*> by_id;
  for (const auto& t : tasks.tasks()) by_id[t.id] = &t;

  // Segment sanity + window containment.
  for (const auto& s : sched.segments()) {
    std::ostringstream err;
    auto it = by_id.find(s.task_id);
    if (it == by_id.end()) {
      err << "segment references unknown task id " << s.task_id;
      return fail(err.str());
    }
    const Task& t = *it->second;
    if (s.end <= s.start) {
      err << "task " << s.task_id << ": empty segment [" << s.start << ", "
          << s.end << "]";
      return fail(err.str());
    }
    if (s.speed <= 0.0) {
      err << "task " << s.task_id << ": non-positive speed " << s.speed;
      return fail(err.str());
    }
    if (opts.enforce_speed_bounds && cfg.core.s_up > 0.0 &&
        s.speed > cfg.core.s_up * (1.0 + opts.speed_tol)) {
      err << "task " << s.task_id << ": speed " << s.speed << " exceeds s_up "
          << cfg.core.s_up;
      return fail(err.str());
    }
    if (s.start < t.release - opts.time_tol) {
      err << "task " << s.task_id << ": starts at " << s.start
          << " before release " << t.release;
      return fail(err.str());
    }
    if (s.end > t.deadline + opts.time_tol) {
      err << "task " << s.task_id << ": ends at " << s.end
          << " after deadline " << t.deadline;
      return fail(err.str());
    }
    if (s.core < 0) {
      err << "task " << s.task_id << ": negative core index " << s.core;
      return fail(err.str());
    }
  }

  // Bounded core count.
  if (!cfg.unbounded() && sched.cores_used() > cfg.num_cores) {
    std::ostringstream err;
    err << "schedule uses " << sched.cores_used() << " cores, config allows "
        << cfg.num_cores;
    return fail(err.str());
  }

  // Workload completion.
  for (const auto& t : tasks.tasks()) {
    const double done = sched.task_work(t.id);
    if (std::abs(done - t.work) >
        opts.work_tol * std::max(1.0, std::abs(t.work))) {
      std::ostringstream err;
      err << "task " << t.id << ": executed " << done << " of " << t.work
          << " megacycles";
      return fail(err.str());
    }
  }

  // Per-core overlap.
  const int cores = sched.cores_used();
  for (int c = 0; c < cores; ++c) {
    const auto segs = sched.core_segments(c);
    for (std::size_t i = 1; i < segs.size(); ++i) {
      if (segs[i].start < segs[i - 1].end - opts.time_tol) {
        std::ostringstream err;
        err << "core " << c << ": tasks " << segs[i - 1].task_id << " and "
            << segs[i].task_id << " overlap at t=" << segs[i].start;
        return fail(err.str());
      }
    }
  }

  // Non-migration / non-preemption.
  for (const auto& [id, segs] : sched.by_task()) {
    if (opts.require_non_migrating) {
      for (const auto& s : segs) {
        if (s.core != segs.front().core) {
          std::ostringstream err;
          err << "task " << id << " migrates between cores "
              << segs.front().core << " and " << s.core;
          return fail(err.str());
        }
      }
    }
    if (opts.require_non_preemptive) {
      for (std::size_t i = 1; i < segs.size(); ++i) {
        if (segs[i].start > segs[i - 1].end + opts.time_tol) {
          std::ostringstream err;
          err << "task " << id << " is preempted at t=" << segs[i - 1].end;
          return fail(err.str());
        }
      }
    }
  }

  return {true, {}};
}

}  // namespace sdem
