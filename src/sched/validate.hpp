// Schedule feasibility validation (paper §3).
//
// A feasible schedule: every task's workload is fully executed inside its
// feasible region [r_i, d_i], no two segments overlap on the same core,
// and every speed is positive and within the core's speed range. The offline
// schemes are additionally non-preemptive (one segment per task) and
// non-migrating (all of a task's segments on one core).
#pragma once

#include <string>

#include "model/power.hpp"
#include "model/task.hpp"
#include "sched/schedule.hpp"

namespace sdem {

struct ValidateOptions {
  double work_tol = 1e-6;    ///< relative tolerance on executed workload
  double time_tol = 1e-9;    ///< absolute slack on window/overlap checks (s)
  double speed_tol = 1e-6;   ///< relative slack on the s_up check
  bool require_non_preemptive = false;  ///< one contiguous run per task
  bool require_non_migrating = true;    ///< all segments of a task on 1 core
  bool enforce_speed_bounds = true;     ///< check speed <= s_up
};

struct ValidationResult {
  bool ok = false;
  std::string error;  ///< empty when ok

  explicit operator bool() const { return ok; }
};

/// Validate `sched` against `tasks` under `cfg`.
ValidationResult validate_schedule(const Schedule& sched, const TaskSet& tasks,
                                   const SystemConfig& cfg,
                                   const ValidateOptions& opts = {});

}  // namespace sdem
