// Schedule feasibility validation (paper §3).
//
// A feasible schedule: every task's workload is fully executed inside its
// feasible region [r_i, d_i], no two segments overlap on the same core,
// and every speed is positive and within the core's speed range. The offline
// schemes are additionally non-preemptive (one segment per task) and
// non-migrating (all of a task's segments on one core).
//
// The validator is the primary invariant of the differential fuzzer
// (src/testing/invariants.hpp), so it reports *every* violation it finds —
// not just the first — with enough structure (kind, task, core, time) for
// the shrinker to tell whether a reduced case still fails the same way.
#pragma once

#include <string>
#include <vector>

#include "model/power.hpp"
#include "model/task.hpp"
#include "sched/schedule.hpp"

namespace sdem {

struct ValidateOptions {
  double work_tol = 1e-6;    ///< relative tolerance on executed workload
  double time_tol = 1e-9;    ///< absolute slack on window/overlap checks (s)
  double speed_tol = 1e-6;   ///< relative slack on the s_up check
  bool require_non_preemptive = false;  ///< one contiguous run per task
  bool require_non_migrating = true;    ///< all segments of a task on 1 core
  bool enforce_speed_bounds = true;     ///< check speed <= s_up
  std::size_t max_violations = 16;      ///< stop collecting past this many
};

/// One feasibility violation, structured so callers can match on the class
/// of failure (the fuzz shrinker keeps only reductions that preserve the
/// original kind) and locate it in time.
struct ScheduleViolation {
  enum class Kind {
    kUnknownTask,      ///< segment references a task id not in the set
    kEmptySegment,     ///< end <= start
    kBadSpeed,         ///< speed <= 0 or speed > s_up (1 + tol)
    kBeforeRelease,    ///< segment starts before the task's release
    kAfterDeadline,    ///< segment ends after the task's deadline
    kBadCore,          ///< negative core index
    kTooManyCores,     ///< bounded config exceeded
    kWorkMismatch,     ///< executed megacycles != w_i within tolerance
    kOverlap,          ///< two segments overlap on one core
    kMigration,        ///< task segments on more than one core
    kPreemption,       ///< gap between a task's segments
  };

  Kind kind = Kind::kEmptySegment;
  int task_id = -1;   ///< offending task (-1 when not task-specific)
  int core = -1;      ///< offending core (-1 when not core-specific)
  double at = 0.0;    ///< time the violation anchors to (0 when n/a)
  std::string message;  ///< human-readable detail
};

/// Short identifier for a violation kind ("overlap", "work-mismatch", ...).
std::string to_string(ScheduleViolation::Kind k);

struct ValidationResult {
  bool ok = false;
  std::string error;  ///< first violation's message; empty when ok
  std::vector<ScheduleViolation> violations;  ///< all (up to max_violations)

  explicit operator bool() const { return ok; }

  /// Every violation message, one per line (empty when ok).
  std::string describe() const;
};

/// Validate `sched` against `tasks` under `cfg`. Collects every violation
/// (up to opts.max_violations); `ok` iff none were found.
ValidationResult validate_schedule(const Schedule& sched, const TaskSet& tasks,
                                   const SystemConfig& cfg,
                                   const ValidateOptions& opts = {});

}  // namespace sdem
