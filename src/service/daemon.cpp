#include "service/daemon.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sdem::service {

// ---------------------------------------------------------------------------
// ResponseWriter

Daemon::ResponseWriter::ResponseWriter() {
  conns_[0] = ConnState{};  // stdout pseudo-connection, fd -1
}

int Daemon::ResponseWriter::add_conn(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_id_++;
  conns_[id].fd = fd;
  return id;
}

void Daemon::ResponseWriter::close_conn(int id) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    fd = it->second.fd;
    conns_.erase(it);  // later deposits for this id are discarded
  }
  if (fd >= 0) ::close(fd);
}

void Daemon::ResponseWriter::deposit(int conn_id, std::uint64_t conn_seq,
                                     std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection gone: best-effort drop
  ConnState& c = it->second;
  c.held.emplace(conn_seq, std::move(line));
  while (!c.held.empty() && c.held.begin()->first == c.next) {
    write_line(c.fd, c.held.begin()->second);
    c.held.erase(c.held.begin());
    ++c.next;
  }
}

void Daemon::ResponseWriter::write_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  if (fd < 0) {
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fflush(stdout);
    return;
  }
  // Best effort: a disconnected client just loses its responses (SIGPIPE
  // is ignored; EPIPE is expected).
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// Daemon

Daemon::Daemon(DaemonOptions opt) : opt_(std::move(opt)) {
  if (opt_.acceptors < 1) opt_.acceptors = 1;
}

Daemon::~Daemon() {
  // run() cleans up after itself; nothing survives it but the Service,
  // whose destructor flushes and drains.
}

int Daemon::port() {
  std::unique_lock<std::mutex> lock(port_mu_);
  port_cv_.wait(lock, [this] { return bound_port_ != -2; });
  return bound_port_;
}

void Daemon::request_stop() {
  stop_.store(true, std::memory_order_release);
  metrics_cv_.notify_all();
  // run() builds and tears down acceptors_ under the same lock, so every
  // wake fd seen here is live (before startup the vector is just empty).
  std::lock_guard<std::mutex> lock(acceptors_mu_);
  for (const auto& a : acceptors_) {
    if (a->wake_wr >= 0) wake(*a);
  }
}

std::uint64_t Daemon::requests_processed() const {
  return svc_ != nullptr ? svc_->requests_processed() : 0;
}

void Daemon::wake(Acceptor& a) {
  const char b = 1;
  for (;;) {
    const ssize_t n = ::write(a.wake_wr, &b, 1);
    if (n >= 0 || errno != EINTR) return;  // full pipe already wakes
  }
}

int Daemon::run() {
  ServiceOptions sopt;
  sopt.policy = opt_.policy;
  sopt.shards = opt_.shards;
  sopt.producers = opt_.acceptors;
  sopt.eager = true;
  sopt.queue_capacity = opt_.queue_capacity;
  if (opt_.shards > 1) pool_ = std::make_unique<ThreadPool>(opt_.shards);
  svc_ = std::make_unique<Service>(
      sopt, pool_.get(), [this](const Request& r, Json resp) {
        writer_.deposit(r.conn, r.conn_seq, resp.dump(0));
      });

  if (opt_.port >= 0 && !open_listener()) {
    std::lock_guard<std::mutex> lock(port_mu_);
    bound_port_ = -1;
    port_cv_.notify_all();
    return 1;
  }
  if (opt_.port < 0) {
    std::lock_guard<std::mutex> lock(port_mu_);
    bound_port_ = -1;
    port_cv_.notify_all();
  }

  {
    std::lock_guard<std::mutex> lock(acceptors_mu_);
    acceptors_.clear();
    for (int i = 0; i < opt_.acceptors; ++i) {
      auto a = std::make_unique<Acceptor>();
      a->index = i;
      int pipefd[2];
      if (::pipe(pipefd) != 0) {
        std::perror("pipe");
        return 1;
      }
      a->wake_rd = pipefd[0];
      a->wake_wr = pipefd[1];
      // Non-blocking read side: draining the pipe must never block the
      // loop.
      ::fcntl(a->wake_rd, F_SETFL,
              ::fcntl(a->wake_rd, F_GETFL, 0) | O_NONBLOCK);
      acceptors_.push_back(std::move(a));
    }
  }
  if (stop_.load(std::memory_order_acquire)) {
    // request_stop() raced with startup; make sure every loop exits fast.
    for (const auto& a : acceptors_) wake(*a);
  }

  if (opt_.metrics_interval_s > 0.0 && !opt_.metrics_path.empty()) {
    metrics_thread_ = std::thread([this] { metrics_loop(); });
  }

  std::vector<std::thread> threads;
  for (int i = 1; i < opt_.acceptors; ++i) {
    threads.emplace_back([this, i] { acceptor_loop(*acceptors_[i]); });
  }
  acceptor_loop(*acceptors_[0]);
  for (std::thread& t : threads) t.join();

  if (metrics_thread_.joinable()) {
    // The lead loop can exit without request_stop() (stdin EOF with no TCP
    // is routed through it, but "nothing to serve" is not).
    stop_.store(true, std::memory_order_release);
    metrics_cv_.notify_all();
    metrics_thread_.join();
  }

  svc_->drain_all();
  {
    // Closing the wake fds and freeing the vector under the lock keeps a
    // concurrent request_stop() from writing to a recycled fd or walking
    // freed Acceptors.
    std::lock_guard<std::mutex> lock(acceptors_mu_);
    for (const auto& a : acceptors_) {
      for (auto& [fd, c] : a->conns) writer_.close_conn(c.id);
      std::lock_guard<std::mutex> inbox_lock(a->inbox_mu);
      for (Conn& c : a->inbox) writer_.close_conn(c.id);
      ::close(a->wake_rd);
      ::close(a->wake_wr);
    }
    acceptors_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  return 0;
}

bool Daemon::open_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    std::perror("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  {
    std::lock_guard<std::mutex> lock(port_mu_);
    bound_port_ = static_cast<int>(ntohs(addr.sin_port));
    port_cv_.notify_all();
  }
  std::fprintf(stderr, "listening on 127.0.0.1:%d acceptors=%d\n",
               bound_port_, opt_.acceptors);
  return true;
}

void Daemon::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN &c: accepted everything pending
    }
    Conn c;
    c.fd = fd;
    c.id = writer_.add_conn(fd);
    const int target = next_acceptor_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<int>(acceptors_.size());
    Acceptor& dst = *acceptors_[static_cast<std::size_t>(target)];
    if (target == 0) {
      dst.conns.emplace(fd, std::move(c));
    } else {
      {
        std::lock_guard<std::mutex> lock(dst.inbox_mu);
        dst.inbox.push_back(std::move(c));
      }
      wake(dst);
    }
    // One accept per POLLIN keeps latency fair across acceptors; the
    // listener stays readable if more are queued.
    return;
  }
}

void Daemon::acceptor_loop(Acceptor& a) {
  const bool lead = a.index == 0;
  bool stdin_open = lead && opt_.use_stdin;
  Conn stdin_conn;  // id 0 (stdout), fd 0
  stdin_conn.id = 0;
  stdin_conn.fd = 0;

  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({a.wake_rd, POLLIN, 0});
    if (stdin_open) fds.push_back({0, POLLIN, 0});
    if (lead && listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, c] : a.conns) fds.push_back({fd, POLLIN, 0});
    if (lead && fds.size() == 1 && listen_fd_ < 0) break;  // nothing to serve
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;  // signal: retry silently
      std::perror("poll");
      break;
    }
    for (const pollfd& p : fds) {
      // POLLHUP/POLLERR without POLLIN can still have buffered data; read()
      // tells us definitively, so treat all three as "try a read".
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (p.fd == a.wake_rd) {
        char scratch[256];
        while (::read(a.wake_rd, scratch, sizeof(scratch)) > 0) {
        }
        std::vector<Conn> incoming;
        {
          std::lock_guard<std::mutex> lock(a.inbox_mu);
          incoming.swap(a.inbox);
        }
        for (Conn& c : incoming) a.conns.emplace(c.fd, std::move(c));
      } else if (stdin_open && p.fd == 0) {
        if (!read_chunk(a, 0, stdin_conn)) {
          flush_partial(a, stdin_conn);
          stdin_open = false;
          // stdin EOF with no TCP surface: drain and exit cleanly.
          if (listen_fd_ < 0) request_stop();
        }
      } else if (lead && p.fd == listen_fd_) {
        accept_clients();
      } else {
        auto it = a.conns.find(p.fd);
        if (it == a.conns.end()) continue;
        if (!read_chunk(a, p.fd, it->second)) {
          flush_partial(a, it->second);
          writer_.close_conn(it->second.id);
          a.conns.erase(it);
        }
      }
      if (stop_.load(std::memory_order_acquire)) break;
    }
    // Bound latency: staged raw lines ride to the rings before we block in
    // poll() again (route_raw auto-flushes only at full batches).
    std::shared_lock<std::shared_mutex> gate(barrier_mu_);
    svc_->flush(a.index);
  }

  {
    std::shared_lock<std::shared_mutex> gate(barrier_mu_);
    svc_->flush(a.index);
  }
  // Make every other loop notice stop_ (first exiter wakes the rest).
  for (const auto& other : acceptors_) {
    if (other.get() != &a) wake(*other);
  }
}

bool Daemon::read_chunk(Acceptor& a, int fd, Conn& c) {
  char chunk[65536];
  ssize_t n;
  for (;;) {
    n = ::read(fd, chunk, sizeof(chunk));
    if (n >= 0 || errno != EINTR) break;  // EINTR: retry, no logging
  }
  if (n == 0) return false;  // EOF
  if (n < 0) return errno == EAGAIN || errno == EWOULDBLOCK;
  c.buf.append(chunk, static_cast<std::size_t>(n));
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = c.buf.find('\n', start);
    if (nl == std::string::npos) break;  // partial line: keep for next read
    dispatch(a, c.buf.substr(start, nl - start), c);
    start = nl + 1;
    if (stop_.load(std::memory_order_acquire)) break;
  }
  c.buf.erase(0, start);
  return true;
}

void Daemon::flush_partial(Acceptor& a, Conn& c) {
  // A final line without a trailing newline still counts at EOF.
  if (!c.buf.empty() && !stop_.load(std::memory_order_acquire)) {
    dispatch(a, c.buf, c);
  }
  c.buf.clear();
}

void Daemon::dispatch(Acceptor& a, const std::string& line, Conn& c) {
  if (line.empty()) return;
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t conn_seq = c.conn_seq++;

  if (opt_.parse_on_shard) {
    const Peeked peek = peek_request(line);
    if (peek.routable()) {
      // Fast path: ship the raw line; the shard worker parses it.
      std::shared_lock<std::shared_mutex> gate(barrier_mu_);
      svc_->route_raw(peek.island, peek.op, line, seq, c.id, conn_seq,
                      a.index);
      return;
    }
  }

  Parsed p = parse_request(line);
  if (!p.ok) {
    writer_.deposit(c.id, conn_seq, error_response(seq, p.error).dump(0));
    return;
  }
  p.request.seq = seq;
  p.request.conn = c.id;
  p.request.conn_seq = conn_seq;
  switch (p.request.op) {
    case Op::kSubmit:
    case Op::kQuery: {
      std::shared_lock<std::shared_mutex> gate(barrier_mu_);
      svc_->route(std::move(p.request), a.index);
      break;
    }
    case Op::kStats: {
      // Service-wide barrier: exclusive gate stops the other acceptors, so
      // the drain + obs snapshot inside stats() see a quiesced pipeline.
      std::unique_lock<std::shared_mutex> gate(barrier_mu_);
      svc_->flush(a.index);
      writer_.deposit(c.id, conn_seq, svc_->stats(seq).dump(0));
      break;
    }
    case Op::kMetrics: {
      // Same exclusive barrier as STATS: the windowed cells and registry
      // snapshot inside metrics() must see a quiesced pipeline.
      std::unique_lock<std::shared_mutex> gate(barrier_mu_);
      svc_->flush(a.index);
      writer_.deposit(c.id, conn_seq, svc_->metrics(seq).dump(0));
      break;
    }
    case Op::kShutdown: {
      {
        std::unique_lock<std::shared_mutex> gate(barrier_mu_);
        svc_->flush(a.index);
        svc_->drain_all();
        Json resp = ok_response(Op::kShutdown, seq);
        resp.set("requests", svc_->requests_processed());
        resp.set("uptime_s", svc_->uptime_s());
        // Final exposition snapshot: a supervisor that only sees the
        // SHUTDOWN response still gets the closing counters.
        resp.set("metrics", svc_->metrics_text());
        writer_.deposit(c.id, conn_seq, resp.dump(0));
      }
      request_stop();
      break;
    }
  }
}

void Daemon::metrics_loop() {
  const auto interval =
      std::chrono::duration<double>(opt_.metrics_interval_s);
  std::unique_lock<std::mutex> lock(metrics_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    if (metrics_cv_.wait_for(lock, interval, [this] {
          return stop_.load(std::memory_order_acquire);
        })) {
      break;
    }
    lock.unlock();
    {
      // Exclusive barrier, like a METRICS request: producers pause, the
      // drain retires every flushed request, then the snapshot is read.
      std::unique_lock<std::shared_mutex> gate(barrier_mu_);
      svc_->drain_all();
      const std::string text = svc_->metrics_text();
      std::FILE* f = std::fopen(opt_.metrics_path.c_str(), "w");
      if (f != nullptr) {
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      }
    }
    lock.lock();
  }
}

}  // namespace sdem::service
