// Live daemon for the online scheduling service (docs/service.md §4–5).
//
// Extracted from tools/sdem_service.cpp so the network frontend is
// testable in-process (tests/test_daemon.cpp starts one on an ephemeral
// port, fragments requests across TCP writes, and checks response order).
//
// Threading: `acceptors` poll loops, each an ingest *producer* of the
// Service pipeline (service.hpp). Acceptor 0 owns stdin and the TCP
// listener; accepted connections are handed out round-robin over wake
// pipes and then belong to exactly one acceptor for life — which is what
// keeps each (producer, shard) ring single-producer and each connection's
// request stream in arrival order.
//
// Per-connection response order is restored by a reorder buffer keyed on
// Request::conn_seq (shards complete out of order; two connections'
// responses may interleave, one connection's never do). Connections are
// addressed by monotone ids, not fds, so a recycled fd can never receive
// another connection's responses; the fd is invalidated under the writer
// lock before ::close.
//
// STATS, METRICS and SHUTDOWN are service-wide barriers: the dispatching
// acceptor stops the other acceptors at a shared/exclusive gate, flushes
// its own staging, and drains every shard, so the obs snapshot (and the
// windowed METRICS cells) read quiesced state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "support/thread_pool.hpp"

namespace sdem::service {

struct DaemonOptions {
  std::string policy = "sdem-on";
  int shards = 1;
  /// Ingest/poll threads; connections are assigned round-robin. More than
  /// one only pays off when parse-on-ingest or many slow clients dominate.
  int acceptors = 1;
  int port = -1;           ///< -1 = no TCP; 0 = pick a free port
  bool use_stdin = true;   ///< serve requests on stdin/stdout (CLI mode)
  std::size_t queue_capacity = 1024;
  /// Ship raw lines to shard workers (peek_request routing); false parses
  /// every line on the ingest thread (the pre-pipelining baseline).
  bool parse_on_shard = true;
  /// When > 0 and metrics_path is set, a background thread writes the
  /// Prometheus exposition (Service::metrics_text()) to metrics_path every
  /// interval, truncating — the file always holds the latest snapshot.
  /// Each tick takes the exclusive barrier, so scrapes see quiesced cells.
  double metrics_interval_s = 0.0;
  std::string metrics_path;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opt);
  ~Daemon();

  /// Serve until SHUTDOWN, stdin EOF (with no TCP surface), or
  /// request_stop(). Blocking; returns a process exit code.
  int run();

  /// The bound TCP port. Blocks until the listener is up (or run() failed
  /// to bind); -1 when TCP is disabled or binding failed. Safe to call
  /// from another thread while run() serves.
  int port();

  /// Ask a running daemon to stop (thread-safe, idempotent).
  void request_stop();

  std::uint64_t requests_processed() const;

 private:
  /// Per-connection reorder buffer; emits each connection's responses in
  /// conn_seq order. Connection id 0 is stdout.
  class ResponseWriter {
   public:
    /// Register a connection; returns its id (0 = the stdout pseudo-conn
    /// registered by the constructor with fd -1).
    int add_conn(int fd);
    /// Invalidate the fd under the lock, close it, and drop undelivered
    /// responses. After this, deposits for `id` are discarded.
    void close_conn(int id);
    void deposit(int conn_id, std::uint64_t conn_seq, std::string line);

    ResponseWriter();

   private:
    struct ConnState {
      int fd = -1;
      std::uint64_t next = 0;
      std::map<std::uint64_t, std::string> held;
    };
    static void write_line(int fd, const std::string& line);

    std::mutex mu_;
    std::map<int, ConnState> conns_;
    int next_id_ = 1;
  };

  struct Conn {
    int id = -1;
    int fd = -1;
    std::uint64_t conn_seq = 0;  ///< next request's per-connection index
    std::string buf;             ///< partial (unterminated) line
  };

  struct Acceptor {
    int index = 0;
    int wake_rd = -1;
    int wake_wr = -1;
    std::mutex inbox_mu;
    std::vector<Conn> inbox;  ///< connections handed over by acceptor 0
    std::map<int, Conn> conns;  ///< fd -> connection (owned by this loop)
  };

  bool open_listener();
  void accept_clients();
  void acceptor_loop(Acceptor& a);
  /// Read once from fd (retrying EINTR), dispatch complete lines. Returns
  /// false on EOF or a hard error — the caller flushes the partial line
  /// and closes.
  bool read_chunk(Acceptor& a, int fd, Conn& c);
  void flush_partial(Acceptor& a, Conn& c);
  void dispatch(Acceptor& a, const std::string& line, Conn& c);
  void wake(Acceptor& a);
  /// Body of the periodic metrics-snapshot thread (--metrics-interval).
  void metrics_loop();

  DaemonOptions opt_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Service> svc_;
  ResponseWriter writer_;
  std::vector<std::unique_ptr<Acceptor>> acceptors_;

  /// Routable dispatches hold this shared; STATS/SHUTDOWN hold it
  /// exclusive so the service-wide drain (and obs snapshot) sees no
  /// concurrent producers.
  std::shared_mutex barrier_mu_;

  /// Guards acceptors_ construction/teardown in run() against the wake
  /// sweep in request_stop(); the acceptor loops themselves only touch the
  /// vector while it is stable (after startup, before the joins).
  std::mutex acceptors_mu_;

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<int> next_acceptor_{0};
  std::atomic<bool> stop_{false};

  /// Wakes the metrics thread early on shutdown (it otherwise sleeps a
  /// full interval between snapshots).
  std::mutex metrics_mu_;
  std::condition_variable metrics_cv_;
  std::thread metrics_thread_;

  std::mutex port_mu_;
  std::condition_variable port_cv_;
  int bound_port_ = -2;  ///< -2 = not yet known, -1 = none/failed
  int listen_fd_ = -1;
};

}  // namespace sdem::service
