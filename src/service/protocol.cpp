#include "service/protocol.hpp"

#include <cmath>
#include <stdexcept>

namespace sdem::service {
namespace {

/// Integer-valued, in-range member read for island ids.
bool read_island(const Json& obj, int* out, std::string* err) {
  const Json* v = obj.find("island");
  if (v == nullptr || !v->is_number()) {
    *err = "missing or non-numeric \"island\"";
    return false;
  }
  const double d = v->as_number();
  if (!(d >= 0) || d != std::floor(d) || d > 1e9) {
    *err = "\"island\" must be a non-negative integer";
    return false;
  }
  *out = static_cast<int>(d);
  return true;
}

bool read_task(const Json& obj, Task* out, std::string* err) {
  const Json* t = obj.find("task");
  if (t == nullptr || !t->is_object()) {
    *err = "missing \"task\" object";
    return false;
  }
  const auto field = [&](const char* name, double* dst) {
    const Json* v = t->find(name);
    if (v == nullptr || !v->is_number() || !std::isfinite(v->as_number())) {
      *err = std::string("task field \"") + name + "\" must be a finite number";
      return false;
    }
    *dst = v->as_number();
    return true;
  };
  double id = 0.0;
  if (!field("id", &id) || !field("release", &out->release) ||
      !field("deadline", &out->deadline) || !field("work", &out->work)) {
    return false;
  }
  if (id != std::floor(id) || std::abs(id) > 2e9) {
    *err = "task field \"id\" must be an integer";
    return false;
  }
  out->id = static_cast<int>(id);
  if (out->work < 0.0) {
    *err = "task field \"work\" must be >= 0";
    return false;
  }
  if (!(out->deadline > out->release)) {
    *err = "task \"deadline\" must be > \"release\"";
    return false;
  }
  return true;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kSubmit: return "SUBMIT";
    case Op::kQuery: return "QUERY";
    case Op::kStats: return "STATS";
    case Op::kMetrics: return "METRICS";
    case Op::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

Parsed parse_request(const std::string& line) {
  Parsed p;
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const std::invalid_argument& e) {
    p.error = std::string("parse: ") + e.what();
    return p;
  }
  if (!doc.is_object()) {
    p.error = "request must be a JSON object";
    return p;
  }
  const Json* op = doc.find("op");
  if (op == nullptr || !op->is_string()) {
    p.error = "missing \"op\"";
    return p;
  }
  const std::string& name = op->as_string();
  if (name == "SUBMIT") {
    p.request.op = Op::kSubmit;
    if (!read_island(doc, &p.request.island, &p.error)) return p;
    if (!read_task(doc, &p.request.task, &p.error)) return p;
  } else if (name == "QUERY") {
    p.request.op = Op::kQuery;
    if (!read_island(doc, &p.request.island, &p.error)) return p;
  } else if (name == "STATS") {
    p.request.op = Op::kStats;
  } else if (name == "METRICS") {
    p.request.op = Op::kMetrics;
  } else if (name == "SHUTDOWN") {
    p.request.op = Op::kShutdown;
  } else {
    p.error = "unknown op \"" + name + "\"";
    return p;
  }
  p.ok = true;
  return p;
}

namespace {

/// Advance past one JSON string literal (opening quote at `i`). Returns
/// the index after the closing quote, or npos on an unterminated string.
std::size_t skip_string(const std::string& s, std::size_t i) {
  ++i;  // opening quote
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;
    } else if (s[i] == '"') {
      return i + 1;
    } else {
      ++i;
    }
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
    ++i;
  }
  return i;
}

}  // namespace

Peeked peek_request(const std::string& line) {
  Peeked p;
  std::size_t i = skip_ws(line, 0);
  if (i >= line.size() || line[i] != '{') return p;
  ++i;
  for (;;) {
    i = skip_ws(line, i);
    if (i >= line.size()) return p;
    if (line[i] == '}') return p;  // end of the top-level object
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] != '"') return p;  // structurally not a key — give up
    const std::size_t key_start = i + 1;
    const std::size_t key_end = skip_string(line, i);
    if (key_end == std::string::npos) return p;
    const std::size_t key_len = key_end - 1 - key_start;
    const bool is_op =
        key_len == 2 && line.compare(key_start, 2, "op") == 0;
    const bool is_island =
        key_len == 6 && line.compare(key_start, 6, "island") == 0;
    i = skip_ws(line, key_end);
    if (i >= line.size() || line[i] != ':') return p;
    i = skip_ws(line, i + 1);
    if (i >= line.size()) return p;
    const char c = line[i];
    if (c == '"') {
      const std::size_t val_start = i + 1;
      const std::size_t val_end = skip_string(line, i);
      if (val_end == std::string::npos) return p;
      if (is_op) {
        const std::size_t n = val_end - 1 - val_start;
        p.has_op = true;
        if (n == 6 && line.compare(val_start, n, "SUBMIT") == 0) {
          p.op = Op::kSubmit;
        } else if (n == 5 && line.compare(val_start, n, "QUERY") == 0) {
          p.op = Op::kQuery;
        } else if (n == 5 && line.compare(val_start, n, "STATS") == 0) {
          p.op = Op::kStats;
        } else if (n == 7 && line.compare(val_start, n, "METRICS") == 0) {
          p.op = Op::kMetrics;
        } else if (n == 8 && line.compare(val_start, n, "SHUTDOWN") == 0) {
          p.op = Op::kShutdown;
        } else {
          p.has_op = false;  // unknown op: let the full parser diagnose
        }
      }
      i = val_end;
    } else if (c == '{' || c == '[') {
      // Skip a balanced nested value, strings included.
      int depth = 0;
      while (i < line.size()) {
        const char d = line[i];
        if (d == '"') {
          i = skip_string(line, i);
          if (i == std::string::npos) return p;
          continue;
        }
        if (d == '{' || d == '[') ++depth;
        if (d == '}' || d == ']') {
          if (--depth == 0) {
            ++i;
            break;
          }
        }
        ++i;
      }
      if (depth != 0) return p;
    } else {
      // Number / true / false / null: consume up to the next delimiter.
      const std::size_t val_start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}' &&
             line[i] != ' ' && line[i] != '\t' && line[i] != '\r' &&
             line[i] != '\n') {
        ++i;
      }
      if (is_island) {
        // Accept exactly a non-negative integer literal <= 1e9; anything
        // fancier (sign, '.', exponent) falls back to the full parser.
        p.island = -1;
        const std::size_t n = i - val_start;
        if (n >= 1 && n <= 10) {
          long v = 0;
          bool digits = true;
          for (std::size_t k = val_start; k < i; ++k) {
            if (line[k] < '0' || line[k] > '9') {
              digits = false;
              break;
            }
            v = v * 10 + (line[k] - '0');
          }
          if (digits && v <= 1000000000L) p.island = static_cast<int>(v);
        }
      }
    }
  }
}

Json error_response(std::uint64_t seq, const std::string& message) {
  Json j = Json::object();
  j.set("ok", false);
  j.set("seq", seq);
  j.set("error", message);
  return j;
}

Json ok_response(Op op, std::uint64_t seq) {
  Json j = Json::object();
  j.set("ok", true);
  j.set("op", op_name(op));
  j.set("seq", seq);
  return j;
}

}  // namespace sdem::service
