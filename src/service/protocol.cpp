#include "service/protocol.hpp"

#include <cmath>
#include <stdexcept>

namespace sdem::service {
namespace {

/// Integer-valued, in-range member read for island ids.
bool read_island(const Json& obj, int* out, std::string* err) {
  const Json* v = obj.find("island");
  if (v == nullptr || !v->is_number()) {
    *err = "missing or non-numeric \"island\"";
    return false;
  }
  const double d = v->as_number();
  if (!(d >= 0) || d != std::floor(d) || d > 1e9) {
    *err = "\"island\" must be a non-negative integer";
    return false;
  }
  *out = static_cast<int>(d);
  return true;
}

bool read_task(const Json& obj, Task* out, std::string* err) {
  const Json* t = obj.find("task");
  if (t == nullptr || !t->is_object()) {
    *err = "missing \"task\" object";
    return false;
  }
  const auto field = [&](const char* name, double* dst) {
    const Json* v = t->find(name);
    if (v == nullptr || !v->is_number() || !std::isfinite(v->as_number())) {
      *err = std::string("task field \"") + name + "\" must be a finite number";
      return false;
    }
    *dst = v->as_number();
    return true;
  };
  double id = 0.0;
  if (!field("id", &id) || !field("release", &out->release) ||
      !field("deadline", &out->deadline) || !field("work", &out->work)) {
    return false;
  }
  if (id != std::floor(id) || std::abs(id) > 2e9) {
    *err = "task field \"id\" must be an integer";
    return false;
  }
  out->id = static_cast<int>(id);
  if (out->work < 0.0) {
    *err = "task field \"work\" must be >= 0";
    return false;
  }
  if (!(out->deadline > out->release)) {
    *err = "task \"deadline\" must be > \"release\"";
    return false;
  }
  return true;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kSubmit: return "SUBMIT";
    case Op::kQuery: return "QUERY";
    case Op::kStats: return "STATS";
    case Op::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

Parsed parse_request(const std::string& line) {
  Parsed p;
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const std::invalid_argument& e) {
    p.error = std::string("parse: ") + e.what();
    return p;
  }
  if (!doc.is_object()) {
    p.error = "request must be a JSON object";
    return p;
  }
  const Json* op = doc.find("op");
  if (op == nullptr || !op->is_string()) {
    p.error = "missing \"op\"";
    return p;
  }
  const std::string& name = op->as_string();
  if (name == "SUBMIT") {
    p.request.op = Op::kSubmit;
    if (!read_island(doc, &p.request.island, &p.error)) return p;
    if (!read_task(doc, &p.request.task, &p.error)) return p;
  } else if (name == "QUERY") {
    p.request.op = Op::kQuery;
    if (!read_island(doc, &p.request.island, &p.error)) return p;
  } else if (name == "STATS") {
    p.request.op = Op::kStats;
  } else if (name == "SHUTDOWN") {
    p.request.op = Op::kShutdown;
  } else {
    p.error = "unknown op \"" + name + "\"";
    return p;
  }
  p.ok = true;
  return p;
}

Json error_response(std::uint64_t seq, const std::string& message) {
  Json j = Json::object();
  j.set("ok", false);
  j.set("seq", seq);
  j.set("error", message);
  return j;
}

Json ok_response(Op op, std::uint64_t seq) {
  Json j = Json::object();
  j.set("ok", true);
  j.set("op", op_name(op));
  j.set("seq", seq);
  return j;
}

}  // namespace sdem::service
