// Wire protocol for sdem_service (docs/service.md is the normative spec).
//
// Newline-delimited JSON: every request is one JSON object on one line,
// every response is one JSON object on one line, and response order equals
// request order (per connection). Five operations:
//
//   {"op":"SUBMIT","island":0,"task":{"id":1,"release":0.0,
//                                     "deadline":0.5,"work":200.0}}
//   {"op":"QUERY","island":0}
//   {"op":"STATS"}
//   {"op":"METRICS"}
//   {"op":"SHUTDOWN"}
//
// This header owns the request grammar (parse + validation diagnostics) and
// the response envelopes; src/service/service.hpp owns the semantics.
#pragma once

#include <cstdint>
#include <string>

#include "model/task.hpp"
#include "support/json.hpp"

namespace sdem::service {

enum class Op { kSubmit, kQuery, kStats, kMetrics, kShutdown };

/// Wire spelling of an op ("SUBMIT", ...).
const char* op_name(Op op);

struct Request {
  Op op = Op::kStats;
  int island = 0;         ///< SUBMIT/QUERY routing key
  Task task;              ///< SUBMIT payload
  std::uint64_t seq = 0;  ///< ingest order; assigned by the daemon
  int conn = -1;          ///< daemon-side connection id (not wire data)
  std::uint64_t conn_seq = 0;  ///< per-connection request order (not wire)
  /// obs::now_ns() when the request entered the ingest path (not wire
  /// data); 0 when unknown. Feeds the windowed end-to-end latency
  /// histograms behind METRICS (docs/service.md).
  std::uint64_t ingest_ns = 0;
};

/// Outcome of parsing one request line. `ok == false` carries a diagnostic
/// suitable for an error response; the line is consumed either way.
struct Parsed {
  bool ok = false;
  Request request;
  std::string error;
};

/// Parse and validate one request line against the grammar above. Never
/// throws: malformed JSON, wrong types, unknown ops, negative islands and
/// invalid tasks (work < 0, deadline <= release, non-finite fields) all
/// come back as `ok == false` with a one-line diagnostic.
Parsed parse_request(const std::string& line);

/// Routing peek: the op and island of a request line, found with one
/// allocation-free scan instead of a DOM parse. This is what lets the
/// ingest thread route raw lines to shards and leave the expensive
/// parse_request() to the shard workers (parse-on-shard, docs/service.md).
///
/// The scanner walks the line once, skipping strings (with escapes) and
/// nested objects/arrays by depth, and records the *last* top-level "op"
/// and "island" members — matching Json::parse, whose set() semantics keep
/// the last duplicate key. `island` is only recognized as a plain
/// non-negative integer literal <= 1e9; anything else (floats, 2e3,
/// overlong) leaves island at -1.
///
/// peek is opportunistic, never authoritative: `routable()` false means
/// "fall back to parse_request() on the ingest thread", not "malformed" —
/// e.g. {"island":2.0} is valid to the full parser but not peekable. A
/// shard that full-parses a peeked line re-checks that the parsed request
/// still routes to it (service.cpp) so a peek/parse disagreement can never
/// touch another shard's state.
struct Peeked {
  Op op = Op::kStats;
  bool has_op = false;
  int island = -1;
  bool routable() const {
    return has_op && (op == Op::kSubmit || op == Op::kQuery) && island >= 0;
  }
};
Peeked peek_request(const std::string& line);

/// {"ok":false,"seq":...,"error":"..."} — the uniform failure envelope.
Json error_response(std::uint64_t seq, const std::string& message);

/// {"ok":true,"op":...,"seq":...} — success envelope; callers append the
/// op-specific fields.
Json ok_response(Op op, std::uint64_t seq);

}  // namespace sdem::service
