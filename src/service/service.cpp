#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "baseline/mbkp.hpp"
#include "baseline/simple_policies.hpp"
#include "core/online_sdem.hpp"
#include "obs/obs.hpp"

namespace sdem::service {
namespace {

/// Approximate quantile from a merged log2 histogram: the upper edge of the
/// bucket where the cumulative count crosses q, clamped to the observed
/// max. Coarse (factor-of-two buckets) but allocation-free and mergeable —
/// exactly what the runtime domain stores.
double dist_percentile(const obs::DistValue& d, double q) {
  if (d.count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(d.count))));
  std::uint64_t cum = 0;
  for (const auto& [exp2, n] : d.buckets) {
    cum += n;
    if (cum >= target) {
      if (exp2 <= -9999) return 0.0;  // nonpositive-sample bucket
      return std::min(d.max, std::ldexp(1.0, exp2 + 1));
    }
  }
  return d.max;
}

}  // namespace

std::unique_ptr<OnlinePolicy> make_policy(const std::string& name) {
  if (name == "sdem-on") return std::make_unique<SdemOnPolicy>();
  if (name == "sdem-on-eager") return std::make_unique<SdemOnPolicy>(false);
  if (name == "mbkp") return std::make_unique<MbkpPolicy>();
  if (name == "race") return std::make_unique<RaceToIdlePolicy>();
  if (name == "stretch") return std::make_unique<StretchPolicy>();
  if (name == "critical") return std::make_unique<CriticalSpeedPolicy>();
  return nullptr;
}

/// One memory island: its own policy instance and resumable simulation.
/// Owned exclusively by one shard; only that shard's drain touches it.
struct Service::Island {
  Island(const SystemConfig& cfg, std::unique_ptr<OnlinePolicy> pol)
      : policy(std::move(pol)), sim(cfg, *policy, cfg.num_cores) {}

  std::unique_ptr<OnlinePolicy> policy;
  StreamSim sim;
  std::unordered_set<int> task_ids;  ///< duplicate-submit detection
  std::uint64_t submits = 0;
  bool finalized = false;
};

struct Service::Shard {
  explicit Shard(int index, std::size_t capacity)
      : ring(capacity),
        replan_metric("service/shard" + std::to_string(index) + "/replan_ns"),
        requests_metric("service/shard" + std::to_string(index) +
                        "/requests") {}

  // SPSC ring. head/tail are free-running; producer is the ingest thread,
  // consumer is the single in-flight drain (enforced by `scheduled`).
  std::vector<Request> ring;
  std::atomic<std::size_t> head{0};  ///< next pop
  std::atomic<std::size_t> tail{0};  ///< next push
  std::atomic<bool> scheduled{false};
  std::atomic<std::uint64_t> processed{0};

  std::map<int, std::unique_ptr<Island>> islands;
  std::string replan_metric;
  std::string requests_metric;

  bool try_push(Request&& r) {
    const std::size_t t = tail.load(std::memory_order_relaxed);
    if (t - head.load(std::memory_order_acquire) == ring.size()) return false;
    ring[t % ring.size()] = std::move(r);
    tail.store(t + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(Request& out) {
    const std::size_t h = head.load(std::memory_order_relaxed);
    if (tail.load(std::memory_order_acquire) == h) return false;
    out = std::move(ring[h % ring.size()]);
    head.store(h + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return tail.load(std::memory_order_acquire) ==
           head.load(std::memory_order_acquire);
  }
};

Service::Service(ServiceOptions opt, ThreadPool* pool,
                 std::function<void(const Request&, Json)> done)
    : opt_(std::move(opt)), pool_(pool), done_(std::move(done)) {
  if (opt_.cfg.unbounded()) {
    throw std::invalid_argument(
        "service: cfg must bound num_cores (an online stream has no task "
        "count to size an unbounded system from)");
  }
  if (opt_.shards < 1) throw std::invalid_argument("service: shards < 1");
  if (opt_.queue_capacity < 1) {
    throw std::invalid_argument("service: queue_capacity < 1");
  }
  if (make_policy(opt_.policy) == nullptr) {
    throw std::invalid_argument("service: unknown policy \"" + opt_.policy +
                                "\"");
  }
  shards_.reserve(static_cast<std::size_t>(opt_.shards));
  for (int i = 0; i < opt_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, opt_.queue_capacity));
  }
  start_ns_ = obs::now_ns();
}

Service::~Service() {
  try {
    drain_all();
  } catch (...) {
    // Destruction must not throw; a worker exception is already surfaced
    // through the response callback of the request that raised it.
  }
}

Service::Shard& Service::shard_of(int island) const {
  return *shards_[static_cast<std::size_t>(island) % shards_.size()];
}

Service::Island& Service::island_of(Shard& s, int island) {
  auto it = s.islands.find(island);
  if (it == s.islands.end()) {
    it = s.islands
             .emplace(island, std::make_unique<Island>(
                                  opt_.cfg, make_policy(opt_.policy)))
             .first;
  }
  return *it->second;
}

void Service::schedule_drain(Shard& s) {
  if (pool_ != nullptr) {
    pool_->submit([this, sp = &s] { drain(*sp); });
  } else {
    drain(s);
  }
}

void Service::route(Request req) {
  if (req.op != Op::kSubmit && req.op != Op::kQuery) {
    throw std::logic_error(
        "service: only SUBMIT/QUERY route to shards (STATS/SHUTDOWN are "
        "service-wide)");
  }
  Shard& s = shard_of(req.island);
  // Bounded ring: a full queue blocks the ingest thread, which stops the
  // daemon from reading input — backpressure by construction.
  while (!s.try_push(std::move(req))) {
    if (!s.scheduled.exchange(true, std::memory_order_acq_rel)) {
      schedule_drain(s);
    }
    std::this_thread::yield();
  }
  if (!s.scheduled.exchange(true, std::memory_order_acq_rel)) {
    schedule_drain(s);
  }
}

void Service::drain(Shard& s) {
  // Cells live in the calling thread's obs shard — resolve per drain, not
  // per service, because successive drains may land on different workers.
  obs::DistCell* replan_dist = nullptr;
#if SDEM_OBS
  replan_dist = obs::dist_cell(s.replan_metric.c_str(), obs::Domain::kRuntime);
  std::uint64_t* req_count =
      obs::counter_cell(s.requests_metric.c_str(), obs::Domain::kRuntime);
#endif
  for (;;) {
    Request r;
    while (s.try_pop(r)) {
      process(s, r, replan_dist);
      s.processed.fetch_add(1, std::memory_order_release);
#if SDEM_OBS
      ++*req_count;
#endif
    }
    // Standard actor hand-off: unpublish, re-check, re-acquire or retire.
    s.scheduled.store(false, std::memory_order_release);
    if (s.empty()) return;
    if (s.scheduled.exchange(true, std::memory_order_acq_rel)) return;
  }
}

void Service::process(Shard& s, Request& r, obs::DistCell* replan_dist) {
  try {
    if (r.op == Op::kSubmit) {
      Island& isl = island_of(s, r.island);
      if (isl.finalized) {
        done_(r, error_response(r.seq,
                                "island " + std::to_string(r.island) +
                                    " already finalized"));
        return;
      }
      if (!isl.task_ids.insert(r.task.id).second) {
        done_(r, error_response(r.seq,
                                "duplicate task id " +
                                    std::to_string(r.task.id) + " on island " +
                                    std::to_string(r.island)));
        return;
      }
      try {
        isl.sim.inject_arrival(r.task);
      } catch (const std::invalid_argument& e) {
        isl.task_ids.erase(r.task.id);
        done_(r, error_response(r.seq, e.what()));
        return;
      }
      ++isl.submits;
      Json resp = ok_response(Op::kSubmit, r.seq);
      resp.set("island", r.island);
      resp.set("id", r.task.id);
      // Advisory admission: the paper's standing assumption (filled speed
      // within s_up). The task is scheduled either way; a false here
      // predicts a deadline miss unless other slack appears.
      const double s_up = opt_.cfg.core.s_up;
      const double fs = r.task.filled_speed();
      resp.set("admitted", s_up <= 0.0 || fs <= s_up * (1.0 + 1e-12));
      resp.set("filled_speed", fs);
      if (opt_.eager) {
        const std::uint64_t t0 = obs::now_ns();
        isl.sim.commit();
        const std::uint64_t dt = obs::now_ns() - t0;
        if (replan_dist != nullptr) replan_dist->add(static_cast<double>(dt));
        resp.set("pending", static_cast<std::uint64_t>(isl.sim.pending().size()));
        resp.set("replans", isl.sim.replans());
        double plan_end = isl.sim.plan_from();
        for (const auto& seg : isl.sim.current_plan()) {
          plan_end = std::max(plan_end, seg.end);
        }
        resp.set("plan_end", plan_end);
      }
      done_(r, std::move(resp));
      return;
    }
    // QUERY: read-only view of an existing island.
    const auto it = s.islands.find(r.island);
    if (it == s.islands.end()) {
      done_(r, error_response(
                   r.seq, "unknown island " + std::to_string(r.island)));
      return;
    }
    const Island& isl = *it->second;
    Json resp = ok_response(Op::kQuery, r.seq);
    resp.set("island", r.island);
    resp.set("policy", isl.policy->name());
    resp.set("now", isl.sim.now());
    resp.set("arrivals", static_cast<std::uint64_t>(isl.sim.arrivals()));
    resp.set("pending", static_cast<std::uint64_t>(isl.sim.pending().size()));
    resp.set("replans", isl.sim.replans());
    resp.set("plan_from", isl.sim.plan_from());
    Json plan = Json::array();
    for (const auto& seg : isl.sim.current_plan()) {
      Json js = Json::object();
      js.set("task", seg.task_id);
      js.set("core", seg.core);
      js.set("start", seg.start);
      js.set("end", seg.end);
      js.set("speed", seg.speed);
      plan.push_back(std::move(js));
    }
    resp.set("plan", std::move(plan));
    done_(r, std::move(resp));
  } catch (const std::exception& e) {
    done_(r, error_response(r.seq, std::string("internal: ") + e.what()));
  }
}

void Service::drain_all() {
  for (const auto& s : shards_) {
    while (!s->empty() || s->scheduled.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  // Retire the drain tasks themselves (and rethrow anything fatal).
  if (pool_ != nullptr) pool_->wait_idle();
}

std::uint64_t Service::requests_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->processed.load(std::memory_order_acquire);
  }
  return total;
}

Json Service::stats(std::uint64_t seq) {
  drain_all();  // quiesce: obs snapshots require no concurrent writers
  const double uptime =
      static_cast<double>(obs::now_ns() - start_ns_) / 1e9;
  Json resp = ok_response(Op::kStats, seq);
  resp.set("policy", opt_.policy);
  resp.set("eager", opt_.eager);
  resp.set("uptime_s", uptime);
  resp.set("requests", requests_processed());
  std::uint64_t islands = 0;
  for (const auto& s : shards_) islands += s->islands.size();
  resp.set("islands", islands);
  resp.set("obs_compiled", obs::compiled());

  Json shard_arr = Json::array();
#if SDEM_OBS
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
#endif
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    const std::uint64_t n = s.processed.load(std::memory_order_acquire);
    Json js = Json::object();
    js.set("shard", static_cast<std::uint64_t>(i));
    js.set("islands", static_cast<std::uint64_t>(s.islands.size()));
    js.set("requests", n);
    js.set("throughput_rps",
           uptime > 0.0 ? static_cast<double>(n) / uptime : 0.0);
#if SDEM_OBS
    // p50/p99 replan latency from the runtime-domain log2 histogram.
    for (const auto& [name, dist] : snap.runtime_dists) {
      if (name != s.replan_metric) continue;
      Json lat = Json::object();
      lat.set("count", dist.count);
      lat.set("p50_ns", dist_percentile(dist, 0.50));
      lat.set("p99_ns", dist_percentile(dist, 0.99));
      lat.set("mean_ns", dist.mean());
      lat.set("max_ns", dist.max);
      js.set("replan_latency", std::move(lat));
      break;
    }
#endif
    shard_arr.push_back(std::move(js));
  }
  resp.set("shards", std::move(shard_arr));
  return resp;
}

std::vector<Service::IslandResult> Service::finalize_all() {
  drain_all();
  std::vector<IslandResult> out;
  for (const auto& s : shards_) {
    for (auto& [id, isl] : s->islands) {
      IslandResult r;
      r.island = id;
      r.policy = isl->policy->name();
      r.submits = isl->submits;
      r.tasks = isl->sim.injected();
      r.result = isl->sim.finalize();
      isl->finalized = true;
      out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const IslandResult& a, const IslandResult& b) {
              return a.island < b.island;
            });
  return out;
}

}  // namespace sdem::service
