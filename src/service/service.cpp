#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "baseline/mbkp.hpp"
#include "baseline/simple_policies.hpp"
#include "core/online_sdem.hpp"
#include "obs/obs.hpp"
#include "obs/window.hpp"

namespace sdem::service {
namespace {

/// Approximate quantile from a merged log2 histogram: the upper edge of the
/// bucket where the cumulative count crosses q, clamped to the observed
/// max. Coarse (factor-of-two buckets) but allocation-free and mergeable —
/// exactly what the runtime domain stores.
double dist_percentile(const obs::DistValue& d, double q) {
  if (d.count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(d.count))));
  std::uint64_t cum = 0;
  for (const auto& [exp2, n] : d.buckets) {
    cum += n;
    if (cum >= target) {
      if (exp2 <= -9999) return 0.0;  // nonpositive-sample bucket
      return std::min(d.max, std::ldexp(1.0, exp2 + 1));
    }
  }
  return d.max;
}

/// Lines staged per (producer, shard) before an automatic ring push, and
/// the drain's pop batch. One acquire/release pair moves this many
/// requests across the ring.
constexpr std::size_t kIngestBatch = 64;
constexpr std::size_t kDrainBatch = 64;

}  // namespace

std::unique_ptr<OnlinePolicy> make_policy(const std::string& name) {
  if (name == "sdem-on") return std::make_unique<SdemOnPolicy>();
  if (name == "sdem-on-eager") return std::make_unique<SdemOnPolicy>(false);
  if (name == "mbkp") return std::make_unique<MbkpPolicy>();
  if (name == "race") return std::make_unique<RaceToIdlePolicy>();
  if (name == "stretch") return std::make_unique<StretchPolicy>();
  if (name == "critical") return std::make_unique<CriticalSpeedPolicy>();
  return nullptr;
}

/// One memory island: its own policy instance and resumable simulation.
/// Owned exclusively by one shard; only that shard's drain touches it.
struct Service::Island {
  Island(const SystemConfig& cfg, std::unique_ptr<OnlinePolicy> pol)
      : policy(std::move(pol)), sim(cfg, *policy, cfg.num_cores) {}

  std::unique_ptr<OnlinePolicy> policy;
  StreamSim sim;
  std::unordered_set<int> task_ids;  ///< duplicate-submit detection
  std::uint64_t submits = 0;
  bool finalized = false;
};

/// One ring entry: either an already-parsed request (raw.empty()) or a raw
/// line to parse on the shard worker. For raw entries, `req` carries the
/// routing skeleton — peeked op/island plus seq/conn/conn_seq.
struct Service::Msg {
  Request req;
  std::string raw;
};

struct Service::Shard {
  Shard(int index, std::size_t capacity, int producers)
      : replan_metric("service/shard" + std::to_string(index) + "/replan_ns"),
        requests_metric("service/shard" + std::to_string(index) +
                        "/requests"),
        replan_window_metric("service/shard" + std::to_string(index) +
                             "/replan_window_ns"),
        e2e_window_metric("service/shard" + std::to_string(index) +
                          "/e2e_window_ns") {
    rings.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      rings.push_back(std::make_unique<SpscRing<Msg>>(capacity));
    }
  }

  /// One SPSC ring per producer; the single in-flight drain (enforced by
  /// `scheduled`) is the common consumer, so each ring stays SPSC.
  std::vector<std::unique_ptr<SpscRing<Msg>>> rings;
  std::atomic<bool> scheduled{false};
  std::atomic<std::uint64_t> processed{0};
  /// Backoff pauses taken by producers waiting on this shard's full rings
  /// (the METRICS backpressure gauge; one count per wait step).
  std::atomic<std::uint64_t> stalls{0};

  std::map<int, std::unique_ptr<Island>> islands;
  std::string replan_metric;
  std::string requests_metric;
  std::string replan_window_metric;
  std::string e2e_window_metric;

  /// Entries currently sitting in this shard's rings (occupancy gauge;
  /// approximate while producers are live, exact once quiesced).
  std::size_t ring_occupancy() const {
    std::size_t n = 0;
    for (const auto& r : rings) n += r->size();
    return n;
  }

  bool empty() const {
    for (const auto& r : rings) {
      if (!r->empty()) return false;
    }
    return true;
  }
};

/// Producer-side staging: per-shard batches awaiting a push_n. Owned by
/// exactly one ingest thread; no synchronization.
struct Service::Producer {
  Producer(std::size_t index, std::size_t shards)
      : index(index), staged(shards) {}
  std::size_t index;  ///< which ring slot this producer owns in each shard
  std::vector<std::vector<Msg>> staged;
};

Service::Service(ServiceOptions opt, ThreadPool* pool,
                 std::function<void(const Request&, Json)> done)
    : opt_(std::move(opt)), pool_(pool), done_(std::move(done)) {
  if (opt_.cfg.unbounded()) {
    throw std::invalid_argument(
        "service: cfg must bound num_cores (an online stream has no task "
        "count to size an unbounded system from)");
  }
  if (opt_.shards < 1) throw std::invalid_argument("service: shards < 1");
  if (opt_.producers < 1) {
    throw std::invalid_argument("service: producers < 1");
  }
  if (opt_.queue_capacity < 1) {
    throw std::invalid_argument("service: queue_capacity < 1");
  }
  if (make_policy(opt_.policy) == nullptr) {
    throw std::invalid_argument("service: unknown policy \"" + opt_.policy +
                                "\"");
  }
  shards_.reserve(static_cast<std::size_t>(opt_.shards));
  for (int i = 0; i < opt_.shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, opt_.queue_capacity, opt_.producers));
  }
  producers_.reserve(static_cast<std::size_t>(opt_.producers));
  for (int p = 0; p < opt_.producers; ++p) {
    producers_.push_back(std::make_unique<Producer>(
        static_cast<std::size_t>(p), shards_.size()));
  }
  start_ns_ = obs::now_ns();
}

Service::~Service() {
  try {
    // Producer threads are gone by the time the Service dies; flushing
    // their leftovers here is safe and keeps late-staged requests from
    // vanishing silently.
    for (std::size_t p = 0; p < producers_.size(); ++p) {
      flush(static_cast<int>(p));
    }
    drain_all();
  } catch (...) {
    // Destruction must not throw; a worker exception is already surfaced
    // through the response callback of the request that raised it.
  }
}

std::size_t Service::shard_index(int island) const {
  return static_cast<std::size_t>(island) % shards_.size();
}

Service::Island& Service::island_of(Shard& s, int island) {
  auto it = s.islands.find(island);
  if (it == s.islands.end()) {
    it = s.islands
             .emplace(island, std::make_unique<Island>(
                                  opt_.cfg, make_policy(opt_.policy)))
             .first;
  }
  return *it->second;
}

void Service::schedule_drain(Shard& s) {
  if (pool_ != nullptr) {
    pool_->submit([this, sp = &s] { drain(*sp); });
  } else {
    drain(s);
  }
}

void Service::flush_shard(Producer& p, std::size_t shard) {
  std::vector<Msg>& batch = p.staged[shard];
  if (batch.empty()) return;
  Shard& s = *shards_[shard];
  SpscRing<Msg>& ring = *s.rings[p.index];
  std::size_t off = 0;
  Backoff backoff;
  while (off < batch.size()) {
    const std::size_t pushed =
        ring.push_n(batch.data() + off, batch.size() - off);
    off += pushed;
    // Make sure a consumer exists before (and while) we wait on a full
    // ring, otherwise backpressure would deadlock the producer.
    if (!s.scheduled.exchange(true, std::memory_order_acq_rel)) {
      schedule_drain(s);
    }
    if (off == batch.size()) break;
    if (pushed > 0) {
      backoff.reset();
    } else {
      s.stalls.fetch_add(1, std::memory_order_relaxed);
      backoff.pause();
    }
  }
  batch.clear();
}

void Service::route(Request req, int producer) {
  if (req.op != Op::kSubmit && req.op != Op::kQuery) {
    throw std::logic_error(
        "service: only SUBMIT/QUERY route to shards (STATS/SHUTDOWN are "
        "service-wide)");
  }
  Producer& p = *producers_[static_cast<std::size_t>(producer)];
  const std::size_t shard = shard_index(req.island);
  // Keep FIFO order with any raw lines this producer already staged for
  // the shard: stage the parsed request behind them and flush the batch.
  Msg m;
  m.req = std::move(req);
#if SDEM_OBS
  if (m.req.ingest_ns == 0) m.req.ingest_ns = obs::now_ns();
#endif
  p.staged[shard].push_back(std::move(m));
  flush_shard(p, shard);
}

void Service::route_raw(int island, Op op, std::string line,
                        std::uint64_t seq, int conn, std::uint64_t conn_seq,
                        int producer) {
  Producer& p = *producers_[static_cast<std::size_t>(producer)];
  const std::size_t shard = shard_index(island);
  Msg m;
  m.req.op = op;
  m.req.island = island;
  m.req.seq = seq;
  m.req.conn = conn;
  m.req.conn_seq = conn_seq;
#if SDEM_OBS
  m.req.ingest_ns = obs::now_ns();
#endif
  m.raw = std::move(line);
  p.staged[shard].push_back(std::move(m));
  if (p.staged[shard].size() >= kIngestBatch) flush_shard(p, shard);
}

void Service::flush(int producer) {
  Producer& p = *producers_[static_cast<std::size_t>(producer)];
  for (std::size_t shard = 0; shard < p.staged.size(); ++shard) {
    flush_shard(p, shard);
  }
}

void Service::drain(Shard& s) {
  // Cells live in the calling thread's obs shard — resolve per drain, not
  // per service, because successive drains may land on different workers.
  ShardCells cells;
#if SDEM_OBS
  cells.replan =
      obs::dist_cell(s.replan_metric.c_str(), obs::Domain::kRuntime);
  cells.replan_win = obs::Registry::instance().window_cell(
      s.replan_window_metric.c_str(), obs::WindowSpec{});
  cells.e2e_win = obs::Registry::instance().window_cell(
      s.e2e_window_metric.c_str(), obs::WindowSpec{});
  std::uint64_t* req_count =
      obs::counter_cell(s.requests_metric.c_str(), obs::Domain::kRuntime);
#endif
  Msg buf[kDrainBatch];
  for (;;) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const auto& ring : s.rings) {
        const std::size_t k = ring->pop_n(buf, kDrainBatch);
        for (std::size_t i = 0; i < k; ++i) {
          handle(s, buf[i], cells);
#if SDEM_OBS
          // Windowed end-to-end latency: ingest stamp to response done.
          if (buf[i].req.ingest_ns != 0) {
            const std::uint64_t now = obs::now_ns();
            cells.e2e_win->add(
                static_cast<double>(now - buf[i].req.ingest_ns), now);
          }
#endif
          buf[i] = Msg{};  // release the line/task payload promptly
        }
        if (k > 0) {
          progressed = true;
          s.processed.fetch_add(k, std::memory_order_release);
#if SDEM_OBS
          *req_count += k;
#endif
        }
      }
    }
    // Standard actor hand-off: unpublish, re-check, re-acquire or retire.
    s.scheduled.store(false, std::memory_order_release);
    if (s.empty()) return;
    if (s.scheduled.exchange(true, std::memory_order_acq_rel)) return;
  }
}

void Service::handle(Shard& s, Msg& m, const ShardCells& cells) {
  if (!m.raw.empty()) {
    // Parse-on-shard: the ingest thread shipped the raw line; the DOM
    // parse and validation happen here, off the ingest critical path.
    Parsed p = parse_request(m.raw);
    if (!p.ok) {
      done_(m.req, error_response(m.req.seq, p.error));
      return;
    }
    p.request.seq = m.req.seq;
    p.request.conn = m.req.conn;
    p.request.conn_seq = m.req.conn_seq;
    p.request.ingest_ns = m.req.ingest_ns;
    if ((p.request.op != Op::kSubmit && p.request.op != Op::kQuery) ||
        shard_index(p.request.island) != shard_index(m.req.island)) {
      // The peek that routed the line disagrees with the full parse (only
      // possible for crafted routing keys the caller mis-peeked). Never
      // touch an island another shard owns — reject instead.
      done_(m.req,
            error_response(m.req.seq,
                           "misrouted request: peeked routing key does not "
                           "match the parsed line"));
      return;
    }
    m.req = std::move(p.request);
  }
  process(s, m.req, cells);
}

void Service::process(Shard& s, Request& r, const ShardCells& cells) {
  try {
    if (r.op == Op::kSubmit) {
      Island& isl = island_of(s, r.island);
      if (isl.finalized) {
        done_(r, error_response(r.seq,
                                "island " + std::to_string(r.island) +
                                    " already finalized"));
        return;
      }
      if (!isl.task_ids.insert(r.task.id).second) {
        done_(r, error_response(r.seq,
                                "duplicate task id " +
                                    std::to_string(r.task.id) + " on island " +
                                    std::to_string(r.island)));
        return;
      }
      const int replans_before = isl.sim.replans();
      const std::uint64_t t_inject = obs::now_ns();
      try {
        isl.sim.inject_arrival(r.task);
      } catch (const std::invalid_argument& e) {
        isl.task_ids.erase(r.task.id);
        done_(r, error_response(r.seq, e.what()));
        return;
      }
      ++isl.submits;
      Json resp = ok_response(Op::kSubmit, r.seq);
      resp.set("island", r.island);
      resp.set("id", r.task.id);
      // Advisory admission: the paper's standing assumption (filled speed
      // within s_up). The task is scheduled either way; a false here
      // predicts a deadline miss unless other slack appears.
      const double s_up = opt_.cfg.core.s_up;
      const double fs = r.task.filled_speed();
      resp.set("admitted", s_up <= 0.0 || fs <= s_up * (1.0 + 1e-12));
      resp.set("filled_speed", fs);
      if (opt_.eager) {
        const std::uint64_t t0 = obs::now_ns();
        isl.sim.commit();
        const std::uint64_t dt = obs::now_ns() - t0;
        if (cells.replan != nullptr) {
          cells.replan->add(static_cast<double>(dt));
          cells.replan_win->add(static_cast<double>(dt), t0 + dt);
        }
        resp.set("pending", static_cast<std::uint64_t>(isl.sim.pending().size()));
        resp.set("replans", isl.sim.replans());
        double plan_end = isl.sim.plan_from();
        for (const auto& seg : isl.sim.current_plan()) {
          plan_end = std::max(plan_end, seg.end);
        }
        resp.set("plan_end", plan_end);
      } else if (cells.replan != nullptr &&
                 isl.sim.replans() != replans_before) {
        // Lazy mode commits inside inject_arrival when the release
        // advances; attribute that latency too so replay/throughput runs
        // still populate the p50/p99 histograms.
        const std::uint64_t now = obs::now_ns();
        cells.replan->add(static_cast<double>(now - t_inject));
        cells.replan_win->add(static_cast<double>(now - t_inject), now);
      }
      done_(r, std::move(resp));
      return;
    }
    // QUERY: read-only view of an existing island.
    const auto it = s.islands.find(r.island);
    if (it == s.islands.end()) {
      done_(r, error_response(
                   r.seq, "unknown island " + std::to_string(r.island)));
      return;
    }
    const Island& isl = *it->second;
    Json resp = ok_response(Op::kQuery, r.seq);
    resp.set("island", r.island);
    resp.set("policy", isl.policy->name());
    resp.set("now", isl.sim.now());
    resp.set("arrivals", static_cast<std::uint64_t>(isl.sim.arrivals()));
    resp.set("pending", static_cast<std::uint64_t>(isl.sim.pending().size()));
    resp.set("replans", isl.sim.replans());
    resp.set("plan_from", isl.sim.plan_from());
    Json plan = Json::array();
    for (const auto& seg : isl.sim.current_plan()) {
      Json js = Json::object();
      js.set("task", seg.task_id);
      js.set("core", seg.core);
      js.set("start", seg.start);
      js.set("end", seg.end);
      js.set("speed", seg.speed);
      plan.push_back(std::move(js));
    }
    resp.set("plan", std::move(plan));
    done_(r, std::move(resp));
  } catch (const std::exception& e) {
    done_(r, error_response(r.seq, std::string("internal: ") + e.what()));
  }
}

void Service::drain_all() {
  Backoff backoff;
  for (const auto& s : shards_) {
    while (!s->empty() || s->scheduled.load(std::memory_order_acquire)) {
      // A flushed-but-unscheduled ring can only exist transiently between
      // a push and the scheduled.exchange in flush_shard; make sure a
      // consumer exists rather than waiting on one that already retired.
      if (!s->empty() &&
          !s->scheduled.exchange(true, std::memory_order_acq_rel)) {
        schedule_drain(*s);
      }
      backoff.pause();
    }
    backoff.reset();
  }
  // Retire the drain tasks themselves (and rethrow anything fatal).
  if (pool_ != nullptr) pool_->wait_idle();
}

std::uint64_t Service::requests_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->processed.load(std::memory_order_acquire);
  }
  return total;
}

double Service::uptime_s() const {
  return static_cast<double>(obs::now_ns() - start_ns_) / 1e9;
}

Json Service::stats(std::uint64_t seq) {
  drain_all();  // quiesce: obs snapshots require no concurrent writers
  const double uptime = uptime_s();
  Json resp = ok_response(Op::kStats, seq);
  resp.set("policy", opt_.policy);
  resp.set("eager", opt_.eager);
  resp.set("uptime_s", uptime);
  resp.set("requests", requests_processed());
  std::uint64_t islands = 0;
  for (const auto& s : shards_) islands += s->islands.size();
  resp.set("islands", islands);
  resp.set("obs_compiled", obs::compiled());

  Json shard_arr = Json::array();
#if SDEM_OBS
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
#endif
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    const std::uint64_t n = s.processed.load(std::memory_order_acquire);
    Json js = Json::object();
    js.set("shard", static_cast<std::uint64_t>(i));
    js.set("islands", static_cast<std::uint64_t>(s.islands.size()));
    js.set("requests", n);
    js.set("throughput_rps",
           uptime > 0.0 ? static_cast<double>(n) / uptime : 0.0);
#if SDEM_OBS
    // p50/p99 replan latency from the runtime-domain log2 histogram.
    for (const auto& [name, dist] : snap.runtime_dists) {
      if (name != s.replan_metric) continue;
      Json lat = Json::object();
      lat.set("count", dist.count);
      lat.set("p50_ns", dist_percentile(dist, 0.50));
      lat.set("p99_ns", dist_percentile(dist, 0.99));
      lat.set("mean_ns", dist.mean());
      lat.set("max_ns", dist.max);
      js.set("replan_latency", std::move(lat));
      break;
    }
#endif
    shard_arr.push_back(std::move(js));
  }
  resp.set("shards", std::move(shard_arr));
  return resp;
}

namespace {

/// Compact numeric literal for the exposition (the JSON shortest-roundtrip
/// formatter, so scraped values parse back exactly).
std::string prom_num(double v) { return Json(v).dump(); }

std::string shard_label(std::size_t i) {
  return "{shard=\"" + std::to_string(i) + "\"}";
}

}  // namespace

std::string Service::metrics_text() const {
  std::string out;
  out.reserve(4096);
  const auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  line("# sdem_service metrics (Prometheus text exposition v0.0.4; "
       "docs/service.md#metrics)");
  line("# TYPE sdem_uptime_seconds gauge");
  line("sdem_uptime_seconds " + prom_num(uptime_s()));
  line("# TYPE sdem_requests_total counter");
  line("sdem_requests_total " +
       prom_num(static_cast<double>(requests_processed())));
  std::uint64_t islands = 0;
  for (const auto& s : shards_) islands += s->islands.size();
  line("# TYPE sdem_islands gauge");
  line("sdem_islands " + prom_num(static_cast<double>(islands)));
  line("# TYPE sdem_obs_compiled gauge");
  line(std::string("sdem_obs_compiled ") + (obs::compiled() ? "1" : "0"));
  line("# TYPE sdem_shard_requests_total counter");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    line("sdem_shard_requests_total" + shard_label(i) + " " +
         prom_num(static_cast<double>(
             shards_[i]->processed.load(std::memory_order_acquire))));
  }
  line("# TYPE sdem_ring_occupancy gauge");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    line("sdem_ring_occupancy" + shard_label(i) + " " +
         prom_num(static_cast<double>(shards_[i]->ring_occupancy())));
  }
  line("# TYPE sdem_backpressure_stalls_total counter");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    line("sdem_backpressure_stalls_total" + shard_label(i) + " " +
         prom_num(static_cast<double>(
             shards_[i]->stalls.load(std::memory_order_relaxed))));
  }
#if SDEM_OBS
  // Windowed latency summaries: quantiles over the last
  // WindowSpec{}.window_ns() seconds, not since startup — scrapes a minute
  // apart see independent views (the cumulative view stays in STATS).
  const auto windows = obs::Registry::instance().window_values(obs::now_ns());
  const auto find_window =
      [&windows](const std::string& name) -> const obs::WindowValue* {
    for (const auto& [n, w] : windows) {
      if (n == name) return &w;
    }
    return nullptr;
  };
  struct Family {
    const char* metric;
    const std::string Shard::* cell_name;
  };
  const Family families[] = {
      {"sdem_replan_latency_seconds", &Shard::replan_window_metric},
      {"sdem_e2e_latency_seconds", &Shard::e2e_window_metric},
  };
  static constexpr double kQuantiles[] = {0.5, 0.99, 0.999};
  static const char* const kQuantileNames[] = {"0.5", "0.99", "0.999"};
  for (const Family& fam : families) {
    line(std::string("# TYPE ") + fam.metric + " summary");
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const obs::WindowValue* w = find_window(*shards_[i] .* fam.cell_name);
      const std::string shard = std::to_string(i);
      for (std::size_t q = 0; q < 3; ++q) {
        const double v_ns = w != nullptr ? w->percentile(kQuantiles[q]) : 0.0;
        line(std::string(fam.metric) + "{shard=\"" + shard +
             "\",quantile=\"" + kQuantileNames[q] + "\"} " +
             prom_num(v_ns * 1e-9));
      }
      line(std::string(fam.metric) + "_sum{shard=\"" + shard + "\"} " +
           prom_num((w != nullptr ? w->sum() : 0.0) * 1e-9));
      line(std::string(fam.metric) + "_count{shard=\"" + shard + "\"} " +
           prom_num(static_cast<double>(w != nullptr ? w->count : 0)));
    }
  }
  // Cumulative registry counters. The governor/ladder pair gets stable
  // first-class names; everything else is scrapable via the generic family.
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  const auto counter_of = [&snap](const std::string& name) {
    const std::uint64_t* v = snap.counter(name);
    return v != nullptr ? static_cast<double>(*v) : 0.0;
  };
  line("# TYPE sdem_governor_ladder_aborts_total counter");
  line("sdem_governor_ladder_aborts_total " +
       prom_num(counter_of("energy/ladder_aborts")));
  line("# TYPE sdem_governor_ladder_mispredicts_total counter");
  line("sdem_governor_ladder_mispredicts_total " +
       prom_num(counter_of("energy/ladder_mispredicts")));
  line("# TYPE sdem_counter_total counter");
  for (const auto& [name, v] : snap.counters) {
    line("sdem_counter_total{name=\"" + name + "\"} " +
         prom_num(static_cast<double>(v)));
  }
  for (const auto& [name, v] : snap.runtime_counters) {
    line("sdem_counter_total{name=\"" + name + "\"} " +
         prom_num(static_cast<double>(v)));
  }
#endif
  return out;
}

Json Service::metrics(std::uint64_t seq) {
  drain_all();  // quiesce: window/snapshot reads require no writers
  Json resp = ok_response(Op::kMetrics, seq);
  resp.set("obs_compiled", obs::compiled());
  resp.set("uptime_s", uptime_s());
  resp.set("requests", requests_processed());
  resp.set("content_type", "text/plain; version=0.0.4");
  resp.set("body", metrics_text());
  return resp;
}

std::vector<Service::IslandResult> Service::finalize_all() {
  for (std::size_t p = 0; p < producers_.size(); ++p) {
    flush(static_cast<int>(p));
  }
  drain_all();
  std::vector<IslandResult> out;
  for (const auto& s : shards_) {
    for (auto& [id, isl] : s->islands) {
      IslandResult r;
      r.island = id;
      r.policy = isl->policy->name();
      r.submits = isl->submits;
      r.tasks = isl->sim.injected();
      r.result = isl->sim.finalize();
      isl->finalized = true;
      out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const IslandResult& a, const IslandResult& b) {
              return a.island < b.island;
            });
  return out;
}

}  // namespace sdem::service
