// Online scheduling service: memory islands sharded across the thread pool.
//
// One Service hosts many *memory islands* — independent (cores + DRAM rank)
// domains, each with its own policy instance and resumable StreamSim.
// Islands are sharded by id (island → shard `id % shards`); each shard owns
// its islands exclusively, so island state needs no locks. Request routing
// is a lock-free SPSC ring per shard: the single ingest thread is the
// producer, and a drain task on the PR 1 ThreadPool is the consumer (an
// atomic `scheduled` flag guarantees at most one drain per shard in flight,
// which is what makes the ring single-consumer).
//
// Determinism: an island's schedule is a pure function of its own arrival
// stream — shards never exchange state — so any `--shards` value produces
// identical per-island results (pinned by tests/test_service.cpp).
//
// Backpressure: rings are bounded (ServiceOptions::queue_capacity). When a
// ring is full, route() spin-yields until the drain catches up, which stops
// the ingest loop from reading more input — kernel socket buffers then push
// the backpressure to clients.
//
// Observability: each shard records per-request counts and per-commit
// replan latency into the obs *runtime* domain (`service/shard<k>/...`),
// summarized (p50/p99 from the log2 histograms) by stats().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "model/power.hpp"
#include "obs/obs.hpp"
#include "service/protocol.hpp"
#include "sim/event_sim.hpp"
#include "support/thread_pool.hpp"

namespace sdem::service {

/// Policy instances by wire name: sdem-on | sdem-on-eager | mbkp | race |
/// stretch | critical. Returns nullptr for unknown names. Every island gets
/// its own instance (policies are stateful between replans).
std::unique_ptr<OnlinePolicy> make_policy(const std::string& name);

struct ServiceOptions {
  SystemConfig cfg = SystemConfig::paper_default();
  std::string policy = "sdem-on";
  int shards = 1;
  /// Live mode commits (replan + answer) on every SUBMIT; replay mode
  /// batches same-instant arrivals exactly like the batch simulator so the
  /// full SimResult (replans included) matches simulate().
  bool eager = true;
  std::size_t queue_capacity = 1024;
};

class Service {
 public:
  /// `done(request, response)` fires once per routed request, possibly on a
  /// pool thread; responses for one connection arrive in seq order only
  /// after the caller re-orders them (tools/sdem_service.cpp does).
  /// `pool` may be null: requests are then drained inline by route() — the
  /// serial reference the sharded runs must match.
  /// Throws std::invalid_argument for an unknown policy name, an unbounded
  /// cfg (an online stream has no task count to size cores from), or
  /// shards < 1.
  Service(ServiceOptions opt, ThreadPool* pool,
          std::function<void(const Request&, Json)> done);
  ~Service();

  /// Route one SUBMIT/QUERY to its island's shard (blocking while the
  /// shard's ring is full). STATS/SHUTDOWN are service-wide barriers and
  /// are answered by stats() / the daemon instead.
  void route(Request req);

  /// Block until every routed request has been processed (queues empty,
  /// drains retired). Only the ingest thread may call this.
  void drain_all();

  /// Service-wide statistics (drains first, so the snapshot is quiesced):
  /// uptime, totals, and per-shard requests/throughput plus p50/p99/mean/max
  /// replan latency from the obs runtime domain (omitted when the obs layer
  /// is compiled out).
  Json stats(std::uint64_t seq);

  struct IslandResult {
    int island = 0;
    std::string policy;
    std::uint64_t submits = 0;
    std::vector<Task> tasks;  ///< injected arrivals, injection order
    SimResult result;
  };

  /// Drain, then finalize every island (ascending id) and return the
  /// per-island simulation results. Ends the current runs; a later SUBMIT
  /// to a finalized island is answered with an error.
  std::vector<IslandResult> finalize_all();

  std::uint64_t requests_processed() const;
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Island;
  struct Shard;

  Shard& shard_of(int island) const;
  Island& island_of(Shard& s, int island);
  void schedule_drain(Shard& s);
  void drain(Shard& s);
  /// `replan_dist` is the shard's runtime-domain latency cell, resolved by
  /// drain() once per invocation on the executing thread (cell resolution
  /// takes the registry lock; the hot path must not). Null when the obs
  /// layer is compiled out.
  void process(Shard& s, Request& req, obs::DistCell* replan_dist);

  ServiceOptions opt_;
  ThreadPool* pool_;
  std::function<void(const Request&, Json)> done_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace sdem::service
