// Online scheduling service: memory islands sharded across the thread
// pool, fed by a pipelined ingest path.
//
// One Service hosts many *memory islands* — independent (cores + DRAM rank)
// domains, each with its own policy instance and resumable StreamSim.
// Islands are sharded by id (island → shard `id % shards`); each shard owns
// its islands exclusively, so island state needs no locks.
//
// Request flow is a three-stage pipeline (docs/service.md §3):
//
//   ingest (N producers)  →  SPSC rings  →  shard workers (parse + solve)
//
//   * Producers are ingest threads (the daemon's acceptor threads, or the
//     replay loop). Each producer owns one bounded SpscRing per shard
//     (support/spsc_ring.hpp), so every ring stays strictly
//     single-producer; the single in-flight drain per shard (an atomic
//     `scheduled` flag) keeps it single-consumer.
//   * route_raw() ships the *unparsed* line: the producer only needs the
//     peeked (op, island) routing key (protocol.hpp peek_request); the
//     expensive parse_request() runs on the shard worker. route() ships an
//     already-parsed Request for callers that have one (tests, the
//     peek-miss fallback, parse-on-ingest baselines).
//   * Producer-side staging batches ring traffic: route_raw() appends to a
//     per-(producer, shard) buffer and push_n moves the whole batch with
//     one acquire/release pair when the batch fills or flush() is called.
//
// Determinism: an island's schedule is a pure function of its own arrival
// stream — shards never exchange state, and one producer's requests for
// one island traverse one FIFO ring — so any `shards` value produces
// identical per-island results (pinned by tests/test_service.cpp).
//
// Backpressure: rings are bounded (ServiceOptions::queue_capacity). When a
// ring is full the producer waits on a Backoff ladder (spin → yield →
// sleep, support/spsc_ring.hpp) until the drain catches up — the ingest
// loop stops reading input and kernel socket buffers push the backpressure
// to clients, without a stalled shard costing a spinning core.
//
// Observability: each shard records per-request counts and per-commit
// replan latency into the obs *runtime* domain (`service/shard<k>/...`),
// summarized (p50/p99 from the log2 histograms) by stats(). On top of the
// cumulative cells, each shard feeds two *sliding-window* histograms
// (obs/window.hpp) — per-commit replan latency and ingest-to-response
// latency over the last few seconds — which back the METRICS verb's
// Prometheus exposition (metrics()/metrics_text(), docs/service.md §METRICS)
// together with ring-occupancy and backpressure-stall gauges.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "model/power.hpp"
#include "obs/obs.hpp"
#include "service/protocol.hpp"
#include "sim/event_sim.hpp"
#include "support/spsc_ring.hpp"
#include "support/thread_pool.hpp"

namespace sdem::service {

/// Policy instances by wire name: sdem-on | sdem-on-eager | mbkp | race |
/// stretch | critical. Returns nullptr for unknown names. Every island gets
/// its own instance (policies are stateful between replans).
std::unique_ptr<OnlinePolicy> make_policy(const std::string& name);

struct ServiceOptions {
  SystemConfig cfg = SystemConfig::paper_default();
  std::string policy = "sdem-on";
  int shards = 1;
  /// Ingest threads. Every producer index in [0, producers) owns a private
  /// SPSC ring per shard plus a staging buffer; calls into route()/
  /// route_raw()/flush() for one producer index must come from one thread
  /// at a time.
  int producers = 1;
  /// Live mode commits (replan + answer) on every SUBMIT; replay mode
  /// batches same-instant arrivals exactly like the batch simulator so the
  /// full SimResult (replans included) matches simulate().
  bool eager = true;
  std::size_t queue_capacity = 1024;  ///< per (producer, shard) ring
};

class Service {
 public:
  /// `done(request, response)` fires once per routed request, possibly on a
  /// pool thread; responses for one connection arrive in order only after
  /// the caller re-orders them (the daemon's ResponseWriter does, keyed on
  /// Request::conn_seq). For raw lines that fail to parse, `request` is a
  /// routing stub (seq/conn/conn_seq valid, task fields not).
  /// `pool` may be null: requests are then drained inline by route()/
  /// flush() — the serial reference the sharded runs must match.
  /// Throws std::invalid_argument for an unknown policy name, an unbounded
  /// cfg (an online stream has no task count to size cores from), or
  /// shards/producers < 1.
  Service(ServiceOptions opt, ThreadPool* pool,
          std::function<void(const Request&, Json)> done);
  ~Service();

  /// Route one parsed SUBMIT/QUERY to its island's shard. Flushes the
  /// producer's staged raw lines for that shard first, so a parsed request
  /// never overtakes an earlier raw one from the same producer.
  void route(Request req, int producer = 0);

  /// Stage one *raw* request line for shard routing; the shard worker
  /// parses it (parse-on-shard). `island`/`op` are the peeked routing key
  /// (protocol.hpp peek_request) — callers must only pass lines whose peek
  /// was routable. seq/conn/conn_seq ride along for response ordering.
  /// Staged lines are pushed to the ring in batches; call flush() at the
  /// end of an ingest chunk to bound latency.
  void route_raw(int island, Op op, std::string line, std::uint64_t seq,
                 int conn, std::uint64_t conn_seq, int producer = 0);

  /// Push this producer's staged batches to the rings (blocking on the
  /// Backoff ladder while full) and schedule drains. Must be called from
  /// the producer's own thread.
  void flush(int producer = 0);

  /// Block until every *flushed* request has been processed (rings empty,
  /// drains retired). Does not touch other producers' staging buffers —
  /// each producer flushes its own before a barrier (the daemon does).
  void drain_all();

  /// Service-wide statistics (drains first, so the snapshot is quiesced):
  /// uptime, totals, and per-shard requests/throughput plus p50/p99/mean/max
  /// replan latency from the obs runtime domain (omitted when the obs layer
  /// is compiled out).
  Json stats(std::uint64_t seq);

  /// METRICS envelope: ok/op/seq plus `body`, the Prometheus text
  /// exposition from metrics_text() (drains first, like stats()).
  Json metrics(std::uint64_t seq);

  /// Prometheus text exposition (docs/service.md §METRICS): uptime and
  /// request totals, per-shard requests / ring occupancy / backpressure
  /// stalls, and — when the obs layer is compiled in — windowed
  /// p50/p99/p999 replan and end-to-end latency per shard plus the
  /// cumulative registry counters (governor mispredict/abort rates
  /// included). Callers must quiesce first (metrics() and the daemon's
  /// barrier do); under SDEM_OBS=OFF only the obs-free families appear.
  std::string metrics_text() const;

  /// Seconds since construction.
  double uptime_s() const;

  struct IslandResult {
    int island = 0;
    std::string policy;
    std::uint64_t submits = 0;
    std::vector<Task> tasks;  ///< injected arrivals, injection order
    SimResult result;
  };

  /// Flush every producer's staging (callers must have quiesced producer
  /// threads), drain, then finalize every island (ascending id) and return
  /// the per-island simulation results. Ends the current runs; a later
  /// SUBMIT to a finalized island is answered with an error.
  std::vector<IslandResult> finalize_all();

  std::uint64_t requests_processed() const;
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Island;
  struct Shard;
  struct Msg;
  struct Producer;

  /// The shard's obs cells, resolved by drain() once per invocation on the
  /// executing thread (cell resolution takes the registry lock; the hot
  /// path must not). All null when the obs layer is compiled out.
  struct ShardCells {
    obs::DistCell* replan = nullptr;       ///< cumulative replan latency
    obs::WindowCell* replan_win = nullptr; ///< windowed replan latency
    obs::WindowCell* e2e_win = nullptr;    ///< windowed ingest→response
  };

  std::size_t shard_index(int island) const;
  Island& island_of(Shard& s, int island);
  void schedule_drain(Shard& s);
  void drain(Shard& s);
  void flush_shard(Producer& p, std::size_t shard);
  /// Parse (if raw) and process one dequeued message on the shard worker.
  void handle(Shard& s, Msg& m, const ShardCells& cells);
  void process(Shard& s, Request& req, const ShardCells& cells);

  ServiceOptions opt_;
  ThreadPool* pool_;
  std::function<void(const Request&, Json)> done_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Producer>> producers_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace sdem::service
