#include "sim/event_sim.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

namespace sdem {

SimResult simulate(const TaskSet& arrivals, const SystemConfig& cfg,
                   OnlinePolicy& policy) {
  SimResult res;
  if (arrivals.empty()) return res;

  const TaskSet sorted = arrivals.sorted_by_release();
  const int cores = cfg.unbounded() ? static_cast<int>(sorted.size())
                                    : cfg.num_cores;

  std::vector<PendingTask> pending;
  std::map<int, double> finished_at;  // task id -> completion time
  std::size_t next_arrival = 0;
  int rr = 0;  // round-robin core cursor

  res.horizon_lo = sorted[0].release;

  std::vector<Segment> plan;
  double plan_from = sorted[0].release;

  auto account = [&](double upto) {
    // Execute the current plan on [plan_from, upto): clip segments, charge
    // work, record completed pieces.
    for (const auto& seg : plan) {
      const double lo = std::max(seg.start, plan_from);
      const double hi = std::min(seg.end, upto);
      if (hi <= lo) continue;
      Segment piece = seg;
      piece.start = lo;
      piece.end = hi;
      res.schedule.add(piece);
      for (auto& p : pending) {
        if (p.task.id == piece.task_id) {
          p.remaining -= piece.work();
          if (p.remaining < 1e-9 * std::max(1.0, p.task.work)) {
            p.remaining = 0.0;
            finished_at[p.task.id] = hi;
          }
          break;
        }
      }
    }
    std::erase_if(pending,
                  [](const PendingTask& p) { return p.remaining <= 0.0; });
  };

  while (next_arrival < sorted.size() || !pending.empty()) {
    if (next_arrival < sorted.size()) {
      const double t = sorted[next_arrival].release;
      account(t);
      // Admit every task released at this instant.
      while (next_arrival < sorted.size() &&
             sorted[next_arrival].release == t) {
        PendingTask p;
        p.task = sorted[next_arrival];
        p.remaining = p.task.work;
        p.core = rr % cores;
        ++rr;
        ++next_arrival;
        if (p.remaining > 0.0) pending.push_back(p);
      }
      plan = policy.replan(t, pending, cfg);
      plan_from = t;
      ++res.replans;
    } else {
      // No more arrivals: run the current plan to completion.
      double end = plan_from;
      for (const auto& seg : plan) end = std::max(end, seg.end);
      account(end);
      break;
    }
  }

  res.unfinished = static_cast<int>(pending.size());
  for (const auto& t : sorted.tasks()) {
    auto it = finished_at.find(t.id);
    if (t.work <= 0.0) continue;
    if (it == finished_at.end() ||
        it->second > t.deadline + 1e-9 * std::max(1.0, t.deadline)) {
      ++res.deadline_misses;
    }
  }
  res.horizon_hi = std::max(sorted.max_deadline(), res.schedule.end_time());
  return res;
}

SimResult simulate_with_actuals(const TaskSet& arrivals,
                                const SystemConfig& cfg, OnlinePolicy& policy,
                                const std::map<int, double>& actual_fraction,
                                bool replan_on_completion) {
  SimResult res;
  if (arrivals.empty()) return res;

  const TaskSet sorted = arrivals.sorted_by_release();
  const int cores = cfg.unbounded() ? static_cast<int>(sorted.size())
                                    : cfg.num_cores;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  struct Live {
    PendingTask declared;    ///< what the policy sees (WCET-based)
    double actual = 0.0;     ///< true remaining megacycles
  };
  std::vector<Live> pending;
  std::map<int, double> finished_at;
  std::size_t next_arrival = 0;
  int rr = 0;

  res.horizon_lo = sorted[0].release;
  std::vector<Segment> plan;
  double plan_from = sorted[0].release;

  auto chronological = [](std::vector<Segment> v) {
    std::sort(v.begin(), v.end(), [](const Segment& a, const Segment& b) {
      return a.start < b.start;
    });
    return v;
  };

  // Earliest time a pending task's *actual* work completes under the plan.
  auto next_completion = [&](double after) {
    double best = kInf;
    std::map<int, double> rem;
    for (const auto& p : pending) rem[p.declared.task.id] = p.actual;
    for (const auto& seg : chronological(plan)) {
      auto it = rem.find(seg.task_id);
      if (it == rem.end() || it->second <= 0.0) continue;
      const double lo = std::max(seg.start, plan_from);
      if (seg.end <= lo) continue;
      const double need = it->second / seg.speed;
      const double have = seg.end - lo;
      if (need <= have + 1e-15) {
        const double tc = lo + need;
        it->second = 0.0;
        if (tc > after + 1e-12) best = std::min(best, tc);
      } else {
        it->second -= seg.speed * have;
      }
    }
    return best;
  };

  // Execute the plan on [plan_from, upto): truncate at actual completions.
  auto account = [&](double upto) {
    for (const auto& seg : chronological(plan)) {
      const double lo = std::max(seg.start, plan_from);
      const double hi = std::min(seg.end, upto);
      if (hi <= lo) continue;
      for (auto& p : pending) {
        if (p.declared.task.id != seg.task_id || p.actual <= 0.0) continue;
        const double run = std::min(hi - lo, p.actual / seg.speed);
        if (run <= 0.0) break;
        Segment piece = seg;
        piece.start = lo;
        piece.end = lo + run;
        res.schedule.add(piece);
        const double done = seg.speed * run;
        p.actual = std::max(0.0, p.actual - done);
        p.declared.remaining = std::max(0.0, p.declared.remaining - done);
        if (p.actual <= 1e-9 * std::max(1.0, p.declared.task.work)) {
          p.actual = 0.0;
          finished_at[p.declared.task.id] = piece.end;
        }
        break;
      }
    }
    std::erase_if(pending, [](const Live& p) { return p.actual <= 0.0; });
  };

  auto replan_now = [&](double t, bool completion) {
    std::vector<PendingTask> view;
    view.reserve(pending.size());
    for (const auto& p : pending) view.push_back(p.declared);
    plan = completion ? policy.replan_completion(t, view, cfg)
                      : policy.replan(t, view, cfg);
    plan_from = t;
    ++res.replans;
  };

  while (next_arrival < sorted.size() || !pending.empty()) {
    const double t_arr = next_arrival < sorted.size()
                             ? sorted[next_arrival].release
                             : kInf;
    const double t_done = replan_on_completion ? next_completion(plan_from)
                                               : kInf;
    if (t_arr == kInf && t_done == kInf) {
      // Run the current plan out.
      double end = plan_from;
      for (const auto& seg : plan) end = std::max(end, seg.end);
      account(end);
      break;
    }
    if (t_done < t_arr) {
      account(t_done);
      replan_now(t_done, /*completion=*/true);
      continue;
    }
    account(t_arr);
    while (next_arrival < sorted.size() &&
           sorted[next_arrival].release == t_arr) {
      Live l;
      l.declared.task = sorted[next_arrival];
      l.declared.remaining = l.declared.task.work;
      l.declared.core = rr % cores;
      double frac = 1.0;
      if (auto it = actual_fraction.find(l.declared.task.id);
          it != actual_fraction.end()) {
        frac = std::clamp(it->second, 0.0, 1.0);
      }
      l.actual = l.declared.task.work * frac;
      ++rr;
      ++next_arrival;
      if (l.actual > 0.0) pending.push_back(l);
    }
    replan_now(t_arr, /*completion=*/false);
  }

  res.unfinished = static_cast<int>(pending.size());
  for (const auto& t : sorted.tasks()) {
    double frac = 1.0;
    if (auto it = actual_fraction.find(t.id); it != actual_fraction.end()) {
      frac = std::clamp(it->second, 0.0, 1.0);
    }
    if (t.work * frac <= 0.0) continue;
    auto it = finished_at.find(t.id);
    if (it == finished_at.end() ||
        it->second > t.deadline + 1e-9 * std::max(1.0, t.deadline)) {
      ++res.deadline_misses;
    }
  }
  res.horizon_hi = std::max(sorted.max_deadline(), res.schedule.end_time());
  return res;
}

}  // namespace sdem
