#include "sim/event_sim.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"

namespace sdem {
namespace {

#if SDEM_OBS
/// A context switch is a core running a different task than the one it ran
/// last. Segments are appended chronologically (event windows in time
/// order, per-core EDF order within a window), so one pass with a per-core
/// last-task map counts switches; a pure function of the schedule.
std::uint64_t count_context_switches(const Schedule& schedule) {
  std::map<int, int> last_task;
  std::uint64_t switches = 0;
  for (const auto& seg : schedule.segments()) {
    const auto [it, fresh] = last_task.emplace(seg.core, seg.task_id);
    if (!fresh && it->second != seg.task_id) {
      ++switches;
      it->second = seg.task_id;
    }
  }
  return switches;
}

/// End-of-run counter flush shared by both simulate variants.
void flush_sim_counters(const SimResult& res) {
  SDEM_OBS_INC("sim/runs");
  SDEM_OBS_COUNT("sim/replans", res.replans);
  SDEM_OBS_COUNT("sim/segments", res.schedule.segments().size());
  SDEM_OBS_COUNT("sim/context_switches",
                 count_context_switches(res.schedule));
  SDEM_OBS_COUNT("sim/deadline_misses", res.deadline_misses);
  SDEM_OBS_COUNT("sim/unfinished_tasks", res.unfinished);
}
#endif  // SDEM_OBS

}  // namespace

namespace detail {

int SimWorkspace::intern(int id) {
  const int slot = slots.intern(id);
  const std::size_t n = static_cast<std::size_t>(slots.size());
  if (finished_at.size() < n) {
    finished_at.resize(n, 0.0);
    finished.resize(n, 0);
    pos_val.resize(n, 0);
    pos_gen.resize(n, 0);
    rem.resize(n, 0.0);
    rem_gen.resize(n, 0);
  }
  return slot;
}

void SimWorkspace::finish(int slot, double at) {
  finished[static_cast<std::size_t>(slot)] = 1;
  finished_at[static_cast<std::size_t>(slot)] = at;
}

double SimWorkspace::finished_time(int id) const {
  const int slot = slots.slot_of(id);
  if (slot < 0 || !finished[static_cast<std::size_t>(slot)]) {
    return std::numeric_limits<double>::infinity();
  }
  return finished_at[static_cast<std::size_t>(slot)];
}

void SimWorkspace::clear() {
  slots.clear();
  finished_at.clear();
  finished.clear();
  pos_val.clear();
  pos_gen.clear();
  rem.clear();
  rem_gen.clear();
  gen = 0;
}

}  // namespace detail

StreamSim::StreamSim(const SystemConfig& cfg, OnlinePolicy& policy, int cores)
    : cfg_(cfg), policy_(&policy), cores_(std::max(1, cores)) {
  policy_->reset();
}

void StreamSim::reset() {
  ws_.clear();
  pending_.clear();
  plan_.clear();
  batch_.clear();
  tasks_seen_.clear();
  batch_time_ = 0.0;
  plan_from_ = 0.0;
  now_ = 0.0;
  rr_ = 0;
  finalized_ = false;
  res_ = SimResult{};
  policy_->reset();
}

void StreamSim::account(double upto) {
  // Execute the current plan on [plan_from_, upto): clip segments, charge
  // work, record completed pieces. Work is charged to the first pending
  // entry carrying the segment's task id (the position index replaces the
  // old per-segment linear scan; pending order is stable within a call).
  const int gen = ++ws_.gen;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const std::size_t slot = static_cast<std::size_t>(
        ws_.slots.slot_of(pending_[i].task.id));
    if (ws_.pos_gen[slot] != gen) {
      ws_.pos_gen[slot] = gen;
      ws_.pos_val[slot] = static_cast<int>(i);
    }
  }
  for (const auto& seg : plan_) {
    const double lo = std::max(seg.start, plan_from_);
    const double hi = std::min(seg.end, upto);
    if (hi <= lo) continue;
    Segment piece = seg;
    piece.start = lo;
    piece.end = hi;
    res_.schedule.add(piece);
    const int slot = ws_.slots.slot_of(piece.task_id);
    if (slot < 0 || ws_.pos_gen[static_cast<std::size_t>(slot)] != gen) {
      continue;  // no pending task carries this id
    }
    PendingTask& p = pending_[static_cast<std::size_t>(
        ws_.pos_val[static_cast<std::size_t>(slot)])];
    p.remaining -= piece.work();
    if (p.remaining < 1e-9 * std::max(1.0, p.task.work)) {
      p.remaining = 0.0;
      ws_.finish(slot, hi);
    }
  }
  std::erase_if(pending_,
                [](const PendingTask& p) { return p.remaining <= 0.0; });
}

void StreamSim::inject_arrival(const Task& t) {
  if (finalized_) {
    throw std::logic_error(
        "StreamSim: inject_arrival after finalize (call reset() first)");
  }
  // The stream must be non-decreasing in release time: an arrival earlier
  // than the last committed instant (or the currently buffered batch) would
  // need already-emitted schedule segments rewritten.
  const double floor = batch_.empty() ? now_ : batch_time_;
  if (tasks_seen_.empty()) {
    res_.horizon_lo = t.release;
    plan_from_ = t.release;
  } else if (t.release < floor) {
    throw std::invalid_argument("StreamSim: arrival out of order (release " +
                                std::to_string(t.release) + " < " +
                                std::to_string(floor) + ")");
  }
  if (!batch_.empty() && t.release != batch_time_) commit();
  batch_time_ = t.release;
  batch_.push_back(t);
  tasks_seen_.push_back(t);
}

void StreamSim::commit() {
  if (batch_.empty()) return;
  const double t = batch_time_;
  SDEM_OBS_INC("sim/arrival_events");
  account(t);
  // Admit the batch in the batch loop's within-instant order: deadline, then
  // id (TaskSet::sorted_by_release ties). stable_sort keeps injection order
  // for exact duplicates, so driving StreamSim from an already-sorted set is
  // a no-op permutation.
  std::stable_sort(batch_.begin(), batch_.end(),
                   [](const Task& a, const Task& b) {
                     if (a.deadline != b.deadline) return a.deadline < b.deadline;
                     return a.id < b.id;
                   });
  for (const Task& task : batch_) {
    PendingTask p;
    p.task = task;
    p.remaining = task.work;
    p.core = rr_ % cores_;
    ++rr_;
    if (p.remaining > 0.0) {
      ws_.intern(p.task.id);
      pending_.push_back(p);
    }
  }
  batch_.clear();
  plan_ = policy_->replan(t, pending_, cfg_);
  plan_from_ = t;
  now_ = t;
  ++res_.replans;
}

void StreamSim::advance_to(double t) {
  if (!batch_.empty() && batch_time_ <= t) commit();
  if (t < now_) {
    throw std::invalid_argument("StreamSim: advance_to moves time backwards");
  }
  now_ = t;
}

const SimResult& StreamSim::finalize() {
  if (finalized_) return res_;
  commit();
  if (!pending_.empty()) {
    // Run the current plan to completion.
    double end = plan_from_;
    for (const auto& seg : plan_) end = std::max(end, seg.end);
    account(end);
    now_ = std::max(now_, end);
  }
  res_.unfinished = static_cast<int>(pending_.size());
  double max_deadline = -std::numeric_limits<double>::infinity();
  for (const auto& t : tasks_seen_) {
    max_deadline = std::max(max_deadline, t.deadline);
    if (t.work <= 0.0) continue;
    if (ws_.finished_time(t.id) >
        t.deadline + 1e-9 * std::max(1.0, t.deadline)) {
      ++res_.deadline_misses;
    }
  }
  res_.horizon_hi = std::max(max_deadline, res_.schedule.end_time());
  finalized_ = true;
#if SDEM_OBS
  flush_sim_counters(res_);
#endif
  return res_;
}

SimResult simulate(const TaskSet& arrivals, const SystemConfig& cfg,
                   OnlinePolicy& policy) {
  SDEM_OBS_TIMER("sim/simulate");
  SimResult res;
  if (arrivals.empty()) return res;

  // The batch run is the streamed run: sort once, inject in order, finalize.
  // An unbounded config means "as many cores as tasks" — a count only a
  // closed set has, so it is resolved here rather than inside StreamSim.
  const TaskSet sorted = arrivals.sorted_by_release();
  const int cores = cfg.unbounded() ? static_cast<int>(sorted.size())
                                    : cfg.num_cores;
  StreamSim sim(cfg, policy, cores);
  for (const auto& t : sorted.tasks()) sim.inject_arrival(t);
  res = sim.finalize();
  return res;
}

SimResult simulate_with_actuals(const TaskSet& arrivals,
                                const SystemConfig& cfg, OnlinePolicy& policy,
                                const std::map<int, double>& actual_fraction,
                                bool replan_on_completion) {
  SDEM_OBS_TIMER("sim/simulate_with_actuals");
  SimResult res;
  if (arrivals.empty()) return res;
  policy.reset();

  const TaskSet sorted = arrivals.sorted_by_release();
  const int cores = cfg.unbounded() ? static_cast<int>(sorted.size())
                                    : cfg.num_cores;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  struct Live {
    PendingTask declared;    ///< what the policy sees (WCET-based)
    double actual = 0.0;     ///< true remaining megacycles
  };
  detail::SimWorkspace ws;
  std::vector<Live> pending;
  std::size_t next_arrival = 0;
  int rr = 0;

  res.horizon_lo = sorted[0].release;
  std::vector<Segment> plan;
  std::vector<Segment> plan_sorted;  ///< plan by start time, built per replan
  std::vector<PendingTask> view;     ///< declared view handed to the policy
  double plan_from = sorted[0].release;

  // First pending index carrying `id` with actual work left, or -1. Walks
  // forward past finished duplicates exactly like the old linear scan.
  auto alive_at = [&](int id, int gen) {
    const int slot = ws.slots.slot_of(id);
    if (slot < 0 || ws.pos_gen[static_cast<std::size_t>(slot)] != gen) {
      return -1;
    }
    for (std::size_t j = static_cast<std::size_t>(
             ws.pos_val[static_cast<std::size_t>(slot)]);
         j < pending.size(); ++j) {
      if (pending[j].declared.task.id == id && pending[j].actual > 0.0) {
        return static_cast<int>(j);
      }
    }
    return -1;
  };

  auto stamp_positions = [&] {
    const int gen = ++ws.gen;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::size_t slot = static_cast<std::size_t>(
          ws.slots.slot_of(pending[i].declared.task.id));
      if (ws.pos_gen[slot] != gen) {
        ws.pos_gen[slot] = gen;
        ws.pos_val[slot] = static_cast<int>(i);
      }
    }
    return gen;
  };

  // Earliest time a pending task's *actual* work completes under the plan.
  auto next_completion = [&](double after) {
    double best = kInf;
    const int gen = ++ws.gen;
    for (const auto& p : pending) {
      const std::size_t slot = static_cast<std::size_t>(
          ws.slots.slot_of(p.declared.task.id));
      ws.rem[slot] = p.actual;
      ws.rem_gen[slot] = gen;
    }
    for (const auto& seg : plan_sorted) {
      const int slot = ws.slots.slot_of(seg.task_id);
      if (slot < 0 || ws.rem_gen[static_cast<std::size_t>(slot)] != gen ||
          ws.rem[static_cast<std::size_t>(slot)] <= 0.0) {
        continue;
      }
      double& remaining = ws.rem[static_cast<std::size_t>(slot)];
      const double lo = std::max(seg.start, plan_from);
      if (seg.end <= lo) continue;
      const double need = remaining / seg.speed;
      const double have = seg.end - lo;
      if (need <= have + 1e-15) {
        const double tc = lo + need;
        remaining = 0.0;
        if (tc > after + 1e-12) best = std::min(best, tc);
      } else {
        remaining -= seg.speed * have;
      }
    }
    return best;
  };

  // Execute the plan on [plan_from, upto): truncate at actual completions.
  auto account = [&](double upto) {
    const int gen = stamp_positions();
    for (const auto& seg : plan_sorted) {
      const double lo = std::max(seg.start, plan_from);
      const double hi = std::min(seg.end, upto);
      if (hi <= lo) continue;
      const int j = alive_at(seg.task_id, gen);
      if (j < 0) continue;
      Live& p = pending[static_cast<std::size_t>(j)];
      const double run = std::min(hi - lo, p.actual / seg.speed);
      if (run <= 0.0) continue;
      Segment piece = seg;
      piece.start = lo;
      piece.end = lo + run;
      res.schedule.add(piece);
      const double done = seg.speed * run;
      p.actual = std::max(0.0, p.actual - done);
      p.declared.remaining = std::max(0.0, p.declared.remaining - done);
      if (p.actual <= 1e-9 * std::max(1.0, p.declared.task.work)) {
        p.actual = 0.0;
        ws.finish(ws.slots.slot_of(p.declared.task.id), piece.end);
      }
    }
    std::erase_if(pending, [](const Live& p) { return p.actual <= 0.0; });
  };

  auto replan_now = [&](double t, bool completion) {
    view.clear();
    view.reserve(pending.size());
    for (const auto& p : pending) view.push_back(p.declared);
    plan = completion ? policy.replan_completion(t, view, cfg)
                      : policy.replan(t, view, cfg);
    // Both executors walk the plan chronologically; sort once per replan
    // instead of once per event (the plan is immutable until the next one).
    plan_sorted.assign(plan.begin(), plan.end());
    std::sort(plan_sorted.begin(), plan_sorted.end(),
              [](const Segment& a, const Segment& b) {
                return a.start < b.start;
              });
    plan_from = t;
    ++res.replans;
  };

  while (next_arrival < sorted.size() || !pending.empty()) {
    const double t_arr = next_arrival < sorted.size()
                             ? sorted[next_arrival].release
                             : kInf;
    const double t_done = replan_on_completion ? next_completion(plan_from)
                                               : kInf;
    if (t_arr == kInf && t_done == kInf) {
      // Run the current plan out.
      double end = plan_from;
      for (const auto& seg : plan) end = std::max(end, seg.end);
      account(end);
      break;
    }
    if (t_done < t_arr) {
      SDEM_OBS_INC("sim/completion_events");
      account(t_done);
      replan_now(t_done, /*completion=*/true);
      continue;
    }
    SDEM_OBS_INC("sim/arrival_events");
    account(t_arr);
    while (next_arrival < sorted.size() &&
           sorted[next_arrival].release == t_arr) {
      Live l;
      l.declared.task = sorted[next_arrival];
      l.declared.remaining = l.declared.task.work;
      l.declared.core = rr % cores;
      double frac = 1.0;
      if (auto it = actual_fraction.find(l.declared.task.id);
          it != actual_fraction.end()) {
        frac = std::clamp(it->second, 0.0, 1.0);
      }
      l.actual = l.declared.task.work * frac;
      ++rr;
      ++next_arrival;
      if (l.actual > 0.0) {
        ws.intern(l.declared.task.id);
        pending.push_back(l);
      }
    }
    replan_now(t_arr, /*completion=*/false);
  }

  res.unfinished = static_cast<int>(pending.size());
  for (const auto& t : sorted.tasks()) {
    double frac = 1.0;
    if (auto it = actual_fraction.find(t.id); it != actual_fraction.end()) {
      frac = std::clamp(it->second, 0.0, 1.0);
    }
    if (t.work * frac <= 0.0) continue;
    if (ws.finished_time(t.id) >
        t.deadline + 1e-9 * std::max(1.0, t.deadline)) {
      ++res.deadline_misses;
    }
  }
  res.horizon_hi = std::max(sorted.max_deadline(), res.schedule.end_time());
#if SDEM_OBS
  flush_sim_counters(res);
#endif
  return res;
}

}  // namespace sdem
