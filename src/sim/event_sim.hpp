// Discrete-event online simulator (paper §6, §8).
//
// Drives an OnlinePolicy over an arrival trace:
//   * tasks are assigned to cores round-robin in arrival order (the paper's
//     "9th task goes back to core 1" rule);
//   * at every distinct arrival instant the policy replans the pending set;
//   * the plan executes until the next arrival, work is accounted, and the
//     executed pieces become schedule segments.
//
// The simulator never edits a plan: if a policy emits overlapping segments
// on one core or misses a deadline, that surfaces in the result counters —
// policies own feasibility, the simulator owns bookkeeping.
//
// Two driving modes share one event loop:
//   * simulate() — the batch harness: one task set in, one SimResult out;
//   * StreamSim — the resumable loop behind tools/sdem_service: arrivals
//     are injected one at a time as they reach the server, the clock
//     advances between replans, and the run is finalized on demand.
// simulate() is a thin driver over StreamSim, so a streamed run replayed
// from the same arrival sequence is byte-identical to the batch run by
// construction (pinned by tests/test_service.cpp and the service-smoke CI
// job against the frozen sim_reference oracle).
#pragma once

#include <map>
#include <vector>

#include "sim/policy.hpp"
#include "support/id_slots.hpp"

namespace sdem {

struct SimResult {
  Schedule schedule;
  int deadline_misses = 0;   ///< tasks not finished by their deadline
  int unfinished = 0;        ///< tasks with remaining work at simulation end
  int replans = 0;           ///< number of policy invocations
  double horizon_lo = 0.0;   ///< first release
  double horizon_hi = 0.0;   ///< max(last deadline, last segment end)
};

namespace detail {

/// Per-run buffers for the event loop. Task ids are interned into dense
/// slots at admission; completion times and the pending-position index then
/// live in flat arrays instead of per-event std::maps. Position and
/// remaining-work entries are epoch-stamped so rebuilding them is a write
/// pass with no clearing.
struct SimWorkspace {
  IdSlots slots;
  std::vector<double> finished_at;  ///< per-slot completion time
  std::vector<char> finished;       ///< per-slot: finished_at valid
  std::vector<int> pos_val;         ///< per-slot first index in pending
  std::vector<int> pos_gen;         ///< per-slot stamp for pos_val
  std::vector<double> rem;          ///< per-slot remaining (next_completion)
  std::vector<int> rem_gen;         ///< per-slot stamp for rem
  int gen = 0;                      ///< current stamp

  int intern(int id);
  void finish(int slot, double at);

  /// Completion time of `id`, or +inf when it never finished — stands in
  /// for the old finished_at map's find() in the deadline-miss scan.
  double finished_time(int id) const;

  void clear();
};

}  // namespace detail

/// The event loop decoupled from batch runs: a resumable simulation that an
/// external arrival stream drives. One StreamSim owns one memory island's
/// timeline; tools/sdem_service keeps one per island and feeds it SUBMIT
/// requests as they arrive.
///
/// Protocol:
///   * inject_arrival(t) buffers a task; tasks sharing one release instant
///     form one admission batch (the batch loop admits all simultaneous
///     releases before the single replan);
///   * a batch commits — account the running plan up to the instant, admit
///     the batch in (deadline, id) order, replan once — when an arrival
///     with a later release lands, on commit()/advance_to(), or at
///     finalize();
///   * finalize() runs the last plan out and produces the SimResult.
///
/// Equivalence contract: injecting a task set in non-decreasing release
/// order and finalizing produces byte-identical SimResult (schedule
/// segments, replans, misses, horizons) to simulate() on that set — the
/// batch function is implemented as exactly that loop. Committing a batch
/// early (the live service answers every SUBMIT immediately, so it commits
/// per request) adds replans at the same instant but cannot change the
/// schedule: the superseded same-instant plan is clipped to the empty
/// window [t, t), contributing no segments, and the final replan at t sees
/// the same pending set the batched commit would have seen.
///
/// Accounting is lazy: advance_to() moves the clock without executing the
/// plan, so segments are recorded whole at the next commit/finalize instead
/// of being split at query points (splitting would break byte-equality with
/// the batch loop).
class StreamSim {
 public:
  /// `cores` is the round-robin width. Pass cfg.num_cores for bounded
  /// systems; the batch driver passes the task-set size when cfg is
  /// unbounded (an online stream has no task count to default to).
  StreamSim(const SystemConfig& cfg, OnlinePolicy& policy, int cores);

  /// Forget the whole run (workspace, pending set, plan, result) and
  /// reset() the policy; buffers keep their capacity for the next run.
  void reset();

  /// Buffer a task arriving at t.release. Throws std::invalid_argument if
  /// the release precedes the last committed instant (the stream must be
  /// non-decreasing in release time; the service rejects late arrivals at
  /// the protocol layer).
  void inject_arrival(const Task& t);

  /// Commit the buffered admission batch (account + admit + one replan).
  /// No-op when nothing is buffered.
  void commit();

  /// Commit any batch at an instant <= t and advance the clock to t.
  /// Throws std::invalid_argument when t would move the clock backwards
  /// past a committed instant.
  void advance_to(double t);

  /// Latest committed/advanced instant.
  double now() const { return now_; }

  /// The active plan (segments from the last replan) and its start.
  const std::vector<Segment>& current_plan() const { return plan_; }
  double plan_from() const { return plan_from_; }

  /// Pending tasks as of the last commit (admitted, unfinished work).
  const std::vector<PendingTask>& pending() const { return pending_; }

  /// Number of tasks injected so far (admitted or still buffered).
  std::size_t arrivals() const { return tasks_seen_.size(); }
  int replans() const { return res_.replans; }

  /// Every injected task, in injection order (the replay verifier rebuilds
  /// the batch TaskSet from this).
  const std::vector<Task>& injected() const { return tasks_seen_; }

  /// Commit the final batch, run the plan to completion, and account the
  /// run: deadline misses over every injected task, unfinished count,
  /// horizons. The StreamSim stays readable afterwards; reset() starts a
  /// fresh run.
  const SimResult& finalize();

 private:
  void account(double upto);

  SystemConfig cfg_;
  OnlinePolicy* policy_;
  int cores_;

  detail::SimWorkspace ws_;
  std::vector<PendingTask> pending_;
  std::vector<Segment> plan_;
  std::vector<Task> batch_;       ///< arrivals buffered at batch_time_
  std::vector<Task> tasks_seen_;  ///< every injected task, for the miss scan
  double batch_time_ = 0.0;
  double plan_from_ = 0.0;
  double now_ = 0.0;
  int rr_ = 0;  ///< round-robin core cursor
  bool finalized_ = false;
  SimResult res_;
};

SimResult simulate(const TaskSet& arrivals, const SystemConfig& cfg,
                   OnlinePolicy& policy);

/// Slack-reclamation variant (the online setting of Zhuo & Chakrabarti's
/// slack distribution, §2): tasks declare their WCET but actually execute
/// `actual_fraction[id] * work` megacycles (default 1.0). Policies plan
/// against the declared remaining work; when a task completes early the
/// simulator frees its core immediately and — when `replan_on_completion`
/// is set — re-invokes the policy so the freed slack is redistributed
/// (slower speeds, longer memory sleep). Deadline accounting is against the
/// actual work.
SimResult simulate_with_actuals(const TaskSet& arrivals,
                                const SystemConfig& cfg, OnlinePolicy& policy,
                                const std::map<int, double>& actual_fraction,
                                bool replan_on_completion = true);

}  // namespace sdem
