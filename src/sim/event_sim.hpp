// Discrete-event online simulator (paper §6, §8).
//
// Drives an OnlinePolicy over an arrival trace:
//   * tasks are assigned to cores round-robin in arrival order (the paper's
//     "9th task goes back to core 1" rule);
//   * at every distinct arrival instant the policy replans the pending set;
//   * the plan executes until the next arrival, work is accounted, and the
//     executed pieces become schedule segments.
//
// The simulator never edits a plan: if a policy emits overlapping segments
// on one core or misses a deadline, that surfaces in the result counters —
// policies own feasibility, the simulator owns bookkeeping.
#pragma once

#include <map>

#include "sim/policy.hpp"

namespace sdem {

struct SimResult {
  Schedule schedule;
  int deadline_misses = 0;   ///< tasks not finished by their deadline
  int unfinished = 0;        ///< tasks with remaining work at simulation end
  int replans = 0;           ///< number of policy invocations
  double horizon_lo = 0.0;   ///< first release
  double horizon_hi = 0.0;   ///< max(last deadline, last segment end)
};

SimResult simulate(const TaskSet& arrivals, const SystemConfig& cfg,
                   OnlinePolicy& policy);

/// Slack-reclamation variant (the online setting of Zhuo & Chakrabarti's
/// slack distribution, §2): tasks declare their WCET but actually execute
/// `actual_fraction[id] * work` megacycles (default 1.0). Policies plan
/// against the declared remaining work; when a task completes early the
/// simulator frees its core immediately and — when `replan_on_completion`
/// is set — re-invokes the policy so the freed slack is redistributed
/// (slower speeds, longer memory sleep). Deadline accounting is against the
/// actual work.
SimResult simulate_with_actuals(const TaskSet& arrivals,
                                const SystemConfig& cfg, OnlinePolicy& policy,
                                const std::map<int, double>& actual_fraction,
                                bool replan_on_completion = true);

}  // namespace sdem
