#include "sim/governor.hpp"

#include <algorithm>

namespace sdem {

IdleGovernor::IdleGovernor(const IdleGovernorParams& params)
    : params_(params) {
  if (params_.window < 1) params_.window = 1;
  if (params_.ewma_weight <= 0.0 || params_.ewma_weight > 1.0) {
    params_.ewma_weight = 0.25;
  }
  ring_.assign(static_cast<std::size_t>(params_.window), 0.0);
}

void IdleGovernor::reset() {
  count_ = 0;
  clamps_ = 0.0;
  ewma_ = 0.0;
  ring_next_ = 0;
  ring_size_ = 0;
  tau_ = 0.0;
  ewma_short_ = 0.0;
  n_short_ = 0;
  ewma_long_ = 0.0;
  n_long_ = 0;
  run_ = 0.0;
  run_len_ewma_ = 0.0;
  run_seen_ = false;
  last_class_ = -1;
  p_long_after_long_ = 0.0;
}

double IdleGovernor::unimodal_predict() const {
  double pred = ewma_;
  if (ring_size_ >= 2) {
    // TEO-style intercept correction: when a majority of the recent window
    // came in below the EWMA's prediction, the average is being dragged up
    // by stale long gaps — the recent median is the better estimate.
    std::size_t shorter = 0;
    for (std::size_t i = 0; i < ring_size_; ++i) {
      if (ring_[i] < pred) ++shorter;
    }
    if (2 * shorter > ring_size_) {
      scratch_.assign(ring_.begin(),
                      ring_.begin() + static_cast<std::ptrdiff_t>(ring_size_));
      const std::size_t mid = ring_size_ / 2;
      std::nth_element(scratch_.begin(),
                       scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                       scratch_.end());
      const double median = scratch_[mid];
      if (median < pred) pred = median;
    }
  }
  return pred;
}

double IdleGovernor::predict() const {
  if (count_ == 0) return 0.0;
  // Bimodal path: both gap classes observed — predict the class first,
  // then that class's running average. After a long gap, a first-order
  // Markov term decides whether longs arrive in runs (quiet schedule) or
  // singly (burst separators). After a short gap, the run-length detector
  // flags the end of a burst: once as many short gaps have passed as a
  // burst typically holds, the next gap is due to be long.
  if (n_short_ > 0 && n_long_ > 0) {
    bool long_next;
    if (last_class_ == 1) {
      long_next = p_long_after_long_ >= 0.5;
    } else {
      long_next = run_seen_ && run_ + 0.5 >= run_len_ewma_;
    }
    return long_next ? ewma_long_ : ewma_short_;
  }
  if (n_long_ > 0 && n_short_ == 0) return ewma_long_;
  return unimodal_predict();
}

int IdleGovernor::choose_state(const SleepLadder& ladder) {
  if (!ladder.empty()) {
    // Remember the split point for observe(): a gap is "long" when the
    // deepest state would have broken even on it.
    tau_ = ladder.state(ladder.depth() - 1).xi;
  }
  // Cold start: with no history, enter the deepest state — hardware boots
  // in self-refresh and stays there until the first access. The downside
  // is bounded (one abort pair if the first gap is tiny); staying awake
  // instead can burn alpha_m across an arbitrarily long leading gap.
  if (count_ == 0) return ladder.depth() - 1;
  return ladder.deepest_fit(predict());
}

void IdleGovernor::observe(double gap, bool aborted) {
  if (gap < 0.0) gap = 0.0;
  if (count_ == 0) {
    ewma_ = gap;
  } else {
    ewma_ = (1.0 - params_.ewma_weight) * ewma_ + params_.ewma_weight * gap;
  }
  if (aborted && gap < ewma_) {
    // Mispredict correction: an aborted entry means the commitment was
    // badly over-long; snap the averages down so the very next decision
    // already reflects the short gap.
    ewma_ = gap;
    if (n_short_ > 0 && gap < ewma_short_) ewma_short_ = gap;
    clamps_ += 1.0;
  }
  ring_[ring_next_] = gap;
  ring_next_ = (ring_next_ + 1) % ring_.size();
  if (ring_size_ < ring_.size()) ++ring_size_;
  ++count_;

  // Class statistics, the long-after-long Markov term, and the burst-run
  // detector.
  if (tau_ > 0.0) {
    const bool is_long = gap >= tau_;
    if (last_class_ == 1) {
      const double hit = is_long ? 1.0 : 0.0;
      p_long_after_long_ = (1.0 - params_.ewma_weight) * p_long_after_long_ +
                           params_.ewma_weight * hit;
    } else if (last_class_ == -1 && is_long) {
      // Seed optimistically: a trace that opens long often stays long.
      p_long_after_long_ = 1.0;
    }
    if (is_long) {
      ewma_long_ = n_long_ == 0 ? gap
                                : (1.0 - params_.ewma_weight) * ewma_long_ +
                                      params_.ewma_weight * gap;
      ++n_long_;
      if (run_ > 0.0) {
        run_len_ewma_ = !run_seen_
                            ? run_
                            : (1.0 - params_.ewma_weight) * run_len_ewma_ +
                                  params_.ewma_weight * run_;
        run_seen_ = true;
      }
      run_ = 0.0;
    } else {
      ewma_short_ = n_short_ == 0 ? gap
                                  : (1.0 - params_.ewma_weight) * ewma_short_ +
                                        params_.ewma_weight * gap;
      ++n_short_;
      run_ += 1.0;
    }
    last_class_ = is_long ? 1 : 0;
  }
}

GovernorBank::GovernorBank(int islands, const IdleGovernorParams& params) {
  if (islands < 1) islands = 1;
  governors_.assign(static_cast<std::size_t>(islands), IdleGovernor(params));
}

std::vector<MemoryGapGovernor*> GovernorBank::pointers() {
  std::vector<MemoryGapGovernor*> out;
  out.reserve(governors_.size());
  for (auto& g : governors_) out.push_back(&g);
  return out;
}

void GovernorBank::reset_all() {
  for (auto& g : governors_) g.reset();
}

}  // namespace sdem
