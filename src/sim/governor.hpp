// Predictive memory idle governor (menu/TEO-style; ROADMAP "predictive
// idle governor" item, Linux cpuidle analogue).
//
// The clairvoyant kOptimal discipline sees each gap's true length before
// deciding. A real power manager does not: it must commit to a sleep state
// when the gap *starts*. The governor predicts the upcoming gap from the
// history of gaps it has already observed, then applies the selection rule
// "deepest state whose break-even (and enter+exit latency) fits the
// prediction".
//
// Predictor, per governor (= per memory island):
//
//  * Unimodal path — an EWMA of observed gap lengths (weight
//    `ewma_weight`, default 1/4) with TEO's intercept correction: when a
//    majority of the recent `window` gaps came in shorter than the EWMA
//    predicts, the average is being dragged up by stale long gaps and the
//    recent window's median is used instead.
//
//  * Bimodal path — bursty traces interleave runs of tiny gaps with long
//    quiet gaps; a single average predicts neither. Gaps are classified
//    short/long against the deepest break-even time of the ladder last
//    seen by choose_state (the operative question: "could a deep sleep
//    have paid off?"), each class keeps its own EWMA, and a run-length
//    detector — an EWMA of how many short gaps arrive between long ones —
//    predicts "long" exactly when the current short-run has reached the
//    learned burst length (the adaptive-learning-tree idea from the DPM
//    literature, reduced to run counting).
//
//  * Mispredict correction — an abort (gap shorter than the chosen
//    state's enter+exit pair) immediately clamps the running average down
//    to that gap, so one bad commitment cannot keep over-predicting.
//
// Determinism contract (docs/governor.md): decisions are a pure function
// of the (choose_state, observe) call sequence — no clocks, no randomness
// — so any accounting that feeds gaps in chronological order is
// bit-reproducible at any --jobs/--tile, provided each parallel unit owns
// its own governor.
#pragma once

#include <vector>

#include "sched/energy.hpp"

namespace sdem {

struct IdleGovernorParams {
  double ewma_weight = 0.25;  ///< weight of the newest gap in the EWMAs
  int window = 8;             ///< recent-gap ring size for the TEO check
};

/// Online sleep-state selector: per-class EWMA + recent-interval window
/// predictor with burst-run detection and the deepest-fit selection rule.
class IdleGovernor final : public MemoryGapGovernor {
 public:
  IdleGovernor() : IdleGovernor(IdleGovernorParams{}) {}
  explicit IdleGovernor(const IdleGovernorParams& params);

  /// Forget all history (fresh trace).
  void reset();

  /// Predicted length of the next gap; 0 before the first observation.
  double predict() const;

  /// MemoryGapGovernor: deepest state whose xi and latency both fit the
  /// prediction; the deepest state outright before any history exists
  /// (hardware boots asleep — the first-gap downside is one abort pair,
  /// the upside is the whole leading gap).
  int choose_state(const SleepLadder& ladder) override;
  void observe(double gap, bool aborted) override;
  /// Timeline journal hook: the prediction the latest choose_state acted
  /// on (predict() is pure, so querying it never perturbs decisions).
  double predict_gap() const override { return predict(); }

  double observed() const { return static_cast<double>(count_); }
  double mispredict_clamps() const { return clamps_; }

 private:
  double unimodal_predict() const;

  IdleGovernorParams params_;
  long count_ = 0;
  double clamps_ = 0.0;

  // Unimodal path.
  double ewma_ = 0.0;           ///< EWMA over all gaps
  std::vector<double> ring_;    ///< last `window` gaps, ring-indexed
  std::size_t ring_next_ = 0;   ///< next slot to overwrite
  std::size_t ring_size_ = 0;   ///< filled entries (<= window)
  mutable std::vector<double> scratch_;  ///< median workspace

  // Bimodal path: short/long split at the deepest break-even of the
  // ladder last presented to choose_state.
  double tau_ = 0.0;            ///< class boundary (deepest xi); 0 = unset
  double ewma_short_ = 0.0;
  long n_short_ = 0;
  double ewma_long_ = 0.0;
  long n_long_ = 0;
  double run_ = 0.0;            ///< short gaps since the last long gap
  double run_len_ewma_ = 0.0;   ///< learned short-run (burst) length
  bool run_seen_ = false;       ///< a run has completed at least once
  int last_class_ = -1;         ///< -1 none, 0 short, 1 long
  double p_long_after_long_ = 0.0;  ///< EWMA of [long follows long]
};

/// One independent governor per memory island/rank: per-island gap streams
/// must not contaminate each other's predictors (and per-island state is
/// what keeps parallel accounting deterministic).
class GovernorBank {
 public:
  explicit GovernorBank(int islands,
                        const IdleGovernorParams& params = IdleGovernorParams{});

  int size() const { return static_cast<int>(governors_.size()); }
  IdleGovernor& at(int island) {
    return governors_[static_cast<std::size_t>(island)];
  }
  /// Non-owning per-island pointer view (rank_memory_energy_ladder input).
  std::vector<MemoryGapGovernor*> pointers();
  void reset_all();

 private:
  std::vector<IdleGovernor> governors_;
};

}  // namespace sdem
