#include "sim/metrics.hpp"

#include "obs/obs.hpp"

namespace sdem {

PolicyEval evaluate_policy(const SimResult& sim, const SystemConfig& cfg,
                           SleepDiscipline memory_discipline,
                           const std::string& name,
                           MemoryGapGovernor* governor) {
  EnergyOptions opts;
  opts.core_gaps = SleepDiscipline::kOptimal;
  opts.memory_gaps = memory_discipline;
  opts.horizon_lo = sim.horizon_lo;
  opts.horizon_hi = sim.horizon_hi;
  opts.governor = governor;

  PolicyEval ev;
  ev.policy = name;
  ev.energy = compute_energy(sim.schedule, cfg, opts);
  ev.memory_sleep_time = ev.energy.memory_sleep_time;
  ev.deadline_misses = sim.deadline_misses;
  ev.unfinished = sim.unfinished;
  return ev;
}

namespace {

double saving(double base, double x) {
  if (base <= 0.0) return 0.0;
  return (base - x) / base;
}

}  // namespace

double Comparison::system_saving_mbkps() const {
  return saving(mbkp.energy.system_total(), mbkps.energy.system_total());
}
double Comparison::system_saving_sdem() const {
  return saving(mbkp.energy.system_total(), sdem.energy.system_total());
}
double Comparison::memory_saving_mbkps() const {
  return saving(mbkp.energy.memory_total(), mbkps.energy.memory_total());
}
double Comparison::memory_saving_sdem() const {
  return saving(mbkp.energy.memory_total(), sdem.energy.memory_total());
}

Comparison run_comparison(const TaskSet& arrivals, const SystemConfig& cfg) {
  ComparisonScratch scratch;
  return run_comparison(arrivals, cfg, scratch);
}

Comparison run_comparison(const TaskSet& arrivals, const SystemConfig& cfg,
                          ComparisonScratch& scratch) {
  SDEM_OBS_TIMER("metrics/run_comparison");
  Comparison cmp;

  const SimResult mbkp_sim = simulate(arrivals, cfg, scratch.mbkp);
  cmp.mbkp = evaluate_policy(mbkp_sim, cfg, SleepDiscipline::kNever, "MBKP");
  cmp.mbkps =
      evaluate_policy(mbkp_sim, cfg, SleepDiscipline::kOptimal, "MBKPS");

  const SimResult sdem_sim = simulate(arrivals, cfg, scratch.sdem);
  cmp.sdem =
      evaluate_policy(sdem_sim, cfg, SleepDiscipline::kOptimal, "SDEM-ON");
  // Per-run headline gauges: how long the memory sleeps under each policy's
  // schedule across the whole comparison horizon.
  SDEM_OBS_DIST("metrics/sdem_memory_sleep_s", cmp.sdem.memory_sleep_time);
  SDEM_OBS_DIST("metrics/mbkps_memory_sleep_s", cmp.mbkps.memory_sleep_time);
  return cmp;
}

}  // namespace sdem
