// Evaluation metrics and the three-way comparison harness (paper §8).
//
// Every figure in the paper compares SDEM-ON and MBKPS against MBKP on the
// same arrival trace:
//   saving(X) = (E_MBKP - E_X) / E_MBKP.
// run_comparison simulates both policies once and accounts the MBKP
// schedule twice (never-sleep vs sleep-when-idle memory) to produce all
// three columns.
#pragma once

#include <string>

#include "baseline/mbkp.hpp"
#include "core/online_sdem.hpp"
#include "sched/energy.hpp"
#include "sim/event_sim.hpp"

namespace sdem {

struct PolicyEval {
  std::string policy;
  EnergyBreakdown energy;
  double memory_sleep_time = 0.0;
  int deadline_misses = 0;
  int unfinished = 0;
};

/// Account a finished simulation under a memory gap discipline (cores are
/// always kOptimal; with xi == 0 idle cores are free, the §3 model).
/// `governor` is consulted per memory gap when the discipline is
/// kGovernor (see sim/governor.hpp); ignored otherwise.
PolicyEval evaluate_policy(const SimResult& sim, const SystemConfig& cfg,
                           SleepDiscipline memory_discipline,
                           const std::string& name,
                           MemoryGapGovernor* governor = nullptr);

struct Comparison {
  PolicyEval mbkp;   ///< MBKP schedule, memory never sleeps
  PolicyEval mbkps;  ///< MBKP schedule, memory sleeps in its idle gaps
  PolicyEval sdem;   ///< SDEM-ON schedule, memory sleeps in its idle gaps

  /// (E_MBKP - E_X) / E_MBKP, system-wide.
  double system_saving_mbkps() const;
  double system_saving_sdem() const;
  /// Same ratio on the memory-only component (Fig. 6a).
  double memory_saving_mbkps() const;
  double memory_saving_sdem() const;
  /// SDEM-ON saving minus MBKPS saving (Figs. 7a/7b plot this improvement).
  double improvement() const {
    return system_saving_sdem() - system_saving_mbkps();
  }
};

/// Reusable state for run_comparison. The two policy objects carry replan
/// scratch buffers (dense id slots, per-slot arrays, the transition solver
/// workspace) that only grow; keeping one scratch alive across many
/// comparisons — e.g. across the cells of one grid tile, see
/// parallel_for_grid_tiled — pays those allocations once instead of per
/// cell. simulate() resets all logical policy state at the start of every
/// run, so the scratch-reusing overload is bit-identical to the plain one.
struct ComparisonScratch {
  MbkpPolicy mbkp;
  SdemOnPolicy sdem;
};

/// Simulate both policies on `arrivals` and account all three comparators.
Comparison run_comparison(const TaskSet& arrivals, const SystemConfig& cfg);

/// Scratch-reusing overload, bit-identical to the one above.
Comparison run_comparison(const TaskSet& arrivals, const SystemConfig& cfg,
                          ComparisonScratch& scratch);

}  // namespace sdem
