// Online scheduling policy interface (paper §6, §8).
//
// The event simulator drives a policy through the arrival trace: whenever
// the pending set changes (one or more arrivals), the policy replans and
// returns segments covering the pending work from `now` to completion,
// assuming no further arrivals. The simulator clips the plan at the next
// arrival, accounts the executed work, and replans. Preemption across
// replans is allowed (§6); within one plan each core's segments must not
// overlap.
#pragma once

#include <string>
#include <vector>

#include "model/power.hpp"
#include "model/task.hpp"
#include "sched/schedule.hpp"

namespace sdem {

struct PendingTask {
  Task task;               ///< original release/deadline/work
  double remaining = 0.0;  ///< megacycles left at replan time
  int core = 0;            ///< core assigned by the simulator (round-robin)
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;
  virtual std::string name() const = 0;

  /// Forget all per-run state (core assignments, cursors, scratch buffers).
  /// The simulator calls this at the start of every run so that one policy
  /// object can evaluate many traces without leaking state between them.
  virtual void reset() {}

  /// Plan all pending work from `now` until completion. Segments must start
  /// at or after `now`, execute only pending tasks, and respect per-core
  /// exclusivity. The plan is valid until the next arrival.
  virtual std::vector<Segment> replan(double now,
                                      const std::vector<PendingTask>& pending,
                                      const SystemConfig& cfg) = 0;

  /// Replan triggered by an early task completion (slack reclamation)
  /// rather than an arrival. Defaults to the arrival replan; policies that
  /// procrastinate should override to avoid re-sleeping mid-batch — going
  /// back to sleep with work in flight fragments the memory's busy interval
  /// and pays extra transition pairs.
  virtual std::vector<Segment> replan_completion(
      double now, const std::vector<PendingTask>& pending,
      const SystemConfig& cfg) {
    return replan(now, pending, cfg);
  }
};

}  // namespace sdem
