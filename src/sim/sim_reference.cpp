// Verbatim copies of the pre-optimization solvers, policies and event loop.
// See the header for why this file must stay frozen.
#include "sim/sim_reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "baseline/oa.hpp"
#include "core/result.hpp"
#include "core/transition.hpp"
#include "support/numeric.hpp"

namespace sdem {
namespace {

constexpr double kInfRef = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Section 7 solver (transition overheads), original form.
// ---------------------------------------------------------------------------
namespace ref_transition {

double tail_cost(double static_power, double gap, double break_even) {
  if (gap <= 0.0 || static_power <= 0.0) return 0.0;
  if (break_even <= 0.0) return 0.0;
  return std::min(static_power * gap, static_power * break_even);
}

OfflineResult solve(const TaskSet& tasks, const SystemConfig& cfg) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_common_release() || !tasks.validate().empty())
    return res;
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12))
    return res;

  const double release = tasks[0].release;
  double H = 0.0;
  for (const auto& t : tasks.tasks()) H = std::max(H, t.deadline - release);
  if (H <= 0.0) return res;

  const double alpha = cfg.core.alpha;
  const double alpha_m = cfg.memory.alpha_m;
  const double beta = cfg.core.beta;
  const double lambda = cfg.core.lambda;
  const double s_m = cfg.core.critical_speed_raw();

  auto energy = [&](double T) {
    if (T <= 0.0) return tasks.total_work() > 0.0 ? kInfRef : 0.0;
    double e = alpha_m * T + tail_cost(alpha_m, H - T, cfg.memory.xi_m);
    for (const auto& t : tasks.tasks()) {
      double run = 0.0, speed = 0.0;
      e += transition_task_cost(t, cfg, H, std::min(T, t.deadline - release),
                                run, speed);
      if (!std::isfinite(e)) return kInfRef;
    }
    return e;
  };

  double t_min = 0.0;
  if (std::isfinite(cfg.core.max_speed())) {
    for (const auto& t : tasks.tasks()) {
      t_min = std::max(t_min, t.work / cfg.core.max_speed());
    }
  }

  std::set<double> bps;
  auto add = [&](double T) {
    if (T > t_min && T < H) bps.insert(T);
  };
  add(H - cfg.core.xi);
  add(H - cfg.memory.xi_m);
  const double s_race = std::min(s_m > 0.0 ? s_m : cfg.core.max_speed(),
                                 cfg.core.max_speed());
  for (const auto& t : tasks.tasks()) {
    if (t.work <= 0.0) continue;
    add(t.deadline - release);
    if (s_m > 0.0) {
      add(t.work / s_race);  // knee
      if (alpha > 0.0 && std::isfinite(s_race)) {
        const double run = t.work / s_race;
        const double race_cost =
            cfg.core.exec_energy(t.work, s_race) +
            std::min(alpha * (H - run), alpha * cfg.core.xi);
        const double rhs = race_cost - alpha * H;
        if (rhs > 0.0) {
          add(std::pow(beta * std::pow(t.work, lambda) / rhs,
                       1.0 / (lambda - 1.0)));
        }
      }
    }
  }
  std::vector<double> edges(bps.begin(), bps.end());
  edges.insert(edges.begin(), t_min);
  edges.push_back(H);

  double best_T = H;
  double best = energy(H);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    const double lo = edges[i], hi = edges[i + 1];
    if (hi <= lo) continue;
    const double t = golden_min(energy, lo, hi, 1e-13);
    for (double cand : {t, lo, hi}) {
      const double e = energy(cand);
      if (e < best) {
        best = e;
        best_T = cand;
      }
    }
  }
  if (!std::isfinite(best)) return res;

  res.feasible = true;
  res.energy = best;
  res.sleep_time = H - best_T;
  int core = 0;
  for (const auto& t : tasks.tasks()) {
    double run = 0.0, speed = 0.0;
    transition_task_cost(t, cfg, H, std::min(best_T, t.deadline - release),
                         run, speed);
    if (t.work > 0.0) {
      res.schedule.add(Segment{t.id, core, release, release + run, speed});
    }
    ++core;
  }
  return res;
}

}  // namespace ref_transition

// ---------------------------------------------------------------------------
// Section 4.1 solver (alpha == 0), original form (linear case scan).
// ---------------------------------------------------------------------------
namespace ref_alpha0 {

struct Instance {
  double release = 0.0;
  double horizon = 0.0;
  double alpha_m = 0.0;
  double beta = 0.0;
  double lambda = 0.0;
  double s_up = 0.0;
  std::vector<Task> tasks;
  std::vector<double> d;
  std::vector<double> delta;
  std::vector<double> suffix_wl;
  std::vector<double> suffix_wmax;
  std::vector<double> prefix_fixed;

  int n() const { return static_cast<int>(tasks.size()); }
};

Instance build_instance(const TaskSet& tasks, const SystemConfig& cfg) {
  Instance in;
  const TaskSet sorted = tasks.sorted_by_deadline();
  in.tasks = sorted.tasks();
  in.release = in.tasks.front().release;
  in.alpha_m = cfg.memory.alpha_m;
  in.beta = cfg.core.beta;
  in.lambda = cfg.core.lambda;
  in.s_up = cfg.core.max_speed();

  const int n = in.n();
  in.d.resize(n + 1);
  in.delta.resize(n + 1);
  in.suffix_wl.assign(n + 2, 0.0);
  in.suffix_wmax.assign(n + 2, 0.0);
  in.prefix_fixed.assign(n + 2, 0.0);

  in.horizon = in.tasks.back().deadline - in.release;
  for (int i = 1; i <= n; ++i) {
    const Task& t = in.tasks[i - 1];
    in.d[i] = t.deadline - in.release;
    in.delta[i] = in.horizon - in.d[i];
  }
  for (int i = n; i >= 1; --i) {
    const Task& t = in.tasks[i - 1];
    in.suffix_wl[i] = in.suffix_wl[i + 1] + std::pow(t.work, in.lambda);
    in.suffix_wmax[i] = std::max(in.suffix_wmax[i + 1], t.work);
  }
  for (int i = 1; i <= n; ++i) {
    const Task& t = in.tasks[i - 1];
    in.prefix_fixed[i + 1] =
        in.prefix_fixed[i] +
        in.beta * stretch_energy_term(t.work, in.d[i], in.lambda);
  }
  return in;
}

double case_energy(const Instance& in, int i, double delta) {
  const double T = in.horizon - delta;
  if (T < 0.0) return std::numeric_limits<double>::infinity();
  double e = in.alpha_m * T + in.prefix_fixed[i];
  if (in.suffix_wl[i] > 0.0) {
    if (T <= 0.0) return std::numeric_limits<double>::infinity();
    e += in.beta * in.suffix_wl[i] * std::pow(T, 1.0 - in.lambda);
  }
  return e;
}

double delta_mi(const Instance& in, int i) {
  if (in.alpha_m <= 0.0) return 0.0;
  const double s = in.suffix_wl[i];
  if (s <= 0.0) return in.horizon;
  const double t =
      std::pow(in.beta * (in.lambda - 1.0) * s / in.alpha_m, 1.0 / in.lambda);
  return in.horizon - t;
}

struct CaseLocal {
  bool feasible = false;
  double delta = 0.0;
  double energy = std::numeric_limits<double>::infinity();
};

CaseLocal case_local_optimum(const Instance& in, int i) {
  CaseLocal out;
  const double lo = in.delta[i];
  double hi = (i >= 2) ? in.delta[i - 1] : in.horizon;
  if (std::isfinite(in.s_up) && in.suffix_wmax[i] > 0.0) {
    hi = std::min(hi, in.horizon - in.suffix_wmax[i] / in.s_up);
  }
  if (hi < lo) return out;
  const double dm = std::clamp(delta_mi(in, i), lo, hi);
  out.feasible = true;
  out.delta = dm;
  out.energy = case_energy(in, i, dm);
  return out;
}

OfflineResult finalize(const Instance& in, int best_case, double best_delta,
                       double best_energy) {
  OfflineResult res;
  res.feasible = true;
  res.case_index = best_case;
  res.sleep_time = best_delta;
  res.energy = best_energy;
  const double T = in.horizon - best_delta;
  for (int j = 1; j <= in.n(); ++j) {
    const Task& t = in.tasks[j - 1];
    if (t.work <= 0.0) continue;
    const double len = (j < best_case) ? in.d[j] : T;
    res.schedule.add(Segment{t.id, j - 1, in.release, in.release + len,
                             t.work / len});
  }
  return res;
}

bool instance_ok(const TaskSet& tasks, const SystemConfig& cfg) {
  return !tasks.empty() && tasks.is_common_release() &&
         tasks.validate().empty() &&
         tasks.max_filled_speed() <= cfg.core.max_speed() * (1.0 + 1e-12);
}

OfflineResult solve(const TaskSet& tasks, const SystemConfig& cfg) {
  if (!instance_ok(tasks, cfg)) return {};
  const Instance in = build_instance(tasks, cfg);

  int best_case = -1;
  double best_delta = 0.0;
  double best_energy = std::numeric_limits<double>::infinity();
  for (int i = 1; i <= in.n(); ++i) {
    const CaseLocal loc = case_local_optimum(in, i);
    if (loc.feasible && loc.energy < best_energy) {
      best_energy = loc.energy;
      best_delta = loc.delta;
      best_case = i;
    }
  }
  if (best_case < 0) return {};
  return finalize(in, best_case, best_delta, best_energy);
}

}  // namespace ref_alpha0

// ---------------------------------------------------------------------------
// Section 4.2 solver (alpha > 0), original form.
// ---------------------------------------------------------------------------
namespace ref_alpha {

struct Entry {
  Task task;
  double s0 = 0.0;
  double c = 0.0;
};

OfflineResult solve(const TaskSet& tasks, const SystemConfig& cfg) {
  OfflineResult res;
  if (tasks.empty() || !tasks.is_common_release() || !tasks.validate().empty())
    return res;
  if (tasks.max_filled_speed() > cfg.core.max_speed() * (1.0 + 1e-12))
    return res;

  const double alpha = cfg.core.alpha;
  const double alpha_m = cfg.memory.alpha_m;
  const double beta = cfg.core.beta;
  const double lambda = cfg.core.lambda;
  const double s_up = cfg.core.max_speed();
  const double release = tasks[0].release;

  const int n = static_cast<int>(tasks.size());
  std::vector<Entry> es;
  es.reserve(n);
  for (const auto& t : tasks.tasks()) {
    Entry e;
    e.task = t;
    e.s0 = cfg.core.critical_speed(t.filled_speed());
    e.c = (t.work > 0.0) ? t.work / e.s0 : 0.0;
    es.push_back(e);
  }
  std::sort(es.begin(), es.end(),
            [](const Entry& a, const Entry& b) { return a.c < b.c; });

  const double horizon = es.back().c;
  if (horizon <= 0.0) {
    res.feasible = true;
    res.energy = 0.0;
    res.sleep_time = 0.0;
    return res;
  }

  std::vector<double> suffix_wl(n + 2, 0.0), suffix_wmax(n + 2, 0.0);
  std::vector<double> prefix_const(n + 2, 0.0);
  for (int i = n; i >= 1; --i) {
    const Entry& e = es[i - 1];
    suffix_wl[i] = suffix_wl[i + 1] + std::pow(e.task.work, lambda);
    suffix_wmax[i] = std::max(suffix_wmax[i + 1], e.task.work);
  }
  for (int i = 1; i <= n; ++i) {
    const Entry& e = es[i - 1];
    prefix_const[i + 1] =
        prefix_const[i] + (e.task.work > 0.0
                               ? (beta * std::pow(e.s0, lambda) + alpha) * e.c
                               : 0.0);
  }
  auto delta_of = [&](int i) { return horizon - es[i - 1].c; };

  auto case_energy = [&](int i, double delta) {
    const double T = horizon - delta;
    if (T <= 0.0) {
      return suffix_wl[i] > 0.0 ? std::numeric_limits<double>::infinity()
                                : 0.0;
    }
    const double devices = static_cast<double>(n - i + 1) * alpha + alpha_m;
    return devices * T + beta * suffix_wl[i] * std::pow(T, 1.0 - lambda);
  };

  int best_case = -1;
  double best_delta = 0.0;
  double best_energy = std::numeric_limits<double>::infinity();
  for (int i = 1; i <= n; ++i) {
    const double lo = delta_of(i);
    double hi = (i >= 2) ? delta_of(i - 1) : horizon;
    if (std::isfinite(s_up) && suffix_wmax[i] > 0.0) {
      hi = std::min(hi, horizon - suffix_wmax[i] / s_up);
    }
    if (hi < lo) continue;

    double dm;
    const double devices = static_cast<double>(n - i + 1) * alpha + alpha_m;
    if (suffix_wl[i] <= 0.0) {
      dm = hi;
    } else if (devices <= 0.0) {
      dm = lo;
    } else {
      dm = horizon -
           std::pow(beta * (lambda - 1.0) * suffix_wl[i] / devices,
                    1.0 / lambda);
      dm = std::clamp(dm, lo, hi);
    }
    const double e = case_energy(i, dm) + prefix_const[i];
    if (e < best_energy) {
      best_energy = e;
      best_delta = dm;
      best_case = i;
    }
  }
  if (best_case < 0) return res;

  res.feasible = true;
  res.case_index = best_case;
  res.sleep_time = best_delta;
  res.energy = best_energy;
  const double T = horizon - best_delta;
  for (int j = 1; j <= n; ++j) {
    const Entry& e = es[j - 1];
    if (e.task.work <= 0.0) continue;
    const double len = (j < best_case) ? e.c : T;
    res.schedule.add(Segment{e.task.id, j - 1, release, release + len,
                             e.task.work / len});
  }
  return res;
}

}  // namespace ref_alpha

OfflineResult ref_plan_common_release(const TaskSet& tasks,
                                      const SystemConfig& cfg) {
  if (cfg.memory.xi_m > 0.0 || (cfg.core.alpha > 0.0 && cfg.core.xi > 0.0)) {
    return ref_transition::solve(tasks, cfg);
  }
  if (cfg.core.alpha > 0.0) return ref_alpha::solve(tasks, cfg);
  return ref_alpha0::solve(tasks, cfg);
}

}  // namespace

// ---------------------------------------------------------------------------
// SDEM-ON policy, original form.
// ---------------------------------------------------------------------------

std::vector<Segment> SdemOnReferencePolicy::replan(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg) {
  return plan(now, pending, cfg, procrastinate_);
}

std::vector<Segment> SdemOnReferencePolicy::replan_completion(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg) {
  return plan(now, pending, cfg, /*procrastinate=*/false);
}

std::vector<Segment> SdemOnReferencePolicy::plan(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg, bool procrastinate) {
  std::vector<Segment> plan;
  if (pending.empty()) return plan;
  const double s_up = cfg.core.max_speed();

  TaskSet virt;
  std::map<int, double> eff_deadline;
  for (const auto& p : pending) {
    Task t;
    t.id = p.task.id;
    t.release = now;
    t.work = p.remaining;
    const double min_span =
        std::isfinite(s_up) ? p.remaining / s_up : 1e-9;
    t.deadline = std::max(p.task.deadline, now + std::max(min_span, 1e-12));
    eff_deadline[t.id] = t.deadline;
    virt.add(t);
  }

  const OfflineResult local = ref_plan_common_release(virt, cfg);

  std::map<int, double> dur;
  for (const auto& seg : local.schedule.segments()) {
    dur[seg.task_id] += seg.duration();
  }

  double wake = std::numeric_limits<double>::infinity();
  for (const auto& p : pending) {
    const double d = eff_deadline[p.task.id];
    const double len = dur.count(p.task.id) ? dur[p.task.id] : 0.0;
    if (len > 0.0) wake = std::min(wake, d - len);
  }
  if (!std::isfinite(wake)) return plan;
  wake = procrastinate ? std::max(wake, now) : now;

  std::map<int, std::vector<const PendingTask*>> by_core;
  for (const auto& p : pending) by_core[p.core].push_back(&p);
  for (auto& [core, group] : by_core) {
    std::sort(group.begin(), group.end(),
              [&](const PendingTask* a, const PendingTask* b) {
                return eff_deadline[a->task.id] < eff_deadline[b->task.id];
              });
    double cur = wake;
    for (const PendingTask* p : group) {
      if (p->remaining <= 0.0) continue;
      double len = dur.count(p->task.id) ? dur[p->task.id] : 0.0;
      if (len <= 0.0) len = p->remaining / std::min(s_up, 1e9);
      const double d = eff_deadline[p->task.id];
      if (cur + len > d) {
        const double min_len =
            std::isfinite(s_up) ? p->remaining / s_up : 1e-12;
        len = std::max(d - cur, min_len);
      }
      if (cfg.core.s_min > 0.0) {
        len = std::min(len, p->remaining / cfg.core.s_min);
      }
      plan.push_back(
          Segment{p->task.id, core, cur, cur + len, p->remaining / len});
      cur += len;
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// MBKP policy, original form.
// ---------------------------------------------------------------------------

std::vector<Segment> MbkpReferencePolicy::replan(
    double now, const std::vector<PendingTask>& pending,
    const SystemConfig& cfg) {
  const int cores = cfg.num_cores > 0 ? cfg.num_cores
                                      : static_cast<int>(pending.size());

  for (const auto& p : pending) {
    if (core_of_.count(p.task.id)) continue;
    const double density = p.task.work / std::max(p.task.region(), 1e-12);
    const int klass = static_cast<int>(std::floor(std::log2(
        std::max(density, 1e-12))));
    int& cursor = class_cursor_[klass];
    core_of_[p.task.id] = cursor % std::max(cores, 1);
    ++cursor;
  }

  // `core_of_` persists across replans while `cores` can shrink (unbounded
  // mode recomputes it from the pending set), so an old assignment may point
  // past the nominal core count — grow the queue array to fit it.
  std::vector<std::vector<OaJob>> queues(std::max(cores, 1));
  for (const auto& p : pending) {
    const int c = core_of_[p.task.id];
    if (c >= static_cast<int>(queues.size())) queues.resize(c + 1);
    queues[c].push_back(OaJob{p.task.id, p.task.deadline, p.remaining});
  }
  std::vector<Segment> plan;
  for (int c = 0; c < static_cast<int>(queues.size()); ++c) {
    if (queues[c].empty()) continue;
    auto segs = oa_plan(now, queues[c], c, cfg.core.s_up, cfg.core.s_min);
    plan.insert(plan.end(), segs.begin(), segs.end());
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Event loop, original form.
// ---------------------------------------------------------------------------

SimResult simulate_reference(const TaskSet& arrivals, const SystemConfig& cfg,
                             OnlinePolicy& policy) {
  SimResult res;
  if (arrivals.empty()) return res;

  const TaskSet sorted = arrivals.sorted_by_release();
  const int cores = cfg.unbounded() ? static_cast<int>(sorted.size())
                                    : cfg.num_cores;

  std::vector<PendingTask> pending;
  std::map<int, double> finished_at;
  std::size_t next_arrival = 0;
  int rr = 0;

  res.horizon_lo = sorted[0].release;

  std::vector<Segment> plan;
  double plan_from = sorted[0].release;

  auto account = [&](double upto) {
    for (const auto& seg : plan) {
      const double lo = std::max(seg.start, plan_from);
      const double hi = std::min(seg.end, upto);
      if (hi <= lo) continue;
      Segment piece = seg;
      piece.start = lo;
      piece.end = hi;
      res.schedule.add(piece);
      for (auto& p : pending) {
        if (p.task.id == piece.task_id) {
          p.remaining -= piece.work();
          if (p.remaining < 1e-9 * std::max(1.0, p.task.work)) {
            p.remaining = 0.0;
            finished_at[p.task.id] = hi;
          }
          break;
        }
      }
    }
    std::erase_if(pending,
                  [](const PendingTask& p) { return p.remaining <= 0.0; });
  };

  while (next_arrival < sorted.size() || !pending.empty()) {
    if (next_arrival < sorted.size()) {
      const double t = sorted[next_arrival].release;
      account(t);
      while (next_arrival < sorted.size() &&
             sorted[next_arrival].release == t) {
        PendingTask p;
        p.task = sorted[next_arrival];
        p.remaining = p.task.work;
        p.core = rr % cores;
        ++rr;
        ++next_arrival;
        if (p.remaining > 0.0) pending.push_back(p);
      }
      plan = policy.replan(t, pending, cfg);
      plan_from = t;
      ++res.replans;
    } else {
      double end = plan_from;
      for (const auto& seg : plan) end = std::max(end, seg.end);
      account(end);
      break;
    }
  }

  res.unfinished = static_cast<int>(pending.size());
  for (const auto& t : sorted.tasks()) {
    auto it = finished_at.find(t.id);
    if (t.work <= 0.0) continue;
    if (it == finished_at.end() ||
        it->second > t.deadline + 1e-9 * std::max(1.0, t.deadline)) {
      ++res.deadline_misses;
    }
  }
  res.horizon_hi = std::max(sorted.max_deadline(), res.schedule.end_time());
  return res;
}

SimResult simulate_with_actuals_reference(
    const TaskSet& arrivals, const SystemConfig& cfg, OnlinePolicy& policy,
    const std::map<int, double>& actual_fraction, bool replan_on_completion) {
  SimResult res;
  if (arrivals.empty()) return res;

  const TaskSet sorted = arrivals.sorted_by_release();
  const int cores = cfg.unbounded() ? static_cast<int>(sorted.size())
                                    : cfg.num_cores;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  struct Live {
    PendingTask declared;
    double actual = 0.0;
  };
  std::vector<Live> pending;
  std::map<int, double> finished_at;
  std::size_t next_arrival = 0;
  int rr = 0;

  res.horizon_lo = sorted[0].release;
  std::vector<Segment> plan;
  double plan_from = sorted[0].release;

  auto chronological = [](std::vector<Segment> v) {
    std::sort(v.begin(), v.end(), [](const Segment& a, const Segment& b) {
      return a.start < b.start;
    });
    return v;
  };

  auto next_completion = [&](double after) {
    double best = kInf;
    std::map<int, double> rem;
    for (const auto& p : pending) rem[p.declared.task.id] = p.actual;
    for (const auto& seg : chronological(plan)) {
      auto it = rem.find(seg.task_id);
      if (it == rem.end() || it->second <= 0.0) continue;
      const double lo = std::max(seg.start, plan_from);
      if (seg.end <= lo) continue;
      const double need = it->second / seg.speed;
      const double have = seg.end - lo;
      if (need <= have + 1e-15) {
        const double tc = lo + need;
        it->second = 0.0;
        if (tc > after + 1e-12) best = std::min(best, tc);
      } else {
        it->second -= seg.speed * have;
      }
    }
    return best;
  };

  auto account = [&](double upto) {
    for (const auto& seg : chronological(plan)) {
      const double lo = std::max(seg.start, plan_from);
      const double hi = std::min(seg.end, upto);
      if (hi <= lo) continue;
      for (auto& p : pending) {
        if (p.declared.task.id != seg.task_id || p.actual <= 0.0) continue;
        const double run = std::min(hi - lo, p.actual / seg.speed);
        if (run <= 0.0) break;
        Segment piece = seg;
        piece.start = lo;
        piece.end = lo + run;
        res.schedule.add(piece);
        const double done = seg.speed * run;
        p.actual = std::max(0.0, p.actual - done);
        p.declared.remaining = std::max(0.0, p.declared.remaining - done);
        if (p.actual <= 1e-9 * std::max(1.0, p.declared.task.work)) {
          p.actual = 0.0;
          finished_at[p.declared.task.id] = piece.end;
        }
        break;
      }
    }
    std::erase_if(pending, [](const Live& p) { return p.actual <= 0.0; });
  };

  auto replan_now = [&](double t, bool completion) {
    std::vector<PendingTask> view;
    view.reserve(pending.size());
    for (const auto& p : pending) view.push_back(p.declared);
    plan = completion ? policy.replan_completion(t, view, cfg)
                      : policy.replan(t, view, cfg);
    plan_from = t;
    ++res.replans;
  };

  while (next_arrival < sorted.size() || !pending.empty()) {
    const double t_arr = next_arrival < sorted.size()
                             ? sorted[next_arrival].release
                             : kInf;
    const double t_done = replan_on_completion ? next_completion(plan_from)
                                               : kInf;
    if (t_arr == kInf && t_done == kInf) {
      double end = plan_from;
      for (const auto& seg : plan) end = std::max(end, seg.end);
      account(end);
      break;
    }
    if (t_done < t_arr) {
      account(t_done);
      replan_now(t_done, /*completion=*/true);
      continue;
    }
    account(t_arr);
    while (next_arrival < sorted.size() &&
           sorted[next_arrival].release == t_arr) {
      Live l;
      l.declared.task = sorted[next_arrival];
      l.declared.remaining = l.declared.task.work;
      l.declared.core = rr % cores;
      double frac = 1.0;
      if (auto it = actual_fraction.find(l.declared.task.id);
          it != actual_fraction.end()) {
        frac = std::clamp(it->second, 0.0, 1.0);
      }
      l.actual = l.declared.task.work * frac;
      ++rr;
      ++next_arrival;
      if (l.actual > 0.0) pending.push_back(l);
    }
    replan_now(t_arr, /*completion=*/false);
  }

  res.unfinished = static_cast<int>(pending.size());
  for (const auto& t : sorted.tasks()) {
    double frac = 1.0;
    if (auto it = actual_fraction.find(t.id); it != actual_fraction.end()) {
      frac = std::clamp(it->second, 0.0, 1.0);
    }
    if (t.work * frac <= 0.0) continue;
    auto it = finished_at.find(t.id);
    if (it == finished_at.end() ||
        it->second > t.deadline + 1e-9 * std::max(1.0, t.deadline)) {
      ++res.deadline_misses;
    }
  }
  res.horizon_hi = std::max(sorted.max_deadline(), res.schedule.end_time());
  return res;
}

}  // namespace sdem
