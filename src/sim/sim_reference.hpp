// Frozen pre-optimization implementations of the online simulation stack,
// kept verbatim as golden oracles for the allocation-free hot path (see
// tests/test_sim_fastpath.cpp). Everything here trades speed for
// obviousness: std::map-keyed state, per-call copies and sorts, per-probe
// config reads — exactly the code the optimized path must reproduce bit for
// bit. Do not "improve" this file; its value is that it never changes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/event_sim.hpp"
#include "sim/policy.hpp"

namespace sdem {

/// SDEM-ON as originally written: virtual task set, effective-deadline and
/// duration std::maps rebuilt every replan, map-driven per-core EDF groups.
class SdemOnReferencePolicy : public OnlinePolicy {
 public:
  explicit SdemOnReferencePolicy(bool procrastinate = true)
      : procrastinate_(procrastinate) {}

  std::string name() const override {
    return procrastinate_ ? "SDEM-ON/reference" : "SDEM-ON/eager/reference";
  }

  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;
  std::vector<Segment> replan_completion(
      double now, const std::vector<PendingTask>& pending,
      const SystemConfig& cfg) override;

 private:
  std::vector<Segment> plan(double now,
                            const std::vector<PendingTask>& pending,
                            const SystemConfig& cfg, bool procrastinate);

  bool procrastinate_ = true;
};

/// MBKP as originally written: map-keyed core assignments and class cursors,
/// per-replan queue vectors, copying oa_plan.
class MbkpReferencePolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "MBKP/reference"; }

  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override;

 private:
  std::map<int, int> core_of_;
  std::map<int, int> class_cursor_;
};

/// The event loop as originally written (finished_at map, per-segment
/// linear pending scans, per-event plan copies). Does not call
/// policy.reset(): the original had no such hook.
SimResult simulate_reference(const TaskSet& arrivals, const SystemConfig& cfg,
                             OnlinePolicy& policy);
SimResult simulate_with_actuals_reference(
    const TaskSet& arrivals, const SystemConfig& cfg, OnlinePolicy& policy,
    const std::map<int, double>& actual_fraction,
    bool replan_on_completion = true);

}  // namespace sdem
