#include "single/sss.hpp"

#include <algorithm>
#include <cmath>

namespace sdem {
namespace {

/// Idle-vs-sleep cost of a gap under break-even accounting.
struct GapTally {
  double idle = 0.0;
  double asleep = 0.0;
  int sleeps = 0;
};

GapTally tally_gaps(const Schedule& sched, double xi) {
  GapTally out;
  Interval prev{0.0, -1.0};
  for (const auto& b : merge_intervals([&] {
         std::vector<Interval> v;
         for (const auto& s : sched.segments()) v.push_back({s.start, s.end});
         return v;
       }())) {
    if (prev.hi >= prev.lo) {
      const double gap = b.lo - prev.hi;
      if (gap > 0.0) {
        if (xi <= 0.0 || gap >= xi) {
          out.asleep += gap;
          ++out.sleeps;
        } else {
          out.idle += gap;
        }
      }
    }
    prev = b;
  }
  return out;
}

}  // namespace

double single_core_energy(const Schedule& sched, const CorePower& power) {
  double e = 0.0;
  for (const auto& s : sched.segments()) {
    e += power.power(s.speed) * s.duration();
  }
  const GapTally g = tally_gaps(sched, power.xi);
  e += power.alpha * g.idle;
  e += power.alpha * power.xi * static_cast<double>(g.sleeps);
  return e;
}

SssResult solve_single_core_sleep(const std::vector<YdsJob>& jobs,
                                  const CorePower& power, int core) {
  SssResult res;
  const Schedule yds = yds_schedule(jobs, core);

  // Feasibility against s_up.
  for (const auto& seg : yds.segments()) {
    if (seg.speed > power.max_speed() * (1.0 + 1e-9)) return res;
  }

  // Raise sub-critical speeds to s_m, shrinking each segment toward its
  // start. Within a core the segments are disjoint and only end earlier,
  // so the result stays feasible (YDS never starts before a release).
  const double s_m = power.critical_speed_raw();
  for (const auto& seg : yds.segments()) {
    Segment s = seg;
    if (s_m > 0.0 && s.speed < s_m) {
      const double speed = std::min(s_m, power.max_speed());
      s.end = s.start + seg.work() / speed;
      s.speed = speed;
    }
    res.schedule.add(s);
  }

  res.feasible = true;
  res.energy = single_core_energy(res.schedule, power);
  const GapTally g = tally_gaps(res.schedule, power.xi);
  res.sleep_time = g.asleep;
  res.sleeps = g.sleeps;
  return res;
}

}  // namespace sdem
