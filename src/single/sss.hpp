// Single-core speed scaling with a sleep state (the paper's §2 ancestry:
// Irani, Shukla & Gupta 2007; Albers & Antoniadis's "Race to idle").
//
// One DVS core with power alpha + beta s^lambda, a sleep state, and
// break-even time xi runs a job set (r_i, d_i, w_i) preemptively. The
// classical "critical speed method":
//
//   1. compute the YDS optimal speed-scaling schedule (no sleep),
//   2. raise every speed below the critical speed s_m up to s_m, shrinking
//      each segment toward its start (feasibility is preserved: work per
//      segment is unchanged and nothing moves later),
//   3. sleep through the resulting gaps when they beat idling (>= xi).
//
// This is Irani et al.'s 2-approximation for the general problem and
// optimal whenever YDS never dips below s_m or the instance is a single
// busy batch — both covered in the tests, along with the invariant that it
// never loses to either pure YDS-with-naps or pure race-to-idle.
//
// It also serves as the per-core ingredient for a "memory-oblivious
// multi-core" comparison: run each core's queue with this scheme and see
// what ignoring the *shared* memory (the paper's whole point) costs.
#pragma once

#include <vector>

#include "baseline/yds.hpp"
#include "model/power.hpp"
#include "sched/schedule.hpp"

namespace sdem {

struct SssResult {
  bool feasible = false;
  Schedule schedule;
  double energy = 0.0;      ///< core energy incl. idle/sleep decisions
  double sleep_time = 0.0;  ///< time spent asleep inside the busy span
  int sleeps = 0;           ///< sleep cycles taken (each costs alpha * xi)
};

/// Critical-speed schedule for one core. `core` tags the emitted segments.
SssResult solve_single_core_sleep(const std::vector<YdsJob>& jobs,
                                  const CorePower& power, int core = 0);

/// Core-only energy of an arbitrary single-core schedule under the same
/// gap accounting (idle vs sleep, break-even xi), horizon = busy span.
double single_core_energy(const Schedule& sched, const CorePower& power);

}  // namespace sdem
