// Dense task-id indexing for the online hot path.
//
// The simulator and the online policies used to key per-task state by task
// id through std::map — one allocation and O(log n) pointer chases per
// lookup, per segment, per event. IdSlots interns ids into dense slots once
// so that state lives in flat vectors indexed in O(1).
#pragma once

#include <map>
#include <vector>

namespace sdem {

/// Grow-on-first-sight task-id -> dense-slot index. Nonnegative ids below
/// kDenseLimit resolve through a flat vector (the generators number tasks
/// 0..n-1); anything else falls back to an ordered map. Slots are assigned
/// in first-seen order and stay stable until clear().
class IdSlots {
 public:
  static constexpr int kDenseLimit = 1 << 22;

  int intern(int id) {
    if (id >= 0 && id < kDenseLimit) {
      if (id >= static_cast<int>(dense_.size())) {
        dense_.resize(static_cast<std::size_t>(id) + 1, -1);
      }
      int& s = dense_[static_cast<std::size_t>(id)];
      if (s < 0) s = next_++;
      return s;
    }
    auto [it, fresh] = other_.try_emplace(id, next_);
    if (fresh) ++next_;
    return it->second;
  }

  /// -1 when the id has not been interned.
  int slot_of(int id) const {
    if (id >= 0 && id < kDenseLimit) {
      return id < static_cast<int>(dense_.size())
                 ? dense_[static_cast<std::size_t>(id)]
                 : -1;
    }
    auto it = other_.find(id);
    return it == other_.end() ? -1 : it->second;
  }

  /// Number of slots handed out so far.
  int size() const { return next_; }

  void clear() {
    dense_.clear();
    other_.clear();
    next_ = 0;
  }

 private:
  std::vector<int> dense_;
  std::map<int, int> other_;
  int next_ = 0;
};

}  // namespace sdem
