#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sdem {

Json& Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray)
    throw std::logic_error("Json::push_back on non-array");
  arr_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::logic_error("Json::set on non-object");
  for (auto& kv : obj_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return arr_.size();
    case Kind::kObject:
      return obj_.size();
    default:
      return 0;
  }
}

std::string Json::number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers (within double's exact range) print bare: 8, not 8.0.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

std::string Json::quote(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

Json Json::without_key(const std::string& key) const {
  Json out = *this;
  if (kind_ == Kind::kArray) {
    for (Json& v : out.arr_) v = v.without_key(key);
  } else if (kind_ == Kind::kObject) {
    out.obj_.clear();
    for (const auto& kv : obj_) {
      if (kv.first == key) continue;
      out.obj_.emplace_back(kv.first, kv.second.without_key(key));
    }
  }
  return out;
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += number_to_string(num_);
      break;
    case Kind::kString:
      out += quote(str_);
      break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        out += quote(obj_[i].first);
        out += ": ";
        obj_[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace sdem
