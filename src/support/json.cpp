#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sdem {

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("Json::as_bool on non-bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber)
    throw std::logic_error("Json::as_number on non-number");
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString)
    throw std::logic_error("Json::as_string on non-string");
  return str_;
}

const Json& Json::at(std::size_t i) const {
  if (kind_ != Kind::kArray) throw std::logic_error("Json::at on non-array");
  if (i >= arr_.size()) throw std::out_of_range("Json array index");
  return arr_[i];
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& kv : obj_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw std::out_of_range("Json missing key: " + key);
  return *v;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v && v->is_number() ? v->as_number() : fallback;
}

Json& Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray)
    throw std::logic_error("Json::push_back on non-array");
  arr_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::logic_error("Json::set on non-object");
  for (auto& kv : obj_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return *this;
    }
  }
  // A Json value is wide (~100 bytes); growing 1→2→4→8 memmoves every
  // earlier member three times for a typical envelope. One up-front
  // reservation covers most objects this codebase builds.
  if (obj_.empty()) obj_.reserve(8);
  obj_.emplace_back(key, std::move(v));
  return *this;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return arr_.size();
    case Kind::kObject:
      return obj_.size();
    default:
      return 0;
  }
}

std::string Json::number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers (within double's exact range) print bare: 8, not 8.0. Written
  // by hand rather than snprintf("%.0f") — this runs per number in every
  // response envelope and bench row, and the digits are identical (signbit
  // keeps "-0" for negative zero).
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[24];
    char* q = buf + sizeof buf;
    std::uint64_t mag = static_cast<std::uint64_t>(std::fabs(v));
    do {
      *--q = static_cast<char>('0' + mag % 10);
      mag /= 10;
    } while (mag != 0);
    if (std::signbit(v)) *--q = '-';
    return std::string(q, static_cast<std::size_t>(buf + sizeof buf - q));
  }
  // Shortest representation that round-trips: try increasing precision.
  // strtod (not sscanf) for the round-trip check — same parse, no format
  // string machinery.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string Json::quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  // Bulk-copy runs of plain characters; the switch below only sees the
  // rare bytes that actually need escaping.
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t j = i;
    while (j < s.size()) {
      const unsigned char c = static_cast<unsigned char>(s[j]);
      if (c == '"' || c == '\\' || c < 0x20) break;
      ++j;
    }
    out.append(s, i, j - i);
    if (j == s.size()) {
      i = j;
      break;
    }
    const unsigned char c = static_cast<unsigned char>(s[j]);
    i = j + 1;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

Json Json::without_key(const std::string& key) const {
  Json out = *this;
  if (kind_ == Kind::kArray) {
    for (Json& v : out.arr_) v = v.without_key(key);
  } else if (kind_ == Kind::kObject) {
    out.obj_.clear();
    for (const auto& kv : obj_) {
      if (kv.first == key) continue;
      out.obj_.emplace_back(kv.first, kv.second.without_key(key));
    }
  }
  return out;
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += number_to_string(num_);
      break;
    case Kind::kString:
      out += quote(str_);
      break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        out += quote(obj_[i].first);
        out += ": ";
        obj_[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

namespace {

/// Recursive-descent parser over the dump() grammar.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    skip_ws();
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    std::size_t n = 0;
    while (w[n]) ++n;
    if (text_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        if (consume_word("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_word("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_word("null")) return Json();
        fail("bad literal");
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      skip_ws();
      expect(':');
      skip_ws();
      out.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      out.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      // Bulk-copy up to the next quote or backslash; most strings have no
      // escapes and resolve in a single append.
      std::size_t run = pos_;
      while (run < text_.size() && text_[run] != '"' && text_[run] != '\\') {
        ++run;
      }
      if (run > pos_) {
        out.append(text_, pos_, run - pos_);
        pos_ = run;
      }
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // quote() only emits \u00XX for control bytes; reject the rest
          // rather than half-support UTF-16 surrogates.
          if (code >= 0x80) fail("\\u escape above 0x7f unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json number() {
    const char* start = text_.c_str() + pos_;
    // Fast path: a plain integer of up to 15 digits is exactly
    // representable, so composing it directly matches strtod bit for bit.
    // Anything followed by '.', an exponent, or another letter (strtod
    // also accepts hex and inf/nan spellings) takes the slow path so the
    // accepted grammar is unchanged.
    const char* p = start;
    if (*p == '-') ++p;
    const char* digits = p;
    std::uint64_t mag = 0;
    while (*p >= '0' && *p <= '9') {
      mag = mag * 10 + static_cast<std::uint64_t>(*p - '0');
      ++p;
    }
    const std::size_t ndigits = static_cast<std::size_t>(p - digits);
    if (ndigits > 0 && ndigits <= 15 && *p != '.' &&
        !((*p >= 'a' && *p <= 'z') || (*p >= 'A' && *p <= 'Z'))) {
      pos_ += static_cast<std::size_t>(p - start);
      const double v = static_cast<double>(mag);
      return Json(*start == '-' ? -v : v);
    }
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected value");
    pos_ += static_cast<std::size_t>(end - start);
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace sdem
