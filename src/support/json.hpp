// Minimal JSON document for the benchmark runner and the fuzz repro files.
//
// Started as writer-only — the bench harness emits BENCH_<name>.json files
// and never reads them back. The differential fuzzer added parse(): repro
// files must round-trip through the same value type so a replayed case is
// the exact case that failed. Design constraints, in order:
//   * deterministic bytes: objects keep insertion order, numbers render via
//     a fixed shortest-round-trip rule, so a --jobs 8 run and a --jobs 1
//     run of the same sweep produce identical files (the determinism test
//     diffs the bytes);
//   * lossless doubles: every finite double round-trips (printed with up to
//     17 significant digits, shortest representation that parses back
//     exactly); NaN/Inf have no JSON spelling and render as null;
//   * no dependencies: a tagged union over the six JSON kinds, ~200 lines.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sdem {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : kind_(Kind::kNumber), num_(v) {}
  Json(std::int64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed reads. Throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array element access; throws std::out_of_range past the end.
  const Json& at(std::size_t i) const;

  /// Object member lookup: nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// Object member access; throws std::out_of_range when absent.
  const Json& at(const std::string& key) const;

  /// Member with a numeric/default fallback for optional repro fields.
  double number_or(const std::string& key, double fallback) const;

  /// Array append. The value becomes an array if currently null.
  Json& push_back(Json v);

  /// Object insert/overwrite; keys keep first-insertion order. The value
  /// becomes an object if currently null.
  Json& set(const std::string& key, Json v);

  std::size_t size() const;

  /// Serialize. indent == 0 → single line; indent > 0 → pretty-printed
  /// with that many spaces per level and a trailing newline at top level.
  std::string dump(int indent = 0) const;

  /// Deep copy with every object member named `key` removed, at any depth
  /// (the runner's --stable uses this to drop timing fields).
  Json without_key(const std::string& key) const;

  /// The exact number rendering rule (shortest round-trip, integers bare,
  /// non-finite → "null"), exposed for tests and for CSV/markdown writers
  /// that want matching bytes.
  static std::string number_to_string(double v);

  /// JSON string escaping (quotes included in the output).
  static std::string quote(const std::string& s);

  /// Parse a complete JSON document (the subset dump() emits: objects,
  /// arrays, strings with the standard escapes, numbers, booleans, null;
  /// \uXXXX escapes are accepted for code points below 0x80). Throws
  /// std::invalid_argument with a byte offset on malformed input. Numbers
  /// parse with strtod, so every value printed by number_to_string
  /// round-trips bit-exactly.
  static Json parse(const std::string& text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace sdem
