#include "support/numeric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace sdem {

double bisect_root(const std::function<double(double)>& f, double lo, double hi) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    return std::abs(flo) < std::abs(fhi) ? lo : hi;
  }
  const double width_tol = std::max(std::abs(hi - lo), 1.0) * kTol;
  while (hi - lo > width_tol) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // ran out of precision
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double golden_min(const std::function<double(double)>& f, double lo, double hi,
                  double rel_tol) {
  return golden_min_t(f, lo, hi, rel_tol);
}

double grid_refine_min(const std::function<double(double)>& f, double lo, double hi,
                       std::size_t grid) {
  if (hi <= lo) return lo;
  grid = std::max<std::size_t>(grid, 2);
  double best_x = lo;
  double best_f = std::numeric_limits<double>::infinity();
  const double step = (hi - lo) / static_cast<double>(grid);
  for (std::size_t i = 0; i <= grid; ++i) {
    const double x = lo + step * static_cast<double>(i);
    const double v = f(x);
    if (v < best_f) {
      best_f = v;
      best_x = x;
    }
  }
  const double a = std::max(lo, best_x - step);
  const double b = std::min(hi, best_x + step);
  const double refined = golden_min(f, a, b);
  return f(refined) < best_f ? refined : best_x;
}

double grid_refine_min2(const std::function<double(double, double)>& f,
                        double alo, double ahi, double blo, double bhi,
                        double& arg_a, double& arg_b, std::size_t grid) {
  grid = std::max<std::size_t>(grid, 2);
  double best = std::numeric_limits<double>::infinity();
  arg_a = alo;
  arg_b = blo;
  // Iteratively re-gridded scan: each zoom pass re-grids a window of +-2
  // cells around the incumbent, multiplying the resolution by ~grid/4.
  double zalo = alo, zahi = ahi, zblo = blo, zbhi = bhi;
  double astep = 0.0, bstep = 0.0;
  for (int zoom = 0; zoom < 4; ++zoom) {
    astep = (zahi - zalo) / static_cast<double>(grid);
    bstep = (zbhi - zblo) / static_cast<double>(grid);
    for (std::size_t i = 0; i <= grid; ++i) {
      const double a = zalo + astep * static_cast<double>(i);
      for (std::size_t j = 0; j <= grid; ++j) {
        const double b = zblo + bstep * static_cast<double>(j);
        const double v = f(a, b);
        if (v < best) {
          best = v;
          arg_a = a;
          arg_b = b;
        }
      }
    }
    zalo = std::max(alo, arg_a - 2.0 * astep);
    zahi = std::min(ahi, arg_a + 2.0 * astep);
    zblo = std::max(blo, arg_b - 2.0 * bstep);
    zbhi = std::min(bhi, arg_b + 2.0 * bstep);
  }
  // Coordinate + diagonal descent refinement around the best grid cell (the
  // diagonal passes matter for objectives whose optimum is pinned on a
  // coupled constraint like e - s >= const).
  double a = arg_a, b = arg_b;
  for (int round = 0; round < 48; ++round) {
    const double a_lo = std::max(alo, a - astep);
    const double a_hi = std::min(ahi, a + astep);
    a = golden_min([&](double x) { return f(x, b); }, a_lo, a_hi);
    const double b_lo = std::max(blo, b - bstep);
    const double b_hi = std::min(bhi, b + bstep);
    b = golden_min([&](double y) { return f(a, y); }, b_lo, b_hi);
    // Diagonal (1, 1) pass.
    {
      const double t_lo = std::max(alo - a, blo - b);
      const double t_hi = std::min(ahi - a, bhi - b);
      if (t_hi > t_lo) {
        const double t =
            golden_min([&](double dt) { return f(a + dt, b + dt); }, t_lo, t_hi);
        if (f(a + t, b + t) < f(a, b)) {
          a += t;
          b += t;
        }
      }
    }
    const double v = f(a, b);
    if (v < best - 1e-15 * std::max(1.0, std::abs(best))) {
      best = v;
      arg_a = a;
      arg_b = b;
    } else {
      break;
    }
  }
  return best;
}

double stretch_energy_term(double w, double len, double lambda) {
  if (w <= 0.0) return 0.0;
  if (len <= 0.0) return std::numeric_limits<double>::infinity();
  return std::pow(w, lambda) * std::pow(len, 1.0 - lambda);
}

bool approx_eq(double a, double b, double tol) {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace sdem
