// Numeric substrate: root finding and 1-D/2-D continuous minimization.
//
// The closed-form schemes in src/core reduce every continuous subproblem to
// either a monotone root (stationarity of a convex energy function) or a
// unimodal 1-D/2-D minimization over an interval. These helpers implement
// those primitives with explicit tolerances so callers can reason about the
// certification error in tests.
#pragma once

#include <cstddef>
#include <functional>

namespace sdem {

/// Default relative tolerance for continuous solves. Energies in this
/// library are O(1e-3..1e3) joules, so 1e-12 relative is far below any
/// decision threshold the schedulers use.
inline constexpr double kTol = 1e-12;

/// Find x in [lo, hi] with f(x) == 0 for a monotone (either direction)
/// continuous f. Requires sign(f(lo)) != sign(f(hi)) or one endpoint root;
/// if both endpoints have the same sign, returns the endpoint with smaller
/// |f|. Converges to |hi-lo| * kTol absolute width.
double bisect_root(const std::function<double(double)>& f, double lo, double hi);

/// Golden-section minimization of a unimodal f over [lo, hi].
/// Returns the minimizing x; tolerance is width-relative.
double golden_min(const std::function<double(double)>& f, double lo, double hi,
                  double rel_tol = 1e-10);

/// Coarse-grid scan followed by golden refinement around the best cell.
/// Robust for piecewise-smooth objectives (e.g. energy as a function of the
/// memory sleep length, which has kinks at each case boundary).
/// `grid` is the number of initial cells.
double grid_refine_min(const std::function<double(double)>& f, double lo, double hi,
                       std::size_t grid = 2048);

/// 2-D variant used by the brute-force block reference: scans an initial
/// grid over [alo,ahi]x[blo,bhi] then refines by coordinate descent with
/// golden sections. Returns the minimum objective value; outputs argmin.
double grid_refine_min2(const std::function<double(double, double)>& f,
                        double alo, double ahi, double blo, double bhi,
                        double& arg_a, double& arg_b, std::size_t grid = 96);

/// Numerically robust power for our energy terms: w^lambda * len^(1-lambda).
/// Handles len -> 0 (returns +inf for positive w) and w == 0 (returns 0).
double stretch_energy_term(double w, double len, double lambda);

/// True if |a - b| <= tol * max(1, |a|, |b|).
bool approx_eq(double a, double b, double tol = 1e-9);

}  // namespace sdem
