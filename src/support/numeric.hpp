// Numeric substrate: root finding and 1-D/2-D continuous minimization.
//
// The closed-form schemes in src/core reduce every continuous subproblem to
// either a monotone root (stationarity of a convex energy function) or a
// unimodal 1-D/2-D minimization over an interval. These helpers implement
// those primitives with explicit tolerances so callers can reason about the
// certification error in tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>

namespace sdem {

/// Default relative tolerance for continuous solves. Energies in this
/// library are O(1e-3..1e3) joules, so 1e-12 relative is far below any
/// decision threshold the schedulers use.
inline constexpr double kTol = 1e-12;

/// Find x in [lo, hi] with f(x) == 0 for a monotone (either direction)
/// continuous f. Requires sign(f(lo)) != sign(f(hi)) or one endpoint root;
/// if both endpoints have the same sign, returns the endpoint with smaller
/// |f|. Converges to |hi-lo| * kTol absolute width.
double bisect_root(const std::function<double(double)>& f, double lo, double hi);

/// Golden-section minimization of a unimodal f over [lo, hi].
/// Returns the minimizing x; tolerance is width-relative.
/// Header template so hot solvers can inline the objective instead of
/// paying a std::function indirection per probe; `golden_min` below
/// delegates here, so both entry points evaluate the identical arithmetic.
template <typename F>
double golden_min_t(F&& f, double lo, double hi, double rel_tol = 1e-10) {
  if (hi <= lo) return lo;
  constexpr double inv_phi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  const double tol = std::max(std::abs(hi - lo), 1.0) * rel_tol;
  while (b - a > tol) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

double golden_min(const std::function<double(double)>& f, double lo, double hi,
                  double rel_tol = 1e-10);

/// Coarse-grid scan followed by golden refinement around the best cell.
/// Robust for piecewise-smooth objectives (e.g. energy as a function of the
/// memory sleep length, which has kinks at each case boundary).
/// `grid` is the number of initial cells.
double grid_refine_min(const std::function<double(double)>& f, double lo, double hi,
                       std::size_t grid = 2048);

/// 2-D variant used by the brute-force block reference: scans an initial
/// grid over [alo,ahi]x[blo,bhi] then refines by coordinate descent with
/// golden sections. Returns the minimum objective value; outputs argmin.
double grid_refine_min2(const std::function<double(double, double)>& f,
                        double alo, double ahi, double blo, double bhi,
                        double& arg_a, double& arg_b, std::size_t grid = 96);

/// Numerically robust power for our energy terms: w^lambda * len^(1-lambda).
/// Handles len -> 0 (returns +inf for positive w) and w == 0 (returns 0).
double stretch_energy_term(double w, double len, double lambda);

/// True if |a - b| <= tol * max(1, |a|, |b|).
bool approx_eq(double a, double b, double tol = 1e-9);

}  // namespace sdem
