// Deterministic, seedable random-number generation for workload synthesis.
//
// Every stochastic component of the library (task-set generators, benchmark
// drivers) takes an explicit seed; all streams derive from SplitMix64 so a
// single 64-bit seed reproduces an entire experiment.
#pragma once

#include <cstdint>

namespace sdem {

/// SplitMix64: tiny, statistically solid, and ideal for seeding.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the generator used for all workload draws.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    return lo + (*this)() % span;  // modulo bias negligible for span << 2^64
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace sdem
