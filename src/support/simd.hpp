// Portable 2-lane double SIMD primitives for the batched solver kernels.
//
// The backend is picked at configure time by the SDEM_SIMD CMake option
// (compile definition SDEM_SIMD=0/1). With SDEM_SIMD=1 the wrapper maps to
// SSE2 on x86-64 or NEON on AArch64; anywhere else — and always with
// SDEM_SIMD=0 — it degrades to a 1-lane scalar struct with identical
// semantics, so kernel code is written once against this API.
//
// Determinism contract: every operation here is a per-lane IEEE-754 double
// operation (add/sub/mul/div/compare/bitwise-select). On the default
// x86-64 and AArch64 compile flags none of these fuse or reassociate, so a
// lane computes bit-for-bit what the equivalent scalar expression computes
// — the property the batched kernels rely on for `--stable` byte-equality
// between SDEM_SIMD=ON and OFF builds. Kernels must still reduce lanes in
// a fixed serial order (never a tree/horizontal sum). Builds that enable
// FP contraction into the *scalar* path (e.g. -march with FMA plus
// -ffp-contract=fast) would break the cross-build guarantee; the repo's
// default flags do not, and tests/test_simd_kernels.cpp pins the equality
// at runtime.
#pragma once

#include <cstddef>

#ifndef SDEM_SIMD
#define SDEM_SIMD 0
#endif

#if SDEM_SIMD && defined(__SSE2__)
#define SDEM_SIMD_SSE2 1
#include <emmintrin.h>
#elif SDEM_SIMD && (defined(__aarch64__) || defined(__ARM_NEON))
#define SDEM_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace sdem::simd {

#if defined(SDEM_SIMD_SSE2)

/// Number of double lanes per vector (1 in the scalar fallback).
inline constexpr std::size_t kLanes = 2;
inline constexpr const char* kBackend = "sse2";

struct DVec {
  __m128d v;
};
/// Lane mask: all-ones / all-zeros bit patterns, as produced by compares.
struct DMask {
  __m128d v;
};

inline DVec load(const double* p) { return {_mm_loadu_pd(p)}; }
inline void store(double* p, DVec a) { _mm_storeu_pd(p, a.v); }
inline DVec set1(double x) { return {_mm_set1_pd(x)}; }
inline DVec add(DVec a, DVec b) { return {_mm_add_pd(a.v, b.v)}; }
inline DVec sub(DVec a, DVec b) { return {_mm_sub_pd(a.v, b.v)}; }
inline DVec mul(DVec a, DVec b) { return {_mm_mul_pd(a.v, b.v)}; }
inline DVec div(DVec a, DVec b) { return {_mm_div_pd(a.v, b.v)}; }
inline DMask cmp_lt(DVec a, DVec b) { return {_mm_cmplt_pd(a.v, b.v)}; }
inline DMask cmp_gt(DVec a, DVec b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
/// Bitwise lane select: mask ? a : b. NaN/inf payloads pass through
/// untouched (no arithmetic), so rejected lanes cannot contaminate results.
inline DVec select(DMask m, DVec a, DVec b) {
  return {_mm_or_pd(_mm_and_pd(m.v, a.v), _mm_andnot_pd(m.v, b.v))};
}
inline DMask mask_and(DMask a, DMask b) { return {_mm_and_pd(a.v, b.v)}; }
/// a & ~b per lane.
inline DMask mask_andnot(DMask a, DMask b) {
  return {_mm_andnot_pd(b.v, a.v)};
}
/// True iff the mask is set in every lane.
inline bool all(DMask m) { return _mm_movemask_pd(m.v) == 0x3; }

#elif defined(SDEM_SIMD_NEON)

inline constexpr std::size_t kLanes = 2;
inline constexpr const char* kBackend = "neon";

struct DVec {
  float64x2_t v;
};
struct DMask {
  uint64x2_t v;
};

inline DVec load(const double* p) { return {vld1q_f64(p)}; }
inline void store(double* p, DVec a) { vst1q_f64(p, a.v); }
inline DVec set1(double x) { return {vdupq_n_f64(x)}; }
inline DVec add(DVec a, DVec b) { return {vaddq_f64(a.v, b.v)}; }
inline DVec sub(DVec a, DVec b) { return {vsubq_f64(a.v, b.v)}; }
inline DVec mul(DVec a, DVec b) { return {vmulq_f64(a.v, b.v)}; }
inline DVec div(DVec a, DVec b) { return {vdivq_f64(a.v, b.v)}; }
inline DMask cmp_lt(DVec a, DVec b) { return {vcltq_f64(a.v, b.v)}; }
inline DMask cmp_gt(DVec a, DVec b) { return {vcgtq_f64(a.v, b.v)}; }
inline DVec select(DMask m, DVec a, DVec b) {
  return {vbslq_f64(m.v, a.v, b.v)};
}
inline DMask mask_and(DMask a, DMask b) { return {vandq_u64(a.v, b.v)}; }
/// a & ~b per lane.
inline DMask mask_andnot(DMask a, DMask b) { return {vbicq_u64(a.v, b.v)}; }
/// True iff the mask is set in every lane (compare results are all-ones
/// or all-zeros per lane, so the lane AND is nonzero exactly then).
inline bool all(DMask m) {
  return (vgetq_lane_u64(m.v, 0) & vgetq_lane_u64(m.v, 1)) != 0;
}

#else  // scalar fallback (SDEM_SIMD=0, or no supported ISA)

inline constexpr std::size_t kLanes = 1;
inline constexpr const char* kBackend = "scalar";

struct DVec {
  double v;
};
struct DMask {
  bool v;
};

inline DVec load(const double* p) { return {*p}; }
inline void store(double* p, DVec a) { *p = a.v; }
inline DVec set1(double x) { return {x}; }
inline DVec add(DVec a, DVec b) { return {a.v + b.v}; }
inline DVec sub(DVec a, DVec b) { return {a.v - b.v}; }
inline DVec mul(DVec a, DVec b) { return {a.v * b.v}; }
inline DVec div(DVec a, DVec b) { return {a.v / b.v}; }
inline DMask cmp_lt(DVec a, DVec b) { return {a.v < b.v}; }
inline DMask cmp_gt(DVec a, DVec b) { return {a.v > b.v}; }
inline DVec select(DMask m, DVec a, DVec b) { return {m.v ? a.v : b.v}; }
inline DMask mask_and(DMask a, DMask b) { return {a.v && b.v}; }
inline DMask mask_andnot(DMask a, DMask b) { return {a.v && !b.v}; }
inline bool all(DMask m) { return m.v; }

#endif

/// Whether a real vector backend is compiled in (false → kLanes == 1).
inline constexpr bool enabled() { return kLanes > 1; }

}  // namespace sdem::simd
