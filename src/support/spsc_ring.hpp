// Bounded single-producer / single-consumer ring with batched transfers.
//
// Extracted from the service shard queues (PR 6 had the ring inline in
// service.cpp) so the ingest pipeline, tests, and future subsystems share
// one audited implementation. Design points:
//
//   * SPSC only: exactly one thread may push and exactly one may pop at a
//     time. The service guarantees this structurally (one ring per
//     (producer, shard) pair; an atomic `scheduled` flag keeps at most one
//     drain in flight per shard).
//   * Free-running indices: head/tail are monotonically increasing
//     std::size_t counters; slot = index % capacity. Wraparound of the
//     counters themselves is harmless (unsigned subtraction stays exact).
//   * Batched push_n/pop_n: one acquire load and one release store per
//     batch instead of per element — the ingest thread moves a whole
//     read() chunk's worth of lines with two fences, which is what makes
//     parse-on-shard cheap enough to matter.
//   * Cached counterpart indices: the producer keeps a cached copy of head
//     (the consumer of tail) and refreshes it only when the ring looks
//     full (empty), so the common case never touches the other side's
//     cache line.
//
// Backpressure belongs to the caller: push never blocks, it returns how
// many items fit. Callers that must not drop data loop with a Backoff
// ladder (below) — spin, then yield, then sleep — so a stalled consumer
// costs bounded CPU instead of a spinning core.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace sdem {

/// CPU-relax hint for spin loops (PAUSE on x86, YIELD on arm64).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded exponential backoff for wait loops: a pause/yield/sleep ladder.
/// Early rounds spin with cpu_relax (cheap, latency-optimal), middle
/// rounds yield the scheduler slot, and from then on the waiter sleeps
/// with doubling duration up to kMaxSleepUs — so a producer blocked on a
/// stalled consumer converges to ~1 wakeup per millisecond instead of
/// burning a full core. reset() after any progress.
class Backoff {
 public:
  void pause() {
    if (round_ < kSpinRounds) {
      const int spins = 1 << round_;
      for (int i = 0; i < spins; ++i) cpu_relax();
    } else if (round_ < kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
    } else {
      const int exp = round_ - kSpinRounds - kYieldRounds;
      long us = kFirstSleepUs << (exp < 20 ? exp : 20);
      if (us > kMaxSleepUs) us = kMaxSleepUs;
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
    if (round_ < kMaxRound) ++round_;
  }

  void reset() { round_ = 0; }

  /// True once the ladder has escalated past pure spinning (used by tests
  /// and by callers that want to log a stall exactly once).
  bool sleeping() const { return round_ >= kSpinRounds + kYieldRounds; }

 private:
  static constexpr int kSpinRounds = 6;    ///< 1+2+...+32 = 63 relaxes
  static constexpr int kYieldRounds = 8;
  static constexpr long kFirstSleepUs = 50;
  static constexpr long kMaxSleepUs = 1000;
  static constexpr int kMaxRound = 64;
  int round_ = 0;
};

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : slots_(capacity < 1 ? 1 : capacity) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer: move up to `n` items from `items` into the ring. Returns
  /// the number actually enqueued (0 when full). One acquire/release pair
  /// for the whole batch; moved-from items are the caller's to reuse.
  std::size_t push_n(T* items, std::size_t n) {
    if (n == 0) return 0;
    const std::size_t cap = slots_.size();
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    std::size_t free = cap - (t - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = cap - (t - cached_head_);
      if (free == 0) return 0;
    }
    const std::size_t k = n < free ? n : free;
    for (std::size_t i = 0; i < k; ++i) {
      slots_[(t + i) % cap] = std::move(items[i]);
    }
    tail_.store(t + k, std::memory_order_release);
    return k;
  }

  /// Producer: single-element convenience over push_n.
  bool try_push(T&& v) { return push_n(&v, 1) == 1; }

  /// Consumer: move up to `max_n` items into `out`. Returns the count (0
  /// when empty). One acquire/release pair for the whole batch.
  std::size_t pop_n(T* out, std::size_t max_n) {
    if (max_n == 0) return 0;
    const std::size_t cap = slots_.size();
    const std::size_t h = head_.load(std::memory_order_relaxed);
    std::size_t avail = cached_tail_ - h;
    if (avail < max_n) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - h;
      if (avail == 0) return 0;
    }
    const std::size_t k = max_n < avail ? max_n : avail;
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = std::move(slots_[(h + i) % cap]);
    }
    head_.store(h + k, std::memory_order_release);
    return k;
  }

  /// Consumer: single-element convenience over pop_n.
  bool try_pop(T& out) { return pop_n(&out, 1) == 1; }

  /// Racy by nature (either side may be mid-operation); exact only when
  /// both sides are quiesced. The service uses it for drain barriers,
  /// which quiesce first.
  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  // Indices on their own cache lines so producer and consumer don't
  // false-share; each side's cached view of the other lives with the
  // index it is read next to.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< next push (producer)
  alignas(64) std::size_t cached_head_ = 0;       ///< producer's view of head
  alignas(64) std::atomic<std::size_t> head_{0};  ///< next pop (consumer)
  alignas(64) std::size_t cached_tail_ = 0;       ///< consumer's view of tail
};

}  // namespace sdem
