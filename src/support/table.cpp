#include "support/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace sdem {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| ";
      os << row[c];
      os << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace sdem
