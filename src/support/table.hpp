// Plain-text table rendering for the benchmark harness.
//
// Every bench binary prints its figure/table as an aligned ASCII table plus
// a machine-readable CSV block; to_markdown() is the EXPERIMENTS.md
// rendering (`sdem_bench_runner --md` prints it directly).
#pragma once

#include <string>
#include <vector>

namespace sdem {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 4);

  /// Aligned, human-readable rendering.
  std::string to_text() const;

  /// CSV rendering (header + rows).
  std::string to_csv() const;

  /// GitHub-flavored markdown rendering (header, separator, rows) — what
  /// EXPERIMENTS.md embeds; `sdem_bench_runner --md` prints this.
  std::string to_markdown() const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdem
