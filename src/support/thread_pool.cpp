#include "support/thread_pool.hpp"

#include <atomic>
#include <memory>

#include "obs/obs.hpp"

namespace sdem {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(fn));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One shared cursor instead of n queue entries: a worker claims the next
  // index with a fetch_add, so scheduling order never decides *which* work
  // runs, only *when*.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t lanes =
      std::min(n, static_cast<std::size_t>(size()));
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([cursor, n, &fn] {
      for (std::size_t i = cursor->fetch_add(1); i < n;
           i = cursor->fetch_add(1)) {
        fn(i);
      }
    });
  }
  wait_idle();
}

int ThreadPool::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      SDEM_OBS_ONLY(const std::uint64_t idle0 = obs::now_ns();)
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      SDEM_OBS_RUNTIME_DIST("thread_pool/worker_idle_s",
                            static_cast<double>(obs::now_ns() - idle0) * 1e-9);
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      SDEM_OBS_RUNTIME_COUNT("thread_pool/tasks_executed", 1);
      SDEM_OBS_TIMER("thread_pool/task");
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sdem
