// Fixed-size thread pool for the benchmark harness.
//
// The paper's evaluation is embarrassingly parallel across seeds: every
// seed builds its own trace and runs run_comparison independently, and the
// bench code only needs the per-seed results back *in seed order* (the
// Welford accumulators in support/stats.hpp are order-sensitive). The pool
// therefore exposes parallel_for, an indexed fork-join helper: workers pull
// indices from a shared counter, write into caller-owned slots, and the
// caller resumes only when every index has run. Results are bit-identical
// to a serial loop regardless of scheduling because each index touches only
// its own slot and the caller folds the slots serially afterwards.
//
// No work stealing, no task graph — submit() plus the indexed loop is all
// the sweep harness needs, and a plain mutex/condvar queue keeps the
// determinism argument auditable.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sdem {

class ThreadPool {
 public:
  /// Spawns `threads` workers; values < 1 are clamped to 1. A 1-thread
  /// pool is still a real pool (one worker), so code paths stay identical
  /// between --jobs 1 and --jobs N.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue one task. Tasks must not submit to the same pool and wait on
  /// the result (the pool has no nesting support; the sweep never needs it).
  void submit(std::function<void()> fn);

  /// Block until every submitted task has finished. Rethrows the first
  /// exception any task threw (the rest are dropped).
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the workers and block until all
  /// complete. fn must be safe to call concurrently for distinct i.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int hardware_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Serial when pool is null or single-threaded — the reference execution
/// the parallel path must match bit-for-bit. `fn(seed, index)` receives the
/// 1-based seed (what the generators consume) and the 0-based slot index.
template <typename Fn>
void parallel_for_seeds(ThreadPool* pool, int seeds, Fn&& fn) {
  if (seeds <= 0) return;
  if (pool == nullptr) {
    for (int i = 0; i < seeds; ++i)
      fn(static_cast<std::uint64_t>(i + 1), static_cast<std::size_t>(i));
    return;
  }
  pool->parallel_for(static_cast<std::size_t>(seeds), [&fn](std::size_t i) {
    fn(static_cast<std::uint64_t>(i + 1), i);
  });
}

/// Grid generalization of parallel_for_seeds: every (operating point, seed)
/// cell is an independent work item, so small-seed sweeps with many points
/// (fig7's 64 cells, table4's single point) still occupy the whole pool.
/// `fn(point, seed, slot)` receives the 0-based point index, the 1-based
/// seed, and the flat point-major slot index point*seeds + (seed-1) — the
/// exact order the serial reference loop visits, so caller-side folds over
/// slots are bit-identical at any job count.
template <typename Fn>
void parallel_for_grid(ThreadPool* pool, int points, int seeds, Fn&& fn) {
  if (points <= 0 || seeds <= 0) return;
  const std::size_t total =
      static_cast<std::size_t>(points) * static_cast<std::size_t>(seeds);
  if (pool == nullptr) {
    for (std::size_t i = 0; i < total; ++i) {
      fn(i / static_cast<std::size_t>(seeds),
         static_cast<std::uint64_t>(i % static_cast<std::size_t>(seeds)) + 1,
         i);
    }
    return;
  }
  pool->parallel_for(total, [&fn, seeds](std::size_t i) {
    fn(i / static_cast<std::size_t>(seeds),
       static_cast<std::uint64_t>(i % static_cast<std::size_t>(seeds)) + 1, i);
  });
}

/// Tiled variant of parallel_for_grid: the flat point-major cell range is
/// cut into runs of `tile` consecutive cells and each run becomes one pool
/// task that first calls `make_ctx()` and then hands the same context to
/// every cell in the run — `fn(ctx, point, seed, slot)`. The context is the
/// amortization vehicle: a solver workspace or policy pair created once per
/// tile keeps its grown buffers warm across the tile's cells instead of
/// being rebuilt per cell. tile <= 1 degenerates to one cell per task; the
/// serial path (null pool) uses a single context for the whole grid, which
/// is exactly the largest legal tile. Bit-identity holds for any (tile,
/// jobs) pair for the same reason it holds untiled: cells write only their
/// own slots and the caller folds slots in flat order — provided `fn` gives
/// the same results for a fresh and a reused context (reuse must be
/// semantically stateless, e.g. policies that reset per run).
template <typename MakeCtx, typename Fn>
void parallel_for_grid_tiled(ThreadPool* pool, int points, int seeds, int tile,
                             MakeCtx&& make_ctx, Fn&& fn) {
  if (points <= 0 || seeds <= 0) return;
  const std::size_t total =
      static_cast<std::size_t>(points) * static_cast<std::size_t>(seeds);
  const std::size_t sseeds = static_cast<std::size_t>(seeds);
  if (pool == nullptr) {
    auto ctx = make_ctx();
    for (std::size_t i = 0; i < total; ++i) {
      fn(ctx, i / sseeds, static_cast<std::uint64_t>(i % sseeds) + 1, i);
    }
    return;
  }
  const std::size_t step = tile > 1 ? static_cast<std::size_t>(tile) : 1;
  const std::size_t tiles = (total + step - 1) / step;
  pool->parallel_for(tiles, [&fn, &make_ctx, sseeds, step,
                             total](std::size_t t) {
    auto ctx = make_ctx();
    const std::size_t hi = std::min(total, (t + 1) * step);
    for (std::size_t i = t * step; i < hi; ++i) {
      fn(ctx, i / sseeds, static_cast<std::uint64_t>(i % sseeds) + 1, i);
    }
  });
}

}  // namespace sdem
