// A fuzz case: one fully-specified scheduling problem plus the model-class
// tag that decides which solver pairs and invariants apply to it.
//
// Cases are value types — the shrinker copies and mutates them freely and
// the repro writer serializes them without touching solver state. The
// generator seed is carried for provenance only: a case loaded from a
// .repro.json reproduces the failure without re-running the generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem::testing {

/// The paper's three task-model classes (§4 / §5 / §6), plus the
/// sleep-ladder class that fuzzes the multi-state memory model and the
/// online governor against the frozen single-state oracle. The variant
/// axes (alpha = 0 vs != 0, transition overheads, discrete speeds) live in
/// the config and the ladder, not in this tag.
enum class ModelClass {
  kCommonRelease,
  kAgreeable,
  kGeneral,
  kSleepLadder,
};

inline constexpr int kNumModelClasses = 4;

std::string to_string(ModelClass m);

/// Parse "common_release" / "agreeable" / "general" / "sleep_ladder";
/// throws std::invalid_argument otherwise.
ModelClass model_class_from_string(const std::string& s);

struct FuzzCase {
  ModelClass model = ModelClass::kCommonRelease;
  SystemConfig cfg;
  TaskSet tasks;

  /// Non-empty => also check the discrete-ladder solver (common release).
  std::vector<double> ladder;

  std::uint64_t seed = 0;  ///< generator seed (provenance; 0 for repros)

  bool has_ladder() const { return !ladder.empty(); }
  /// Multi-state memory variant (cfg.memory.ladder populated)?
  bool has_sleep_ladder() const { return !cfg.memory.ladder.empty(); }
  /// Transition-overhead variant (§7 accounting applies)?
  bool has_overheads() const {
    return cfg.core.xi > 0.0 || cfg.memory.xi_m > 0.0;
  }
};

}  // namespace sdem::testing
