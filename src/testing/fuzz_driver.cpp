#include "testing/fuzz_driver.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/rng.hpp"
#include "testing/generators.hpp"
#include "testing/repro_io.hpp"

namespace sdem::testing {
namespace {

namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string write_repro(const FuzzOptions& opts, const FuzzFailure& failure) {
  if (opts.out_dir.empty()) return {};
  std::error_code ec;
  fs::create_directories(opts.out_dir, ec);  // best effort; open() reports
  std::ostringstream name;
  name << to_string(failure.reduced.model) << "-seed"
       << failure.original.seed << ".repro.json";
  const fs::path path = fs::path(opts.out_dir) / name.str();
  std::ofstream out(path);
  if (!out) return {};
  out << repro_to_json(failure.reduced, failure.violations);
  return path.string();
}

void narrate_failure(const FuzzFailure& f, const FuzzOptions& opts,
                     std::ostream& log) {
  log << "FAIL [" << to_string(f.original.model) << " seed " << f.original.seed
      << "] " << summarize(f.violations) << "\n";
  for (const auto& v : f.violations) {
    log << "  " << v.invariant << ": " << v.detail << "\n";
  }
  log << "  tasks: " << f.original.tasks.size() << " -> "
      << f.reduced.tasks.size() << " after shrink\n";
  if (!f.repro_path.empty()) log << "  repro: " << f.repro_path << "\n";
  if (!opts.quiet) {
    // common_release + seed 7 -> "CommonReleaseSeed7".
    std::string test_name;
    bool upper = true;
    for (char ch : to_string(f.reduced.model)) {
      if (ch == '_') {
        upper = true;
        continue;
      }
      test_name += upper ? static_cast<char>(std::toupper(ch)) : ch;
      upper = false;
    }
    test_name += "Seed" + std::to_string(f.original.seed);
    log << "  --- regression test body ---\n"
        << repro_test_body(f.reduced, test_name)
        << "  ----------------------------\n";
  }
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream& log) {
  const auto t0 = std::chrono::steady_clock::now();
  FuzzReport report;
  if (opts.models.empty()) return report;

  // Independent per-case seeds: case k of the run draws the k-th SplitMix64
  // output, so any failing case replays from (model, case seed) alone.
  SplitMix64 seeder(opts.seed);

  long per_model[kNumModelClasses] = {};
  std::size_t next_model = 0;
  while (true) {
    if (opts.budget_seconds > 0.0 &&
        seconds_since(t0) >= opts.budget_seconds) {
      report.budget_exhausted = true;
      break;
    }
    // Rotate over the selected classes; stop when every class hit its cap.
    bool any_left = false;
    for (std::size_t i = 0; i < opts.models.size(); ++i) {
      const auto m = opts.models[(next_model + i) % opts.models.size()];
      if (opts.cases <= 0 || per_model[static_cast<int>(m)] < opts.cases) {
        next_model = (next_model + i) % opts.models.size();
        any_left = true;
        break;
      }
    }
    if (!any_left) break;
    const ModelClass model = opts.models[next_model];
    next_model = (next_model + 1) % opts.models.size();

    const std::uint64_t case_seed = seeder.next();
    const FuzzCase c = generate_case(model, case_seed);
    ++report.cases_run;
    ++per_model[static_cast<int>(model)];

    auto violations = check_case(c, opts.check);
    if (violations.empty()) continue;

    FuzzFailure failure;
    failure.original = c;
    if (opts.shrink) {
      auto shrunk = shrink_case(c, opts.check, opts.shrink_attempts);
      failure.reduced = std::move(shrunk.reduced);
      failure.violations = std::move(shrunk.violations);
    } else {
      failure.reduced = c;
      failure.violations = std::move(violations);
    }
    failure.repro_path = write_repro(opts, failure);
    narrate_failure(failure, opts, log);
    report.failures.push_back(std::move(failure));
    if (opts.max_failures > 0 &&
        static_cast<int>(report.failures.size()) >= opts.max_failures) {
      log << "stopping after " << report.failures.size() << " failures\n";
      break;
    }
  }

  for (int i = 0; i < kNumModelClasses; ++i) {
    report.cases_per_model[i] = per_model[i];
  }
  report.seconds = seconds_since(t0);
  return report;
}

bool replay_repro(const std::string& path, const CheckOptions& check,
                  std::ostream& log) {
  std::ifstream in(path);
  if (!in) {
    log << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  FuzzCase c;
  try {
    c = repro_from_json(buf.str());
  } catch (const std::exception& e) {
    log << path << ": " << e.what() << "\n";
    return false;
  }
  const auto violations = check_case(c, check);
  if (violations.empty()) {
    log << path << ": clean (" << c.tasks.size() << " tasks, "
        << to_string(c.model) << ")\n";
    return true;
  }
  log << path << ": " << violations.size() << " violation(s)\n";
  for (const auto& v : violations) {
    log << "  " << v.invariant << ": " << v.detail << "\n";
  }
  return false;
}

int replay_corpus(const std::string& dir, const CheckOptions& check,
                  std::ostream& log) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 11 &&
        name.compare(name.size() - 11, 11, ".repro.json") == 0) {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    log << dir << ": " << ec.message() << "\n";
    return 1;
  }
  std::sort(files.begin(), files.end());  // deterministic order
  int failing = 0;
  for (const auto& f : files) {
    if (!replay_repro(f, check, log)) ++failing;
  }
  log << "corpus: " << files.size() << " file(s), " << failing
      << " failing\n";
  return failing;
}

}  // namespace sdem::testing
