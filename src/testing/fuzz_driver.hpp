// Orchestration of differential fuzz runs: case generation, invariant
// checking, auto-shrinking, repro emission, and budget accounting.
//
// The driver is what both tools/sdem_fuzz and the CI jobs call. It rotates
// through the selected model classes, derives one independent seed per case
// from the master seed (SplitMix64), and stops on whichever of the two
// budgets — case count or wall-clock seconds — runs out first. Failures are
// shrunk to minimal reproducers and written as .repro.json files (plus a
// ready-to-paste regression test body in the log); the run keeps going
// until max_failures so one bug does not mask another.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "testing/invariants.hpp"
#include "testing/shrink.hpp"

namespace sdem::testing {

struct FuzzOptions {
  std::uint64_t seed = 1;        ///< master seed
  long cases = 1000;             ///< max cases per model class (<=0: no cap)
  double budget_seconds = 0.0;   ///< wall-clock budget (<=0: no cap)
  std::vector<ModelClass> models = {ModelClass::kCommonRelease,
                                    ModelClass::kAgreeable,
                                    ModelClass::kGeneral,
                                    ModelClass::kSleepLadder};
  int max_failures = 5;          ///< stop after this many distinct failures
  bool shrink = true;            ///< auto-shrink failing cases
  int shrink_attempts = 400;     ///< predicate budget per shrink
  std::string out_dir;           ///< where .repro.json files go ("": no files)
  bool quiet = false;            ///< suppress per-failure test-body dump
  CheckOptions check;
};

struct FuzzFailure {
  FuzzCase original;             ///< as generated
  FuzzCase reduced;              ///< after shrinking (== original if off)
  std::vector<Violation> violations;  ///< of the reduced case
  std::string repro_path;        ///< written file ("" if out_dir unset)
};

struct FuzzReport {
  long cases_run = 0;
  long cases_per_model[kNumModelClasses] = {};  ///< indexed by ModelClass
  double seconds = 0.0;
  bool budget_exhausted = false;  ///< stopped on time rather than count
  std::vector<FuzzFailure> failures;

  bool clean() const { return failures.empty(); }
};

/// Run a fuzz session; progress and failures are narrated to `log`.
FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream& log);

/// Replay one repro file: re-run check_case on the parsed case. Returns
/// true when the case is clean; violations are narrated to `log`.
bool replay_repro(const std::string& path, const CheckOptions& check,
                  std::ostream& log);

/// Replay every *.repro.json under `dir` (non-recursive). Returns the
/// number of files that still fail (0 == corpus clean).
int replay_corpus(const std::string& dir, const CheckOptions& check,
                  std::ostream& log);

}  // namespace sdem::testing
