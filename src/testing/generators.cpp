#include "testing/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"
#include "workload/generator.hpp"

namespace sdem::testing {
namespace {

/// Pick one of `n` weighted branches; weights need not normalize.
int pick(Xoshiro256& rng, std::initializer_list<double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = rng.uniform(0.0, total);
  int i = 0;
  for (double w : weights) {
    if (x < w) return i;
    x -= w;
    ++i;
  }
  return static_cast<int>(weights.size()) - 1;
}

bool chance(Xoshiro256& rng, double p) { return rng.uniform() < p; }

SystemConfig random_config(Xoshiro256& rng, ModelClass model) {
  SystemConfig cfg;
  cfg.core.beta = 2.53e-10;
  switch (pick(rng, {2, 1, 1})) {
    case 0:
      cfg.core.lambda = 3.0;
      break;
    case 1:
      cfg.core.lambda = 2.0;
      break;
    default:
      cfg.core.lambda = 2.5;
      break;
  }
  // Half the cases run the alpha = 0 variant (§4.1 / §5.1), half a static
  // power spanning well below to well above the paper's 0.31 W.
  switch (pick(rng, {4, 1, 2, 1})) {
    case 0:
      cfg.core.alpha = 0.0;
      break;
    case 1:
      cfg.core.alpha = 0.05;
      break;
    case 2:
      cfg.core.alpha = 0.31;
      break;
    default:
      cfg.core.alpha = 1.2;
      break;
  }
  cfg.memory.alpha_m = (rng.uniform() < 0.2) ? rng.uniform(0.3, 1.0)
                                             : rng.uniform(2.0, 9.0);
  switch (pick(rng, {1, 3, 1})) {
    case 0:
      cfg.core.s_up = 1400.0;
      break;
    case 1:
      cfg.core.s_up = 1900.0;
      break;
    default:
      cfg.core.s_up = 2600.0;
      break;
  }
  cfg.core.s_min = 0.0;
  cfg.num_cores = 0;  // unbounded; the general class overrides below

  // Transition overheads: off half the time; when on, spread xi_m across
  // the break-even boundary of typical idle gaps (regions are 10..120 ms)
  // so both "sleep pays" and "idle pays" sides get sampled. Core break-even
  // xi applies only to the common-release §7 solver and the simulator.
  if (chance(rng, 0.5)) {
    cfg.memory.xi_m = chance(rng, 0.3) ? rng.uniform(0.001, 0.012)
                                       : rng.uniform(0.012, 0.200);
  }
  if (model != ModelClass::kAgreeable && chance(rng, 0.3)) {
    cfg.core.xi = rng.uniform(0.0005, 0.020);
  }
  if (model == ModelClass::kGeneral && chance(rng, 0.3)) {
    cfg.num_cores = static_cast<int>(rng.uniform_int(1, 8));
  }
  return cfg;
}

/// Rescale workloads so every filled speed stays within s_up. Most tasks
/// land comfortably inside; a few are pushed to the boundary (filled speed
/// == s_up within rounding) to stress deadline-exact completion.
TaskSet clamp_feasible(const TaskSet& in, const SystemConfig& cfg,
                       Xoshiro256& rng) {
  TaskSet out;
  out.reserve(in.size());
  for (Task t : in.tasks()) {
    const double cap = cfg.core.s_up * t.region();
    if (t.work > cap || chance(rng, 0.03)) {
      const double u = chance(rng, 0.25) ? 1.0 : rng.uniform(0.4, 0.98);
      t.work = cap * u;
    }
    if (t.work <= 0.0) t.work = cap * 0.5;
    out.add(t);
  }
  return out;
}

TaskSet gen_common_release(Xoshiro256& rng, const SystemConfig& cfg) {
  const int branch = pick(rng, {1, 6, 2});
  const int n = branch == 0 ? 1
              : branch == 1 ? static_cast<int>(rng.uniform_int(2, 12))
                            : static_cast<int>(rng.uniform_int(13, 24));
  const double release = chance(rng, 0.5) ? 0.0 : rng.uniform(0.0, 0.5);
  // Region spans: mostly the paper's 10..120 ms, sometimes shrunk toward
  // the break-even scale so the sleep-vs-idle decision is genuinely tight.
  double region_lo = 0.010, region_hi = 0.120;
  if (chance(rng, 0.25)) {
    region_lo = 0.002;
    region_hi = std::max(0.004, cfg.memory.xi_m * rng.uniform(0.5, 3.0));
    if (region_hi <= region_lo) region_hi = region_lo * 4.0;
  }
  TaskSet ts = make_common_release(n, release, rng(), 2.0, 5.0, region_lo,
                                   region_hi);
  // Duplicate-deadline edge: the case analysis has a boundary wherever two
  // deadlines coincide.
  if (n >= 2 && chance(rng, 0.3)) {
    std::vector<Task> v = ts.tasks();
    const std::size_t a = rng.uniform_int(0, v.size() - 1);
    const std::size_t b = rng.uniform_int(0, v.size() - 1);
    v[a].deadline = v[b].deadline;
    ts = TaskSet(v);
  }
  return clamp_feasible(ts, cfg, rng);
}

TaskSet gen_agreeable(Xoshiro256& rng, const SystemConfig& cfg) {
  const int branch = pick(rng, {1, 6, 2});
  const int n = branch == 0 ? 1
              : branch == 1 ? static_cast<int>(rng.uniform_int(2, 8))
                            : static_cast<int>(rng.uniform_int(9, 14));
  // Spread selects the block structure: tight spacing produces one busy
  // interval, loose spacing produces one block per task; the interesting
  // bugs sit between, where the DP's partition choice flips.
  const double spread = chance(rng, 0.3) ? rng.uniform(0.001, 0.020)
                                         : rng.uniform(0.020, 0.300);
  double region_lo = 0.010, region_hi = 0.120;
  if (chance(rng, 0.25)) {
    region_lo = 0.003;
    region_hi = 0.030;
  }
  TaskSet ts =
      make_agreeable(n, rng(), spread, 2.0, 5.0, region_lo, region_hi);
  // Simultaneous-release edge (still agreeable): collapse a neighboring
  // pair's releases.
  if (n >= 2 && chance(rng, 0.25)) {
    std::vector<Task> v = ts.tasks();
    const std::size_t i = rng.uniform_int(1, v.size() - 1);
    v[i].release = v[i - 1].release;
    if (v[i].deadline < v[i - 1].deadline) {
      v[i].deadline = v[i - 1].deadline;
    }
    TaskSet merged(v);
    if (merged.is_agreeable()) ts = merged;
  }
  return clamp_feasible(ts, cfg, rng);
}

TaskSet gen_general(Xoshiro256& rng, const SystemConfig& cfg) {
  TaskSet ts;
  if (chance(rng, 0.35)) {
    BurstyParams p;
    p.num_tasks = static_cast<int>(rng.uniform_int(2, 24));
    p.burst_size = static_cast<int>(rng.uniform_int(2, 8));
    p.intra_spacing = chance(rng, 0.3) ? 0.0 : rng.uniform(0.0005, 0.004);
    p.burst_gap = rng.uniform(0.050, 0.600);
    ts = make_bursty(p, rng());
  } else {
    SyntheticParams p;
    p.num_tasks = static_cast<int>(rng.uniform_int(1, 28));
    p.max_interarrival = chance(rng, 0.3) ? rng.uniform(0.005, 0.060)
                                          : rng.uniform(0.060, 0.800);
    if (chance(rng, 0.2)) {
      p.region_lo = 0.003;
      p.region_hi = 0.040;
    }
    ts = make_synthetic(p, rng());
  }
  return clamp_feasible(ts, cfg, rng);
}

/// A random well-formed sleep ladder against cfg.memory.alpha_m. Half the
/// cases take the geometric family (deepest rung == the paper state); the
/// rest draw free-form rungs with power strictly decreasing, xi strictly
/// increasing and latency non-decreasing — valid by construction, so any
/// ladder:validity violation points at the model code, not the generator.
SleepLadder random_sleep_ladder(Xoshiro256& rng, const SystemConfig& cfg) {
  const double alpha_m = cfg.memory.alpha_m;
  const double xi_m = cfg.memory.xi_m;
  const int depth = static_cast<int>(rng.uniform_int(1, 4));
  if (chance(rng, 0.5)) {
    return SleepLadder::geometric(alpha_m, xi_m, depth,
                                  rng.uniform(0.0, 0.15));
  }
  SleepLadder ladder;
  double power = alpha_m * rng.uniform(0.3, 0.8);
  double xi = xi_m * rng.uniform(0.05, 0.4);
  double latency = 0.0;
  for (int k = 0; k < depth; ++k) {
    const double lat = std::max(latency, xi * rng.uniform(0.0, 0.25));
    ladder.add_state("s" + std::to_string(k), power,
                     (alpha_m - power) * xi, lat, alpha_m);
    latency = lat;
    power *= rng.uniform(0.15, 0.7);
    if (k + 2 == depth && chance(rng, 0.5)) power = 0.0;  // deep rung off
    xi *= rng.uniform(1.6, 4.0);
  }
  return ladder;
}

TaskSet gen_sleep_ladder(Xoshiro256& rng, const SystemConfig& cfg) {
  // Mostly bursty with wide intra-burst spacing: that is the gap regime
  // where shallow vs deep states genuinely compete (and where the governor
  // has something to predict). The rest reuse the general-class shapes.
  if (chance(rng, 0.6)) {
    BurstyParams p;
    p.num_tasks = static_cast<int>(rng.uniform_int(2, 24));
    p.burst_size = static_cast<int>(rng.uniform_int(2, 8));
    p.intra_spacing = chance(rng, 0.5) ? rng.uniform(0.004, 0.020)
                                       : rng.uniform(0.0005, 0.004);
    p.burst_gap = rng.uniform(0.050, 0.600);
    return clamp_feasible(make_bursty(p, rng()), cfg, rng);
  }
  return gen_general(rng, cfg);
}

std::vector<double> maybe_ladder(Xoshiro256& rng, const SystemConfig& cfg) {
  if (!chance(rng, 0.25)) return {};
  const int levels = static_cast<int>(rng.uniform_int(2, 8));
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(levels));
  // Top level == s_up keeps every generated case ladder-feasible.
  const double lo = cfg.core.s_up * rng.uniform(0.25, 0.6);
  for (int i = 0; i < levels; ++i) {
    const double f = levels == 1 ? 1.0
                                 : static_cast<double>(i) /
                                       static_cast<double>(levels - 1);
    out.push_back(lo + (cfg.core.s_up - lo) * f);
  }
  return out;
}

}  // namespace

std::string to_string(ModelClass m) {
  switch (m) {
    case ModelClass::kCommonRelease:
      return "common_release";
    case ModelClass::kAgreeable:
      return "agreeable";
    case ModelClass::kGeneral:
      return "general";
    case ModelClass::kSleepLadder:
      return "sleep_ladder";
  }
  return "unknown";
}

ModelClass model_class_from_string(const std::string& s) {
  if (s == "common_release") return ModelClass::kCommonRelease;
  if (s == "agreeable") return ModelClass::kAgreeable;
  if (s == "general") return ModelClass::kGeneral;
  if (s == "sleep_ladder") return ModelClass::kSleepLadder;
  throw std::invalid_argument("unknown model class: " + s);
}

FuzzCase generate_case(ModelClass model, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  FuzzCase c;
  c.model = model;
  c.seed = seed;
  c.cfg = random_config(rng, model);
  switch (model) {
    case ModelClass::kCommonRelease:
      c.tasks = gen_common_release(rng, c.cfg);
      c.ladder = maybe_ladder(rng, c.cfg);
      break;
    case ModelClass::kAgreeable:
      c.tasks = gen_agreeable(rng, c.cfg);
      break;
    case ModelClass::kGeneral:
      c.tasks = gen_general(rng, c.cfg);
      break;
    case ModelClass::kSleepLadder:
      // The depth-1 differential needs a live single-state model to diff
      // against, so xi_m is always positive in this class.
      if (c.cfg.memory.xi_m <= 0.0) {
        c.cfg.memory.xi_m = chance(rng, 0.3) ? rng.uniform(0.001, 0.012)
                                             : rng.uniform(0.012, 0.200);
      }
      c.cfg.memory.ladder = random_sleep_ladder(rng, c.cfg);
      c.tasks = gen_sleep_ladder(rng, c.cfg);
      break;
  }
  return c;
}

}  // namespace sdem::testing
