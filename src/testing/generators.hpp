// Seeded random generation of fuzz cases across the paper's task-model
// classes and variant axes (alpha = 0 / alpha != 0, transition overheads,
// discrete-speed ladders, bounded cores for the online simulator).
//
// The generators deliberately oversample the places grid benchmarks rarely
// land: duplicate deadlines, regions comparable to the memory break-even
// time xi_m, filled speeds at or near s_up, single-task sets, bursts of
// simultaneous arrivals. Every case is feasible by construction (workloads
// are rescaled so no filled speed exceeds s_up), so any solver reporting
// infeasibility — or any invariant violation — is a bug, not noise.
//
// Determinism: generate_case(model, seed) is a pure function of its
// arguments; the driver derives per-case seeds from the master seed with
// SplitMix64 so a failing case is reproducible from (model, case seed)
// alone, independent of how many cases ran before it.
#pragma once

#include <cstdint>

#include "testing/fuzz_case.hpp"

namespace sdem::testing {

/// Generate one random case of the given model class.
FuzzCase generate_case(ModelClass model, std::uint64_t seed);

}  // namespace sdem::testing
