#include "testing/invariants.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "baseline/mbkp.hpp"
#include "core/agreeable.hpp"
#include "core/block_context.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/discrete_solver.hpp"
#include "core/discretize.hpp"
#include "core/lower_bound.hpp"
#include "core/online_sdem.hpp"
#include "core/reference.hpp"
#include "core/transition.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "sim/event_sim.hpp"
#include "sim/governor.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_reference.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace sdem::testing {
namespace {

std::string num(double v) { return Json::number_to_string(v); }

double rel_diff(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) / scale;
}

class Checker {
 public:
  Checker(const FuzzCase& c, const CheckOptions& opts)
      : c_(c), opts_(opts) {}

  std::vector<Violation> run() {
    check_class();
    if (!out_.empty()) return out_;  // out-of-class cases prove nothing
    switch (c_.model) {
      case ModelClass::kCommonRelease:
        check_common_release();
        break;
      case ModelClass::kAgreeable:
        check_agreeable();
        break;
      case ModelClass::kGeneral:
        check_general();
        break;
      case ModelClass::kSleepLadder:
        check_sleep_ladder();
        break;
    }
    return out_;
  }

 private:
  void add(const std::string& invariant, const std::string& detail) {
    out_.push_back({invariant, detail});
  }

  /// a must not exceed b (relative slack). `what` names the two sides.
  void expect_le(const std::string& invariant, double a, double b, double tol,
                 const std::string& what) {
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    if (a > b + tol * scale) {
      add(invariant, what + ": " + num(a) + " > " + num(b) +
                         " (excess " + num(a - b) + ")");
    }
  }

  void expect_close(const std::string& invariant, double a, double b,
                    double tol, const std::string& what) {
    if (rel_diff(a, b) > tol) {
      add(invariant, what + ": " + num(a) + " vs " + num(b) +
                         " (rel " + num(rel_diff(a, b)) + ")");
    }
  }

  // -- shared sub-checks ---------------------------------------------------

  void check_class() {
    const std::string err = c_.tasks.validate();
    if (!err.empty()) {
      add("class:task-set", err);
      return;
    }
    if (c_.tasks.empty()) {
      add("class:task-set", "empty task set");
      return;
    }
    switch (c_.model) {
      case ModelClass::kCommonRelease:
        if (!c_.tasks.is_common_release())
          add("class:model", "case tagged common_release is not");
        break;
      case ModelClass::kAgreeable:
        if (!c_.tasks.is_agreeable())
          add("class:model", "case tagged agreeable is not");
        break;
      case ModelClass::kGeneral:
        break;
      case ModelClass::kSleepLadder:
        if (!c_.has_sleep_ladder()) {
          add("class:model", "case tagged sleep_ladder has no ladder");
        }
        break;
    }
    if (c_.cfg.core.s_up > 0.0 &&
        c_.tasks.max_filled_speed() > c_.cfg.core.s_up * (1.0 + 1e-12)) {
      add("class:feasible", "max filled speed " +
                                num(c_.tasks.max_filled_speed()) +
                                " exceeds s_up " + num(c_.cfg.core.s_up));
    }
  }

  void check_offline_common(const std::string& solver, const OfflineResult& res,
                            bool check_accounting) {
    if (!res.feasible) {
      add("feasible:" + solver, "solver rejected a feasible case");
      return;
    }
    const auto v = validate_schedule(res.schedule, c_.tasks, c_.cfg);
    if (!v.ok) add("validate:" + solver, v.describe());
    if (check_accounting) {
      const auto e = compute_energy(res.schedule, c_.cfg);
      expect_close("accounting:" + solver, res.energy, e.system_total(),
                   opts_.account_tol, "analytic vs re-accounted energy");
    }
    const auto lb = lower_bound_energy(c_.tasks, c_.cfg);
    expect_le("order:lower-bound:" + solver, lb.total(), res.energy,
              opts_.order_tol, "lower bound vs " + solver + " energy");
  }

  // -- common release ------------------------------------------------------

  void check_common_release() {
    if (!c_.has_overheads()) {
      check_common_release_plain();
    } else {
      check_common_release_transition();
    }
    if (c_.has_ladder() && !c_.has_overheads()) check_discrete();
  }

  void check_common_release_plain() {
    const bool alpha0 = c_.cfg.core.alpha <= 0.0;
    const OfflineResult res =
        alpha0 ? solve_common_release_alpha0(c_.tasks, c_.cfg)
               : solve_common_release_alpha(c_.tasks, c_.cfg);
    const std::string solver = alpha0 ? "cr-alpha0" : "cr-alpha";
    check_offline_common(solver, res, /*check_accounting=*/true);
    if (!res.feasible) return;

    if (alpha0) {
      // Lemma 1 binary search vs the linear Theorem 2 scan.
      const auto bin = solve_common_release_alpha0_binary(c_.tasks, c_.cfg);
      if (bin.feasible != res.feasible) {
        add("pair:binary-vs-scan", "feasibility disagrees");
      } else {
        expect_close("pair:binary-vs-scan", res.energy, bin.energy,
                     opts_.pair_tol, "binary-search vs linear-scan energy");
      }
      // The alpha scheme must reduce exactly to 4.1 at alpha == 0.
      const auto red = solve_common_release_alpha(c_.tasks, c_.cfg);
      expect_close("pair:alpha-reduces-to-alpha0", res.energy, red.energy,
                   opts_.pair_tol, "section 4.2 at alpha=0 vs section 4.1");
    }

    // The section-7 solver must reduce to section 4 at xi == xi_m == 0.
    const auto tr = solve_common_release_transition(c_.tasks, c_.cfg);
    if (!tr.feasible) {
      add("pair:transition-reduces", "transition solver rejected the case");
    } else {
      expect_close("pair:transition-reduces", res.energy, tr.energy,
                   opts_.pair_tol, "section 7 at xi=xi_m=0 vs section 4");
    }

    // Cross-solver: a common-release set is agreeable, and with no block
    // charge (xi_m == 0) both optima coincide.
    if (static_cast<int>(c_.tasks.size()) <= opts_.max_cross_n) {
      const auto dp = solve_agreeable(c_.tasks, c_.cfg);
      if (!dp.feasible) {
        add("pair:agreeable-on-common-release", "DP rejected the case");
      } else {
        expect_close("pair:agreeable-on-common-release", res.energy, dp.energy,
                     1e-5, "section 4 optimum vs agreeable DP");
      }
    }

    if (opts_.run_reference &&
        static_cast<int>(c_.tasks.size()) <= opts_.max_ref_n) {
      const double ref =
          reference_common_release(c_.tasks, c_.cfg, opts_.ref_grid);
      expect_le("opt:vs-reference", res.energy, ref, opts_.ref_tol,
                "solver energy vs grid reference");
      expect_close("opt:vs-reference-loose", res.energy, ref,
                   opts_.ref_loose_tol, "solver vs grid reference");
    }
  }

  void check_common_release_transition() {
    const auto res = solve_common_release_transition(c_.tasks, c_.cfg);
    // Section-7 accounting differs from the horizon-free §3 accounting, so
    // the re-derivation check does not apply; the reference oracle and the
    // ordering invariants carry the weight instead.
    check_offline_common("cr-transition", res, /*check_accounting=*/false);
    if (!res.feasible) return;

    // Scratch-reusing overload is documented bit-identical.
    TransitionWorkspace ws;
    const auto scratch =
        solve_common_release_transition(c_.tasks, c_.cfg, ws);
    if (scratch.feasible != res.feasible ||
        scratch.energy != res.energy ||
        scratch.sleep_time != res.sleep_time) {
      add("pair:transition-scratch-replay",
          "scratch overload differs: energy " + num(scratch.energy) + " vs " +
              num(res.energy));
    }

    // Overheads only add cost relative to the section-4 model.
    auto free_cfg = c_.cfg;
    free_cfg.core.xi = 0.0;
    free_cfg.memory.xi_m = 0.0;
    const OfflineResult base =
        free_cfg.core.alpha > 0.0
            ? solve_common_release_alpha(c_.tasks, free_cfg)
            : solve_common_release_alpha0(c_.tasks, free_cfg);
    if (base.feasible) {
      expect_le("order:transition-monotone", base.energy, res.energy,
                opts_.order_tol, "overhead-free optimum vs section 7 energy");
    }

    if (opts_.run_reference &&
        static_cast<int>(c_.tasks.size()) <= opts_.max_ref_n) {
      const double ref = reference_common_release_transition(c_.tasks, c_.cfg,
                                                             opts_.ref_grid);
      expect_le("opt:vs-reference", res.energy, ref, opts_.ref_tol,
                "transition solver energy vs grid reference");
      expect_close("opt:vs-reference-loose", res.energy, ref,
                   opts_.ref_loose_tol, "transition solver vs grid reference");
    }
  }

  void check_discrete() {
    const FrequencyLadder ladder(c_.ladder);
    const OfflineResult cont =
        c_.cfg.core.alpha > 0.0 ? solve_common_release_alpha(c_.tasks, c_.cfg)
                                : solve_common_release_alpha0(c_.tasks, c_.cfg);
    const auto aware = solve_common_release_discrete(c_.tasks, c_.cfg, ladder);
    if (!aware.feasible) {
      // The ladder top equals s_up, so every feasible case fits it.
      add("feasible:cr-discrete", "discrete solver rejected the case");
      return;
    }
    const auto v = validate_schedule(aware.schedule, c_.tasks, c_.cfg);
    if (!v.ok) add("validate:cr-discrete", v.describe());
    const auto e = compute_energy(aware.schedule, c_.cfg);
    expect_close("accounting:cr-discrete", aware.energy, e.system_total(),
                 opts_.account_tol, "analytic vs re-accounted energy");
    if (cont.feasible) {
      expect_le("order:discrete-bracket", cont.energy, aware.energy,
                opts_.order_tol, "continuous optimum vs discrete-aware");
      const auto posthoc = discretize_schedule(cont.schedule, ladder);
      if (posthoc.feasible) {
        const double e_post = system_energy(posthoc.schedule, c_.cfg);
        expect_le("order:discrete-bracket", aware.energy, e_post,
                  opts_.order_tol, "discrete-aware vs post-hoc realization");
      }
    }
  }

  // -- agreeable -----------------------------------------------------------

  void check_agreeable() {
    const auto res = solve_agreeable(c_.tasks, c_.cfg);
    const bool plain_model = c_.cfg.memory.xi_m <= 0.0;
    check_offline_common("agreeable", res, /*check_accounting=*/plain_model);
    if (!res.feasible) return;

    // Incremental block-table DP vs the frozen seed DP.
    const auto seed = solve_agreeable_reference(c_.tasks, c_.cfg);
    if (seed.feasible != res.feasible) {
      add("pair:agreeable-incremental-vs-seed", "feasibility disagrees");
    } else {
      expect_close("pair:agreeable-incremental-vs-seed", res.energy,
                   seed.energy, opts_.pair_tol,
                   "incremental DP vs seed DP energy");
    }

    // Audited re-solve: every fast probe — batched/SIMD lanes included —
    // is recomputed with the exact O(k) block_energy_at; a feasibility
    // flip or a > 1e-9 relative energy mismatch counts as a failure.
    if (opts_.audit_block_probes) {
      BlockContext::reset_cross_check_counters();
      BlockContext::set_cross_check(true);
      const auto audited = solve_agreeable(c_.tasks, c_.cfg);
      BlockContext::set_cross_check(false);
      if (BlockContext::cross_check_failures() != 0) {
        add("block:cross-check",
            std::to_string(BlockContext::cross_check_failures()) + " of " +
                std::to_string(BlockContext::cross_check_probes()) +
                " probes disagree with the exact evaluator");
      }
      if (audited.energy != res.energy) {
        add("block:cross-check",
            "audited solve changed the result: " + num(audited.energy) +
                " vs " + num(res.energy));
      }
    }

    // Row-parallel fill must replay bit-identically.
    if (opts_.pool) {
      const auto par = solve_agreeable(c_.tasks, c_.cfg, opts_.pool);
      if (par.energy != res.energy || par.sleep_time != res.sleep_time ||
          par.case_index != res.case_index ||
          !segments_identical(par.schedule, res.schedule)) {
        add("pair:agreeable-parallel-replay",
            "thread-pool fill differs from serial: energy " +
                num(par.energy) + " vs " + num(res.energy));
      }
    }

    if (opts_.run_reference &&
        static_cast<int>(c_.tasks.size()) <= std::min(opts_.max_ref_n, 6)) {
      const double ref =
          reference_agreeable(c_.tasks, c_.cfg, opts_.ref_block_grid);
      expect_le("opt:vs-reference", res.energy, ref, opts_.ref_tol,
                "DP energy vs exhaustive-partition reference");
      expect_close("opt:vs-reference-loose", res.energy, ref,
                   opts_.ref_loose_tol, "DP vs exhaustive reference");
    }
  }

  // -- general (online simulator) ------------------------------------------

  static bool segments_identical(const Schedule& a, const Schedule& b) {
    const auto& sa = a.segments();
    const auto& sb = b.segments();
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].task_id != sb[i].task_id || sa[i].core != sb[i].core ||
          sa[i].start != sb[i].start || sa[i].end != sb[i].end ||
          sa[i].speed != sb[i].speed) {
        return false;
      }
    }
    return true;
  }

  /// Does any task need (almost) the full speed cap for its whole window?
  bool boundary_tight() const {
    if (c_.cfg.core.s_up <= 0.0) return false;
    for (const auto& t : c_.tasks.tasks()) {
      const double region = t.deadline - t.release;
      if (region <= 0.0) return true;
      if (t.work >= c_.cfg.core.s_up * region * (1.0 - 1e-9)) return true;
    }
    return false;
  }

  void diff_sim(const std::string& label, const SimResult& fast,
                const SimResult& ref) {
    std::ostringstream why;
    if (fast.replans != ref.replans)
      why << " replans " << fast.replans << " vs " << ref.replans << ";";
    if (fast.deadline_misses != ref.deadline_misses)
      why << " misses " << fast.deadline_misses << " vs "
          << ref.deadline_misses << ";";
    if (fast.unfinished != ref.unfinished)
      why << " unfinished " << fast.unfinished << " vs " << ref.unfinished
          << ";";
    if (fast.horizon_lo != ref.horizon_lo || fast.horizon_hi != ref.horizon_hi)
      why << " horizon differs;";
    if (!segments_identical(fast.schedule, ref.schedule))
      why << " segments differ (" << fast.schedule.size() << " vs "
          << ref.schedule.size() << ");";
    if (!why.str().empty()) add("sim:fast-vs-reference:" + label, why.str());
  }

  void check_online_run(const std::string& label, const SimResult& sim,
                        bool guaranteed_feasible) {
    const auto ev =
        evaluate_policy(sim, c_.cfg, SleepDiscipline::kOptimal, label);
    const double total = ev.energy.system_total();
    if (!std::isfinite(total) || total < 0.0) {
      add("sim:energy-finite:" + label, "system energy " + num(total));
      return;
    }
    if (!c_.cfg.unbounded()) return;  // bounded cores may legitimately miss
    if (sim.deadline_misses != 0 || sim.unfinished != 0) {
      // MBKP round-robins within a density class modulo the *instantaneous*
      // pending count, so even unbounded cores can end up sharing — misses
      // are legitimate for such heuristics, a bug for SDEM-ON. And a task
      // that needs exactly s_up for its whole window sits on the feasibility
      // boundary, where rounding across replans can tip either way.
      if (guaranteed_feasible && !boundary_tight()) {
        add("sim:no-miss-unbounded:" + label,
            std::to_string(sim.deadline_misses) + " misses, " +
                std::to_string(sim.unfinished) + " unfinished on unbounded "
                "cores");
      }
      return;
    }
    ValidateOptions vo;
    vo.require_non_migrating = false;  // preemptive replans may split tasks
    const auto v = validate_schedule(sim.schedule, c_.tasks, c_.cfg, vo);
    if (!v.ok) add("validate:sim:" + label, v.describe());

    const auto lb = lower_bound_energy(c_.tasks, c_.cfg);
    expect_le("order:lower-bound:sim:" + label, lb.total(), total,
              opts_.order_tol, "lower bound vs online energy");

    // OPT <= heuristic whenever an offline optimal solver applies and the
    // accounting models coincide (no overheads: idle time is free on both
    // sides, so the wider online horizon adds nothing).
    if (!c_.has_overheads() &&
        static_cast<int>(c_.tasks.size()) <= opts_.max_cross_n) {
      OfflineResult opt;
      std::string which;
      if (c_.tasks.is_common_release()) {
        opt = c_.cfg.core.alpha > 0.0
                  ? solve_common_release_alpha(c_.tasks, c_.cfg)
                  : solve_common_release_alpha0(c_.tasks, c_.cfg);
        which = "common-release optimum";
      } else if (c_.tasks.is_agreeable()) {
        opt = solve_agreeable(c_.tasks, c_.cfg);
        which = "agreeable DP optimum";
      }
      if (!which.empty() && opt.feasible) {
        expect_le("order:offline-le-online:" + label, opt.energy, total,
                  1e-6, which + " vs " + label + " energy");
      }
    }
  }

  void check_general() {
    struct Pair {
      std::string label;
      SimResult fast;
      SimResult ref;
      bool guaranteed_feasible;
    };
    std::vector<Pair> runs;
    {
      SdemOnPolicy fast(true);
      SdemOnReferencePolicy ref(true);
      runs.push_back({"sdem-on", simulate(c_.tasks, c_.cfg, fast),
                      simulate_reference(c_.tasks, c_.cfg, ref), true});
    }
    {
      SdemOnPolicy fast(false);
      SdemOnReferencePolicy ref(false);
      runs.push_back({"sdem-on-eager", simulate(c_.tasks, c_.cfg, fast),
                      simulate_reference(c_.tasks, c_.cfg, ref), true});
    }
    {
      MbkpPolicy fast;
      MbkpReferencePolicy ref;
      runs.push_back({"mbkp", simulate(c_.tasks, c_.cfg, fast),
                      simulate_reference(c_.tasks, c_.cfg, ref), false});
    }
    for (const auto& r : runs) {
      diff_sim(r.label, r.fast, r.ref);
      check_online_run(r.label, r.fast, r.guaranteed_feasible);
    }

    // Slack reclamation: early completions with deterministic fractions.
    {
      std::map<int, double> fractions;
      for (const auto& t : c_.tasks.tasks()) {
        fractions[t.id] = 0.3 + 0.05 * static_cast<double>((t.id * 37) % 14);
      }
      SdemOnPolicy fast(true);
      SdemOnReferencePolicy ref(true);
      const auto f =
          simulate_with_actuals(c_.tasks, c_.cfg, fast, fractions, true);
      const auto r = simulate_with_actuals_reference(c_.tasks, c_.cfg, ref,
                                                     fractions, true);
      diff_sim("sdem-on-actuals", f, r);
    }

    // Accounting theorem: on the same MBKP schedule, sleep-when-it-pays can
    // never cost more than never-sleeping.
    const auto& mbkp_run = runs.back().fast;
    const auto never =
        evaluate_policy(mbkp_run, c_.cfg, SleepDiscipline::kNever, "mbkp");
    const auto opt =
        evaluate_policy(mbkp_run, c_.cfg, SleepDiscipline::kOptimal, "mbkps");
    expect_le("order:mbkps-le-mbkp", opt.energy.system_total(),
              never.energy.system_total(), opts_.order_tol,
              "MBKPS vs MBKP energy");
  }

  // -- sleep ladder (multi-state memory + governor) ------------------------

  /// Internal consistency of one EnergyBreakdown produced by the ladder
  /// accounting path: the rollup fields must equal the per-state sums, and
  /// every per-state row must satisfy its own defining identities.
  void check_ladder_accounting(const std::string& label,
                               const EnergyBreakdown& e,
                               const SleepLadder& ladder) {
    if (static_cast<int>(e.memory_states.size()) != ladder.depth()) {
      add("ladder:accounting:" + label,
          "per-state rows " + std::to_string(e.memory_states.size()) +
              " != ladder depth " + std::to_string(ladder.depth()));
      return;
    }
    double residency = 0.0, transition = 0.0, cycles = 0.0, aborts = 0.0;
    for (int k = 0; k < ladder.depth(); ++k) {
      const auto& ps = e.memory_states[static_cast<std::size_t>(k)];
      const auto& st = ladder.state(k);
      if (ps.sleep_time < 0.0 || ps.cycles < 0.0 || ps.aborts < 0.0) {
        add("ladder:accounting:" + label,
            "negative per-state stats in state " + std::to_string(k));
      }
      expect_close("ladder:accounting:" + label, ps.residency_energy,
                   st.power * ps.sleep_time, opts_.account_tol,
                   "state " + std::to_string(k) + " residency vs power*time");
      expect_close("ladder:accounting:" + label, ps.transition_energy,
                   st.pair_energy * (ps.cycles + ps.aborts),
                   opts_.account_tol,
                   "state " + std::to_string(k) + " transition vs pair*cycles");
      residency += ps.residency_energy;
      transition += ps.transition_energy;
      cycles += ps.cycles;
      aborts += ps.aborts;
    }
    expect_close("ladder:accounting:" + label, e.memory_sleep_residency,
                 residency, opts_.account_tol, "residency rollup");
    expect_close("ladder:accounting:" + label, e.memory_transition, transition,
                 opts_.account_tol, "transition rollup");
    if (e.memory_sleep_cycles != cycles) {
      add("ladder:accounting:" + label,
          "cycle rollup " + num(e.memory_sleep_cycles) + " != per-state sum " +
              num(cycles));
    }
    if (e.governor_aborts != aborts) {
      add("ladder:accounting:" + label,
          "abort rollup " + num(e.governor_aborts) + " != per-state sum " +
              num(aborts));
    }
    if (!std::isfinite(e.memory_total()) || e.memory_total() < 0.0) {
      add("ladder:accounting:" + label,
          "memory total " + num(e.memory_total()));
    }
  }

  void check_sleep_ladder() {
    const SleepLadder& ladder = c_.cfg.memory.ladder;
    const std::string err = ladder.validate(c_.cfg.memory.alpha_m);
    if (!err.empty()) {
      add("ladder:validity", err);
      return;  // a malformed ladder makes the energy checks meaningless
    }

    // All disciplines account the same memory-oblivious MBKP schedule, so
    // every comparison below isolates the gap decision.
    MbkpPolicy policy;
    const auto sim = simulate(c_.tasks, c_.cfg, policy);

    // Depth-1 differential: the single-state ladder built from (alpha_m,
    // xi_m) must reproduce the legacy accounting path bit for bit — the
    // frozen-oracle contract the whole refactor rests on.
    {
      auto legacy_cfg = c_.cfg;
      legacy_cfg.memory.ladder = SleepLadder();
      auto single_cfg = c_.cfg;
      single_cfg.memory.ladder = SleepLadder::single(c_.cfg.memory.alpha_m,
                                                     c_.cfg.memory.xi_m);
      const auto legacy =
          evaluate_policy(sim, legacy_cfg, SleepDiscipline::kOptimal, "lg");
      const auto single =
          evaluate_policy(sim, single_cfg, SleepDiscipline::kOptimal, "s1");
      if (legacy.energy.memory_idle != single.energy.memory_idle ||
          legacy.energy.memory_transition != single.energy.memory_transition ||
          legacy.energy.memory_sleep_time != single.energy.memory_sleep_time ||
          legacy.energy.memory_sleep_cycles !=
              single.energy.memory_sleep_cycles ||
          legacy.energy.memory_total() != single.energy.memory_total()) {
        add("ladder:depth1-differential",
            "single-state ladder diverges from legacy: total " +
                num(single.energy.memory_total()) + " vs " +
                num(legacy.energy.memory_total()) + ", idle " +
                num(single.energy.memory_idle) + " vs " +
                num(legacy.energy.memory_idle) + ", transition " +
                num(single.energy.memory_transition) + " vs " +
                num(legacy.energy.memory_transition));
      }
    }

    // Discipline ordering on the case's own ladder: the clairvoyant per-gap
    // oracle can be beaten by nobody who sees the same gaps.
    const auto never =
        evaluate_policy(sim, c_.cfg, SleepDiscipline::kNever, "ln");
    const auto always =
        evaluate_policy(sim, c_.cfg, SleepDiscipline::kAlways, "la");
    const auto oracle =
        evaluate_policy(sim, c_.cfg, SleepDiscipline::kOptimal, "lo");
    IdleGovernor governor;
    const auto governed = evaluate_policy(
        sim, c_.cfg, SleepDiscipline::kGovernor, "lG", &governor);
    expect_le("ladder:oracle-le-never", oracle.energy.memory_total(),
              never.energy.memory_total(), opts_.order_tol,
              "oracle vs never-sleep memory energy");
    expect_le("ladder:oracle-le-always", oracle.energy.memory_total(),
              always.energy.memory_total(), opts_.order_tol,
              "oracle vs sleep-when-idle memory energy");
    expect_le("ladder:oracle-le-governor", oracle.energy.memory_total(),
              governed.energy.memory_total(), opts_.order_tol,
              "oracle vs governed memory energy");
    check_ladder_accounting("never", never.energy, ladder);
    check_ladder_accounting("always", always.energy, ladder);
    check_ladder_accounting("oracle", oracle.energy, ladder);
    check_ladder_accounting("governor", governed.energy, ladder);
    if (governed.energy.governor_aborts < 0.0 ||
        governed.energy.governor_mispredicts < 0.0) {
      add("ladder:governor-stats", "negative mispredict/abort counters");
    }

    // Monotone depth: each added rung only widens the oracle's choice set,
    // so oracle energy is non-increasing along ladder prefixes.
    double prev = never.energy.memory_total();
    for (int d = 1; d <= ladder.depth(); ++d) {
      auto cfg_d = c_.cfg;
      cfg_d.memory.ladder = ladder.prefix(d);
      const auto ev =
          evaluate_policy(sim, cfg_d, SleepDiscipline::kOptimal, "ld");
      expect_le("ladder:monotone-depth", ev.energy.memory_total(), prev,
                opts_.order_tol,
                "oracle energy at depth " + std::to_string(d) +
                    " vs depth " + std::to_string(d - 1));
      prev = ev.energy.memory_total();
    }
  }

  const FuzzCase& c_;
  const CheckOptions& opts_;
  std::vector<Violation> out_;
};

}  // namespace

std::vector<Violation> check_case(const FuzzCase& c, const CheckOptions& opts) {
  return Checker(c, opts).run();
}

std::string summarize(const std::vector<Violation>& v) {
  std::string out;
  for (const auto& viol : v) {
    if (!out.empty()) out += "; ";
    out += viol.invariant;
  }
  return out;
}

}  // namespace sdem::testing
