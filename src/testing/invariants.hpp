// The invariant library of the differential fuzzer.
//
// Every fuzz case is checked against the full set of paper-level
// correctness claims that apply to its model class and variant flags:
//
//   * feasibility   — every solver must accept a feasible-by-construction
//                     case, and its schedule must pass sched/validate;
//   * accounting    — the analytic energy a solver reports must equal the
//                     energy re-derived from its schedule's segments;
//   * solver pairs  — fast path vs frozen reference oracle (agreeable
//                     incremental DP vs seed DP, online hot path vs
//                     sim/sim_reference, scratch overloads vs plain
//                     overloads, binary case search vs linear scan) must
//                     agree bit-for-bit or to 1e-9;
//   * optimality    — solver energy <= grid-reference energy (one-sided,
//                     tight) and agrees with it loosely (two-sided);
//   * ordering      — lower_bound <= OPT <= online heuristic, MBKPS <=
//                     MBKP, continuous OPT <= discrete-aware <= post-hoc
//                     discretization, section-7 energy >= section-4 energy;
//   * determinism   — serial vs thread-pool DP replay is bit-identical;
//   * sleep ladder  — ladder well-formedness, depth-1 ladder accounting
//                     bit-identical to the frozen single-state path,
//                     clairvoyant oracle <= never/always/governor, oracle
//                     energy monotone non-increasing in ladder depth, and
//                     per-state residency/transition rollups consistent.
//
// check_case is deterministic (no internal RNG) and returns every violated
// invariant, so the shrinker can preserve the failure signature while
// reducing, and a clean run really did check everything it claims.
#pragma once

#include <string>
#include <vector>

#include "testing/fuzz_case.hpp"

namespace sdem {
class ThreadPool;
}

namespace sdem::testing {

struct Violation {
  std::string invariant;  ///< stable identifier, e.g. "order:lower-bound"
  std::string detail;     ///< human-readable numbers
};

struct CheckOptions {
  double pair_tol = 1e-9;       ///< equivalent-solver relative agreement
  double account_tol = 1e-7;    ///< analytic vs re-accounted energy
  double order_tol = 1e-7;      ///< slack on ordering invariants
  double ref_tol = 1e-4;        ///< one-sided optimality vs grid reference
  double ref_loose_tol = 5e-3;  ///< two-sided agreement with the reference
  std::size_t ref_grid = 20000; ///< grid for the 1-D reference scans
  std::size_t ref_block_grid = 60;  ///< grid for the agreeable 2-D blocks
  int max_ref_n = 7;            ///< grid references only for n <= this
  int max_cross_n = 14;         ///< cross-solver DP checks only below this
  bool run_reference = true;    ///< enable the slow grid-reference oracles
  /// Audit every fast block probe against the exact O(k) evaluator during
  /// the agreeable checks (BlockContext::set_cross_check). This is what
  /// makes the fuzzer exercise the batched/SIMD kernel: on an SDEM_SIMD=ON
  /// build every batched lane evaluation is re-derived exactly, and any
  /// mismatch > 1e-9 relative fails the case.
  bool audit_block_probes = true;
  ThreadPool* pool = nullptr;   ///< when set: parallel-replay determinism
};

/// Run every applicable invariant; empty result == case is clean.
std::vector<Violation> check_case(const FuzzCase& c,
                                  const CheckOptions& opts = {});

/// One-line summary ("order:lower-bound; pair:binary-vs-scan") for logs.
std::string summarize(const std::vector<Violation>& v);

}  // namespace sdem::testing
