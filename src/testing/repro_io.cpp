#include "testing/repro_io.hpp"

#include <cstdlib>
#include <stdexcept>

#include "support/json.hpp"

namespace sdem::testing {
namespace {

constexpr int kReproVersion = 1;

double require_number(const Json& obj, const std::string& key) {
  const Json* v = obj.find(key);
  if (!v || !v->is_number())
    throw std::invalid_argument("repro: missing number field '" + key + "'");
  return v->as_number();
}

FuzzCase parse_repro_body(const Json& doc);

}  // namespace

std::string repro_to_json(const FuzzCase& c,
                          const std::vector<Violation>& violations) {
  Json doc = Json::object();
  doc.set("sdem_repro", kReproVersion);
  doc.set("model", to_string(c.model));
  // Seeds are 64-bit; JSON numbers are doubles. A string keeps all bits.
  doc.set("seed", std::to_string(c.seed));

  Json core = Json::object();
  core.set("alpha", c.cfg.core.alpha);
  core.set("beta", c.cfg.core.beta);
  core.set("lambda", c.cfg.core.lambda);
  core.set("s_min", c.cfg.core.s_min);
  core.set("s_up", c.cfg.core.s_up);
  core.set("xi", c.cfg.core.xi);
  Json memory = Json::object();
  memory.set("alpha_m", c.cfg.memory.alpha_m);
  memory.set("xi_m", c.cfg.memory.xi_m);
  Json config = Json::object();
  config.set("core", std::move(core));
  config.set("memory", std::move(memory));
  config.set("num_cores", c.cfg.num_cores);
  doc.set("config", std::move(config));

  if (!c.ladder.empty()) {
    Json ladder = Json::array();
    for (double level : c.ladder) ladder.push_back(level);
    doc.set("ladder", std::move(ladder));
  }

  if (!c.cfg.memory.ladder.empty()) {
    // xi is stored, not derived (frozen-oracle bit-identity), so every
    // field round-trips verbatim through add_state_exact.
    Json states = Json::array();
    for (const auto& s : c.cfg.memory.ladder.states()) {
      Json js = Json::object();
      js.set("name", s.name);
      js.set("power", s.power);
      js.set("pair_energy", s.pair_energy);
      js.set("latency", s.latency);
      js.set("xi", s.xi);
      states.push_back(std::move(js));
    }
    doc.set("sleep_ladder", std::move(states));
  }

  Json tasks = Json::array();
  for (const auto& t : c.tasks.tasks()) {
    Json jt = Json::object();
    jt.set("id", t.id);
    jt.set("release", t.release);
    jt.set("deadline", t.deadline);
    jt.set("work", t.work);
    tasks.push_back(std::move(jt));
  }
  doc.set("tasks", std::move(tasks));

  if (!violations.empty()) {
    Json viols = Json::array();
    for (const auto& v : violations) {
      Json jv = Json::object();
      jv.set("invariant", v.invariant);
      jv.set("detail", v.detail);
      viols.push_back(std::move(jv));
    }
    doc.set("violations", std::move(viols));
  }
  return doc.dump(2);
}

FuzzCase repro_from_json(const std::string& text) {
  const Json doc = Json::parse(text);
  if (!doc.is_object() || !doc.has("sdem_repro"))
    throw std::invalid_argument("repro: not an sdem_repro document");
  try {
    return parse_repro_body(doc);
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::logic_error& e) {
    // Json accessors throw logic_error/out_of_range on shape mismatches;
    // fold them into the documented contract.
    throw std::invalid_argument(std::string("repro: ") + e.what());
  }
}

namespace {

FuzzCase parse_repro_body(const Json& doc) {
  FuzzCase c;
  c.model = model_class_from_string(doc.at("model").as_string());
  if (const Json* seed = doc.find("seed"); seed && seed->is_string()) {
    c.seed = std::strtoull(seed->as_string().c_str(), nullptr, 10);
  }

  const Json& config = doc.at("config");
  const Json& core = config.at("core");
  c.cfg.core.alpha = require_number(core, "alpha");
  c.cfg.core.beta = require_number(core, "beta");
  c.cfg.core.lambda = require_number(core, "lambda");
  c.cfg.core.s_min = core.number_or("s_min", 0.0);
  c.cfg.core.s_up = require_number(core, "s_up");
  c.cfg.core.xi = core.number_or("xi", 0.0);
  const Json& memory = config.at("memory");
  c.cfg.memory.alpha_m = require_number(memory, "alpha_m");
  c.cfg.memory.xi_m = memory.number_or("xi_m", 0.0);
  c.cfg.num_cores = static_cast<int>(config.number_or("num_cores", 0.0));

  if (const Json* ladder = doc.find("ladder")) {
    for (std::size_t i = 0; i < ladder->size(); ++i) {
      c.ladder.push_back(ladder->at(i).as_number());
    }
  }

  if (const Json* states = doc.find("sleep_ladder")) {
    for (std::size_t i = 0; i < states->size(); ++i) {
      const Json& js = states->at(i);
      SleepState s;
      if (const Json* name = js.find("name"); name && name->is_string()) {
        s.name = name->as_string();
      }
      s.power = require_number(js, "power");
      s.pair_energy = require_number(js, "pair_energy");
      s.latency = require_number(js, "latency");
      s.xi = require_number(js, "xi");
      c.cfg.memory.ladder.add_state_exact(std::move(s));
    }
  }

  const Json& tasks = doc.at("tasks");
  if (!tasks.is_array())
    throw std::invalid_argument("repro: 'tasks' must be an array");
  std::vector<Task> v;
  v.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Json& jt = tasks.at(i);
    Task t;
    t.id = static_cast<int>(require_number(jt, "id"));
    t.release = require_number(jt, "release");
    t.deadline = require_number(jt, "deadline");
    t.work = require_number(jt, "work");
    v.push_back(t);
  }
  c.tasks = TaskSet(std::move(v));
  return c;
}

}  // namespace

std::string repro_test_body(const FuzzCase& c, const std::string& test_name) {
  std::string out;
  out += "TEST(FuzzRegression, " + test_name + ") {\n";
  out += "  sdem::SystemConfig cfg;\n";
  out += "  cfg.core.alpha = " + Json::number_to_string(c.cfg.core.alpha) +
         ";\n";
  out += "  cfg.core.beta = " + Json::number_to_string(c.cfg.core.beta) +
         ";\n";
  out += "  cfg.core.lambda = " + Json::number_to_string(c.cfg.core.lambda) +
         ";\n";
  out += "  cfg.core.s_up = " + Json::number_to_string(c.cfg.core.s_up) +
         ";\n";
  if (c.cfg.core.s_min != 0.0)
    out += "  cfg.core.s_min = " + Json::number_to_string(c.cfg.core.s_min) +
           ";\n";
  if (c.cfg.core.xi != 0.0)
    out += "  cfg.core.xi = " + Json::number_to_string(c.cfg.core.xi) + ";\n";
  out += "  cfg.memory.alpha_m = " +
         Json::number_to_string(c.cfg.memory.alpha_m) + ";\n";
  if (c.cfg.memory.xi_m != 0.0)
    out += "  cfg.memory.xi_m = " + Json::number_to_string(c.cfg.memory.xi_m) +
           ";\n";
  out += "  cfg.num_cores = " + std::to_string(c.cfg.num_cores) + ";\n";
  out += "  sdem::TaskSet ts;\n";
  for (const auto& t : c.tasks.tasks()) {
    out += "  ts.add({" + std::to_string(t.id) + ", " +
           Json::number_to_string(t.release) + ", " +
           Json::number_to_string(t.deadline) + ", " +
           Json::number_to_string(t.work) + "});\n";
  }
  out += "  sdem::testing::FuzzCase c;\n";
  out += "  c.model = sdem::testing::ModelClass::k";
  switch (c.model) {
    case ModelClass::kCommonRelease:
      out += "CommonRelease";
      break;
    case ModelClass::kAgreeable:
      out += "Agreeable";
      break;
    case ModelClass::kGeneral:
      out += "General";
      break;
    case ModelClass::kSleepLadder:
      out += "SleepLadder";
      break;
  }
  out += ";\n";
  if (!c.cfg.memory.ladder.empty()) {
    for (const auto& s : c.cfg.memory.ladder.states()) {
      out += "  cfg.memory.ladder.add_state_exact({\"" + s.name + "\", " +
             Json::number_to_string(s.power) + ", " +
             Json::number_to_string(s.pair_energy) + ", " +
             Json::number_to_string(s.latency) + ", " +
             Json::number_to_string(s.xi) + "});\n";
    }
  }
  out += "  c.cfg = cfg;\n";
  out += "  c.tasks = ts;\n";
  if (!c.ladder.empty()) {
    out += "  c.ladder = {";
    for (std::size_t i = 0; i < c.ladder.size(); ++i) {
      if (i) out += ", ";
      out += Json::number_to_string(c.ladder[i]);
    }
    out += "};\n";
  }
  out += "  const auto violations = sdem::testing::check_case(c);\n";
  out +=
      "  EXPECT_TRUE(violations.empty())\n      << sdem::testing::summarize(violations);\n";
  out += "}\n";
  return out;
}

}  // namespace sdem::testing
