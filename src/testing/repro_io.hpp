// Self-contained .repro.json reproducer files.
//
// A repro file carries everything needed to re-run one fuzz case — model
// class, full system config, ladder, task set — plus the violations that
// were observed when it was written (informational: replay re-derives
// them). Doubles round-trip bit-exactly through support/json's shortest
// round-trip number rendering, so a replayed case is the exact case that
// failed, not a close cousin.
//
// repro_test_body() additionally renders the case as a ready-to-paste
// GoogleTest regression test so a confirmed bug can be pinned in
// tests/test_fuzz.cpp (or a dedicated regression suite) verbatim.
#pragma once

#include <string>
#include <vector>

#include "testing/fuzz_case.hpp"
#include "testing/invariants.hpp"

namespace sdem::testing {

/// Pretty-printed JSON document for the case (+ the violations observed).
std::string repro_to_json(const FuzzCase& c,
                          const std::vector<Violation>& violations = {});

/// Parse a repro document. Throws std::invalid_argument on malformed input
/// or missing fields.
FuzzCase repro_from_json(const std::string& text);

/// A ready-to-paste TEST(...) body reproducing the case through
/// check_case(). `test_name` must be a valid identifier suffix.
std::string repro_test_body(const FuzzCase& c, const std::string& test_name);

}  // namespace sdem::testing
