#include "testing/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace sdem::testing {
namespace {

std::set<std::string> signature(const std::vector<Violation>& v) {
  std::set<std::string> out;
  for (const auto& viol : v) out.insert(viol.invariant);
  return out;
}

/// Cheap structural pre-filter: a candidate must still be a valid instance
/// of the case's model class before it is worth running the solvers.
bool structurally_valid(const FuzzCase& c) {
  if (c.tasks.empty()) return false;
  if (!c.tasks.validate().empty()) return false;
  switch (c.model) {
    case ModelClass::kCommonRelease:
      if (!c.tasks.is_common_release()) return false;
      break;
    case ModelClass::kAgreeable:
      if (!c.tasks.is_agreeable()) return false;
      break;
    case ModelClass::kGeneral:
      break;
    case ModelClass::kSleepLadder:
      if (c.cfg.memory.ladder.empty()) return false;
      break;
  }
  if (c.cfg.core.s_up > 0.0 &&
      c.tasks.max_filled_speed() > c.cfg.core.s_up) {
    return false;
  }
  return true;
}

double round_digits(double v, int digits) {
  const double scale = std::pow(10.0, digits);
  return std::round(v * scale) / scale;
}

class Shrinker {
 public:
  Shrinker(const FuzzCase& failing, const CheckOptions& opts, int max_attempts)
      : opts_(opts), budget_(max_attempts) {
    result_.reduced = failing;
    result_.violations = check_case(failing, opts_);
    target_ = signature(result_.violations);
  }

  ShrinkResult run() {
    if (target_.empty()) return result_;  // not failing: nothing to do
    bool progress = true;
    while (progress && budget_ > 0) {
      progress = false;
      progress |= shrink_tasks();
      progress |= shrink_config();
      progress |= shrink_values();
    }
    return result_;
  }

 private:
  /// Accept `candidate` if it preserves (part of) the failure signature.
  bool try_accept(FuzzCase candidate) {
    if (budget_ <= 0) return false;
    if (!structurally_valid(candidate)) return false;
    --budget_;
    ++result_.attempts;
    const auto violations = check_case(candidate, opts_);
    const auto sig = signature(violations);
    bool overlaps = false;
    for (const auto& name : sig) {
      if (target_.count(name)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) return false;
    result_.reduced = std::move(candidate);
    result_.violations = violations;
    ++result_.accepted;
    return true;
  }

  /// ddmin-style chunk removal over the task vector.
  bool shrink_tasks() {
    bool any = false;
    std::size_t chunk = std::max<std::size_t>(1, result_.reduced.tasks.size() / 2);
    while (chunk >= 1 && budget_ > 0) {
      bool removed = false;
      for (std::size_t lo = 0; lo < result_.reduced.tasks.size();) {
        const auto& cur = result_.reduced.tasks.tasks();
        if (cur.size() <= 1) break;
        const std::size_t hi = std::min(cur.size(), lo + chunk);
        std::vector<Task> kept;
        kept.reserve(cur.size() - (hi - lo));
        for (std::size_t i = 0; i < cur.size(); ++i) {
          if (i < lo || i >= hi) kept.push_back(cur[i]);
        }
        FuzzCase cand = result_.reduced;
        cand.tasks = TaskSet(std::move(kept));
        if (try_accept(std::move(cand))) {
          any = removed = true;
          // indices shifted: retry the same lo against the smaller set
        } else {
          lo += chunk;
        }
      }
      if (!removed && chunk == 1) break;
      if (!removed) chunk /= 2;
    }
    return any;
  }

  bool shrink_config() {
    bool any = false;
    const auto try_edit = [&](auto edit) {
      FuzzCase cand = result_.reduced;
      edit(cand);
      if (try_accept(std::move(cand))) any = true;
    };
    if (!result_.reduced.ladder.empty())
      try_edit([](FuzzCase& c) { c.ladder.clear(); });
    // Sleep-ladder cases: a shallower prefix is a much easier read, and
    // most ladder bugs survive with one or two rungs.
    for (int d = 1; d < result_.reduced.cfg.memory.ladder.depth(); ++d) {
      const int keep = d;
      try_edit([keep](FuzzCase& c) {
        c.cfg.memory.ladder = c.cfg.memory.ladder.prefix(keep);
      });
      if (result_.reduced.cfg.memory.ladder.depth() <= keep) break;
    }
    if (result_.reduced.cfg.core.xi > 0.0)
      try_edit([](FuzzCase& c) { c.cfg.core.xi = 0.0; });
    if (result_.reduced.cfg.memory.xi_m > 0.0)
      try_edit([](FuzzCase& c) { c.cfg.memory.xi_m = 0.0; });
    if (result_.reduced.cfg.core.alpha > 0.0)
      try_edit([](FuzzCase& c) { c.cfg.core.alpha = 0.0; });
    if (result_.reduced.cfg.num_cores > 0)
      try_edit([](FuzzCase& c) { c.cfg.num_cores = 0; });
    if (result_.reduced.cfg.core.lambda != 3.0)
      try_edit([](FuzzCase& c) { c.cfg.core.lambda = 3.0; });
    return any;
  }

  bool shrink_values() {
    bool any = false;
    // Translate the trace to start at t = 0 (ids stay as-is: they matter
    // for the round-robin core assignment in the general class).
    const double lo = result_.reduced.tasks.min_release();
    if (lo != 0.0) {
      FuzzCase cand = result_.reduced;
      std::vector<Task> v = cand.tasks.tasks();
      for (auto& t : v) {
        t.release -= lo;
        t.deadline -= lo;
      }
      cand.tasks = TaskSet(std::move(v));
      if (try_accept(std::move(cand))) any = true;
    }
    // Coarse first: a 3-digit reproducer is far easier to read than a
    // 6-digit one, and rounding often breaks the failure, so try both.
    for (int digits : {3, 4, 6}) {
      FuzzCase cand = result_.reduced;
      std::vector<Task> v = cand.tasks.tasks();
      bool changed = false;
      for (auto& t : v) {
        const Task before = t;
        t.release = round_digits(t.release, digits);
        t.deadline = round_digits(t.deadline, digits);
        t.work = round_digits(t.work, digits);
        changed |= t.release != before.release ||
                   t.deadline != before.deadline || t.work != before.work;
      }
      if (!changed) break;
      cand.tasks = TaskSet(std::move(v));
      if (try_accept(std::move(cand))) {
        any = true;
        break;
      }
    }
    return any;
  }

  const CheckOptions& opts_;
  int budget_;
  std::set<std::string> target_;
  ShrinkResult result_;
};

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing, const CheckOptions& opts,
                         int max_attempts) {
  return Shrinker(failing, opts, max_attempts).run();
}

}  // namespace sdem::testing
