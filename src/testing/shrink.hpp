// Auto-shrinking of failing fuzz cases to minimal reproducers.
//
// Greedy delta debugging in three waves, iterated to a fixpoint:
//   1. task reduction — drop contiguous chunks of the task set (halves,
//      quarters, ..., single tasks), ddmin style;
//   2. config simplification — zero out variant axes one at a time
//      (alpha, xi, xi_m, the ladder, the core bound, lambda -> 3);
//   3. value rounding — round releases/deadlines/workloads to few decimal
//      digits and translate the earliest release to 0.
//
// A candidate is accepted only if it still violates at least one invariant
// the original case violated (same failure signature, not just "fails
// somehow") and still belongs to the case's model class — so the emitted
// reproducer exercises the same bug through the same checks.
#pragma once

#include "testing/invariants.hpp"

namespace sdem::testing {

struct ShrinkResult {
  FuzzCase reduced;
  std::vector<Violation> violations;  ///< violations of the reduced case
  int attempts = 0;                   ///< predicate evaluations spent
  int accepted = 0;                   ///< reductions that kept the failure
};

/// Shrink `failing` (which must currently fail check_case under `opts`).
/// `max_attempts` bounds the number of re-checks; the original case is
/// returned unchanged if nothing smaller preserves the failure.
ShrinkResult shrink_case(const FuzzCase& failing, const CheckOptions& opts,
                         int max_attempts = 500);

}  // namespace sdem::testing
