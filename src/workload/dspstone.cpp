#include "workload/dspstone.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace sdem {

double fft1024_megacycles(int batch) {
  // (N/2) log2 N butterflies, ~16 cycles per radix-2 butterfly.
  constexpr double kButterflies = 512.0 * 10.0;
  constexpr double kCyclesPerButterfly = 16.0;
  return batch * kButterflies * kCyclesPerButterfly * 1e-6;
}

double matmul_megacycles(int x, int y, int z) {
  // Two cycles per multiply-accumulate.
  return 2.0 * static_cast<double>(x) * y * z * 1e-6;
}

TaskSet make_dspstone(const DspstoneParams& p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  TaskSet out;
  std::vector<double> next_release(p.num_streams, 0.0);
  // Stagger the streams so arrivals don't all collide at t = 0.
  for (auto& t : next_release) t = rng.uniform(0.0, 0.020);

  int id = 0;
  while (id < p.num_tasks) {
    // Earliest-next stream emits the next instance.
    int s = 0;
    for (int k = 1; k < p.num_streams; ++k) {
      if (next_release[k] < next_release[s]) s = k;
    }
    const bool is_fft = (s % 2) == 0;
    double mc;
    if (is_fft) {
      mc = fft1024_megacycles(p.fft_batch);
    } else {
      const int x = static_cast<int>(rng.uniform_int(p.dim_lo, p.dim_hi));
      const int y = static_cast<int>(rng.uniform_int(p.dim_lo, p.dim_hi));
      const int z = static_cast<int>(rng.uniform_int(p.dim_lo, p.dim_hi));
      mc = matmul_megacycles(x, y, z);
    }
    const double region = mc / p.ref_mhz;  // processing time at 16.5 MHz
    Task t;
    t.id = id++;
    t.release = next_release[s];
    t.deadline = t.release + region;
    t.work = mc;
    out.add(t);
    next_release[s] += region * p.utilization_u * rng.uniform(1.0, 1.2);
  }
  return out;
}

}  // namespace sdem
