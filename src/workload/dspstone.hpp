// DSPstone-style benchmark workloads (paper §8.1.1).
//
// The paper instantiates tasks from two DSPstone kernels — a 1024-point FFT
// and a matrix multiply — with cycle counts measured on Analog Devices'
// xsim2101 simulator. We model the kernels analytically instead (the
// simulator is not available):
//
//   * FFT-1024: (N/2) log2 N = 5120 radix-2 butterflies at ~16 cycles each,
//     processed in batches of `fft_batch` frames per task instance
//     (streaming DSP pipelines hand the filter whole buffers, not single
//     frames) — 1.31 megacycles per 16-frame instance.
//   * matmul: [X x Y] * [Y x Z] with X, Y, Z drawn uniformly from
//     [dim_lo, dim_hi]; 2 cycles per multiply-accumulate.
//
// As in the paper, an instance's feasible region equals its processing time
// at 16.5 MHz (the reference DSP's clock), and instances of each stream are
// released sporadically with period |d - r| * U — larger U means a less
// utilized system. Streams alternate FFT and matmul across the 8 cores.
#pragma once

#include <cstdint>

#include "model/task.hpp"

namespace sdem {

struct DspstoneParams {
  int num_tasks = 200;    ///< total instances across all streams
  int num_streams = 8;    ///< one per core, alternating FFT / matmul
  double utilization_u = 4.0;  ///< the paper's U in [2, 9]
  int fft_batch = 16;     ///< frames per FFT instance
  int dim_lo = 40;        ///< matmul dimension range
  int dim_hi = 80;
  double ref_mhz = 16.5;  ///< reference DSP clock defining the regions
};

/// Cycle count (megacycles) of one batched FFT-1024 instance.
double fft1024_megacycles(int batch);

/// Cycle count (megacycles) of an [X x Y] * [Y x Z] multiply.
double matmul_megacycles(int x, int y, int z);

/// Build the benchmark trace. Instance k+1 of a stream is released
/// period * U(1.0, 1.2) after instance k (sporadic releases).
TaskSet make_dspstone(const DspstoneParams& p, std::uint64_t seed);

}  // namespace sdem
