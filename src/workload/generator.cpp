#include "workload/generator.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace sdem {

TaskSet make_synthetic(const SyntheticParams& p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  TaskSet out;
  double t = 0.0;
  for (int i = 0; i < p.num_tasks; ++i) {
    t += rng.uniform(0.0, p.max_interarrival);
    Task task;
    task.id = i;
    task.release = t;
    task.work = rng.uniform(p.work_lo, p.work_hi);
    task.deadline = t + rng.uniform(p.region_lo, p.region_hi);
    out.add(task);
  }
  return out;
}

TaskSet make_common_release(int num_tasks, double release, std::uint64_t seed,
                            double work_lo, double work_hi, double region_lo,
                            double region_hi) {
  Xoshiro256 rng(seed);
  TaskSet out;
  for (int i = 0; i < num_tasks; ++i) {
    Task task;
    task.id = i;
    task.release = release;
    task.work = rng.uniform(work_lo, work_hi);
    task.deadline = release + rng.uniform(region_lo, region_hi);
    out.add(task);
  }
  return out;
}

TaskSet make_bursty(const BurstyParams& p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  TaskSet out;
  double t = 0.0;
  int id = 0;
  while (id < p.num_tasks) {
    const int burst =
        std::min(p.burst_size, p.num_tasks - id);
    for (int k = 0; k < burst; ++k) {
      t += rng.uniform(0.0, p.intra_spacing);
      Task task;
      task.id = id++;
      task.release = t;
      task.work = rng.uniform(p.work_lo, p.work_hi);
      task.deadline = t + rng.uniform(p.region_lo, p.region_hi);
      out.add(task);
    }
    t += rng.uniform(0.5 * p.burst_gap, 1.5 * p.burst_gap);
  }
  return out;
}

TaskSet make_agreeable(int num_tasks, std::uint64_t seed,
                       double max_interarrival, double work_lo, double work_hi,
                       double region_lo, double region_hi) {
  Xoshiro256 rng(seed);
  TaskSet out;
  double t = 0.0;
  double last_deadline = 0.0;
  for (int i = 0; i < num_tasks; ++i) {
    t += rng.uniform(0.0, max_interarrival);
    Task task;
    task.id = i;
    task.release = t;
    task.work = rng.uniform(work_lo, work_hi);
    // Keep deadlines non-decreasing so later release => later deadline.
    task.deadline =
        std::max(t + rng.uniform(region_lo, region_hi), last_deadline);
    last_deadline = task.deadline;
    out.add(task);
  }
  return out;
}

}  // namespace sdem
