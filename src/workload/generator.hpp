// Synthetic task-set generation (paper §8.1.2).
//
// Random task sets mirror the paper's setup: workloads uniform in
// [2, 5] x 10^6 cycles (2..5 megacycles), feasible regions uniform in
// [10, 120] ms, arrivals separated by uniform inter-arrival times in
// [0, x] where x is the utilization knob (100 ms = busy system with all 8
// cores in play; 800 ms = a single core would suffice).
//
// Also provides structured generators for the theory tests: common-release
// sets and agreeable-deadline sets.
#pragma once

#include <cstdint>

#include "model/task.hpp"

namespace sdem {

struct SyntheticParams {
  int num_tasks = 100;
  double work_lo = 2.0;      ///< megacycles
  double work_hi = 5.0;
  double region_lo = 0.010;  ///< seconds
  double region_hi = 0.120;
  double max_interarrival = 0.400;  ///< the paper's x, seconds
};

/// General (sporadic) task set per §8.1.2.
TaskSet make_synthetic(const SyntheticParams& p, std::uint64_t seed);

/// All tasks released at `release`; deadlines spread over regions drawn as
/// above. For the Section 4 schemes.
TaskSet make_common_release(int num_tasks, double release, std::uint64_t seed,
                            double work_lo = 2.0, double work_hi = 5.0,
                            double region_lo = 0.010, double region_hi = 0.120);

/// Agreeable set: releases spaced by [0, max_interarrival]; each deadline =
/// release + region with regions drawn so that deadlines stay sorted.
TaskSet make_agreeable(int num_tasks, std::uint64_t seed,
                       double max_interarrival = 0.050,
                       double work_lo = 2.0, double work_hi = 5.0,
                       double region_lo = 0.010, double region_hi = 0.120);

/// Bursty arrivals (interrupt storms): tasks arrive in bursts of
/// `burst_size` with tiny intra-burst spacing, bursts separated by
/// `burst_gap` on average. Stresses the batch-alignment machinery far more
/// than the uniform stream.
struct BurstyParams {
  int num_tasks = 100;
  int burst_size = 8;
  double intra_spacing = 0.002;  ///< max spacing inside a burst, s
  double burst_gap = 0.500;      ///< mean gap between bursts, s
  double work_lo = 2.0;
  double work_hi = 5.0;
  double region_lo = 0.010;
  double region_hi = 0.120;
};
TaskSet make_bursty(const BurstyParams& p, std::uint64_t seed);

}  // namespace sdem
