#include "workload/periodic.hpp"

#include <cmath>
#include <cstdint>
#include <numeric>

#include "support/rng.hpp"

namespace sdem {

double PeriodicSystem::demand_mhz() const {
  double d = 0.0;
  for (const auto& t : tasks_) {
    if (t.period > 0.0) d += t.wcet / t.period;
  }
  return d;
}

double PeriodicSystem::hyperperiod() const {
  // Work on a 1 us integer grid.
  std::uint64_t l = 1;
  for (const auto& t : tasks_) {
    const double us = t.period * 1e6;
    const auto p = static_cast<std::uint64_t>(std::llround(us));
    if (p == 0 || std::abs(us - static_cast<double>(p)) > 1e-6) return 0.0;
    const std::uint64_t g = std::gcd(l, p);
    if (l / g > (100000000000000ULL / p)) return 0.0;  // ~3 years in us
    l = l / g * p;
  }
  return tasks_.empty() ? 0.0 : static_cast<double>(l) * 1e-6;
}

TaskSet PeriodicSystem::expand(double until) const {
  TaskSet out;
  int id = 0;
  for (const auto& t : tasks_) {
    if (t.period <= 0.0 || t.wcet <= 0.0) continue;
    for (double r = t.offset; r < until; r += t.period) {
      Task job;
      job.id = id++;
      job.release = r;
      job.deadline = r + t.relative_deadline();
      job.work = t.wcet;
      out.add(job);
    }
  }
  return out.sorted_by_release();
}

TaskSet PeriodicSystem::expand_sporadic(double until, double jitter,
                                        std::uint64_t seed) const {
  TaskSet out;
  Xoshiro256 rng(seed);
  int id = 0;
  for (const auto& t : tasks_) {
    if (t.period <= 0.0 || t.wcet <= 0.0) continue;
    double r = t.offset;
    while (r < until) {
      Task job;
      job.id = id++;
      job.release = r;
      job.deadline = r + t.relative_deadline();
      job.work = t.wcet;
      out.add(job);
      r += t.period * rng.uniform(1.0, 1.0 + jitter);
    }
  }
  return out.sorted_by_release();
}

}  // namespace sdem
