// Periodic / sporadic real-time task systems (paper §2's periodic-jobs
// setting, and the sporadic releases of §8.1.1).
//
// A PeriodicTask releases a job every `period` seconds starting at
// `offset`; each job carries `wcet` megacycles and a relative deadline
// (implicit — equal to the period — unless given). The expander turns a
// task system into the concrete TaskSet (job list) the schedulers and the
// simulator consume, either strictly periodic or sporadic with bounded
// release jitter.
#pragma once

#include <cstdint>
#include <vector>

#include "model/task.hpp"

namespace sdem {

struct PeriodicTask {
  int id = 0;
  double wcet = 0.0;      ///< megacycles per job
  double period = 0.0;    ///< seconds
  double deadline = 0.0;  ///< relative; 0 => implicit (= period)
  double offset = 0.0;    ///< first release

  double relative_deadline() const { return deadline > 0.0 ? deadline : period; }
};

class PeriodicSystem {
 public:
  void add(PeriodicTask t) { tasks_.push_back(t); }
  const std::vector<PeriodicTask>& tasks() const { return tasks_; }
  bool empty() const { return tasks_.empty(); }

  /// Processor demand per second in megacycles/s (MHz): sum of wcet/period.
  /// Divide by a core speed for a classical utilization number.
  double demand_mhz() const;

  /// Hyperperiod (lcm of the periods) computed on a 1 microsecond grid;
  /// returns 0 if some period is not representable on that grid or the lcm
  /// overflows ~3 years.
  double hyperperiod() const;

  /// All jobs released in [0, until): strictly periodic releases.
  TaskSet expand(double until) const;

  /// Sporadic variant: job k+1 of a task releases period * U(1, 1+jitter)
  /// after job k (deterministic under `seed`).
  TaskSet expand_sporadic(double until, double jitter,
                          std::uint64_t seed) const;

 private:
  std::vector<PeriodicTask> tasks_;
};

}  // namespace sdem
