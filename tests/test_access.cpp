// Tests for the memory-access-pattern extension.
#include <gtest/gtest.h>

#include "model/access.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

Schedule two_segments() {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 1, 2.0, 3.0, 1000.0});
  return s;
}

TEST(Access, DefaultIsWholeExecution) {
  const auto busy = memory_busy_with_access(two_segments(), {});
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_DOUBLE_EQ(busy[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(busy[0].hi, 1.0);
}

TEST(Access, PrefixShrinksBusyFromTheRight) {
  std::map<int, TaskAccess> acc;
  acc[0] = {AccessPattern::kPrefix, 0.25};
  const auto busy = memory_busy_with_access(two_segments(), acc);
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_DOUBLE_EQ(busy[0].hi, 0.25);
  EXPECT_DOUBLE_EQ(busy[1].lo, 2.0);  // task 1 untouched
}

TEST(Access, SuffixShrinksBusyFromTheLeft) {
  std::map<int, TaskAccess> acc;
  acc[1] = {AccessPattern::kSuffix, 0.5};
  const auto busy = memory_busy_with_access(two_segments(), acc);
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_DOUBLE_EQ(busy[1].lo, 2.5);
  EXPECT_DOUBLE_EQ(busy[1].hi, 3.0);
}

TEST(Access, ZeroFractionRemovesTask) {
  std::map<int, TaskAccess> acc;
  acc[0] = {AccessPattern::kWhole, 0.0};
  const auto busy = memory_busy_with_access(two_segments(), acc);
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_DOUBLE_EQ(busy[0].lo, 2.0);
}

TEST(Access, OverlappingAccessPhasesMerge) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  s.add(Segment{1, 1, 0.5, 1.5, 100.0});
  std::map<int, TaskAccess> acc;
  acc[0] = {AccessPattern::kSuffix, 0.6};  // [0.4, 1.0]
  acc[1] = {AccessPattern::kPrefix, 0.6};  // [0.5, 1.1]
  const auto busy = memory_busy_with_access(s, acc);
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_DOUBLE_EQ(busy[0].lo, 0.4);
  EXPECT_DOUBLE_EQ(busy[0].hi, 1.1);
}

TEST(Access, EnergyNeverExceedsWholeModel) {
  // Shrinking access phases can only reduce memory energy (with free
  // transitions) — the paper's whole-execution model is conservative.
  MemoryPower mem{4.0, 0.0};
  const auto sched = two_segments();
  const auto whole =
      access_aware_memory_energy(sched, {}, mem, 0.0, 3.0);
  std::map<int, TaskAccess> acc;
  acc[0] = {AccessPattern::kPrefix, 0.3};
  acc[1] = {AccessPattern::kSuffix, 0.5};
  const auto partial =
      access_aware_memory_energy(sched, acc, mem, 0.0, 3.0);
  EXPECT_LT(partial.total(), whole.total());
  EXPECT_GT(partial.sleep_time, whole.sleep_time);
}

TEST(Access, BreakEvenRespected) {
  MemoryPower mem{4.0, 2.0};  // interior gap of 1 s is below break-even
  const auto e = access_aware_memory_energy(two_segments(), {}, mem, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(e.idle, 4.0 * 1.0);
  EXPECT_EQ(e.sleep_time, 0.0);
  MemoryPower mem2{4.0, 0.5};
  const auto e2 =
      access_aware_memory_energy(two_segments(), {}, mem2, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(e2.transition, 4.0 * 0.5);
  EXPECT_DOUBLE_EQ(e2.sleep_time, 1.0);
}

TEST(Access, MatchesComputeEnergyOnWholeModel) {
  // With kWhole everywhere the access-aware accounting equals the standard
  // one (busy-span horizon, optimal discipline).
  auto cfg = test::make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 0.3;
  const auto sched = two_segments();
  const auto a = access_aware_memory_energy(sched, {}, cfg.memory,
                                            sched.start_time(),
                                            sched.end_time());
  EnergyOptions opts;
  const auto e = compute_energy(sched, cfg, opts);
  EXPECT_NEAR(a.total(), e.memory_total(), 1e-12);
}

}  // namespace
}  // namespace sdem
