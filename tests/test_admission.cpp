// Tests for admission / schedulability analysis.
#include <gtest/gtest.h>

#include "sched/admission.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

TEST(Admission, DemandBoundCountsContainedTasksOnly) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 5.0));
  ts.add(task(1, 0.5, 2.0, 3.0));
  EXPECT_DOUBLE_EQ(demand_bound(ts, 0.0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(demand_bound(ts, 0.0, 2.0), 8.0);
  EXPECT_DOUBLE_EQ(demand_bound(ts, 0.4, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(demand_bound(ts, 1.5, 1.8), 0.0);
}

TEST(Admission, SingleCoreEdfExactness) {
  // Two unit jobs with a shared deadline window: feasible iff
  // total work fits the window at s_up.
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 60.0));
  ts.add(task(1, 0.0, 1.0, 50.0));
  EXPECT_TRUE(edf_schedulable_single_core(ts, 110.0));
  EXPECT_FALSE(edf_schedulable_single_core(ts, 100.0));
}

TEST(Admission, SingleCoreNestedWindows) {
  // An inner dense job can break an otherwise-fine set.
  TaskSet ts;
  ts.add(task(0, 0.0, 10.0, 100.0));
  ts.add(task(1, 4.0, 5.0, 200.0));
  EXPECT_FALSE(edf_schedulable_single_core(ts, 150.0));
  EXPECT_TRUE(edf_schedulable_single_core(ts, 250.0));
}

TEST(Admission, UnboundedCoresPerTaskOnly) {
  TaskSet ts;
  ts.add(task(0, 0.0, 0.010, 5.0));  // 500 MHz
  ts.add(task(1, 0.0, 0.010, 5.0));
  EXPECT_TRUE(schedulable_unbounded(ts, 500.0));
  EXPECT_FALSE(schedulable_unbounded(ts, 400.0));
}

TEST(Admission, ReportIdentifiesBottleneck) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  TaskSet ts;
  ts.add(task(7, 0.0, 0.010, 5.0));   // 500 MHz — the bottleneck
  ts.add(task(8, 0.0, 0.100, 5.0));   // 50 MHz
  const auto r = admit(ts, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.bottleneck_task, 7);
  EXPECT_NEAR(r.max_filled_speed, 500.0, 1e-9);
  EXPECT_GT(r.peak_density, 0.0);
  EXPECT_LE(r.peak_density, 1.0);  // normalized by s_up
}

TEST(Admission, GeneratedWorkloadsAdmissible) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticParams p;
    p.num_tasks = 50;
    const TaskSet ts = make_synthetic(p, seed);
    EXPECT_TRUE(admit(ts, cfg).schedulable) << "seed " << seed;
  }
}

TEST(Admission, EmptySetSchedulable) {
  EXPECT_TRUE(edf_schedulable_single_core(TaskSet{}, 100.0));
  EXPECT_TRUE(schedulable_unbounded(TaskSet{}, 100.0));
}

}  // namespace
}  // namespace sdem
