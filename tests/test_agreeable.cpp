// Tests for the Section 5 DP schemes over agreeable-deadline tasks.
#include <gtest/gtest.h>

#include "core/agreeable.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/reference.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TEST(Agreeable, MatchesExhaustivePartitionReferenceAlpha0) {
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = make_agreeable(2 + seed % 5, seed * 3, 0.060);
    const auto res = solve_agreeable(ts, cfg);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const double ref = reference_agreeable(ts, cfg);
    expect_near_rel(ref, res.energy, 1e-5, "vs partition reference");
  }
}

TEST(Agreeable, MatchesExhaustivePartitionReferenceAlpha) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = make_agreeable(2 + seed % 5, seed * 11, 0.060);
    const auto res = solve_agreeable(ts, cfg);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const double ref = reference_agreeable(ts, cfg);
    expect_near_rel(ref, res.energy, 1e-5, "vs partition reference");
  }
}

TEST(Agreeable, CommonReleaseSpecialCaseMatchesSection4) {
  // Common-release sets are agreeable; the DP must land on the Section 4
  // optimum (one busy interval anchored at the release).
  for (double alpha : {0.0, 0.31}) {
    const auto cfg = make_cfg(alpha, 4.0, 1900.0);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const TaskSet ts = make_common_release(2 + seed % 5, 0.0, seed * 17);
      const auto dp = solve_agreeable(ts, cfg);
      const auto s4 = alpha > 0.0 ? solve_common_release_alpha(ts, cfg)
                                  : solve_common_release_alpha0(ts, cfg);
      ASSERT_TRUE(dp.feasible && s4.feasible) << "seed " << seed;
      expect_near_rel(s4.energy, dp.energy, 1e-6, "DP vs Section 4");
    }
  }
}

TEST(Agreeable, SplitsFarApartTasksIntoBlocks) {
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.020, 3.0));
  ts.add(task(1, 5.0, 5.020, 3.0));  // far in the future
  const auto res = solve_agreeable(ts, cfg);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.case_index, 2) << "two blocks expected";
  // Memory sleeps nearly the whole 5 s between the blocks.
  EXPECT_GT(res.sleep_time, 4.5);
}

TEST(Agreeable, MergesOverlappingTasksIntoOneBlock) {
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.000, 0.100, 3.0));
  ts.add(task(1, 0.001, 0.101, 3.0));
  ts.add(task(2, 0.002, 0.102, 3.0));
  const auto res = solve_agreeable(ts, cfg);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.case_index, 1) << "one block expected";
}

TEST(Agreeable, SchedulesAreFeasible) {
  for (double alpha : {0.0, 0.31}) {
    const auto cfg = make_cfg(alpha, 4.0, 1900.0);
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      const TaskSet ts = make_agreeable(1 + seed % 8, seed * 29, 0.080);
      const auto res = solve_agreeable(ts, cfg);
      ASSERT_TRUE(res.feasible) << "seed " << seed;
      const auto v = validate_schedule(res.schedule, ts, cfg);
      EXPECT_TRUE(v.ok) << v.error << " seed " << seed << " alpha " << alpha;
    }
  }
}

TEST(Agreeable, TransitionChargeMakesMergingAttractive) {
  // With a large xi_m, two nearby blocks pay 2 alpha_m xi_m; merging pays
  // the dead time instead. The DP must pick whichever is cheaper, and a
  // bigger xi_m can only reduce the optimal block count.
  TaskSet ts;
  ts.add(task(0, 0.000, 0.020, 3.0));
  ts.add(task(1, 0.060, 0.080, 3.0));
  auto cfg = make_cfg(0.0, 4.0, 0.0);
  cfg.memory.xi_m = 0.0;
  const auto free_transitions = solve_agreeable(ts, cfg);
  cfg.memory.xi_m = 0.200;  // prohibitive: merging must win
  const auto costly = solve_agreeable(ts, cfg);
  ASSERT_TRUE(free_transitions.feasible && costly.feasible);
  EXPECT_EQ(free_transitions.case_index, 2);
  EXPECT_EQ(costly.case_index, 1);
}

TEST(Agreeable, RejectsNonAgreeable) {
  const auto cfg = make_cfg(0.0, 4.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 1.0));
  ts.add(task(1, 0.1, 0.5, 1.0));  // nested: later release, earlier deadline
  EXPECT_FALSE(solve_agreeable(ts, cfg).feasible);
}

TEST(Agreeable, SingleTaskMatchesBlockSolver) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  TaskSet ts;
  ts.add(task(0, 0.5, 0.6, 4.0));
  const auto dp = solve_agreeable(ts, cfg);
  const auto blk = solve_block(ts.tasks(), cfg);
  ASSERT_TRUE(dp.feasible && blk.feasible);
  expect_near_rel(blk.energy, dp.energy, 1e-9, "single block");
}

}  // namespace
}  // namespace sdem
